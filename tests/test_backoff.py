"""Seeded jittered backoff and the retry budget (shared by the pool
and the query service).

The contract is reproducibility without correlation: two runs with one
seed sleep for bit-identical durations, two tasks under one seed sleep
for *different* durations, and the budget's invariant
``granted <= floor + ratio * requests`` holds at every step.
"""

from __future__ import annotations

import pytest

from repro.backoff import RetryBudget, backoff_delay, jitter_fraction


class TestJitterFraction:
    def test_deterministic_for_seed_and_tokens(self):
        assert jitter_fraction(7, "cell", 1) == jitter_fraction(7, "cell", 1)

    def test_in_unit_interval(self):
        for seed in range(50):
            assert 0.0 <= jitter_fraction(seed, "x") < 1.0

    def test_tokens_decorrelate(self):
        fracs = {jitter_fraction(0, "cell", d) for d in range(20)}
        assert len(fracs) == 20

    def test_seed_decorrelates(self):
        assert jitter_fraction(0, "cell") != jitter_fraction(1, "cell")


class TestBackoffDelay:
    def test_unseeded_is_plain_exponential(self):
        assert backoff_delay(0.25, 1) == 0.25
        assert backoff_delay(0.25, 2) == 0.5
        assert backoff_delay(0.25, 3) == 1.0

    def test_unseeded_caps(self):
        assert backoff_delay(1.0, 10, cap=30.0) == 30.0

    def test_seeded_stays_in_upper_half_window(self):
        for attempt in (1, 2, 3):
            window = 0.25 * 2 ** (attempt - 1)
            for seed in range(20):
                d = backoff_delay(0.25, attempt, seed=seed, tokens=("t",))
                assert 0.5 * window <= d < window

    def test_seeded_is_reproducible(self):
        a = backoff_delay(0.1, 2, seed=42, tokens=("cell", "FFT"))
        b = backoff_delay(0.1, 2, seed=42, tokens=("cell", "FFT"))
        assert a == b

    def test_seeded_differs_across_tasks(self):
        delays = {
            backoff_delay(0.1, 1, seed=0, tokens=("cell", d)) for d in range(10)
        }
        assert len(delays) == 10

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_delay(0.1, 0)

    def test_zero_base_sleeps_zero(self):
        assert backoff_delay(0.0, 3, seed=1, tokens=("x",)) == 0.0


class TestRetryBudget:
    def test_floor_allows_cold_start_retries(self):
        budget = RetryBudget(ratio=0.0, floor=2)
        assert budget.allow_retry()
        assert budget.allow_retry()
        assert not budget.allow_retry()

    def test_invariant_holds_under_hostile_sequence(self):
        budget = RetryBudget(ratio=0.1, floor=3)
        for step in range(500):
            if step % 3 == 0:
                budget.note_request()
            budget.allow_retry()
            assert budget.granted <= budget.floor + budget.ratio * budget.requests + 1
        snap = budget.snapshot()
        assert snap["granted"] + snap["denied"] == 500

    def test_ratio_funds_retries_proportionally(self):
        budget = RetryBudget(ratio=0.5, floor=0)
        budget.note_request(10)
        granted = sum(budget.allow_retry() for _ in range(100))
        assert granted == 5  # 0 + 0.5 * 10

    def test_validation(self):
        with pytest.raises(ValueError, match="ratio"):
            RetryBudget(ratio=1.5)
        with pytest.raises(ValueError, match="floor"):
            RetryBudget(floor=-1)
