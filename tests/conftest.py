"""Shared fixtures: small application instances and platform specs.

Application runs and trace analyses are session-scoped -- they are pure
functions of (name, size, seed) and several test modules reuse them.
"""

from __future__ import annotations

import pytest

from repro.core.platform import PlatformSpec
from repro.sim.latencies import NetworkKind

KB = 1024
MB = 1024 * 1024

#: Problem sizes small enough for sub-second runs, still non-trivial.
SMALL_APP_KWARGS: dict[str, dict] = {
    "FFT": {"points": 1024},
    "LU": {"order": 64, "block": 16},
    "Radix": {"num_keys": 4096},
    "EDGE": {"height": 32, "width": 32, "iterations": 2},
    "TPC-C": {"transactions": 2000, "items": 1024, "customers_per_warehouse": 500},
    "CG": {"grid": 16, "iterations": 6},
}


@pytest.fixture(scope="session")
def small_app_kwargs() -> dict[str, dict]:
    return SMALL_APP_KWARGS


@pytest.fixture(scope="session")
def small_runner(small_app_kwargs):
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(app_kwargs=small_app_kwargs)


def _run(name: str, procs: int):
    from repro.apps.registry import make_application

    app = make_application(name, num_procs=procs, seed=0, **SMALL_APP_KWARGS[name])
    return app.run()


@pytest.fixture(scope="session")
def fft_run_4():
    return _run("FFT", 4)


@pytest.fixture(scope="session")
def lu_run_4():
    return _run("LU", 4)


@pytest.fixture(scope="session")
def radix_run_4():
    return _run("Radix", 4)


@pytest.fixture(scope="session")
def edge_run_4():
    return _run("EDGE", 4)


@pytest.fixture(scope="session")
def tpcc_run_4():
    return _run("TPC-C", 4)


@pytest.fixture(scope="session")
def cg_run_4():
    return _run("CG", 4)


@pytest.fixture(scope="session")
def all_runs_4(fft_run_4, lu_run_4, radix_run_4, edge_run_4):
    return {
        "FFT": fft_run_4,
        "LU": lu_run_4,
        "Radix": radix_run_4,
        "EDGE": edge_run_4,
    }


# ----------------------------------------------------------------------
# Platform specs (scaled to the small apps' working sets)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def smp_spec():
    return PlatformSpec(name="test-smp", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)


@pytest.fixture(scope="session")
def smp4_spec():
    return PlatformSpec(name="test-smp4", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)


@pytest.fixture(scope="session")
def cow_spec():
    return PlatformSpec(
        name="test-cow", n=1, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ETHERNET_100,
    )


@pytest.fixture(scope="session")
def cow_switch_spec():
    return PlatformSpec(
        name="test-cow-atm", n=1, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    )


@pytest.fixture(scope="session")
def clump_spec():
    return PlatformSpec(
        name="test-clump", n=2, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ETHERNET_100,
    )
