"""The two-level CLUMP-of-SMPs scenario: model vs simulator, end to end."""

import json
import math

from repro.experiments.runner import Calibration
from repro.experiments.topologies import (
    TwoLevelResult,
    _platforms,
    run_two_level_comparison,
)

CAL = Calibration(remote_rate_adjustment=0.124)


class TestPlatforms:
    def test_two_level_plus_flat_strawmen(self):
        specs = _platforms()
        assert len(specs) == 3
        deep, *flat = specs
        assert deep.topology is not None and deep.topology.depth == 2
        # same machine shape, only the interconnect structure differs
        for s in flat:
            assert s.topology is None
            assert (s.n, s.N) == (deep.n, deep.N)
            assert s.cache_bytes == deep.cache_bytes
            assert s.memory_bytes == deep.memory_bytes

    def test_scenario_not_expressible_flat(self):
        deep = _platforms()[0]
        assert len(deep.topology.interconnects) == 2
        assert deep.network is None  # no single network kind describes it


class TestTwoLevelComparison:
    def test_every_cell_finite_and_positive(self, small_runner):
        res = run_two_level_comparison(
            small_runner, applications=("EDGE",), calibration=CAL
        )
        assert len(res.rows) == 3
        for r in res.rows:
            assert math.isfinite(r.modeled) and r.modeled > 0
            assert r.simulated > 0
        assert res.calibration is CAL
        assert len(res.two_level_rows) == 1
        assert 0 <= res.ordering_agreement <= 1.0
        assert res.worst_error >= res.mean_error >= 0

    def test_describe_and_json_payload(self, small_runner):
        res = run_two_level_comparison(
            small_runner, applications=("EDGE",), calibration=CAL
        )
        text = res.describe()
        assert "clump-of-smps" in text
        assert "ordering agreement" in text
        payload = json.loads(json.dumps(res.as_dict()))
        assert payload["two_level_platform"] == "clump-of-smps"
        assert len(payload["rows"]) == 3
        assert payload["worst_error"] == res.worst_error
        assert payload["ordering_agreement"] == res.ordering_agreement

    def test_ordering_agreement_counts_pairs(self):
        from repro.core.validation import ComparisonRow

        rows = (
            ComparisonRow("A", "deep", 1.0, 1.0),
            ComparisonRow("A", "flat", 2.0, 2.0),
            ComparisonRow("B", "deep", 3.0, 4.0),
            ComparisonRow("B", "flat", 4.0, 3.0),  # ranking flipped
        )
        res = TwoLevelResult(rows=rows, calibration=CAL, two_level_name="deep")
        assert res.ordering_agreement == 0.5
