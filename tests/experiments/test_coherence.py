"""Tests for the coherence-traffic experiment."""

import math

import pytest

from repro.experiments.coherence import PAPER_FRACTIONS, run_coherence_traffic


@pytest.fixture(scope="module")
def result(small_runner_module):
    return run_coherence_traffic(small_runner_module, applications=("EDGE", "LU"))


@pytest.fixture(scope="module")
def small_runner_module():
    from repro.experiments.runner import ExperimentRunner
    from tests.conftest import SMALL_APP_KWARGS

    return ExperimentRunner(app_kwargs=SMALL_APP_KWARGS)


class TestCoherence:
    def test_paper_constants(self):
        assert PAPER_FRACTIONS == {
            "FFT": 0.063, "LU": 0.047, "Radix": 0.072, "EDGE": 0.021
        }

    def test_fractions_in_unit_interval(self, result):
        for r in result.rows:
            assert 0.0 <= r.measured_fraction <= 1.0
            assert not math.isnan(r.paper_fraction)

    def test_counters_non_negative(self, result):
        for r in result.rows:
            assert r.invalidations >= 0
            assert r.cache_to_cache >= 0
            assert r.writebacks >= 0

    def test_small_share_conclusion(self, result):
        assert result.all_single_digit

    def test_describe(self, result):
        text = result.describe()
        assert "Section 5.3.1" in text and "paper" in text
