"""Tests for the design-choice ablations."""

import math

import pytest

from repro.experiments.ablations import run_ablations


@pytest.fixture(scope="module")
def ablations(small_runner_module):
    return run_ablations(small_runner_module)


@pytest.fixture(scope="module")
def small_runner_module(small_app_kwargs_module):
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(app_kwargs=small_app_kwargs_module)


@pytest.fixture(scope="module")
def small_app_kwargs_module():
    from tests.conftest import SMALL_APP_KWARGS

    return SMALL_APP_KWARGS


class TestAblations:
    def test_all_groups_present(self, ablations):
        groups = {r.ablation for r in ablations.rows}
        assert groups == {
            "cache associativity",
            "footprint truncation",
            "DSM sharing term",
            "saturation handling",
            "contention treatment",
            "SMP peer-cache level",
        }

    def test_mva_present_and_finite(self, ablations):
        import math

        rows = ablations.of("contention treatment")
        mva = [r for r in rows if "MVA" in r.variant]
        assert len(mva) == 1
        assert math.isfinite(mva[0].e_instr_seconds)

    def test_truncation_improves_agreement(self, ablations):
        trunc = ablations.of("footprint truncation")
        assert trunc[0].error <= trunc[1].error

    def test_sharing_improves_agreement(self, ablations):
        sharing = ablations.of("DSM sharing term")
        assert sharing[0].error <= sharing[1].error

    def test_open_mode_saturates_where_throttled_survives(self, ablations):
        sat = ablations.of("saturation handling")
        assert math.isfinite(sat[0].e_instr_seconds)
        assert not math.isfinite(sat[1].e_instr_seconds)
        assert sat[1].error == math.inf

    def test_describe_lists_every_row(self, ablations):
        text = ablations.describe()
        for r in ablations.rows:
            assert r.variant in text
