"""Parallel experiment grid and the on-disk simulation cache.

The acceptance bar: a grid run with ``jobs > 1`` produces exactly the
same :class:`ComparisonRow` list as the serial run, and a warm-cache
rerun never re-simulates (proved by making simulation impossible, not
by timing it).
"""

from __future__ import annotations

import pytest

from repro.core.platform import PlatformSpec
from repro.experiments.runner import Calibration, ExperimentRunner
from repro.sim.latencies import NetworkKind

KB = 1024

APPS = ["EDGE", "FFT"]
SPECS = [
    PlatformSpec(name="p-smp", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB),
    PlatformSpec(
        name="p-cow", n=1, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ETHERNET_100,
    ),
]


def _runner(small_app_kwargs, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(app_kwargs=small_app_kwargs, **kwargs)


class TestParallelGrid:
    def test_parallel_rows_equal_serial(self, small_app_kwargs, tmp_path):
        serial = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path / "a")
        parallel = _runner(small_app_kwargs, jobs=2, cache_dir=tmp_path / "b")
        cal = Calibration()
        assert parallel.compare(APPS, SPECS, cal) == serial.compare(APPS, SPECS, cal)

    def test_parallel_without_disk_cache(self, small_app_kwargs, tmp_path):
        serial = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        parallel = _runner(small_app_kwargs, jobs=2, cache_dir=None)
        cal = Calibration()
        assert parallel.compare(APPS, SPECS, cal) == serial.compare(APPS, SPECS, cal)

    def test_jobs_must_be_positive(self, small_app_kwargs):
        with pytest.raises(ValueError):
            _runner(small_app_kwargs, jobs=0)


class TestDiskCache:
    def test_cache_files_land_under_cache_dir(self, small_app_kwargs, tmp_path):
        runner = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        runner.simulate("EDGE", SPECS[0])
        runner.characterization("EDGE")
        assert len(list((tmp_path / "sim").glob("*.pkl"))) == 1
        assert len(list((tmp_path / "char").glob("*.pkl"))) == 1

    def test_cache_dir_none_writes_nothing(self, small_app_kwargs, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runner = _runner(small_app_kwargs, jobs=1, cache_dir=None)
        runner.simulate("EDGE", SPECS[0])
        assert not list(tmp_path.rglob("*.pkl"))

    def test_warm_rerun_never_resimulates(self, small_app_kwargs, tmp_path, monkeypatch):
        cal = Calibration()
        cold = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        expected = cold.compare(APPS, SPECS, cal)

        # A fresh runner on the warm cache must answer entirely from
        # disk: make simulating at all a hard error and compare again.
        import repro.experiments.runner as runner_mod

        class Boom:
            def __init__(self, *a, **k):
                raise AssertionError("simulated despite a warm cache")

        monkeypatch.setattr(runner_mod, "SimulationEngine", Boom)
        warm = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        assert warm.compare(APPS, SPECS, cal) == expected

    def test_horizon_changes_the_cache_key(self, small_app_kwargs, tmp_path):
        a = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        b = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path, horizon=0.0)
        a.simulate("EDGE", SPECS[0])
        b.simulate("EDGE", SPECS[0])
        assert len(list((tmp_path / "sim").glob("*.pkl"))) == 2

    def test_corrupt_cache_entry_is_recomputed(self, small_app_kwargs, tmp_path):
        runner = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        path = runner._sim_cache_path("EDGE", SPECS[0])
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        result = runner.simulate("EDGE", SPECS[0])
        assert result.total_cycles > 0
