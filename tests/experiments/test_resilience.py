"""Fault tolerance of the experiment harness.

Every failure mode the runner claims to survive is exercised for real:
corrupt cache entries are quarantined and recomputed, a worker raising
is retried, a worker killed mid-cell degrades the pool to serial, an
interrupt mid-grid leaves checkpoints a fresh runner resumes from, and
a permanently failing cell surfaces as an error instead of a hang.

Cross-process sabotage uses the ``REPRO_CHAOS_*_ONCE`` hooks: the env
var names a marker path and exactly one worker attempt claims it, so
each scenario fires deterministically once per test.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time

import pytest

from repro.experiments.runner import Calibration, ExperimentRunner
from repro.obs.metrics import MetricsRegistry
from tests.experiments.test_runner_parallel import APPS, SPECS

CAL = Calibration()


def _runner(small_app_kwargs, **kwargs) -> ExperimentRunner:
    kwargs.setdefault("retry_backoff", 0.0)
    # A private registry per runner so counter assertions are not
    # polluted by other tests sharing the process-default REGISTRY.
    kwargs.setdefault("metrics", MetricsRegistry())
    return ExperimentRunner(app_kwargs=small_app_kwargs, **kwargs)


def _corrupt_count(runner: ExperimentRunner, kind: str) -> float:
    return runner.metrics.get("repro_cache_corrupt_total").labels(kind=kind).value


@pytest.fixture(scope="module")
def expected_rows(small_app_kwargs):
    """The uninterrupted grid every resilience scenario must reproduce."""
    return _runner(small_app_kwargs, jobs=1, cache_dir=None).compare(APPS, SPECS, CAL)


class TestQuarantine:
    def _poison(self, path, data=b"\x80\x04 this is not a pickle"):
        path.write_bytes(data)
        return data

    def test_corrupt_sim_entry_recomputed_and_quarantined(
        self, small_app_kwargs, tmp_path
    ):
        cold = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        expected = cold.simulate("EDGE", SPECS[0])
        (entry,) = (tmp_path / "sim").glob("*.pkl")
        garbage = self._poison(entry)

        warm = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        result = warm.simulate("EDGE", SPECS[0])
        assert result == expected  # recomputed, not aborted
        assert _corrupt_count(warm, "sim") == 1

        # The bytes moved aside intact for post-mortem inspection and
        # the slot was rewritten with a good entry.
        quarantined = tmp_path / "quarantine" / f"sim-{entry.name}"
        assert quarantined.read_bytes() == garbage
        assert pickle.loads(entry.read_bytes()) == expected

    def test_truncated_pickle_is_treated_as_corrupt(
        self, small_app_kwargs, tmp_path
    ):
        cold = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        expected = cold.characterization("EDGE")
        (entry,) = (tmp_path / "char").glob("*.pkl")
        entry.write_bytes(entry.read_bytes()[:-7])  # torn write

        warm = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        assert warm.characterization("EDGE") == expected
        assert _corrupt_count(warm, "char") == 1
        assert (tmp_path / "quarantine" / f"char-{entry.name}").exists()

    def test_missing_file_is_an_ordinary_miss_not_corruption(
        self, small_app_kwargs, tmp_path
    ):
        runner = _runner(small_app_kwargs, jobs=1, cache_dir=tmp_path)
        runner.simulate("EDGE", SPECS[0])
        assert _corrupt_count(runner, "sim") == 0
        assert not (tmp_path / "quarantine").exists()


class TestPoolFailures:
    def test_worker_raising_is_retried(
        self, small_app_kwargs, tmp_path, monkeypatch, expected_rows
    ):
        monkeypatch.setenv("REPRO_CHAOS_RAISE_ONCE", str(tmp_path / "raise.marker"))
        runner = _runner(small_app_kwargs, jobs=2, cache_dir=None)
        assert runner.compare(APPS, SPECS, CAL) == expected_rows
        assert runner.metrics.get("repro_cell_retries_total").value == 1

    def test_worker_killed_mid_cell_degrades_to_serial(
        self, small_app_kwargs, tmp_path, monkeypatch, expected_rows
    ):
        monkeypatch.setenv("REPRO_CHAOS_CRASH_ONCE", str(tmp_path / "crash.marker"))
        runner = _runner(small_app_kwargs, jobs=2, cache_dir=None)
        assert runner.compare(APPS, SPECS, CAL) == expected_rows
        assert runner.metrics.get("repro_pool_degradations_total").value == 1

    def test_cell_timeout_degrades_to_serial(
        self, small_app_kwargs, monkeypatch, expected_rows
    ):
        # No cell can finish in a millisecond, so the first deadline
        # check abandons the pool and the grid completes serially.
        runner = _runner(
            small_app_kwargs, jobs=2, cache_dir=None, cell_timeout=0.001
        )
        assert runner.compare(APPS, SPECS, CAL) == expected_rows
        assert runner.metrics.get("repro_pool_degradations_total").value == 1

    def test_permanent_failure_raises_instead_of_hanging(
        self, small_app_kwargs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_RAISE_ONCE", str(tmp_path / "raise.marker"))
        runner = _runner(
            small_app_kwargs, jobs=2, cache_dir=None, max_retries=0
        )
        with pytest.raises(RuntimeError, match="failed after 1 attempt"):
            runner.compare(APPS, SPECS, CAL)

    def test_interrupt_mid_grid_then_resume_reproduces_exactly(
        self, small_app_kwargs, tmp_path, monkeypatch, expected_rows
    ):
        """The killed-and-resumed acceptance criterion.

        An interrupt lands mid-grid; the runner must clean up its pool
        and propagate it.  A fresh runner pointed at the same cache
        directory then resumes from the checkpoints and produces the
        identical uninterrupted rows.
        """
        cache = tmp_path / "cache"
        monkeypatch.setenv(
            "REPRO_CHAOS_INTERRUPT_ONCE", str(tmp_path / "intr.marker")
        )
        interrupted = _runner(small_app_kwargs, jobs=2, cache_dir=cache)
        with pytest.raises(KeyboardInterrupt):
            interrupted.compare(APPS, SPECS, CAL)

        # The pool was killed, not leaked: every worker exits promptly.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

        resumed = _runner(small_app_kwargs, jobs=2, cache_dir=cache)
        assert resumed.compare(APPS, SPECS, CAL) == expected_rows


class TestKnobValidation:
    def test_cell_timeout_must_be_positive(self, small_app_kwargs):
        with pytest.raises(ValueError, match="cell_timeout"):
            _runner(small_app_kwargs, cell_timeout=0)

    def test_max_retries_must_be_nonnegative(self, small_app_kwargs):
        with pytest.raises(ValueError, match="max_retries"):
            _runner(small_app_kwargs, max_retries=-1)

    def test_retry_backoff_must_be_nonnegative(self, small_app_kwargs):
        with pytest.raises(ValueError, match="retry_backoff"):
            _runner(small_app_kwargs, retry_backoff=-0.5)
