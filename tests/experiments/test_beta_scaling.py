"""Tests for the beta-vs-data-set experiment (reduced ladders)."""

import pytest

import repro.experiments.beta_scaling as bs

ORIGINAL_LADDERS = dict(bs.SIZE_LADDERS)


@pytest.fixture(scope="module")
def small_results(monkeypatch_module):
    monkeypatch_module.setattr(
        bs,
        "SIZE_LADDERS",
        {
            "EDGE": ({"height": 16, "width": 16}, {"height": 32, "width": 32}),
            "Radix": ({"num_keys": 2048}, {"num_keys": 8192}),
        },
    )
    return bs.run_beta_scaling(applications=("EDGE", "Radix"))


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    mp = MonkeyPatch()
    yield mp
    mp.undo()


class TestBetaScaling:
    def test_one_point_per_rung(self, small_results):
        assert all(len(r.points) == 2 for r in small_results)

    def test_footprint_grows(self, small_results):
        assert all(r.footprint_grows for r in small_results)

    def test_miss_at_probe_in_unit_interval(self, small_results):
        for r in small_results:
            for p in r.points:
                assert 0.0 <= p.miss_at_probe <= 1.0

    def test_describe(self, small_results):
        text = small_results[0].describe()
        assert "problem size" in text and "Section 5.2" in text

    def test_full_ladders_cover_table2_apps(self):
        assert set(ORIGINAL_LADDERS) >= {"FFT", "LU", "Radix", "EDGE"}
