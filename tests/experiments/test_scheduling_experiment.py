"""The placement-policy comparison experiment (heterogeneous extension)."""

import json
import math

import pytest

from repro.experiments.scheduling import (
    PolicyCell,
    SchedulingResult,
    main,
    run_policy_comparison,
)
from repro.workloads.params import PAPER_WORKLOADS


@pytest.fixture(scope="module")
def result():
    return run_policy_comparison()


class TestComparison:
    def test_full_grid(self, result):
        # 2 trees x 4 workloads x 3 policies.
        assert len(result.cells) == 2 * len(PAPER_WORKLOADS) * 3
        assert result.policies == ("round-robin", "speed", "memory-aware")

    def test_dominance_holds(self, result):
        """The acceptance criterion, at the experiment layer: the
        memory-aware policy never loses a (tree, workload) cell."""
        assert result.dominance_holds

    def test_cell_lookup_and_speedup(self, result):
        cell = result.cell("mixed-cow", "LU", "memory-aware")
        assert isinstance(cell, PolicyCell) and cell.feasible
        speedup = result.speedup("mixed-cow", "LU", "round-robin")
        assert speedup == pytest.approx(2.0, abs=0.05)

    def test_mean_speedup_is_meaningful(self, result):
        mean = result.mean_speedup_over_round_robin
        assert math.isfinite(mean) and mean > 1.0

    def test_describe_renders_every_policy(self, result):
        text = result.describe()
        for policy in result.policies:
            assert policy in text

    def test_as_dict_round_trips_json(self, result):
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["dominance_holds"] is True
        assert len(payload["cells"]) == len(result.cells)


class TestMain:
    def test_writes_json(self, tmp_path, capsys):
        out = tmp_path / "policies.json"
        assert main(["--json", str(out), "--platforms", "mixed-cow"]) == 0
        payload = json.loads(out.read_text())
        assert payload["dominance_holds"] is True
        assert "memory-aware" in capsys.readouterr().out

    def test_unknown_platform_is_pointed(self):
        with pytest.raises(ValueError, match="mixed-cow"):
            main(["--platforms", "mixed-tower"])


class TestResultConstruction:
    def test_unknown_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("mixed-cow", "LU", "fastest-first")
