"""Execution-lane selection and observability in the experiment runner
and the design search.

The ISSUE's bugfix bar: lane decisions must be *observable* -- the
chosen lane per grid lands in ``repro_grid_lane_total{lane}`` and the
run report, and a ``jobs=1`` grid must never spawn a process pool
(asserted through ``FaultTolerantPool.pools_spawned``, not timing).
The tentpole bar: every lane returns the same rows, and the disk cache
written by one lane serves the others (per-cell keys are lane-
invariant).
"""

from __future__ import annotations

import pytest

from repro.core.platform import PlatformSpec
from repro.experiments.runner import Calibration, ExperimentRunner
from repro.obs.metrics import MetricsRegistry
from repro.sim.latencies import NetworkKind

KB = 1024

APPS = ["EDGE", "FFT"]
SPECS = [
    PlatformSpec(name="l-smp", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB),
    PlatformSpec(
        name="l-cow", n=1, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ETHERNET_100,
    ),
]
CELLS = [(name, spec) for name in APPS for spec in SPECS]


def _runner(small_app_kwargs, **kwargs) -> ExperimentRunner:
    kwargs.setdefault("metrics", MetricsRegistry())
    return ExperimentRunner(app_kwargs=small_app_kwargs, **kwargs)


def _lane_counts(runner) -> dict[str, int]:
    counter = runner.metrics.get("repro_grid_lane_total")
    return {labels["lane"]: int(s.value) for labels, s in counter.samples()}


class TestRunnerLanes:
    def test_invalid_lane_rejected(self, small_app_kwargs):
        with pytest.raises(ValueError):
            _runner(small_app_kwargs, lane="warp")

    @pytest.mark.parametrize("lane", ["tensor", "serial", "pool"])
    def test_every_lane_same_rows(self, small_app_kwargs, lane):
        cal = Calibration()
        reference = _runner(small_app_kwargs, jobs=1, cache_dir=None)
        other = _runner(small_app_kwargs, lane=lane, jobs=2, cache_dir=None)
        assert other.compare(APPS, SPECS, cal) == reference.compare(APPS, SPECS, cal)

    def test_chosen_lane_recorded_in_metrics(self, small_app_kwargs):
        runner = _runner(small_app_kwargs, lane="tensor", cache_dir=None)
        runner.prefetch_simulations(CELLS)
        assert runner.last_grid_lane == "tensor"
        assert _lane_counts(runner) == {"tensor": 1}

    def test_auto_picks_tensor_for_single_job(self, small_app_kwargs):
        runner = _runner(small_app_kwargs, jobs=1, cache_dir=None)
        runner.prefetch_simulations(CELLS)
        assert runner.last_grid_lane == "tensor"

    def test_auto_picks_pool_for_multicore(self, small_app_kwargs):
        runner = _runner(small_app_kwargs, jobs=2, cache_dir=None)
        runner.prefetch_simulations(CELLS)
        assert runner.last_grid_lane == "pool"
        assert runner._pool.pools_spawned == 1

    def test_single_cell_grid_runs_serial(self, small_app_kwargs):
        runner = _runner(small_app_kwargs, jobs=2, cache_dir=None)
        runner.prefetch_simulations(CELLS[:1])
        assert runner.last_grid_lane == "serial"
        assert runner._pool.pools_spawned == 0

    def test_jobs1_never_spawns_a_pool(self, small_app_kwargs):
        """The ISSUE's bugfix: a single-job grid must skip pool setup
        entirely, whatever lane routing decides."""
        for lane in ("auto", "tensor", "serial", "pool"):
            runner = _runner(small_app_kwargs, lane=lane, jobs=1, cache_dir=None)
            runner.prefetch_simulations(CELLS)
            assert runner._pool.pools_spawned == 0, lane

    def test_explicit_pool_lane_with_one_job_degrades_to_serial(
        self, small_app_kwargs
    ):
        runner = _runner(small_app_kwargs, lane="pool", jobs=1, cache_dir=None)
        runner.prefetch_simulations(CELLS)
        assert runner.last_grid_lane == "serial"

    def test_tensor_cache_serves_other_lanes(self, small_app_kwargs, tmp_path):
        """Per-cell cache keys are lane-invariant: a tensor-lane grid
        warms the disk cache for a serial runner, which then never
        simulates (proved by breaking simulation, not by timing)."""
        writer = _runner(small_app_kwargs, lane="tensor", cache_dir=tmp_path)
        writer.prefetch_simulations(CELLS)

        reader = _runner(small_app_kwargs, lane="serial", cache_dir=tmp_path)

        def _boom(*a, **kw):  # pragma: no cover - must never run
            raise AssertionError("warm-cache run tried to simulate")

        reader.application_run = _boom
        for name, spec in CELLS:
            writer_result = writer.simulate(name, spec)
            assert reader.simulate(name, spec).total_cycles == writer_result.total_cycles

    def test_report_header_names_the_lane(self, small_app_kwargs):
        from repro.experiments.reporting import _lane_summary

        runner = _runner(small_app_kwargs, lane="tensor", cache_dir=None)
        runner.prefetch_simulations(CELLS)
        line = _lane_summary(runner)
        assert "configured `tensor`" in line
        assert "tensor: 1" in line
        # stub runners (reporting tests) degrade to no line at all
        assert _lane_summary(object()) == ""


class TestDesignLanes:
    def test_invalid_lane_rejected(self):
        from repro.cost.search import DesignSearch

        with pytest.raises(ValueError):
            DesignSearch(lane="serial", metrics=MetricsRegistry())

    def test_tensor_wave_matches_pool_answers(self):
        from repro.cost import CandidateSpace
        from repro.cost.search import DesignQuery, DesignSearch
        from repro.workloads.params import PAPER_FFT, PAPER_LU

        space = CandidateSpace(
            max_machines=4, memory_mb_options=(32,), cache_kb_options=(256,)
        )
        queries = [
            DesignQuery(w, b)
            for w in (PAPER_FFT, PAPER_LU)
            for b in (8000.0, 15000.0, 30000.0)
        ]

        def _wave(lane):
            engine = DesignSearch(
                space=space, jobs=1, lane=lane, metrics=MetricsRegistry()
            )
            return engine.run(queries)

        pool_out = _wave("pool")
        tensor_out = _wave("tensor")
        for a, b in zip(pool_out, tensor_out):
            assert a.best.spec == b.best.spec
            assert a.best.e_instr_seconds == b.best.e_instr_seconds

    def test_wave_lane_recorded_in_metrics(self):
        from repro.cost import CandidateSpace
        from repro.cost.search import DesignQuery, DesignSearch
        from repro.workloads.params import PAPER_FFT

        registry = MetricsRegistry()
        engine = DesignSearch(
            space=CandidateSpace(
                max_machines=3, memory_mb_options=(32,), cache_kb_options=(256,)
            ),
            jobs=1, lane="tensor", metrics=registry,
        )
        engine.run([DesignQuery(PAPER_FFT, 8000.0)])
        counter = registry.get("design_wave_lane_total")
        counts = {labels["lane"]: int(s.value) for labels, s in counter.samples()}
        assert counts == {"tensor": 1}
