"""Runner-level observability: cache-hit counters, timelines through the
disk cache, and span trees from serial and parallel execution."""

from __future__ import annotations

import pytest

from repro.core.platform import PlatformSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import get_tracer

KB = 1024

SMP2 = PlatformSpec(name="obs-smp2", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
SMP4 = PlatformSpec(name="obs-smp4", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)


def _runner(tmp_path, small_app_kwargs, **kwargs):
    from repro.experiments.runner import ExperimentRunner

    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("jobs", 1)
    return ExperimentRunner(app_kwargs=small_app_kwargs, **kwargs)


def _lookups(runner) -> dict[tuple[str, str], float]:
    counter = runner.metrics.get("repro_cache_lookups_total")
    return {tuple(labels.values()): s.value for labels, s in counter.samples()}


def test_cache_counters_across_cold_and_warm_runners(tmp_path, small_app_kwargs):
    cold = _runner(tmp_path, small_app_kwargs)
    cold.simulate("FFT", SMP2)
    cold.characterization("FFT")
    assert _lookups(cold) == {("char", "miss"): 1.0, ("sim", "miss"): 1.0}

    # the memo absorbs repeats: no second disk lookup
    cold.simulate("FFT", SMP2)
    assert _lookups(cold)[("sim", "miss")] == 1.0

    warm = _runner(tmp_path, small_app_kwargs)
    warm.simulate("FFT", SMP2)
    warm.characterization("FFT")
    assert _lookups(warm) == {("char", "hit"): 1.0, ("sim", "hit"): 1.0}


def test_no_counters_without_cache_dir(tmp_path, small_app_kwargs):
    runner = _runner(tmp_path, small_app_kwargs, cache_dir=None)
    runner.simulate("FFT", SMP2)
    assert _lookups(runner) == {}


def test_timeline_survives_the_disk_cache(tmp_path, small_app_kwargs):
    cold = _runner(tmp_path, small_app_kwargs, sample_every=10_000.0)
    first = cold.simulate("FFT", SMP2)
    assert first.timeline is not None

    warm = _runner(tmp_path, small_app_kwargs, sample_every=10_000.0)
    second = warm.simulate("FFT", SMP2)
    assert _lookups(warm) == {("sim", "hit"): 1.0}
    assert second.timeline is not None
    assert second.timeline.to_obj() == first.timeline.to_obj()
    assert warm.timelines() == {"FFT@obs-smp2": second.timeline}


def test_sample_every_is_part_of_the_cache_key(tmp_path, small_app_kwargs):
    _runner(tmp_path, small_app_kwargs).simulate("FFT", SMP2)
    sampled = _runner(tmp_path, small_app_kwargs, sample_every=10_000.0)
    res = sampled.simulate("FFT", SMP2)
    # a plain run must not satisfy a sampled request (it has no timeline)
    assert _lookups(sampled) == {("sim", "miss"): 1.0}
    assert res.timeline is not None


def test_timelines_empty_without_sampling(tmp_path, small_app_kwargs):
    runner = _runner(tmp_path, small_app_kwargs, cache_dir=None)
    runner.simulate("FFT", SMP2)
    assert runner.timelines() == {}


def test_simulate_records_a_span(tmp_path, small_app_kwargs):
    tracer = get_tracer()
    before = len(tracer.roots)
    runner = _runner(tmp_path, small_app_kwargs, cache_dir=None)
    runner.simulate("FFT", SMP2)
    new = tracer.roots[before:]
    del tracer.roots[before:]
    assert [s.name for s in new] == ["simulate:FFT@obs-smp2"]
    assert new[0].attrs["procs"] == 2
    assert new[0].duration > 0


def test_prefetch_attaches_worker_spans(tmp_path, small_app_kwargs):
    tracer = get_tracer()
    before = len(tracer.roots)
    runner = _runner(tmp_path, small_app_kwargs, jobs=2)
    cells = [("FFT", SMP2), ("FFT", SMP4)]
    runner.prefetch_simulations(cells)
    new = tracer.roots[before:]
    del tracer.roots[before:]
    assert _lookups(runner) == {("sim", "miss"): 2.0}
    (root,) = new
    assert root.name == "prefetch:2cells"
    names = sorted(c.name for c in root.children)
    assert names == ["simulate:FFT@obs-smp2", "simulate:FFT@obs-smp4"]
    for child in root.children:
        assert "worker" in child.attrs
        assert child.duration > 0
    # prefetch populated the memo: simulate() is now a pure lookup
    res = runner.simulate("FFT", SMP4)
    assert res.platform_name == "obs-smp4"
    assert _lookups(runner) == {("sim", "miss"): 2.0}


def test_engine_and_runner_reject_bad_sample_every(tmp_path, small_app_kwargs):
    with pytest.raises(ValueError):
        _runner(tmp_path, small_app_kwargs, sample_every=0.0)
    with pytest.raises(ValueError):
        _runner(tmp_path, small_app_kwargs, sample_every=-5.0)
