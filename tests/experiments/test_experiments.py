"""Integration tests of the experiment modules at reduced size."""

import math

import pytest

from repro.core.platform import PlatformSpec
from repro.experiments.casestudies import run_case_studies, run_fft_claim
from repro.experiments.figures import FigureResult, _run_figure
from repro.experiments.recommendations import run_recommendations
from repro.experiments.runner import Calibration
from repro.experiments.speed import run_speed_comparison
from repro.experiments.table2 import run_table2
from repro.cost.configspace import CandidateSpace
from repro.sim.latencies import NetworkKind

KB = 1024

MINI_SMPS = (
    PlatformSpec(name="M1", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB),
)
MINI_COWS = (
    PlatformSpec(
        name="M2", n=1, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    ),
)


class TestTable2:
    def test_structure_checks(self, small_runner):
        res = run_table2(small_runner)
        assert len(res.rows) == 4
        assert res.gamma_ordering_matches()
        text = res.describe()
        assert "FFT" in text and "Radix" in text and "paper" in text


class TestMiniFigures:
    def test_mini_smp_figure(self, small_runner):
        # _run_figure over unscaled mini specs: bypass scaling with scale=1
        import repro.experiments.figures as figs

        res = figs.FigureResult(
            figure="mini",
            rows=tuple(
                small_runner.compare(["EDGE", "FFT"], MINI_SMPS, Calibration())
            ),
            calibration=Calibration(),
            paper_bound=0.05,
        )
        assert 0 < res.worst_error < 10.0
        assert 0 <= res.ordering_agreement() <= 1.0
        assert "mini" in res.describe()

    def test_mini_cow_figure(self, small_runner):
        rows = small_runner.compare(
            ["EDGE"], MINI_COWS, Calibration(remote_rate_adjustment=0.124)
        )
        assert all(math.isfinite(r.modeled) for r in rows)
        assert all(r.simulated > 0 for r in rows)

    def test_ordering_agreement_perfect_when_identical(self):
        from repro.core.validation import ComparisonRow

        rows = (
            ComparisonRow("A", "C1", 1.0, 1.0),
            ComparisonRow("A", "C2", 2.0, 2.0),
        )
        res = FigureResult(figure="x", rows=rows, calibration=Calibration(), paper_bound=0.05)
        assert res.ordering_agreement() == 1.0
        assert res.worst_error == 0.0


SMALL_SPACE = CandidateSpace(max_machines=4, memory_mb_options=(32,), cache_kb_options=(256,))


class TestCaseStudies:
    def test_fft_claim_direction(self):
        claim = run_fft_claim()
        # equal cost, ATM must win clearly (paper: 4x)
        assert abs(claim.ethernet_price - claim.atm_price) / claim.ethernet_price < 0.02
        assert claim.ratio > 2.0
        assert "FFT" in claim.describe() or "Ethernet" in claim.describe()

    def test_case_studies_reduced_space(self):
        res = run_case_studies(space=SMALL_SPACE)
        assert not res.smp_fits_5k
        assert not res.smp_cluster_fits_5k
        # Case 1: every $5k winner is a cluster of workstations
        for r in res.budget_5k.values():
            assert r.best.spec.N >= 2 and r.best.spec.n == 1
        # upgrades never lose performance
        for r in res.upgrades.values():
            assert r.speedup >= 1.0
        assert "Case 1" in res.describe()


class TestRecommendations:
    def test_all_assignments_match_paper(self):
        res = run_recommendations()
        assert res.all_match_paper
        assert "OK" in res.describe()


class TestSpeed:
    def test_model_orders_of_magnitude_faster(self, small_runner):
        res = run_speed_comparison(small_runner, app="EDGE", model_repeats=5)
        assert res.model_seconds < res.simulation_seconds
        assert res.speedup > 10
        assert "faster" in res.describe()
