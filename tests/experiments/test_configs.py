"""Tests for the paper's configuration tables (C1-C15)."""

import pytest

from repro.core.hierarchy import PlatformKind
from repro.experiments.configs import (
    ALL_CONFIGS,
    SCALE,
    TABLE3_SMPS,
    TABLE4_COWS,
    TABLE5_CLUMPS,
    paper_config,
    scaled,
)
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024


class TestTable3:
    def test_six_smps(self):
        assert len(TABLE3_SMPS) == 6
        assert all(s.kind is PlatformKind.SMP for s in TABLE3_SMPS)

    def test_rows_verbatim(self):
        c1 = paper_config("C1")
        assert (c1.n, c1.cache_bytes, c1.memory_bytes) == (2, 256 * KB, 64 * MB)
        c6 = paper_config("C6")
        assert (c6.n, c6.cache_bytes, c6.memory_bytes) == (4, 512 * KB, 128 * MB)


class TestTable4:
    def test_five_cows(self):
        assert len(TABLE4_COWS) == 5
        assert all(s.kind is PlatformKind.COW for s in TABLE4_COWS)

    def test_rows_verbatim(self):
        c7 = paper_config("C7")
        assert (c7.N, c7.memory_bytes, c7.network) == (2, 32 * MB, NetworkKind.ETHERNET_10)
        c11 = paper_config("C11")
        assert (c11.N, c11.cache_bytes, c11.network) == (8, 512 * KB, NetworkKind.ATM_155)


class TestTable5:
    def test_four_clumps(self):
        assert len(TABLE5_CLUMPS) == 4
        assert all(s.kind is PlatformKind.CLUMP for s in TABLE5_CLUMPS)

    def test_rows_verbatim(self):
        c12 = paper_config("C12")
        assert (c12.n, c12.N, c12.network) == (2, 2, NetworkKind.ETHERNET_10)
        c15 = paper_config("C15")
        assert (c15.n, c15.N, c15.network) == (4, 2, NetworkKind.ATM_155)


class TestLookupAndScaling:
    def test_fifteen_configs_total(self):
        assert len(ALL_CONFIGS) == 15

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            paper_config("C99")

    def test_scaled_preserves_everything_but_sizes(self):
        c8 = paper_config("C8")
        s = scaled(c8)
        assert s.n == c8.n and s.N == c8.N and s.network == c8.network
        assert s.cache_bytes == c8.cache_bytes // SCALE
        assert s.memory_bytes == c8.memory_bytes // SCALE

    def test_paper_clock(self):
        assert all(s.cpu_hz == 200e6 for s in ALL_CONFIGS.values())
