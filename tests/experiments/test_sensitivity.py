"""Tests for the hierarchy-length sensitivity study."""

import pytest

from repro.experiments.sensitivity import run_sensitivity
from repro.workloads.params import PAPER_RADIX, PAPER_EDGE


@pytest.fixture(scope="module")
def results():
    return run_sensitivity([PAPER_RADIX, PAPER_EDGE])


class TestSensitivity:
    def test_four_axes_per_workload(self, results):
        for res in results:
            assert {a.axis for a in res.axes} == {
                "hierarchy length",
                "cache size",
                "memory size",
                "network bandwidth",
            }

    def test_spreads_at_least_one(self, results):
        for res in results:
            for ax in res.axes:
                assert ax.spread >= 1.0

    def test_central_claim_holds(self, results):
        """Hierarchy length dominates the capacity axes (the paper's
        headline conclusion)."""
        for res in results:
            assert res.claim_holds

    def test_radix_more_length_sensitive_than_edge(self, results):
        by_name = {r.workload.name: r for r in results}
        radix = by_name["Radix"].axis("hierarchy length").spread
        edge = by_name["EDGE"].axis("hierarchy length").spread
        assert radix > edge

    def test_smp_is_the_short_hierarchy_winner_for_radix(self, results):
        by_name = {r.workload.name: r for r in results}
        ax = by_name["Radix"].axis("hierarchy length")
        best = min(zip(ax.values, ax.e_instr), key=lambda p: p[1])
        assert "SMP" in best[0]

    def test_axis_lookup_raises_on_unknown(self, results):
        with pytest.raises(KeyError):
            results[0].axis("nope")

    def test_describe(self, results):
        text = results[0].describe()
        assert "most sensitive" in text
        assert "central claim" in text
