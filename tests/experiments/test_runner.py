"""Tests for the experiment runner: caching, comparison, calibration."""

import math

import pytest

from repro.core.platform import PlatformSpec
from repro.experiments.runner import Calibration, ExperimentRunner

KB = 1024

SPECS = [
    PlatformSpec(name="r-smp", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB),
]


class TestCaching:
    def test_application_run_cached(self, small_runner):
        a = small_runner.application_run("EDGE", 2)
        b = small_runner.application_run("EDGE", 2)
        assert a is b

    def test_characterization_cached(self, small_runner):
        a = small_runner.characterization("EDGE")
        assert a is small_runner.characterization("EDGE")
        assert a.name == "EDGE"

    def test_simulation_cached(self, small_runner):
        a = small_runner.simulate("EDGE", SPECS[0])
        assert a is small_runner.simulate("EDGE", SPECS[0])

    def test_sharing_for_single_machine_is_trivial(self, small_runner):
        assert small_runner.sharing("EDGE", SPECS[0]) == (0.0, 1.0)


class TestModelAndCompare:
    def test_model_finite_on_smp(self, small_runner):
        est = small_runner.model("EDGE", SPECS[0], Calibration())
        assert math.isfinite(est.e_instr_seconds)

    def test_compare_grid_complete(self, small_runner):
        rows = small_runner.compare(["EDGE", "FFT"], SPECS, Calibration())
        assert len(rows) == 2
        assert {r.application for r in rows} == {"EDGE", "FFT"}
        assert all(r.simulated > 0 and r.modeled > 0 for r in rows)


class TestCalibrate:
    def test_calibration_picks_a_grid_point(self, small_runner):
        cal, err = small_runner.calibrate(
            ["EDGE"],
            SPECS,
            cache_factors=(1.0, 0.5),
            boosts=(1.0, 2.0),
            barrier_scales=(0.0, 1.0),
        )
        assert cal.cache_capacity_factor in (1.0, 0.5)
        assert cal.contention_boost in (1.0, 2.0)
        assert math.isfinite(err)

    def test_calibration_beats_or_matches_any_grid_point(self, small_runner):
        grid = dict(cache_factors=(1.0, 0.5), boosts=(1.0,), barrier_scales=(0.0, 1.0))
        cal, err = small_runner.calibrate(["EDGE"], SPECS, **grid)
        sim = small_runner.simulate("EDGE", SPECS[0]).e_instr_seconds
        for kappa in grid["cache_factors"]:
            for b in grid["barrier_scales"]:
                est = small_runner.model(
                    "EDGE", SPECS[0],
                    Calibration(cache_capacity_factor=kappa, barrier_scale=b),
                )
                assert err <= abs(est.e_instr_seconds - sim) / sim + 1e-12


class TestValidationFailures:
    def test_unverified_app_raises(self, monkeypatch, small_app_kwargs):
        runner = ExperimentRunner(app_kwargs=small_app_kwargs)
        run = runner.application_run("EDGE", 1)
        object.__setattr__(run, "verified", False)
        runner._runs.clear()
        import repro.experiments.runner as runner_mod

        class FakeApp:
            def run(self_inner):
                return run

        monkeypatch.setattr(runner_mod, "make_application", lambda *a, **k: FakeApp())
        with pytest.raises(RuntimeError, match="oracle"):
            runner.application_run("EDGE", 1)
