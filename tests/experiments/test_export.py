"""Tests for the CSV/JSON result exporters."""

import csv
import io
import json
import math

import pytest

from repro.core.validation import ComparisonRow
from repro.experiments.export import figure_to_csv, result_to_json, table2_to_csv, write_text
from repro.experiments.figures import FigureResult
from repro.experiments.runner import Calibration
from repro.experiments.table2 import Table2Result, Table2Row
from repro.workloads.params import PAPER_FFT, WorkloadParams


def _figure():
    rows = (
        ComparisonRow("FFT", "C1", 1.0e-8, 1.1e-8),
        ComparisonRow("LU", "C1", 3.0e-8, 2.5e-8),
    )
    return FigureResult(figure="Fig-X", rows=rows, calibration=Calibration(), paper_bound=0.05)


def _table2():
    measured = WorkloadParams("FFT", alpha=1.4, beta=0.2, gamma=0.21, problem_size="4K points")
    return Table2Result(rows=(Table2Row(measured=measured, paper=PAPER_FFT),))


class TestCsv:
    def test_figure_csv_round_trips(self):
        text = figure_to_csv(_figure())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["application"] == "FFT"
        assert float(rows[0]["modeled_seconds"]) == pytest.approx(1.0e-8)
        assert float(rows[1]["relative_difference"]) == pytest.approx(0.2)

    def test_table2_csv_round_trips(self):
        text = table2_to_csv(_table2())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 1
        assert float(rows[0]["alpha_paper"]) == pytest.approx(1.21)
        assert float(rows[0]["gamma_measured"]) == pytest.approx(0.21)


class TestJson:
    def test_figure_json_parses(self):
        data = json.loads(result_to_json(_figure()))
        assert data["figure"] == "Fig-X"
        assert len(data["rows"]) == 2
        assert data["calibration"]["mode"] == "throttled"

    def test_infinities_become_null(self):
        rows = (ComparisonRow("A", "C", math.inf, 1.0),)
        res = FigureResult(figure="f", rows=rows, calibration=Calibration(), paper_bound=0.1)
        data = json.loads(result_to_json(res))
        assert data["rows"][0]["modeled"] is None

    def test_enums_serialize_by_value(self):
        from repro.experiments.recommendations import run_recommendations

        data = json.loads(result_to_json(run_recommendations()))
        assert "LU" in data["assignments"]


class TestWrite:
    def test_write_creates_parents(self, tmp_path):
        p = write_text(tmp_path / "nested" / "out.csv", figure_to_csv(_figure()))
        assert p.exists()
        assert "FFT" in p.read_text()
