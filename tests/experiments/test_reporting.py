"""Tests for the report assembler (with stubbed experiment runners).

The individual experiments are covered by their own tests; here the
target is the glue -- section assembly, ordering, and the CSV export
wiring -- using fast fakes so the test doesn't re-run six minutes of
simulation.
"""

import pytest

import repro.experiments.reporting as reporting
from repro.core.validation import ComparisonRow
from repro.experiments.figures import FigureResult
from repro.experiments.runner import Calibration
from repro.experiments.table2 import Table2Result, Table2Row
from repro.workloads.params import PAPER_FFT, WorkloadParams


class _Stub:
    def __init__(self, text: str) -> None:
        self._text = text

    def describe(self) -> str:
        return self._text


def _fake_figure(name: str) -> FigureResult:
    rows = (ComparisonRow("FFT", "C1", 1.0e-8, 1.1e-8),)
    return FigureResult(figure=name, rows=rows, calibration=Calibration(), paper_bound=0.05)


def _fake_table2() -> Table2Result:
    measured = WorkloadParams("FFT", alpha=1.4, beta=0.2, gamma=0.21)
    return Table2Result(rows=(Table2Row(measured=measured, paper=PAPER_FFT),))


@pytest.fixture
def stubbed(monkeypatch):
    monkeypatch.setattr(reporting, "run_table2", lambda r: _fake_table2())
    monkeypatch.setattr(reporting, "run_figure2", lambda r: _fake_figure("F2"))
    monkeypatch.setattr(reporting, "run_figure3", lambda r: _fake_figure("F3"))
    monkeypatch.setattr(reporting, "run_figure4", lambda r: _fake_figure("F4"))
    monkeypatch.setattr(reporting, "run_case_studies", lambda: _Stub("CASESTUDIES"))
    monkeypatch.setattr(reporting, "run_recommendations", lambda: _Stub("PRINCIPLES"))
    monkeypatch.setattr(reporting, "run_sensitivity", lambda: [_Stub("SENSITIVITY")])
    monkeypatch.setattr(reporting, "run_coherence_traffic", lambda r: _Stub("COHERENCE"))
    monkeypatch.setattr(reporting, "run_beta_scaling", lambda: [_Stub("BETA")])
    monkeypatch.setattr(reporting, "run_ablations", lambda r: _Stub("ABLATIONS"))
    monkeypatch.setattr(reporting, "run_speed_comparison", lambda r: _Stub("SPEED"))


class TestGenerateReport:
    def test_all_sections_present_in_order(self, stubbed):
        text = reporting.generate_report(runner=object(), verbose=False)
        sections = [
            "## Table 2", "## Figure 2", "## Figure 3", "## Figure 4",
            "## Section 6 -- case studies", "## Section 6 -- principles",
            "## Central claim", "## Section 5.3.1", "## Section 5.2",
            "## Design-choice ablations", "## Section 5.3 -- model vs simulation",
        ]
        positions = [text.index(s) for s in sections]
        assert positions == sorted(positions)
        for marker in ("CASESTUDIES", "PRINCIPLES", "SENSITIVITY", "COHERENCE",
                       "BETA", "ABLATIONS", "SPEED"):
            assert marker in text

    def test_data_dir_writes_csvs(self, stubbed, tmp_path):
        reporting.generate_report(runner=object(), verbose=False, data_dir=tmp_path)
        for name in ("table2.csv", "figure2.csv", "figure3.csv", "figure4.csv"):
            assert (tmp_path / name).exists(), name
        assert "FFT" in (tmp_path / "figure2.csv").read_text()

    def test_no_data_dir_writes_nothing(self, stubbed, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        reporting.generate_report(runner=object(), verbose=False)
        assert not list(tmp_path.iterdir())
