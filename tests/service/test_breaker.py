"""The circuit breaker's state machine, transition by transition."""

from __future__ import annotations

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state(0.0) == CLOSED
        assert b.allow(0.0)

    def test_soft_failures_open_at_threshold(self):
        b = CircuitBreaker(failure_threshold=3, recovery=5.0)
        b.record_failure(0.0)
        b.record_failure(0.1)
        assert b.state(0.2) == CLOSED
        b.record_failure(0.2)
        assert b.state(0.3) == OPEN
        assert not b.allow(0.3)

    def test_success_resets_the_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(0.1)
        b.record_failure(0.2)
        assert b.state(0.3) == CLOSED  # 1 consecutive, not 2

    def test_hard_failure_opens_immediately(self):
        b = CircuitBreaker(failure_threshold=100)
        b.record_failure(0.0, hard=True)
        assert b.state(0.0) == OPEN

    def test_recovery_window_exposes_half_open(self):
        b = CircuitBreaker(failure_threshold=1, recovery=5.0)
        b.record_failure(10.0)
        assert b.state(14.9) == OPEN
        assert b.state(15.0) == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        b = CircuitBreaker(failure_threshold=1, recovery=5.0)
        b.record_failure(0.0)
        assert b.allow(5.0)  # the probe
        assert not b.allow(5.0)  # everyone else keeps getting shed
        assert not b.allow(5.1)

    def test_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, recovery=5.0)
        b.record_failure(0.0)
        assert b.allow(5.0)
        b.record_success(5.2)
        assert b.state(5.3) == CLOSED
        assert b.allow(5.3)

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        b = CircuitBreaker(failure_threshold=3, recovery=5.0)
        b.record_failure(0.0, hard=True)
        assert b.allow(5.0)
        b.record_failure(5.2)  # one soft failure suffices mid-probe
        assert b.state(5.3) == OPEN
        assert b.state(9.9) == OPEN  # 5.2 + 5.0 > 9.9
        assert b.state(10.5) == HALF_OPEN

    def test_on_transition_fires_once_per_change(self):
        seen: list[int] = []
        b = CircuitBreaker(failure_threshold=1, recovery=1.0, on_transition=seen.append)
        b.record_failure(0.0)
        b.record_failure(0.1)  # already open: no duplicate callback
        assert b.allow(1.5)  # half-open probe (0.1 restarted the clock)
        b.record_success(1.6)
        assert seen == [1, 2, 0]  # OPEN, HALF_OPEN, CLOSED

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="recovery"):
            CircuitBreaker(recovery=0.0)

    def test_state_name(self):
        b = CircuitBreaker(failure_threshold=1, recovery=2.0)
        assert b.state_name(0.0) == "closed"
        b.record_failure(0.0)
        assert b.state_name(0.1) == "open"
        assert b.state_name(2.0) == "half_open"
