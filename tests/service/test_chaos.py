"""Service fault plans: the --inject grammar and seeded generation."""

from __future__ import annotations

import pytest

from repro.service.chaos import (
    PoolStall,
    ServiceFaultPlan,
    SlowDependency,
    WorkerKill,
    parse_service_inject,
    service_plan_from_specs,
)


class TestParsing:
    def test_bare_kind_uses_defaults(self):
        assert parse_service_inject("workerkill") == WorkerKill()
        assert parse_service_inject("poolstall") == PoolStall()
        assert parse_service_inject("slowdep") == SlowDependency()

    def test_fields_parse(self):
        assert parse_service_inject("workerkill:after=3") == WorkerKill(after=3)
        assert parse_service_inject("poolstall:after=2,duration=1.5") == PoolStall(
            after=2, duration=1.5
        )
        assert parse_service_inject(
            "slowdep:at=1,duration=2,extra=0.1"
        ) == SlowDependency(at=1.0, duration=2.0, extra=0.1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown service fault kind"):
            parse_service_inject("diskfire")

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="bad field"):
            parse_service_inject("workerkill:when=3")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_service_inject("workerkill:after=soon")

    def test_field_validation_applies(self):
        with pytest.raises(ValueError, match="duration"):
            parse_service_inject("poolstall:duration=-1")

    def test_plan_from_specs(self):
        plan = service_plan_from_specs(["workerkill:after=2", "slowdep"])
        assert len(plan.events) == 2
        assert bool(plan)
        assert not ServiceFaultPlan()


class TestPlanQueries:
    def test_kill_due_fires_on_the_exact_dispatch(self):
        plan = ServiceFaultPlan((WorkerKill(after=3),))
        assert [plan.kill_due(n) for n in (1, 2, 3, 4)] == [
            False, False, True, False,
        ]

    def test_stall_due_sums_coincident_stalls(self):
        plan = ServiceFaultPlan((PoolStall(after=2, duration=1.0),
                                 PoolStall(after=2, duration=0.5)))
        assert plan.stall_due(2) == 1.5
        assert plan.stall_due(3) == 0.0

    def test_extra_latency_window_is_half_open(self):
        plan = ServiceFaultPlan((SlowDependency(at=1.0, duration=2.0, extra=0.25),))
        assert plan.extra_latency(0.9) == 0.0
        assert plan.extra_latency(1.0) == 0.25
        assert plan.extra_latency(2.9) == 0.25
        assert plan.extra_latency(3.0) == 0.0

    def test_describe_names_every_event(self):
        text = ServiceFaultPlan(
            (WorkerKill(2), PoolStall(1, 3.0), SlowDependency(0.0, 1.0, 0.1))
        ).describe()
        assert "workerkill" in text and "poolstall" in text and "slowdep" in text


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = ServiceFaultPlan.generate(7, 30.0, kills=2, stalls=1, slowdeps=2)
        b = ServiceFaultPlan.generate(7, 30.0, kills=2, stalls=1, slowdeps=2)
        assert a == b

    def test_different_seeds_differ(self):
        a = ServiceFaultPlan.generate(0, 30.0, kills=1, stalls=1, slowdeps=1)
        b = ServiceFaultPlan.generate(1, 30.0, kills=1, stalls=1, slowdeps=1)
        assert a != b

    def test_events_land_inside_the_span(self):
        plan = ServiceFaultPlan.generate(3, 20.0, kills=1, stalls=2, slowdeps=3)
        for ev in plan.events:
            if isinstance(ev, SlowDependency):
                assert 0.0 <= ev.at <= 10.0  # at most half the span
                assert ev.at + ev.duration <= 20.0
