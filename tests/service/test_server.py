"""The real asyncio server, end to end over localhost sockets.

Each test boots a :class:`QueryService` on an ephemeral port, drives it
with the same minimal HTTP client ``repro query`` uses, and shuts it
down. Simulation tests exercise the real worker pool (spawn context),
including an actual SIGKILLed worker tripping the breaker into
degraded mode.
"""

from __future__ import annotations

import asyncio
import functools

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.api import QueryAPI
from repro.service.chaos import ServiceFaultPlan, WorkerKill
from repro.service.config import ServiceConfig
from repro.service.loadgen import http_request
from repro.service.server import QueryService

PLATFORM = {
    "machines": 2,
    "procs_per_machine": 2,
    "cache_kb": 256,
    "memory_mb": 64,
    "network": "ethernet100",
}
SIM_BODY = {
    "app": "FFT",
    "app_args": {"points": 256},
    "machines": 1,
    "procs_per_machine": 2,
    "cache_kb": 64,
    "memory_mb": 64,
}


def drive(client, config=None, chaos=None):
    """Boot a service, run ``client(request)`` in a worker thread, stop.

    ``request(method, path, body=None)`` is a blocking single-request
    HTTP client bound to the ephemeral port.
    """

    async def _main():
        service = QueryService(
            QueryAPI(cache_dir=None),
            config or ServiceConfig(jobs=1),
            chaos=chaos,
            metrics=MetricsRegistry(),
        )
        await service.start(port=0)
        loop = asyncio.get_running_loop()

        def request(method, path, body=None, timeout=60.0):
            return http_request(
                "127.0.0.1", service.port, method, path, body, timeout=timeout
            )

        try:
            return await loop.run_in_executor(
                None, functools.partial(client, request, service)
            )
        finally:
            await service.stop()

    return asyncio.run(_main())


class TestRoutes:
    def test_predict_roundtrip_matches_the_pure_api(self):
        def client(request, service):
            return request("POST", "/v1/predict", {"workload": "FFT", **PLATFORM})

        status, obj = drive(client)
        assert status == 200
        from repro.service.api import WORKLOADS, platform_from_obj

        expected = QueryAPI(cache_dir=None).predict(
            WORKLOADS["FFT"], platform_from_obj(PLATFORM)
        )
        assert obj["e_instr_seconds"] == expected.e_instr_seconds
        assert obj["degraded"] is False

    def test_design_roundtrip(self):
        def client(request, service):
            return request("POST", "/v1/design", {"workload": "LU", "budget": 50_000})

        status, obj = drive(client)
        assert status == 200
        assert obj["best"]["price"] <= 50_000
        assert set(obj["stats"]) == {
            "candidates", "evaluated", "pruned", "memo_hits", "from_cache",
        }

    def test_bad_body_is_a_400_with_an_error_message(self):
        def client(request, service):
            return [
                request("POST", "/v1/predict", {"workload": "nope"}),
                request("POST", "/v1/design", {"workload": "FFT", "budget": -1}),
                request("POST", "/v1/simulate", {"app": 42}),
            ]

        for status, obj in drive(client):
            assert status == 400
            assert "error" in obj

    def test_unknown_route_and_method(self):
        def client(request, service):
            return [
                request("GET", "/v1/elsewhere"),
                request("PUT", "/v1/predict", {}),
            ]

        (s404, _), (s405, _) = drive(client)
        assert (s404, s405) == (404, 405)

    def test_healthz_reports_breaker_state(self):
        def client(request, service):
            return request("GET", "/healthz")

        status, obj = drive(client)
        assert status == 200
        assert obj["ok"] is True
        assert obj["breaker"] == "closed"

    def test_metrics_endpoint_speaks_prometheus_text(self):
        def client(request, service):
            request("POST", "/v1/predict", {"workload": "FFT", **PLATFORM})
            return request("GET", "/metrics")

        status, text = drive(client)
        assert status == 200
        assert isinstance(text, str)
        assert 'service_requests_total{endpoint="predict",outcome="ok"} 1' in text
        assert "service_breaker_state 0" in text
        assert "service_queue_depth" in text
        assert "service_latency_seconds" in text


class TestAdmission:
    def test_rate_limit_answers_429_with_reason(self):
        config = ServiceConfig(jobs=1).with_policy("predict", rate=1.0, burst=2.0)

        def client(request, service):
            return [
                request("POST", "/v1/predict", {"workload": "FFT", **PLATFORM})
                for _ in range(6)
            ]

        results = drive(client, config=config)
        statuses = [s for s, _ in results]
        assert statuses.count(200) >= 2
        shed = [obj for s, obj in results if s == 429]
        assert shed, "burst-exhausted requests must shed"
        assert all(o == {"shed": True, "endpoint": "predict", "reason": "rate_limited"} for o in shed)

    def test_coalesced_answers_match_direct_calls(self):
        # A wide window guarantees concurrent requests ride one wave.
        config = ServiceConfig(jobs=1).with_policy(
            "predict", coalesce_window=0.25, max_batch=64
        )
        bodies = [
            {"workload": name, **PLATFORM} for name in ("FFT", "LU", "Radix", "EDGE")
        ]

        def client(request, service):
            import concurrent.futures

            with concurrent.futures.ThreadPoolExecutor(len(bodies)) as pool:
                futs = [
                    pool.submit(request, "POST", "/v1/predict", body)
                    for body in bodies
                ]
                results = [f.result() for f in futs]
            batch_metric = service.core.metrics.get("service_batch_size")
            return results, batch_metric.labels(endpoint="predict").sum

        results, batched = drive(client, config=config)
        api = QueryAPI(cache_dir=None)
        from repro.service.api import WORKLOADS, platform_from_obj

        for body, (status, obj) in zip(bodies, results):
            assert status == 200
            direct = api.predict(
                WORKLOADS[body["workload"]], platform_from_obj(body)
            )
            assert obj["e_instr_seconds"] == direct.e_instr_seconds
        assert batched == len(bodies), "requests must actually coalesce"


class TestSimulatePath:
    def test_simulate_roundtrip_through_the_worker_pool(self):
        def client(request, service):
            return request("POST", "/v1/simulate", SIM_BODY)

        status, obj = drive(client, config=ServiceConfig(jobs=1))
        assert status == 200
        expected = QueryAPI(cache_dir=None).simulate_submit(
            "FFT",
            __import__("repro.service.api", fromlist=["platform_from_obj"]).platform_from_obj(SIM_BODY),
            seed=0,
            app_args={"points": 256},
        )
        assert obj["total_cycles"] == expected.total_cycles
        assert obj["degraded"] is False

    def test_killed_worker_trips_breaker_and_degrades_predicts(self):
        chaos = ServiceFaultPlan((WorkerKill(after=1),))

        def client(request, service):
            sim = request("POST", "/v1/simulate", SIM_BODY)
            predict = request("POST", "/v1/predict", {"workload": "FFT", **PLATFORM})
            health = request("GET", "/healthz")
            return sim, predict, health

        (sim_status, sim_obj), (p_status, p_obj), (_, health) = drive(
            client, config=ServiceConfig(jobs=1), chaos=chaos
        )
        # The dead pool surfaces as an explicit labeled shed...
        assert sim_status == 503
        assert sim_obj == {"shed": True, "endpoint": "simulate", "reason": "breaker_open"}
        # ...opens the breaker...
        assert health["breaker"] == "open"
        # ...and predict falls back to the labeled zero-contention bound.
        assert p_status == 200
        assert p_obj["degraded"] is True
        assert "amat_cycles" in p_obj

    def test_client_deadline_is_enforced_with_a_504(self):
        def client(request, service):
            body = dict(SIM_BODY, deadline_s=0.001)
            return request("POST", "/v1/simulate", body)

        status, obj = drive(client, config=ServiceConfig(jobs=1))
        assert status == 504
        assert obj["reason"] in ("deadline", "timeout")
        assert obj["shed"] is True
