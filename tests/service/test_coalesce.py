"""Coalescing: the wave policy, and the bit-identity property.

The acceptance criterion for the whole coalescing feature is that it is
*invisible* in the answers: any partition of a request set into waves
returns, request for request, the identical floats a batch-of-one would.
These tests exercise that property over randomized request sets and
randomized partitions, for predict and for design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.api import (
    WORKLOADS,
    PredictRequest,
    QueryAPI,
    platform_from_obj,
)
from repro.service.coalesce import PendingRequest, expired, next_wave, percentile


def _pending(index, arrival, deadline=1e9, endpoint="predict"):
    return PendingRequest(
        index=index, endpoint=endpoint, arrival=arrival, deadline=deadline
    )


class TestNextWave:
    def test_window_opens_at_the_head_arrival(self):
        queue = [_pending(0, 1.0), _pending(1, 1.004), _pending(2, 1.2)]
        dispatch, riders = next_wave(queue, free_at=0.0, window=0.01, max_batch=64)
        assert dispatch == pytest.approx(1.01)
        assert [p.index for p in riders] == [0, 1]  # 1.2 missed the wave

    def test_busy_executor_delays_and_widens_the_wave(self):
        queue = [_pending(0, 1.0), _pending(1, 1.004), _pending(2, 1.2)]
        dispatch, riders = next_wave(queue, free_at=2.0, window=0.01, max_batch=64)
        assert dispatch == 2.0
        assert [p.index for p in riders] == [0, 1, 2]

    def test_max_batch_caps_the_wave(self):
        queue = [_pending(i, 0.0) for i in range(10)]
        _, riders = next_wave(queue, free_at=0.0, window=0.0, max_batch=4)
        assert [p.index for p in riders] == [0, 1, 2, 3]

    def test_zero_window_dispatches_immediately(self):
        queue = [_pending(0, 5.0)]
        dispatch, riders = next_wave(queue, free_at=0.0, window=0.0, max_batch=1)
        assert dispatch == 5.0 and len(riders) == 1

    def test_empty_queue_is_an_error(self):
        with pytest.raises(ValueError, match="empty"):
            next_wave([], 0.0, 0.01, 64)

    def test_expired(self):
        p = _pending(0, 0.0, deadline=2.0)
        assert not expired(p, 2.0)
        assert expired(p, 2.0001)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 99.0) == 99
        assert percentile(values, 50.0) == 50
        assert percentile(values, 100.0) == 100

    def test_small_samples(self):
        assert percentile([3.0], 99.0) == 3.0
        assert percentile([1.0, 9.0], 99.0) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


# ---------------------------------------------------------------------------
# the bit-identity property


_SHAPES = (
    {"machines": 1, "procs_per_machine": 4},
    {"machines": 2, "procs_per_machine": 2},
    {"machines": 4, "procs_per_machine": 1},
    {"machines": 8, "procs_per_machine": 1, "cache_kb": 512},
    {"machines": 4, "procs_per_machine": 2, "network": "atm"},
    {"machines": 16, "procs_per_machine": 1, "cache_kb": 64, "memory_mb": 32},
)
_NAMES = tuple(WORKLOADS)
_MODES = ("throttled", "open", "mva")


def _random_requests(rng, count):
    return [
        PredictRequest(
            WORKLOADS[_NAMES[int(rng.integers(len(_NAMES)))]],
            platform_from_obj(_SHAPES[int(rng.integers(len(_SHAPES)))]),
            _MODES[int(rng.integers(len(_MODES)))],
        )
        for _ in range(count)
    ]


class TestPredictBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_any_coalescing_partition_is_invisible(self, seed):
        """Singles, one big wave, and a random partition all agree
        bit-for-bit, across mixed workloads, shapes and modes."""
        rng = np.random.default_rng(seed)
        requests = _random_requests(rng, 24)

        api = QueryAPI(cache_dir=None)
        singles = [api.predict(r.workload, r.spec, r.mode) for r in requests]
        one_wave = QueryAPI(cache_dir=None).predict_batch(requests)

        partitioned_api = QueryAPI(cache_dir=None)
        partitioned = []
        i = 0
        while i < len(requests):
            width = int(rng.integers(1, 7))
            partitioned.extend(
                partitioned_api.predict_batch(requests[i : i + width])
            )
            i += width

        for a, b, c in zip(singles, one_wave, partitioned):
            # Exact float equality — coalescing must be invisible.
            assert a.e_instr_seconds == b.e_instr_seconds == c.e_instr_seconds
            assert a.feasible == b.feasible == c.feasible

    def test_batch_answers_keep_request_order(self):
        requests = [
            PredictRequest(WORKLOADS["FFT"], platform_from_obj(_SHAPES[0])),
            PredictRequest(WORKLOADS["LU"], platform_from_obj(_SHAPES[1])),
            PredictRequest(WORKLOADS["FFT"], platform_from_obj(_SHAPES[2])),
        ]
        answers = QueryAPI(cache_dir=None).predict_batch(requests)
        assert [a.workload for a in answers] == ["FFT", "LU", "FFT"]


class TestDesignBitIdentity:
    def test_coalesced_design_waves_match_singles(self):
        queries = [
            (WORKLOADS["FFT"], 100_000.0, None),
            (WORKLOADS["LU"], 50_000.0, None),
            (WORKLOADS["FFT"], 100_000.0, None),  # duplicate: memo replay
        ]
        singles_api = QueryAPI(cache_dir=None)
        singles = [singles_api.design(w, b, m) for w, b, m in queries]
        batched = QueryAPI(cache_dir=None).design_batch(queries)
        for a, b in zip(singles, batched):
            assert a.best == b.best  # exact floats inside
            assert a.budget == b.budget
