"""The pure query API: parsing, answer shapes, and the two exactness
contracts the service advertises.

* full-fidelity ``predict`` goes through the same batched evaluator
  with the same knobs as ``repro predict`` (remote-rate adjustment on
  clusters, sharing fractions from the workload, saturation -> inf);
* ``predict_degraded`` is *exactly* ``zero_contention_amat`` — the
  admissible bound, not an approximation of it.
"""

from __future__ import annotations

import math

import pytest

from repro.core.amat import zero_contention_amat
from repro.core.execution import e_instr_seconds
from repro.service.api import (
    KB,
    NETWORKS,
    WORKLOADS,
    PredictRequest,
    QueryAPI,
    QueryError,
    platform_from_obj,
    workload_from_obj,
)


@pytest.fixture(scope="module")
def api():
    return QueryAPI(cache_dir=None)


SHAPES = (
    {"machines": 1, "procs_per_machine": 4},
    {"machines": 4, "procs_per_machine": 1},
    {"machines": 4, "procs_per_machine": 2, "network": "atm", "cache_kb": 512},
)


class TestParsing:
    def test_named_workload(self):
        assert workload_from_obj({"workload": "FFT"}) is WORKLOADS["FFT"]

    def test_custom_workload(self):
        w = workload_from_obj({"alpha": 1.8, "beta": 700, "gamma": 0.4})
        assert (w.alpha, w.beta, w.gamma) == (1.8, 700.0, 0.4)

    def test_unknown_workload_is_a_query_error(self):
        with pytest.raises(QueryError, match="unknown workload"):
            workload_from_obj({"workload": "nope"})

    def test_missing_params_is_a_query_error(self):
        with pytest.raises(QueryError, match="alpha"):
            workload_from_obj({"alpha": 1.5})

    def test_platform_defaults_and_units(self):
        spec = platform_from_obj({})
        assert (spec.N, spec.n) == (4, 1)
        assert spec.cache_bytes == 256 * KB
        assert spec.network is NETWORKS["ethernet100"]

    def test_single_machine_drops_the_network(self):
        spec = platform_from_obj(
            {"machines": 1, "procs_per_machine": 2, "network": "atm"}
        )
        assert spec.network is None

    def test_bad_platform_values(self):
        with pytest.raises(QueryError, match="machines"):
            platform_from_obj({"machines": 0})
        with pytest.raises(QueryError, match="machines"):
            platform_from_obj({"machines": 2.5})
        with pytest.raises(QueryError, match="network"):
            platform_from_obj({"network": "token-ring"})

    def test_bad_mode_is_a_query_error(self):
        with pytest.raises(QueryError, match="mode"):
            PredictRequest(WORKLOADS["FFT"], platform_from_obj({}), mode="magic")


class TestPredict:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("name", ["FFT", "TPC-C"])
    def test_matches_the_model_with_cli_knobs(self, api, name, shape):
        from repro.core.batch import BatchCase, e_instr_seconds_batch

        workload = WORKLOADS[name]
        spec = platform_from_obj(shape)
        answer = api.predict(workload, spec)
        expected = e_instr_seconds_batch(
            [
                BatchCase(
                    spec,
                    sharing_fraction=workload.sharing_at(spec.N),
                    sharing_fresh_fraction=workload.sharing_fresh_fraction,
                    remote_rate_adjustment=0.124 if spec.N > 1 else 0.0,
                )
            ],
            workload.locality,
            workload.gamma,
            mode="throttled",
            on_saturation="inf",
        )[0]
        assert answer.e_instr_seconds == float(expected)
        assert answer.feasible == math.isfinite(float(expected))
        assert not answer.degraded

    def test_infeasible_serializes_as_null_not_inf(self, api):
        # A tiny cache on a slow network saturates the throttled model.
        workload = WORKLOADS["Radix"]
        spec = platform_from_obj(
            {"machines": 16, "cache_kb": 1, "memory_mb": 1, "network": "ethernet10"}
        )
        answer = api.predict(workload, spec)
        if not answer.feasible:
            assert answer.to_obj()["e_instr_seconds"] is None

    @pytest.mark.parametrize("shape", SHAPES)
    def test_degraded_is_exactly_zero_contention_amat(self, api, shape):
        workload = WORKLOADS["LU"]
        spec = platform_from_obj(shape)
        answer = api.predict_degraded(workload, spec)
        bound = zero_contention_amat(
            spec.hierarchy(),
            workload.locality,
            workload.gamma,
            remote_rate_adjustment=0.124 if spec.N > 1 else 0.0,
            sharing_fraction=workload.sharing_at(spec.N),
            sharing_fresh_fraction=workload.sharing_fresh_fraction,
        )
        assert answer.amat_cycles == bound
        assert answer.e_instr_seconds == e_instr_seconds(
            spec.total_processors, workload.gamma, bound, spec.cpu_hz
        )
        assert answer.degraded and answer.feasible
        assert answer.to_obj()["degraded"] is True

    def test_degraded_never_exceeds_the_full_answer(self, api):
        # The zero-contention AMAT is an admissible lower bound.
        for name in ("FFT", "LU", "EDGE"):
            workload = WORKLOADS[name]
            spec = platform_from_obj({"machines": 4, "procs_per_machine": 2})
            full = api.predict(workload, spec)
            floor = api.predict_degraded(workload, spec)
            assert floor.e_instr_seconds <= full.e_instr_seconds


class TestDesign:
    def test_matches_design_search_directly(self, api):
        from repro.cost.search import DesignQuery, DesignSearch

        workload = WORKLOADS["FFT"]
        answer = api.design(workload, 100_000.0)
        (outcome,) = DesignSearch(jobs=1, lane="tensor").run(
            [DesignQuery(workload, 100_000.0)]
        )
        assert answer.best == QueryAPI.config_payload(outcome.result.best)
        assert answer.best["price"] <= 100_000.0
        assert answer.stats["candidates"] == outcome.stats.candidates

    def test_bad_budget_is_a_query_error(self, api):
        with pytest.raises(QueryError, match="budget"):
            api.design(WORKLOADS["FFT"], -5.0)


class TestSimulate:
    def test_unknown_app_rejected_before_any_worker(self, api):
        with pytest.raises(QueryError, match="unknown application"):
            api.simulate_args(
                "NotAnApp",
                platform_from_obj({"machines": 1, "procs_per_machine": 2}),
            )

    def test_submit_matches_the_runner(self, api):
        from repro.experiments.runner import ExperimentRunner

        spec = platform_from_obj(
            {"machines": 1, "procs_per_machine": 2, "cache_kb": 64}
        )
        answer = api.simulate_submit(
            "FFT", spec, seed=3, app_args={"points": 256}
        )
        runner = ExperimentRunner(
            seed=3, jobs=1, lane="serial", app_kwargs={"FFT": {"points": 256}}
        )
        expected = runner.simulate("FFT", spec)
        assert answer.total_cycles == float(expected.total_cycles)
        assert answer.e_instr_seconds == float(expected.e_instr_seconds)
        assert answer.seed == 3
        obj = answer.to_obj()
        assert isinstance(obj["total_cycles"], float)  # JSON-safe, not np
        assert isinstance(obj["total_references"], int)
