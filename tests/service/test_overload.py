"""The overload acceptance property, replayed deterministically.

A seeded Poisson stream drives the real :class:`ServiceCore` (real
admission, real breaker, real coalescing, real ``QueryAPI`` answers) on
a virtual clock, at 1x and at 5x estimated capacity with a worker-kill
fault. The floors asserted here are the ISSUE's acceptance criteria:

* no admitted request outlives its deadline — timeouts surface as
  labeled 504-style sheds *at* the deadline, never as hangs;
* p99 latency of admitted requests stays under the configured deadline
  even at 5x;
* goodput (delivered ok+degraded answers) at 5x holds at >= 70% of the
  1x throughput — overload sheds load, it does not collapse service;
* every shed and every degraded answer is explicitly labeled; nothing
  fails silently;
* the whole trajectory is a pure function of the seed: two replays
  agree record for record, bit for bit.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.api import PredictAnswer, QueryAPI
from repro.service.chaos import ServiceFaultPlan, WorkerKill
from repro.service.config import ServiceConfig
from repro.service.loadgen import generate_stream, replay
from repro.service.server import ServiceCore

DURATION = 20.0
RATE_1X = 15.0
SEED = 2026

#: One shared pure API: its design memo replays exact floats, so
#: sharing it across replays changes wall-clock cost only, never answers.
_API = QueryAPI(cache_dir=None)


def _replay(rate: float, *, kill: bool):
    chaos = ServiceFaultPlan((WorkerKill(after=2),)) if kill else None
    core = ServiceCore(
        _API, ServiceConfig(), chaos=chaos, metrics=MetricsRegistry()
    )
    stream = generate_stream(SEED, duration=DURATION, rate=rate)
    return core, replay(core, stream, duration=DURATION)


@pytest.fixture(scope="module")
def baseline():
    return _replay(RATE_1X, kill=False)


@pytest.fixture(scope="module")
def overloaded():
    return _replay(5 * RATE_1X, kill=True)


def _fingerprint(report):
    out = []
    for r in report.records:
        answer = (
            r.answer.e_instr_seconds
            if isinstance(r.answer, PredictAnswer)
            else None
        )
        out.append((r.endpoint, r.outcome, r.reason, r.latency, answer))
    return out


class TestBaseline:
    def test_1x_delivers_everything_full_fidelity(self, baseline):
        _, report = baseline
        assert report.offered > 100
        assert report.delivered == report.offered
        assert report.degraded == 0
        assert report.sheds() == {}


class TestOverload:
    def test_no_request_outlives_its_deadline(self, overloaded):
        core, report = overloaded
        for r in report.records:
            deadline = core.config.policy(r.endpoint).deadline
            assert r.latency <= deadline + 1e-9, (r.endpoint, r.outcome, r.latency)

    def test_p99_of_admitted_stays_bounded(self, overloaded):
        core, report = overloaded
        bound = max(core.config.policy(ep).deadline for ep in ("predict", "design", "simulate"))
        assert report.p99() <= bound
        # The latency-sensitive endpoint individually too:
        assert report.p99("predict") <= core.config.predict.deadline

    def test_goodput_floor_holds_at_5x(self, baseline, overloaded):
        _, base = baseline
        _, over = overloaded
        assert over.goodput >= 0.7 * base.goodput

    def test_overload_is_shed_explicitly_not_silently(self, overloaded):
        _, report = overloaded
        sheds = report.sheds()
        assert sum(sheds.values()) > 0  # 5x load genuinely shed something
        assert set(sheds) <= {
            "rate_limited", "queue_full", "breaker_open", "deadline", "timeout",
        }
        # Ledger closes: every offered request is accounted for exactly once.
        outcomes = {}
        for r in report.records:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        assert sum(outcomes.values()) == report.offered
        assert set(outcomes) <= {"ok", "degraded", "shed", "error"}
        assert outcomes.get("error", 0) == 0  # synthetic streams are well-formed

    def test_worker_kill_produces_labeled_degraded_answers(self, overloaded):
        _, report = overloaded
        degraded = [r for r in report.records if r.outcome == "degraded"]
        assert degraded, "the worker kill must force degraded predicts"
        for r in degraded:
            assert r.endpoint == "predict"
            assert isinstance(r.answer, PredictAnswer)
            assert r.answer.degraded is True
            assert r.answer.amat_cycles is not None  # auditable bound
        assert any(r.reason == "breaker_open" for r in report.records), (
            "simulate work must shed while the breaker is open"
        )

    def test_breaker_metrics_follow_the_trajectory(self, overloaded):
        core, report = overloaded
        shed = core.metrics.get("service_shed_total")
        assert shed.labels(reason="breaker_open").value == report.sheds()["breaker_open"]
        requests = core.metrics.get("service_requests_total")
        delivered_predicts = sum(
            1
            for r in report.records
            if r.endpoint == "predict" and r.outcome in ("ok", "degraded")
        )
        assert (
            requests.labels(endpoint="predict", outcome="ok").value
            + requests.labels(endpoint="predict", outcome="degraded").value
            == delivered_predicts
        )


class TestDeterminism:
    def test_two_replays_agree_record_for_record(self, overloaded):
        _, first = overloaded
        _, second = _replay(5 * RATE_1X, kill=True)
        assert _fingerprint(first) == _fingerprint(second)

    def test_streams_are_pure_functions_of_the_seed(self):
        a = generate_stream(5, duration=10.0, rate=20.0)
        b = generate_stream(5, duration=10.0, rate=20.0)
        c = generate_stream(6, duration=10.0, rate=20.0)
        assert a == b
        assert a != c

    def test_stream_respects_rate_and_duration(self):
        stream = generate_stream(1, duration=10.0, rate=50.0)
        assert all(0.0 < q.t < 10.0 for q in stream)
        assert 0.7 * 500 <= len(stream) <= 1.3 * 500
        endpoints = {q.endpoint for q in stream}
        assert endpoints == {"predict", "design", "simulate"}
