"""Token buckets and the per-endpoint admission controller.

Everything is clock-explicit, so these tests drive time by hand and the
assertions are exact — no sleeps, no tolerance windows.
"""

from __future__ import annotations

import pytest

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.config import ServiceConfig


class TestTokenBucket:
    def test_burst_drains_then_refuses(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refill_is_proportional_to_elapsed_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.allow(0.0) and bucket.allow(0.0)
        assert not bucket.allow(0.0)
        # 0.5 s at 2 tokens/s refills exactly one token.
        assert bucket.allow(0.5)
        assert not bucket.allow(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        bucket.allow(0.0)
        # An hour idle still holds only `burst` tokens.
        assert [bucket.allow(3600.0) for _ in range(3)] == [True, True, False]

    def test_non_monotonic_clock_never_mints_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.allow(10.0)
        assert not bucket.allow(5.0)  # clock went backwards: no refill

    def test_sustained_rate_is_bounded(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        admitted = sum(bucket.allow(i * 0.02) for i in range(500))  # 50 rps offered
        # 10 s at 10 rps plus the burst, nothing more.
        assert admitted <= 10 * 10 + 5
        assert admitted >= 10 * 10 - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)

    def test_determinism(self):
        a, b = TokenBucket(5.0, 3.0), TokenBucket(5.0, 3.0)
        times = [0.0, 0.1, 0.1, 0.3, 0.35, 1.0, 1.0, 1.0, 2.5]
        assert [a.allow(t) for t in times] == [b.allow(t) for t in times]


class TestAdmissionController:
    def _config(self, **sim):
        cfg = ServiceConfig()
        return cfg.with_policy("simulate", **sim) if sim else cfg

    def test_bucket_refusal_reports_rate_limited(self):
        ctl = AdmissionController(self._config(rate=1.0, burst=1.0))
        assert ctl.try_admit("simulate", 0.0) is None
        assert ctl.try_admit("simulate", 0.0) == "rate_limited"

    def test_watermark_reports_queue_full(self):
        ctl = AdmissionController(self._config(rate=1000.0, burst=1000.0, queue_depth=2))
        assert ctl.try_admit("simulate", 0.0) is None
        assert ctl.try_admit("simulate", 0.0) is None
        assert ctl.try_admit("simulate", 0.0) == "queue_full"
        ctl.release("simulate")
        assert ctl.try_admit("simulate", 0.0) is None

    def test_endpoints_are_independent(self):
        ctl = AdmissionController(self._config(rate=1.0, burst=1.0))
        assert ctl.try_admit("simulate", 0.0) is None
        assert ctl.try_admit("simulate", 0.0) == "rate_limited"
        assert ctl.try_admit("predict", 0.0) is None  # unaffected

    def test_depth_tracks_admit_release_pairs(self):
        ctl = AdmissionController(ServiceConfig())
        assert ctl.depth("predict") == 0
        ctl.try_admit("predict", 0.0)
        ctl.try_admit("predict", 0.0)
        assert ctl.depth("predict") == 2
        ctl.release("predict")
        assert ctl.depth("predict") == 1

    def test_unbalanced_release_is_a_bug_not_a_shrug(self):
        ctl = AdmissionController(ServiceConfig())
        with pytest.raises(RuntimeError, match="release without admit"):
            ctl.release("design")
