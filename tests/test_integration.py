"""End-to-end integration tests: the paper's full methodology in miniature.

These tests exercise the complete pipeline -- application execution,
trace characterization, analytical model, simulator -- and assert the
*qualitative* reproduction targets: model and simulator must agree on
which platform wins, network quality must matter most for the programs
the paper says it matters for, and the model must track the simulator
within a loose factor even uncalibrated.
"""

import math

import pytest

from repro.core.execution import evaluate
from repro.core.platform import PlatformSpec
from repro.experiments.runner import Calibration
from repro.sim.engine import SimulationEngine
from repro.sim.latencies import NetworkKind
from repro.trace.analysis import characterize_run

KB = 1024


@pytest.fixture(scope="module")
def specs():
    return {
        "smp": PlatformSpec(name="i-smp", n=4, N=1, cache_bytes=2 * KB, memory_bytes=512 * KB),
        "cow-eth": PlatformSpec(
            name="i-cow-eth", n=1, N=4, cache_bytes=2 * KB, memory_bytes=512 * KB,
            network=NetworkKind.ETHERNET_10,
        ),
        "cow-atm": PlatformSpec(
            name="i-cow-atm", n=1, N=4, cache_bytes=2 * KB, memory_bytes=512 * KB,
            network=NetworkKind.ATM_155,
        ),
    }


class TestSimulatedPlatformOrdering:
    def test_smp_beats_ethernet_cow_for_radix(self, radix_run_4, specs):
        """Section 6: Radix wants the short hierarchy of an SMP."""
        smp = SimulationEngine(specs["smp"], radix_run_4).execute()
        cow = SimulationEngine(specs["cow-eth"], radix_run_4).execute()
        assert smp.e_instr_seconds < cow.e_instr_seconds / 5

    def test_network_penalty_hits_sharing_heavy_apps_hardest(self, specs):
        """Moving from an SMP to an ATM cluster must cost all-to-all FFT
        far more than nearest-neighbour EDGE (the paper's Section 6
        contrast).  Default problem sizes: at the tiny test sizes EDGE's
        halo-to-interior ratio is inflated and the contrast vanishes."""
        from repro.apps.registry import make_application

        def penalty(run):
            smp = SimulationEngine(specs["smp"], run).execute().e_instr_seconds
            atm = SimulationEngine(specs["cow-atm"], run).execute().e_instr_seconds
            return atm / smp

        fft = penalty(make_application("FFT", num_procs=4).run())
        edge = penalty(make_application("EDGE", num_procs=4).run())
        assert fft > 3 * edge
        assert edge < 3.0  # EDGE barely suffers on a switched cluster

    def test_every_simulated_reference_is_accounted(self, lu_run_4, specs):
        res = SimulationEngine(specs["smp"], lu_run_4).execute()
        assert res.stats.references == lu_run_4.total_references
        served = (
            res.stats.cache_hits
            + res.stats.l2_hits
            + res.stats.peer_cache
            + res.stats.local_memory
            + res.stats.remote_clean
            + res.stats.remote_dirty
        )
        assert served == res.stats.references
        # page faults are a sub-stage of memory-served accesses
        assert res.stats.disk <= res.stats.local_memory + res.stats.remote_clean


class TestModelTracksSimulator:
    @pytest.mark.parametrize("platform", ["smp", "cow-atm"])
    def test_uncalibrated_model_within_a_small_factor(
        self, all_runs_4, specs, platform
    ):
        spec = specs[platform]
        for name, run in all_runs_4.items():
            ch = characterize_run(run)
            sim = SimulationEngine(spec, run).execute()
            est = evaluate(
                spec,
                ch.params.locality,
                ch.params.gamma,
                mode="throttled",
                on_saturation="inf",
                sharing_fraction=ch.params.sharing_fraction if spec.N > 1 else 0.0,
                sharing_fresh_fraction=ch.params.sharing_fresh_fraction,
                cache_capacity_factor=0.5,
            )
            ratio = est.e_instr_seconds / sim.e_instr_seconds
            assert 0.1 < ratio < 10.0, f"{name} on {platform}: ratio {ratio:.2f}"

    def test_model_and_sim_agree_on_the_radix_winner(self, radix_run_4, specs):
        ch = characterize_run(radix_run_4)
        cal = dict(
            mode="throttled", on_saturation="inf", cache_capacity_factor=0.5,
            sharing_fresh_fraction=ch.params.sharing_fresh_fraction,
        )
        model_smp = evaluate(specs["smp"], ch.params.locality, ch.params.gamma, **cal)
        model_cow = evaluate(
            specs["cow-eth"], ch.params.locality, ch.params.gamma,
            sharing_fraction=ch.params.sharing_fraction, **cal,
        )
        sim_smp = SimulationEngine(specs["smp"], radix_run_4).execute()
        sim_cow = SimulationEngine(specs["cow-eth"], radix_run_4).execute()
        model_says_smp = model_smp.e_instr_seconds < model_cow.e_instr_seconds
        sim_says_smp = sim_smp.e_instr_seconds < sim_cow.e_instr_seconds
        assert model_says_smp == sim_says_smp == True  # noqa: E712


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.sim as sim
        import repro.trace as trace
        import repro.workloads as workloads
        import repro.cost as cost
        import repro.apps as apps

        for mod in (core, sim, trace, workloads, cost, apps):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, f"{mod.__name__}.{name}"
