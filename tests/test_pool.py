"""FaultTolerantPool under *repeated* worker deaths.

PR 3 established single-crash degradation (tests/experiments/
test_resilience.py); here the scenario is harsher: every pooled attempt
dies. The contract under test is that the first BrokenProcessPool
abandons the pool for the *rest of the batch* — the serial fallback is
sticky, no second pool is spawned for the survivors — and the
``repro_pool_degradations_total`` counter moves exactly once, not once
per dead worker.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.pool import FaultTolerantPool


def _die_in_workers(args):
    """Crash hard in any pool worker; compute normally in-process.

    ``os._exit`` skips interpreter cleanup, so from a pool worker it is
    indistinguishable from an OOM kill; the serial fallback runs in the
    main process, where ``parent_process()`` is None and the task just
    succeeds.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return args * 10


def _square(args):
    return args * args


def _pool(metrics: MetricsRegistry, **kwargs) -> FaultTolerantPool:
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("retry_backoff", 0.0)
    return FaultTolerantPool(
        degradations=metrics.counter("repro_pool_degradations_total", "d"),
        retries=metrics.counter("repro_cell_retries_total", "r"),
        **kwargs,
    )


class TestRepeatedBrokenPool:
    def test_every_worker_dying_degrades_once_and_stays_serial(self):
        metrics = MetricsRegistry()
        pool = _pool(metrics)
        tasks = [(f"t{i}", i) for i in range(6)]
        results: dict[int, int] = {}
        pool.run(_die_in_workers, tasks, results.__setitem__)

        # Every task completed — serially — with the right answer.
        assert results == {i: i * 10 for i in range(6)}
        # One degradation for the whole batch, not one per dead worker.
        assert metrics.get("repro_pool_degradations_total").value == 1
        # Sticky: the pool was abandoned after the first break; the
        # remaining five tasks never got a second pool.
        assert pool.pools_spawned == 1

    def test_next_batch_starts_fresh_with_its_own_pool(self):
        metrics = MetricsRegistry()
        pool = _pool(metrics)
        crashed: dict[int, int] = {}
        pool.run(_die_in_workers, [(f"t{i}", i) for i in range(4)], crashed.__setitem__)
        assert metrics.get("repro_pool_degradations_total").value == 1

        # A healthy follow-up batch on the same object pools again and
        # does not re-count the old degradation.
        healthy: dict[int, int] = {}
        pool.run(_square, [(f"s{i}", i) for i in range(4)], healthy.__setitem__)
        assert healthy == {i: i * i for i in range(4)}
        assert pool.pools_spawned == 2
        assert metrics.get("repro_pool_degradations_total").value == 1

    def test_crash_with_jobs_one_never_touches_a_pool(self):
        metrics = MetricsRegistry()
        pool = _pool(metrics, jobs=1)
        results: dict[int, int] = {}
        pool.run(_die_in_workers, [(f"t{i}", i) for i in range(3)], results.__setitem__)
        assert results == {i: i * 10 for i in range(3)}
        assert pool.pools_spawned == 0
        assert metrics.get("repro_pool_degradations_total").value == 0


class TestSeededPoolBackoff:
    def test_jitter_seed_makes_backoff_reproducible_and_decorrelated(self):
        a = FaultTolerantPool(jobs=1, retry_backoff=0.2, jitter_seed=11)
        b = FaultTolerantPool(jobs=1, retry_backoff=0.2, jitter_seed=11)
        c = FaultTolerantPool(jobs=1, retry_backoff=0.2, jitter_seed=12)
        assert a.backoff_delay(1, "cellA") == b.backoff_delay(1, "cellA")
        assert a.backoff_delay(1, "cellA") != a.backoff_delay(1, "cellB")
        assert a.backoff_delay(1, "cellA") != c.backoff_delay(1, "cellA")
        window = 0.2
        assert 0.5 * window <= a.backoff_delay(1, "cellA") < window

    def test_unseeded_pool_keeps_legacy_schedule(self):
        pool = FaultTolerantPool(jobs=1, retry_backoff=0.25)
        assert pool.backoff_delay(1) == 0.25
        assert pool.backoff_delay(2) == 0.5
