"""Tests for workload parameter bundles and the paper's Table 2 rows."""

import pytest

from repro.workloads.params import (
    PAPER_EDGE,
    PAPER_FFT,
    PAPER_LU,
    PAPER_RADIX,
    PAPER_TPCC,
    PAPER_WORKLOADS,
    WorkloadParams,
)


class TestValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            WorkloadParams("x", alpha=1.0, beta=10.0, gamma=0.5)
        with pytest.raises(ValueError):
            WorkloadParams("x", alpha=1.5, beta=0.0, gamma=0.5)
        with pytest.raises(ValueError):
            WorkloadParams("x", alpha=1.5, beta=10.0, gamma=0.0)
        with pytest.raises(ValueError):
            WorkloadParams("x", alpha=1.5, beta=10.0, gamma=0.5, sharing_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadParams("x", alpha=1.5, beta=10.0, gamma=0.5, sharing_fresh_fraction=-0.1)
        with pytest.raises(ValueError):
            WorkloadParams("x", alpha=1.5, beta=10.0, gamma=0.5, sharing_procs=0)


class TestPaperConstants:
    def test_table2_values(self):
        """The published (alpha, beta, gamma) triples, verbatim."""
        assert (PAPER_FFT.alpha, PAPER_FFT.beta, PAPER_FFT.gamma) == (1.21, 103.26, 0.20)
        assert (PAPER_LU.alpha, PAPER_LU.beta, PAPER_LU.gamma) == (1.30, 90.27, 0.31)
        assert (PAPER_RADIX.alpha, PAPER_RADIX.beta, PAPER_RADIX.gamma) == (1.14, 120.84, 0.37)
        assert (PAPER_EDGE.alpha, PAPER_EDGE.beta, PAPER_EDGE.gamma) == (1.71, 85.03, 0.45)
        assert (PAPER_TPCC.alpha, PAPER_TPCC.beta, PAPER_TPCC.gamma) == (1.73, 1222.66, 0.36)

    def test_table2_tuple_order(self):
        assert [w.name for w in PAPER_WORKLOADS] == ["FFT", "LU", "Radix", "EDGE"]

    def test_paper_text_properties(self):
        """Section 5.2: EDGE best locality + highest gamma; Radix worst
        locality; TPC-C beta an order of magnitude above the rest."""
        assert PAPER_EDGE.gamma == max(w.gamma for w in PAPER_WORKLOADS)
        assert PAPER_EDGE.beta == min(w.beta for w in PAPER_WORKLOADS)
        assert PAPER_RADIX.beta == max(w.beta for w in PAPER_WORKLOADS)
        assert PAPER_RADIX.alpha == min(w.alpha for w in PAPER_WORKLOADS)
        assert PAPER_TPCC.beta > 10 * max(w.beta for w in PAPER_WORKLOADS)

    def test_classification_flags(self):
        assert not PAPER_FFT.memory_bound and PAPER_FFT.poor_locality
        assert not PAPER_LU.memory_bound and not PAPER_LU.poor_locality
        assert PAPER_RADIX.memory_bound and PAPER_RADIX.poor_locality
        assert PAPER_EDGE.memory_bound and not PAPER_EDGE.poor_locality
        assert PAPER_TPCC.io_bound


class TestLocality:
    def test_locality_carries_truncation(self):
        w = WorkloadParams("x", alpha=1.5, beta=10.0, gamma=0.5, max_distance=500.0)
        assert w.locality.max_distance == 500.0
        assert w.locality.tail(600.0) == 0.0

    def test_with_name(self):
        assert PAPER_FFT.with_name("fft2").name == "fft2"
        assert PAPER_FFT.with_name("fft2").alpha == PAPER_FFT.alpha

    def test_describe(self):
        assert "alpha=" in PAPER_FFT.describe()


class TestSharingScaling:
    def test_zero_without_sharing(self):
        w = WorkloadParams("x", alpha=1.5, beta=10.0, gamma=0.5)
        assert w.sharing_at(8) == 0.0

    def test_single_machine_is_zero(self):
        assert PAPER_FFT.sharing_at(1) == 0.0

    def test_identity_at_measurement_shape(self):
        w = WorkloadParams(
            "x", alpha=1.5, beta=10.0, gamma=0.5,
            sharing_fraction=0.3, sharing_procs=4,
        )
        assert w.sharing_at(4) == pytest.approx(0.3)

    def test_scales_with_remote_share(self):
        w = WorkloadParams(
            "x", alpha=1.5, beta=10.0, gamma=0.5,
            sharing_fraction=0.3, sharing_procs=4,
        )
        # (machines-1)/machines relative to the 3/4 measurement base
        assert w.sharing_at(2) == pytest.approx(0.3 * (1 / 2) / (3 / 4))
        assert w.sharing_at(8) == pytest.approx(0.3 * (7 / 8) / (3 / 4))

    def test_capped_at_one(self):
        w = WorkloadParams(
            "x", alpha=1.5, beta=10.0, gamma=0.5,
            sharing_fraction=0.9, sharing_procs=2,
        )
        assert w.sharing_at(64) <= 1.0
