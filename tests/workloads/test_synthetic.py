"""Tests for the synthetic trace generator (model -> trace -> model)."""

import numpy as np
import pytest

from repro.core.locality import StackDistanceModel
from repro.trace.stackdist import lru_hit_ratios, stack_distances
from repro.workloads.synthetic import synthesize_trace


class TestSynthesize:
    def test_gamma_realized(self):
        rng = np.random.default_rng(0)
        t = synthesize_trace(StackDistanceModel(2.0, 30.0), 10_000, rng, gamma=0.25)
        assert t.gamma == pytest.approx(0.25, abs=1e-3)

    def test_write_fraction_realized(self):
        rng = np.random.default_rng(1)
        t = synthesize_trace(
            StackDistanceModel(2.0, 30.0), 20_000, rng, write_fraction=0.4
        )
        assert t.write_fraction == pytest.approx(0.4, abs=0.02)

    def test_distance_distribution_matches_target(self):
        """Measured hit-ratio curve of the generated trace tracks the
        model's CDF (the generator's defining property)."""
        target = StackDistanceModel(alpha=1.7, beta=40.0)
        rng = np.random.default_rng(2)
        t = synthesize_trace(target, 80_000, rng)
        d = stack_distances(t.addresses)
        caps = np.array([4.0, 16.0, 64.0, 256.0, 1024.0])
        measured = lru_hit_ratios(d, caps)
        expected = target.cdf(caps)
        np.testing.assert_allclose(measured, expected, atol=0.03)

    def test_base_address_offsets(self):
        rng = np.random.default_rng(3)
        t = synthesize_trace(StackDistanceModel(2.0, 10.0), 100, rng, base_address=1000)
        assert t.addresses.min() >= 1000

    def test_empty(self):
        rng = np.random.default_rng(4)
        t = synthesize_trace(StackDistanceModel(2.0, 10.0), 0, rng)
        assert len(t) == 0

    def test_validation(self):
        rng = np.random.default_rng(5)
        m = StackDistanceModel(2.0, 10.0)
        with pytest.raises(ValueError):
            synthesize_trace(m, -1, rng)
        with pytest.raises(ValueError):
            synthesize_trace(m, 10, rng, gamma=0.0)
        with pytest.raises(ValueError):
            synthesize_trace(m, 10, rng, write_fraction=1.5)

    def test_deterministic_given_seed(self):
        m = StackDistanceModel(1.8, 25.0)
        a = synthesize_trace(m, 2000, np.random.default_rng(7))
        b = synthesize_trace(m, 2000, np.random.default_rng(7))
        np.testing.assert_array_equal(a.addresses, b.addresses)
