"""Tests for the registered-workload document store."""

import json

import pytest

from repro.workloads.params import WorkloadParams
from repro.workloads.registry import (
    WORKLOAD_SCHEMA,
    RegisteredWorkload,
    load_registry,
    load_workload,
    save_workload,
    workload_path,
)


def _workload(name="app"):
    return RegisteredWorkload(
        params=WorkloadParams(
            name, alpha=1.6, beta=104.0, gamma=0.3,
            problem_size="10,000 refs", max_distance=512.0,
        ),
        source="test.rtc",
        container="test.rtc",
        records=10_000,
        chunks=3,
        rmse=0.01,
        cold_fraction=0.05,
        converged=True,
        convergence={"schema": "repro-trace-convergence/1", "steps": []},
        extras={"torn_tail": False},
    )


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        path = save_workload(tmp_path, _workload())
        wl = load_workload(path)
        assert wl.params.alpha == 1.6
        assert wl.params.max_distance == 512.0
        assert wl.records == 10_000
        assert wl.converged
        assert wl.extras["torn_tail"] is False

    def test_document_carries_schema(self, tmp_path):
        path = save_workload(tmp_path, _workload())
        doc = json.loads(path.read_text())
        assert doc["schema"] == WORKLOAD_SCHEMA

    def test_registry_lists_all(self, tmp_path):
        save_workload(tmp_path, _workload("a"))
        save_workload(tmp_path, _workload("b"))
        registry = load_registry(tmp_path)
        assert sorted(registry) == ["a", "b"]

    def test_missing_dir_is_empty_registry(self, tmp_path):
        assert load_registry(tmp_path / "nope") == {}

    def test_name_sanitized_in_path(self, tmp_path):
        p = workload_path(tmp_path, "weird/name me")
        assert "/" not in p.name.replace(".workload.json", "")
        assert p.parent == tmp_path


class TestCorruption:
    def test_corrupt_document_names_path(self, tmp_path):
        path = save_workload(tmp_path, _workload())
        path.write_text("{ not json")
        with pytest.raises(ValueError, match=path.name):
            load_workload(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = save_workload(tmp_path, _workload())
        doc = json.loads(path.read_text())
        doc["schema"] = "other/1"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            load_workload(path)

    def test_corrupt_entry_fails_registry_load(self, tmp_path):
        save_workload(tmp_path, _workload("good"))
        bad = tmp_path / "bad.workload.json"
        bad.write_text("truncated")
        with pytest.raises(ValueError, match="bad.workload.json"):
            load_registry(tmp_path)
