"""Tests for workload mixtures."""

import numpy as np
import pytest

from repro.core.execution import evaluate
from repro.core.locality import StackDistanceModel
from repro.workloads.mix import MixedLocality, MixedWorkload, mix_workloads
from repro.workloads.params import PAPER_EDGE, PAPER_FFT, PAPER_RADIX


class TestMixedLocality:
    def test_cdf_is_weighted_sum(self):
        a = StackDistanceModel(1.5, 10.0)
        b = StackDistanceModel(2.5, 100.0)
        mix = MixedLocality(members=(a, b), weights=(0.25, 0.75))
        for x in (0.0, 5.0, 1000.0):
            assert mix.cdf(x) == pytest.approx(0.25 * a.cdf(x) + 0.75 * b.cdf(x))
            assert mix.tail(x) == pytest.approx(1.0 - mix.cdf(x))

    def test_rescaled_rescales_members(self):
        a = StackDistanceModel(1.5, 10.0)
        b = StackDistanceModel(2.5, 100.0)
        mix = MixedLocality(members=(a, b), weights=(0.5, 0.5)).rescaled(4)
        assert mix.members[0].beta == pytest.approx(2.5)
        assert mix.members[1].beta == pytest.approx(25.0)

    def test_array_inputs(self):
        mix = MixedLocality(
            members=(StackDistanceModel(1.5, 10.0),), weights=(1.0,)
        )
        out = mix.tail(np.array([1.0, 10.0, 100.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)

    def test_validation(self):
        a = StackDistanceModel(1.5, 10.0)
        with pytest.raises(ValueError):
            MixedLocality(members=(), weights=())
        with pytest.raises(ValueError):
            MixedLocality(members=(a,), weights=(0.5,))
        with pytest.raises(ValueError):
            MixedLocality(members=(a, a), weights=(1.5, -0.5))


class TestMixWorkloads:
    def test_single_member_is_identity(self):
        mix = mix_workloads([PAPER_FFT], [1.0])
        assert mix.gamma == pytest.approx(PAPER_FFT.gamma)
        assert mix.locality.tail(100.0) == pytest.approx(PAPER_FFT.locality.tail(100.0))
        assert mix.sharing_fraction == pytest.approx(PAPER_FFT.sharing_fraction)

    def test_gamma_is_instruction_weighted(self):
        mix = mix_workloads([PAPER_FFT, PAPER_EDGE], [0.5, 0.5])
        assert mix.gamma == pytest.approx(0.5 * PAPER_FFT.gamma + 0.5 * PAPER_EDGE.gamma)

    def test_reference_weights_favor_memory_heavy_members(self):
        mix = mix_workloads([PAPER_FFT, PAPER_EDGE], [0.5, 0.5])
        # EDGE has higher gamma, so it owns more of the reference stream
        assert mix.locality.weights[1] > mix.locality.weights[0]

    def test_weights_normalized(self):
        mix = mix_workloads([PAPER_FFT, PAPER_RADIX], [2.0, 6.0])
        assert mix.instruction_weights == pytest.approx((0.25, 0.75))

    def test_validation(self):
        with pytest.raises(ValueError):
            mix_workloads([], [])
        with pytest.raises(ValueError):
            mix_workloads([PAPER_FFT], [1.0, 2.0])
        with pytest.raises(ValueError):
            mix_workloads([PAPER_FFT], [-1.0])

    def test_describe(self):
        mix = mix_workloads([PAPER_FFT, PAPER_RADIX], [0.5, 0.5], name="m")
        assert "50% FFT" in mix.describe()


class TestModelIntegration:
    def test_evaluate_accepts_mixture(self, smp_spec):
        mix = mix_workloads([PAPER_FFT, PAPER_RADIX], [0.5, 0.5])
        est = evaluate(
            smp_spec, mix.locality, mix.gamma, mode="throttled", on_saturation="inf"
        )
        assert est.e_instr_seconds > 0

    def test_mixture_time_between_members(self, smp_spec):
        """E(Instr) of a blend lies between the members' times."""
        def t(workload):
            return evaluate(
                smp_spec, workload.locality, workload.gamma,
                mode="throttled", on_saturation="inf",
            ).e_instr_seconds

        fft, radix = t(PAPER_FFT), t(PAPER_RADIX)
        mix = mix_workloads([PAPER_FFT, PAPER_RADIX], [0.5, 0.5])
        mixed = evaluate(
            smp_spec, mix.locality, mix.gamma, mode="throttled", on_saturation="inf"
        ).e_instr_seconds
        lo, hi = sorted([fft, radix])
        assert lo * 0.9 <= mixed <= hi * 1.1

    def test_optimizer_accepts_mixture(self):
        from repro.cost import optimize_cluster
        from repro.cost.configspace import CandidateSpace

        mix = mix_workloads([PAPER_FFT, PAPER_EDGE], [0.7, 0.3], name="blend")
        space = CandidateSpace(max_machines=3, memory_mb_options=(32,), cache_kb_options=(256,))
        res = optimize_cluster(mix, 10_000.0, space=space)
        assert res.best.e_instr_seconds > 0
