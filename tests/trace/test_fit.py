"""Tests for incremental (alpha, beta, gamma) fitting and convergence."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.fit import CONVERGENCE_SCHEMA, ConvergenceStep, IncrementalFit
from repro.trace.stackdist import stack_distances
from repro.workloads.fitting import fit_from_distances


def _zipf_addresses(seed, n=6000, footprint=400):
    rng = np.random.default_rng(seed)
    return (rng.zipf(1.4, size=n) - 1) % footprint


class TestBitIdentity:
    """The equivalence contract: same histogram, grid, solver -> same fit."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=2000))
    def test_incremental_equals_inmemory(self, seed, chunk):
        addrs = _zipf_addresses(seed, n=4000, footprint=250)
        fit = IncrementalFit(gamma_override=0.3)
        for i in range(0, len(addrs), chunk):
            fit.update_from_addresses(addrs[i : i + chunk])
        incremental = fit.result()
        reference = fit_from_distances(stack_distances(addrs))
        assert incremental.alpha == reference.alpha
        assert incremental.beta == reference.beta
        assert incremental.rmse == reference.rmse
        assert incremental.cold_fraction == reference.cold_fraction
        assert incremental.max_distance == reference.max_distance

    def test_chunk_boundary_invariance(self):
        addrs = _zipf_addresses(42)
        results = []
        for chunk in (137, 512, 1999, len(addrs)):
            fit = IncrementalFit(gamma_override=0.25)
            for i in range(0, len(addrs), chunk):
                fit.update_from_addresses(addrs[i : i + chunk])
            results.append(fit.result())
        for r in results[1:]:
            assert r.alpha == results[0].alpha
            assert r.beta == results[0].beta
            assert r.rmse == results[0].rmse


class TestConvergence:
    def test_stop_rule_and_record(self):
        addrs = _zipf_addresses(1, n=40_000, footprint=300)
        fit = IncrementalFit(gamma_override=0.3, tol=0.05, patience=2)
        for i in range(0, len(addrs), 2000):
            fit.update_from_addresses(addrs[i : i + 2000])
        conv = fit.convergence()
        assert conv.converged
        assert conv.converged_at is not None
        steps = conv.steps
        assert len(steps) == 20
        # a stationary tail: every step of the stable window is below tol
        idx = conv.converged_at
        window = [s for s in steps if s.chunk >= idx][:2]
        for s in window:
            assert max(s.d_alpha, s.d_beta, s.d_gamma) < 0.05
        assert steps[-1].converged

    def test_step_fields(self):
        fit = IncrementalFit(gamma_override=0.5)
        step = fit.update_from_addresses(_zipf_addresses(2, n=500))
        assert isinstance(step, ConvergenceStep)
        obj = step.to_obj()
        for field in ("chunk", "records", "alpha", "beta", "gamma", "rmse",
                      "d_alpha", "d_beta", "d_gamma", "converged"):
            assert field in obj

    def test_export_json(self, tmp_path):
        fit = IncrementalFit(gamma_override=0.5)
        for i in range(3):
            fit.update_from_addresses(_zipf_addresses(i, n=800))
        out = tmp_path / "conv.json"
        fit.convergence().export_json(out)
        doc = json.loads(out.read_text())
        assert doc["schema"] == CONVERGENCE_SCHEMA
        assert len(doc["steps"]) == 3

    def test_measured_gamma_accumulates(self):
        fit = IncrementalFit()
        addrs = np.arange(100, dtype=np.int64)
        # work == 3 per reference -> gamma = M/(m+M) = 100/400
        fit.update(stack_distances(addrs), work=300)
        assert fit.gamma == pytest.approx(0.25)

    def test_params_round_trip(self):
        fit = IncrementalFit(gamma_override=0.4)
        fit.update_from_addresses(_zipf_addresses(9, n=3000))
        p = fit.params("ingested", problem_size="3,000 refs")
        assert p.name == "ingested"
        assert p.gamma == 0.4
        assert p.alpha > 1.0 and p.beta > 0.0
