"""Tests for the compact trace representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import Trace, concatenate_traces


def make_trace(addresses, writes=None, work=None, barriers=(), tail_work=0):
    addresses = np.asarray(addresses, dtype=np.int64)
    n = addresses.size
    return Trace(
        addresses=addresses,
        is_write=np.asarray(writes if writes is not None else [False] * n, dtype=bool),
        work=np.asarray(work if work is not None else [0] * n, dtype=np.int64),
        barriers=np.asarray(barriers, dtype=np.int64),
        tail_work=tail_work,
    )


class TestValidation:
    def test_parallel_arrays_required(self):
        with pytest.raises(ValueError):
            make_trace([1, 2], writes=[True])
        with pytest.raises(ValueError):
            make_trace([1, 2], work=[1])

    def test_negative_addresses_rejected(self):
        with pytest.raises(ValueError):
            make_trace([-1])

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            make_trace([1], work=[-1])
        with pytest.raises(ValueError):
            make_trace([1], tail_work=-1)

    def test_barrier_bounds(self):
        make_trace([1, 2], barriers=[0, 2])  # both endpoints legal
        with pytest.raises(ValueError):
            make_trace([1, 2], barriers=[3])
        with pytest.raises(ValueError):
            make_trace([1, 2], barriers=[2, 1])


class TestAccounting:
    def test_instruction_counts(self):
        t = make_trace([1, 2, 3], work=[2, 0, 5], tail_work=3)
        assert t.memory_instructions == 3
        assert t.compute_instructions == 10
        assert t.total_instructions == 13
        assert t.gamma == pytest.approx(3 / 13)
        assert len(t) == 3

    def test_write_fraction(self):
        t = make_trace([1, 2, 3, 4], writes=[True, False, True, False])
        assert t.write_fraction == pytest.approx(0.5)

    def test_footprint(self):
        t = make_trace([5, 5, 7, 5, 9])
        assert t.footprint_items == 3

    def test_empty_trace(self):
        t = make_trace([])
        assert t.gamma == 0.0
        assert t.write_fraction == 0.0


class TestConcatenate:
    def test_simple_join(self):
        a = make_trace([1, 2], barriers=[1], tail_work=4)
        b = make_trace([3], barriers=[0, 1])
        j = concatenate_traces([a, b])
        np.testing.assert_array_equal(j.addresses, [1, 2, 3])
        np.testing.assert_array_equal(j.barriers, [1, 2, 3])

    def test_interior_tail_work_preserved(self):
        a = make_trace([1], work=[2], tail_work=7)
        b = make_trace([2], work=[1])
        j = concatenate_traces([a, b])
        assert j.total_instructions == a.total_instructions + b.total_instructions
        assert j.work[1] == 8  # 1 own + 7 carried

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            concatenate_traces([])

    @given(
        chunks=st.lists(
            st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=10),
            min_size=1,
            max_size=5,
        ),
        tails=st.lists(st.integers(min_value=0, max_value=9), min_size=5, max_size=5),
    )
    @settings(max_examples=50)
    def test_instruction_conservation(self, chunks, tails):
        traces = [
            make_trace(c, work=[1] * len(c), tail_work=tails[i])
            for i, c in enumerate(chunks)
        ]
        joined = concatenate_traces(traces)
        assert joined.total_instructions == sum(t.total_instructions for t in traces)
        assert joined.memory_instructions == sum(t.memory_instructions for t in traces)
