"""Tests for the trace collector (instrumentation sink)."""

import numpy as np
import pytest

from repro.trace.collector import TraceCollector


class TestRecording:
    def test_single_and_block(self):
        c = TraceCollector()
        c.record(5, write=True, work=2)
        c.record_block(np.array([6, 7]), writes=False, work_per_access=1)
        t = c.finalize()
        np.testing.assert_array_equal(t.addresses, [5, 6, 7])
        np.testing.assert_array_equal(t.is_write, [True, False, False])
        np.testing.assert_array_equal(t.work, [2, 1, 1])

    def test_array_writes_and_work(self):
        c = TraceCollector()
        c.record_block(
            np.array([1, 2, 3]),
            writes=np.array([True, False, True]),
            work_per_access=np.array([4, 5, 6]),
        )
        t = c.finalize()
        np.testing.assert_array_equal(t.is_write, [True, False, True])
        np.testing.assert_array_equal(t.work, [4, 5, 6])

    def test_shape_mismatch_rejected(self):
        c = TraceCollector()
        with pytest.raises(ValueError):
            c.record_block(np.array([1, 2]), writes=np.array([True]))
        with pytest.raises(ValueError):
            c.record_block(np.array([1, 2]), work_per_access=np.array([1]))

    def test_empty_block_is_noop(self):
        c = TraceCollector()
        c.record_block(np.array([], dtype=np.int64))
        assert c.num_accesses == 0

    def test_pending_compute_lands_on_next_reference(self):
        c = TraceCollector()
        c.compute(10)
        c.record_block(np.array([1, 2]), work_per_access=1)
        t = c.finalize()
        np.testing.assert_array_equal(t.work, [11, 1])

    def test_pending_compute_does_not_mutate_caller_array(self):
        c = TraceCollector()
        work = np.array([1, 1], dtype=np.int64)
        c.compute(5)
        c.record_block(np.array([1, 2]), work_per_access=work)
        np.testing.assert_array_equal(work, [1, 1])

    def test_trailing_compute_becomes_tail_work(self):
        c = TraceCollector()
        c.record(1)
        c.compute(4)
        t = c.finalize()
        assert t.tail_work == 4
        assert t.total_instructions == 5

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            TraceCollector().compute(-1)


class TestBarriers:
    def test_barrier_positions(self):
        c = TraceCollector()
        c.barrier()
        c.record_block(np.array([1, 2]))
        c.barrier()
        c.record(3)
        c.barrier()
        t = c.finalize()
        np.testing.assert_array_equal(t.barriers, [0, 2, 3])

    def test_empty_collector_finalizes(self):
        c = TraceCollector()
        c.barrier()
        t = c.finalize()
        assert len(t) == 0 and t.barriers.size == 1


class TestLifecycle:
    def test_finalize_is_terminal(self):
        c = TraceCollector()
        c.record(1)
        c.finalize()
        with pytest.raises(RuntimeError):
            c.record(2)
        with pytest.raises(RuntimeError):
            c.barrier()
        with pytest.raises(RuntimeError):
            c.finalize()
