"""Tests for trace analysis: (alpha, beta, gamma) and sharing measures."""

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.core.locality import StackDistanceModel
from repro.trace.analysis import (
    analyze_addresses,
    analyze_trace,
    characterize_run,
    measure_sharing,
    measure_sharing_fraction,
)
from repro.trace.events import Trace
from repro.workloads.synthetic import synthesize_trace


class TestAnalyzeTrace:
    def test_round_trip_on_synthetic(self):
        target = StackDistanceModel(alpha=1.9, beta=80.0)
        rng = np.random.default_rng(5)
        trace = synthesize_trace(target, 60_000, rng, gamma=0.4)
        ch = analyze_trace(trace, name="synthetic")
        assert ch.params.alpha == pytest.approx(1.9, abs=0.25)
        assert ch.params.beta == pytest.approx(80.0, rel=0.4)
        assert ch.params.gamma == pytest.approx(0.4, abs=1e-6)
        assert ch.params.max_distance is not None
        assert ch.fit.rmse < 0.05

    def test_empty_trace_rejected(self):
        empty = Trace(
            addresses=np.zeros(0, dtype=np.int64),
            is_write=np.zeros(0, dtype=bool),
            work=np.zeros(0, dtype=np.int64),
            barriers=np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            analyze_trace(empty)

    def test_describe(self):
        rng = np.random.default_rng(0)
        trace = synthesize_trace(StackDistanceModel(2.0, 20.0), 5000, rng)
        text = analyze_trace(trace, name="x").describe()
        assert "alpha=" in text and "gamma=" in text

    def test_analyze_addresses_gamma(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 100, size=5000)
        ch = analyze_addresses(addrs, gamma=0.25)
        assert ch.params.gamma == pytest.approx(0.25, abs=0.01)

    def test_analyze_addresses_validation(self):
        with pytest.raises(ValueError):
            analyze_addresses(np.arange(10), gamma=0.0)


def _two_proc_run(addresses_by_proc, writes_by_proc=None, barriers_by_proc=None):
    """Craft an ApplicationRun with one block-distributed array."""
    space = AddressSpace(2)
    space.alloc("data", (100,), element_bytes=64)  # one item per element
    traces = []
    for p, addrs in enumerate(addresses_by_proc):
        addrs = np.asarray(addrs, dtype=np.int64)
        wr = (
            np.asarray(writes_by_proc[p], dtype=bool)
            if writes_by_proc
            else np.zeros(addrs.size, dtype=bool)
        )
        bar = (
            np.asarray(barriers_by_proc[p], dtype=np.int64)
            if barriers_by_proc
            else np.zeros(0, dtype=np.int64)
        )
        traces.append(
            Trace(addresses=addrs, is_write=wr, work=np.zeros(addrs.size, dtype=np.int64), barriers=bar)
        )
    return ApplicationRun(
        name="crafted", problem_size="tiny", num_procs=2,
        traces=tuple(traces), address_space=space, verified=True,
    )


class TestSharing:
    def test_no_sharing_when_each_proc_stays_home(self):
        # rows 0..49 homed on proc 0, 50..99 on proc 1
        run = _two_proc_run([[0, 1, 2], [60, 61, 62]])
        sigma, fresh = measure_sharing(run)
        assert sigma == 0.0 and fresh == 0.0

    def test_full_sharing_when_procs_swap(self):
        run = _two_proc_run([[60, 61], [0, 1]])
        sigma, _ = measure_sharing(run)
        assert sigma == pytest.approx(1.0)

    def test_fresh_counts_cross_phase_written_lines(self):
        # proc 0 reads proc 1's element 60 in two phases; proc 1 writes it.
        run = _two_proc_run(
            addresses_by_proc=[[60, 60], [60]],
            writes_by_proc=[[False, False], [True]],
            barriers_by_proc=[[1], [1]],
        )
        sigma, fresh = measure_sharing(run)
        assert sigma == pytest.approx(2 / 3)
        # proc 0: first touch of 60 is cold (fresh), second is cross-phase
        # of a written line (fresh) -> fresh fraction 1.0
        assert fresh == pytest.approx(1.0)

    def test_read_only_cross_phase_not_fresh(self):
        # element 60 never written anywhere: the re-read is capacity-only.
        # proc 1 touches its own element 70, so only proc 0's refs share.
        run = _two_proc_run(
            addresses_by_proc=[[60, 60], [70]],
            barriers_by_proc=[[1], [1]],
        )
        sigma, fresh = measure_sharing(run)
        assert sigma == pytest.approx(2 / 3)
        assert fresh == pytest.approx(0.5)  # only the cold first touch

    def test_fraction_helper(self):
        run = _two_proc_run([[60], [0]])
        assert measure_sharing_fraction(run) == pytest.approx(1.0)

    def test_machine_folding_validation(self):
        run = _two_proc_run([[0], [60]])
        with pytest.raises(ValueError):
            measure_sharing(run, machines=3)


class TestCharacterizeRun:
    def test_full_pipeline(self, fft_run_4):
        ch = characterize_run(fft_run_4)
        p = ch.params
        assert p.name == "FFT"
        assert p.sharing_procs == 4
        assert 0.0 < p.sharing_fraction < 1.0
        assert 0.0 <= p.sharing_fresh_fraction <= 1.0
        assert p.gamma == pytest.approx(fft_run_4.gamma, abs=0.02)
