"""Tests for the exact stack-distance engine (wavelet batch vs naive)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.stackdist import (
    COLD_DISTANCE,
    hit_ratio,
    lru_hit_ratios,
    prev_occurrence,
    stack_distances,
    stack_distances_naive,
)


class TestPrevOccurrence:
    def test_basic(self):
        prev = prev_occurrence(np.array([7, 8, 7, 7, 8]))
        np.testing.assert_array_equal(prev, [-1, -1, 0, 2, 1])

    def test_all_distinct(self):
        prev = prev_occurrence(np.arange(5))
        np.testing.assert_array_equal(prev, [-1] * 5)

    def test_empty(self):
        assert prev_occurrence(np.array([], dtype=np.int64)).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            prev_occurrence(np.zeros((2, 2)))


class TestKnownStreams:
    def test_immediate_reuse_is_zero(self):
        # a a a -> distances: cold, 0, 0
        d = stack_distances(np.array([1, 1, 1]))
        np.testing.assert_array_equal(d, [COLD_DISTANCE, 0, 0])

    def test_textbook_example(self):
        # a b c a: 'a' re-touched after 2 distinct items
        d = stack_distances(np.array([1, 2, 3, 1]))
        np.testing.assert_array_equal(d, [COLD_DISTANCE] * 3 + [2])

    def test_duplicates_between_do_not_double_count(self):
        # a b b a: only one distinct item between the two a's
        d = stack_distances(np.array([1, 2, 2, 1]))
        assert d[-1] == 1

    def test_cyclic_scan(self):
        # 0 1 2 0 1 2: every warm reference at distance 2
        d = stack_distances(np.array([0, 1, 2, 0, 1, 2]))
        np.testing.assert_array_equal(d[3:], [2, 2, 2])


class TestAgainstNaive:
    @given(
        data=st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=300)
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_implementation(self, data):
        items = np.asarray(data, dtype=np.int64)
        np.testing.assert_array_equal(
            stack_distances(items), stack_distances_naive(items)
        )

    def test_large_random_stream(self):
        rng = np.random.default_rng(3)
        items = rng.integers(0, 500, size=5000)
        np.testing.assert_array_equal(
            stack_distances(items), stack_distances_naive(items)
        )

    def test_large_address_values(self):
        """Addresses far above the trace length must not break the tree."""
        items = np.array([10**12, 5, 10**12, 5, 10**12])
        np.testing.assert_array_equal(
            stack_distances(items), stack_distances_naive(items)
        )


class TestHitRatios:
    def test_lru_semantics(self):
        # distances [cold, 0, 2]: capacity 1 hits only the 0-distance ref
        d = np.array([COLD_DISTANCE, 0, 2])
        assert hit_ratio(d, 1) == pytest.approx(1 / 3)
        assert hit_ratio(d, 3) == pytest.approx(2 / 3)
        assert hit_ratio(d, 0) == 0.0

    def test_cold_always_misses(self):
        d = np.array([COLD_DISTANCE] * 4)
        assert hit_ratio(d, 10**9) == 0.0

    def test_vectorized_curve_matches_scalar(self):
        rng = np.random.default_rng(0)
        d = stack_distances(rng.integers(0, 50, size=2000))
        caps = np.array([1, 2, 8, 32, 64])
        curve = lru_hit_ratios(d, caps)
        for c, h in zip(caps, curve):
            assert h == pytest.approx(hit_ratio(d, c))

    def test_curve_monotone_in_capacity(self):
        rng = np.random.default_rng(1)
        d = stack_distances(rng.integers(0, 200, size=5000))
        curve = lru_hit_ratios(d, np.arange(1, 300, 7))
        assert np.all(np.diff(curve) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            hit_ratio(np.array([1]), -1)
        with pytest.raises(ValueError):
            lru_hit_ratios(np.array([1]), np.array([-1.0]))


class TestInclusionProperty:
    @given(
        data=st.lists(st.integers(min_value=0, max_value=40), min_size=10, max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_lru_inclusion(self, data):
        """Hit ratio is non-decreasing in capacity (LRU stack inclusion)."""
        d = stack_distances(np.asarray(data, dtype=np.int64))
        caps = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 64.0])
        curve = lru_hit_ratios(d, caps)
        assert np.all(np.diff(curve) >= -1e-12)
