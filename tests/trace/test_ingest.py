"""End-to-end ingestion: raw trace -> registered workload -> CLI parity.

The acceptance contract (docs/TRACES.md): a registered workload behaves
exactly like a built-in everywhere -- `predict`, `design` and
`simulate` answer identically whether the parameters arrive via the
registry or as explicit --alpha/--beta/--gamma.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.trace.ingest import ingest, resolve_source
from repro.trace.stackdist import stack_distances
from repro.trace.store import TraceStoreWriter
from repro.workloads.fitting import fit_from_distances
from repro.workloads.registry import load_registry


def _make_container(path, n=30_000, footprint=500, seed=0, chunk_records=4096):
    rng = np.random.default_rng(seed)
    addrs = (rng.zipf(1.4, size=n) - 1) % footprint
    with TraceStoreWriter(path, chunk_records=chunk_records) as w:
        w.append(addrs, work=3)
    return addrs


@pytest.fixture()
def ingested(tmp_path):
    container = tmp_path / "app.rtc"
    addrs = _make_container(container)
    result = ingest(container, name="app", workload_dir=tmp_path / "wl")
    return addrs, result, tmp_path / "wl"


class TestIngest:
    def test_params_match_inmemory_fit(self, ingested):
        addrs, result, _ = ingested
        reference = fit_from_distances(stack_distances(addrs))
        # chunked streaming is bit-identical to the in-memory fit
        assert result.fit.alpha == reference.alpha
        assert result.fit.beta == reference.beta
        assert result.fit.rmse == reference.rmse
        assert result.params.gamma == pytest.approx(0.25)  # work=3/ref

    def test_registers_a_loadable_workload(self, ingested):
        _, result, wl_dir = ingested
        registry = load_registry(wl_dir)
        assert "app" in registry
        wl = registry["app"]
        assert wl.params.alpha == result.params.alpha
        assert wl.records == result.records
        assert wl.container is not None
        assert not result.torn_tail

    def test_metrics_are_counted(self, tmp_path):
        container = tmp_path / "m.rtc"
        _make_container(container, n=10_000)
        registry = MetricsRegistry()
        result = ingest(
            container, name="m", workload_dir=tmp_path / "wl",
            metrics_registry=registry,
        )
        assert registry.get("trace_ingest_records_total").value == 10_000
        assert registry.get("trace_ingest_chunks_total").value > 0
        assert result.records == 10_000

    def test_directory_source_concatenates(self, tmp_path):
        d = tmp_path / "traces"
        d.mkdir()
        _make_container(d / "a.rtc", n=5000, seed=1)
        _make_container(d / "b.rtc", n=5000, seed=2)
        name, containers = resolve_source(d)
        assert name == "traces"
        assert [c.name for c in containers] == ["a.rtc", "b.rtc"]
        result = ingest(d, workload_dir=tmp_path / "wl")
        assert result.records == 10_000

    def test_text_source_imported_then_ingested(self, tmp_path):
        src = tmp_path / "tiny.trace"
        src.write_text(
            "\n".join(str(a) for a in np.arange(2000) % 97), encoding="utf-8"
        )
        result = ingest(
            src, workload_dir=tmp_path / "wl", gamma=0.3, chunk_records=256
        )
        assert result.name == "tiny"
        assert result.records == 2000
        assert result.params.gamma == 0.3
        assert result.containers[0].suffix == ".rtc"

    def test_unknown_suffix_rejected(self, tmp_path):
        bad = tmp_path / "t.xyz"
        bad.write_text("1\n2\n")
        with pytest.raises(ValueError, match="suffix"):
            ingest(bad, workload_dir=tmp_path / "wl")


class TestCliParity:
    """A streamed-in workload answers identically to the in-memory lane.

    "ref" is registered from `analyze_addresses` (whole trace in RAM);
    "app" comes from `repro trace ingest` (streamed).  Bit-identical
    fitting means the CLI answers must match byte for byte -- including
    `max_distance`, which bare --alpha/--beta/--gamma flags cannot
    carry.
    """

    def _ingest_both(self, tmp_path):
        import dataclasses

        from repro.trace.analysis import analyze_addresses
        from repro.workloads.registry import RegisteredWorkload, save_workload

        container = tmp_path / "app.rtc"
        addrs = _make_container(container)
        wl_dir = str(tmp_path / "wl")
        assert main(["trace", "ingest", str(container), "--name", "app",
                     "--workload-dir", wl_dir]) == 0
        ch = analyze_addresses(addrs, gamma=0.25, name="ref")
        save_workload(wl_dir, RegisteredWorkload(
            params=dataclasses.replace(ch.params, name="ref"),
            source="in-memory reference lane",
        ))
        return wl_dir

    def _parity(self, tmp_path, capsys, argv):
        wl_dir = self._ingest_both(tmp_path)
        capsys.readouterr()
        assert main([*argv, "--workload", "app",
                     "--workload-dir", wl_dir]) == 0
        streamed = capsys.readouterr().out
        assert main([*argv, "--workload", "ref",
                     "--workload-dir", wl_dir]) == 0
        in_memory = capsys.readouterr().out
        assert (streamed.replace("app", "ref").splitlines()
                == in_memory.splitlines())

    def test_predict_parity(self, tmp_path, capsys):
        self._parity(tmp_path, capsys, ["predict"])

    def test_design_parity(self, tmp_path, capsys):
        self._parity(tmp_path, capsys, ["design", "--budget", "200000"])

    def test_simulate_replays_the_container(self, tmp_path, capsys):
        wl_dir = self._ingest_both(tmp_path)
        capsys.readouterr()
        assert main(["simulate", "--app", "app", "--workload-dir", wl_dir,
                     "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "app" in out

    def test_trace_list_shows_the_workload(self, tmp_path, capsys):
        wl_dir = self._ingest_both(tmp_path)
        capsys.readouterr()
        assert main(["trace", "list", "--workload-dir", wl_dir]) == 0
        out = capsys.readouterr().out
        assert "app" in out and "alpha=" in out

    def test_trace_info_reports_header(self, tmp_path, capsys):
        container = tmp_path / "app.rtc"
        _make_container(container)
        capsys.readouterr()
        assert main(["trace", "info", str(container)]) == 0
        out = capsys.readouterr().out
        assert "repro-trace-store/1" in out
        assert "30,000" in out
