"""Tests for the chunked trace container (docs/TRACES.md)."""

import json
import struct

import numpy as np
import pytest

from repro.trace.events import Trace
from repro.trace.store import (
    FRAME_MAGIC,
    HEADER_BYTES,
    STORE_FORMAT,
    TraceStoreReader,
    TraceStoreWriter,
    available_compressions,
    import_address_binary,
    import_address_text,
    read_trace,
    write_trace,
)


def _write(path, addresses, chunk_records=8, compression="zlib", **kw):
    with TraceStoreWriter(
        path, chunk_records=chunk_records, compression=compression
    ) as w:
        w.append(addresses, **kw)
    return path


class TestRoundTrip:
    def test_records_survive_chunking(self, tmp_path):
        addrs = np.arange(100) % 13
        path = _write(tmp_path / "t.rtc", addrs, chunk_records=7)
        r = TraceStoreReader(path)
        got = np.concatenate([c.addresses for c in r.chunks()])
        np.testing.assert_array_equal(got, addrs)
        assert r.records == 100
        assert r.clean_close and not r.torn_tail

    @pytest.mark.parametrize("codec", available_compressions())
    def test_every_available_codec(self, tmp_path, codec):
        addrs = np.arange(50)
        path = _write(tmp_path / "t.rtc", addrs, compression=codec)
        r = TraceStoreReader(path)
        np.testing.assert_array_equal(r.read_all().addresses, addrs)

    def test_writes_work_and_barriers(self, tmp_path):
        path = tmp_path / "t.rtc"
        with TraceStoreWriter(path, chunk_records=4) as w:
            w.append([1, 2, 3], is_write=True, work=2)
            w.barrier()
            w.append([4, 5], work=[7, 0])
        r = TraceStoreReader(path)
        t = r.read_all()
        assert t.is_write.tolist() == [True, True, True, False, False]
        assert t.work.tolist() == [2, 2, 2, 7, 0]
        assert r.barriers.tolist() == [3]

    def test_trace_round_trip(self, tmp_path):
        t = Trace(
            addresses=np.array([3, 1, 4, 1, 5], np.int64),
            is_write=np.array([1, 0, 0, 1, 0], bool),
            work=np.array([0, 2, 0, 1, 7], np.int64),
            barriers=np.array([2, 5], np.int64),
            tail_work=9,
        )
        path = tmp_path / "t.rtc"
        write_trace(path, t, chunk_records=2)
        u = read_trace(path)
        np.testing.assert_array_equal(u.addresses, t.addresses)
        np.testing.assert_array_equal(u.is_write, t.is_write)
        np.testing.assert_array_equal(u.work, t.work)
        np.testing.assert_array_equal(u.barriers, t.barriers)
        assert u.tail_work == 9

    def test_header_is_valid_json_of_fixed_width(self, tmp_path):
        path = _write(tmp_path / "t.rtc", np.arange(10))
        raw = path.read_bytes()[:HEADER_BYTES]
        header = json.loads(raw)
        assert header["format"] == STORE_FORMAT
        assert header["records"] == 10
        assert raw.endswith(b"\n")


class TestTornTail:
    def test_truncated_payload_reports_torn(self, tmp_path):
        path = _write(tmp_path / "t.rtc", np.arange(64), chunk_records=16)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 11])
        r = TraceStoreReader(path)
        chunks = list(r.chunks())
        assert r.torn_tail
        # a readable prefix of whole chunks survives
        assert sum(len(c) for c in chunks) in (16, 32, 48)

    def test_unclean_close_counts_by_scanning(self, tmp_path):
        path = tmp_path / "t.rtc"
        w = TraceStoreWriter(path, chunk_records=8)
        w.append(np.arange(16))
        w._file.flush()  # frames on disk, header still says records=-1
        r = TraceStoreReader(path)
        assert not r.clean_close
        assert r.scan()["records"] == 16
        w.close()

    def test_mid_file_corruption_raises_naming_path(self, tmp_path):
        path = _write(tmp_path / "t.rtc", np.arange(64), chunk_records=8)
        raw = bytearray(path.read_bytes())
        # flip a byte inside the first frame's payload (after its header)
        raw[HEADER_BYTES + struct.calcsize("<4sBIII") + 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        r = TraceStoreReader(path)
        with pytest.raises(ValueError, match="t.rtc"):
            list(r.chunks())

    def test_bad_magic_raises(self, tmp_path):
        path = _write(tmp_path / "t.rtc", np.arange(8))
        raw = bytearray(path.read_bytes())
        raw[HEADER_BYTES : HEADER_BYTES + 4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="t.rtc"):
            list(TraceStoreReader(path).chunks())
        assert FRAME_MAGIC == b"RTC1"

    def test_wrong_format_refused(self, tmp_path):
        path = _write(tmp_path / "t.rtc", np.arange(8))
        raw = bytearray(path.read_bytes())
        header = json.loads(bytes(raw[:HEADER_BYTES]))
        header["format"] = "somebody-else/9"
        enc = json.dumps(header).encode()
        raw[:HEADER_BYTES] = enc + b" " * (HEADER_BYTES - 1 - len(enc)) + b"\n"
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="format"):
            TraceStoreReader(path)


class TestImporters:
    def test_text_import(self, tmp_path):
        src = tmp_path / "a.trace"
        src.write_text(
            "# comment\n0x10 r 3\n0x11 w\n16\n\n0x10\n", encoding="utf-8"
        )
        dst = tmp_path / "a.rtc"
        import_address_text(src, dst, chunk_records=2)
        t = TraceStoreReader(dst).read_all()
        assert t.addresses.tolist() == [16, 17, 16, 16]
        assert t.is_write.tolist() == [False, True, False, False]
        assert t.work.tolist() == [3, 0, 0, 0]

    def test_binary_import(self, tmp_path):
        addrs = np.arange(1000, dtype="<i8") % 37
        src = tmp_path / "a.bin"
        addrs.tofile(src)
        dst = tmp_path / "a.rtc"
        import_address_binary(src, dst, dtype="<i8", chunk_records=128)
        got = TraceStoreReader(dst).read_all().addresses
        np.testing.assert_array_equal(got, addrs)

    def test_binary_import_rejects_float_dtype(self, tmp_path):
        src = tmp_path / "a.bin"
        np.zeros(4).tofile(src)
        with pytest.raises(ValueError, match="integer"):
            import_address_binary(src, tmp_path / "a.rtc", dtype="<f8")
