"""Property tests for the streaming stack-distance engine.

The equivalence contract (docs/TRACES.md): on any trace and any
chunking, unbounded streaming distances are bit-identical to the
offline `stack_distances` (itself cross-validated against the naive
LRU walk); bounded streaming never reports a wrong finite distance
and only demotes to cold references whose true distance reached the
bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.stackdist import (
    COLD_DISTANCE,
    stack_distances,
    stack_distances_naive,
)
from repro.trace.streamdist import StreamingStackDistance


def _stream_in_chunks(addresses, sizes):
    engine = StreamingStackDistance()
    out = []
    start = 0
    for size in sizes:
        out.append(engine.update(addresses[start : start + size]))
        start += size
    if start < len(addresses):
        out.append(engine.update(addresses[start:]))
    return np.concatenate(out) if out else np.zeros(0, np.int64), engine


@st.composite
def chunked_trace(draw):
    n = draw(st.integers(min_value=0, max_value=400))
    footprint = draw(st.integers(min_value=1, max_value=50))
    addrs = draw(
        st.lists(
            st.integers(min_value=0, max_value=footprint * 100),
            min_size=n,
            max_size=n,
        )
    )
    sizes = []
    left = n
    while left > 0:
        s = draw(st.integers(min_value=1, max_value=max(1, left)))
        sizes.append(s)
        left -= s
    return np.asarray(addrs, dtype=np.int64), sizes


class TestExactEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(chunked_trace())
    def test_streaming_matches_offline_and_naive(self, case):
        addrs, sizes = case
        streamed, _ = _stream_in_chunks(addrs, sizes)
        offline = stack_distances(addrs)
        np.testing.assert_array_equal(streamed, offline)
        np.testing.assert_array_equal(offline, stack_distances_naive(addrs))

    def test_single_chunk_is_offline(self):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 500, size=5000)
        engine = StreamingStackDistance()
        np.testing.assert_array_equal(
            engine.update(addrs), stack_distances(addrs)
        )

    def test_many_tiny_chunks(self):
        rng = np.random.default_rng(11)
        addrs = rng.zipf(1.5, size=3000) % 997
        streamed, engine = _stream_in_chunks(addrs, [1] * len(addrs))
        np.testing.assert_array_equal(streamed, stack_distances(addrs))
        assert engine.finalize().chunks == len(addrs)

    def test_chunk_size_never_changes_distances(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 200, size=4096)
        reference = stack_distances(addrs)
        for size in (1, 7, 64, 1000, 4096, 5000):
            streamed, _ = _stream_in_chunks(
                addrs, [size] * (len(addrs) // size + 1)
            )
            np.testing.assert_array_equal(streamed, reference)


class TestBoundedTable:
    @settings(max_examples=75, deadline=None)
    @given(chunked_trace(), st.integers(min_value=1, max_value=40))
    def test_bounded_contract(self, case, bound):
        addrs, sizes = case
        engine = StreamingStackDistance(max_live_items=bound)
        out = []
        start = 0
        for size in sizes:
            out.append(engine.update(addrs[start : start + size]))
            # the bound holds between updates (peak_live_items is the
            # pre-eviction high-water mark and may exceed it transiently)
            assert engine.live_items <= bound
            start += size
        streamed = (
            np.concatenate(out) if out else np.zeros(0, np.int64)
        )
        truth = stack_distances(addrs)
        finite = streamed != COLD_DISTANCE
        # finite answers are never wrong
        np.testing.assert_array_equal(streamed[finite], truth[finite])
        # demotions only happen at or beyond the bound (or truly cold)
        demoted = (~finite) & (truth != COLD_DISTANCE)
        assert np.all(truth[demoted] >= bound)
        stats = engine.finalize()
        assert stats.live_items <= bound
        if demoted.any():
            assert stats.spill_events > 0

    def test_stats_accounting(self):
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 10_000, size=20_000)
        engine = StreamingStackDistance(max_live_items=512)
        for i in range(0, len(addrs), 2048):
            engine.update(addrs[i : i + 2048])
        stats = engine.finalize()
        assert stats.references == 20_000
        assert stats.chunks == 10
        assert stats.peak_chunk_records == 2048
        assert stats.live_items <= 512
        assert stats.evicted_items > 0


class TestEdgeCases:
    def test_empty_chunk(self):
        engine = StreamingStackDistance()
        assert engine.update(np.zeros(0, np.int64)).size == 0
        assert engine.update(np.array([1, 1])).tolist() == [COLD_DISTANCE, 0]

    def test_negative_addresses_stream_exactly(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(-500, 500, size=3000)
        engine = StreamingStackDistance()
        out = np.concatenate(
            [engine.update(addrs[i : i + 256]) for i in range(0, 3000, 256)]
        )
        np.testing.assert_array_equal(out, stack_distances(addrs))

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            StreamingStackDistance(max_live_items=0)
