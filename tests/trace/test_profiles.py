"""Tests for the per-array traffic profiler."""

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.trace.events import Trace
from repro.trace.profiles import profile_run


def _run_two_arrays():
    """Two procs, two arrays: 'mine' accessed home-local, 'theirs' swapped."""
    space = AddressSpace(2)
    a = space.alloc("a", (8,), element_bytes=64)  # items 0..7, rows split 4/4
    b = space.alloc("b", (8,), element_bytes=64)  # items 8..15
    t0 = Trace(
        addresses=np.array([0, 1, 0, b.base_item + 4], dtype=np.int64),
        is_write=np.array([True, False, False, False]),
        work=np.zeros(4, dtype=np.int64),
        barriers=np.array([2], dtype=np.int64),
    )
    t1 = Trace(
        addresses=np.array([5, b.base_item + 5], dtype=np.int64),
        is_write=np.array([False, True]),
        work=np.zeros(2, dtype=np.int64),
        barriers=np.array([1], dtype=np.int64),
    )
    return ApplicationRun(
        name="crafted", problem_size="", num_procs=2,
        traces=(t0, t1), address_space=space, verified=True,
    )


class TestProfileRun:
    def test_reference_counts_per_array(self):
        prof = profile_run(_run_two_arrays())
        assert prof.total_references == 6
        assert prof.array("a").references == 4
        assert prof.array("b").references == 2
        assert prof.array("a").reference_share == pytest.approx(4 / 6)

    def test_write_fraction(self):
        prof = profile_run(_run_two_arrays())
        assert prof.array("a").write_fraction == pytest.approx(1 / 4)
        assert prof.array("b").write_fraction == pytest.approx(1 / 2)

    def test_footprints(self):
        prof = profile_run(_run_two_arrays())
        assert prof.array("a").footprint_items == 3  # items 0, 1, 5
        assert prof.array("a").region_items == 8

    def test_remote_fraction(self):
        prof = profile_run(_run_two_arrays())
        # array a: proc0 touches 0,1,0 (home 0) local; proc1 touches 5 (home 1) local
        assert prof.array("a").remote_fraction == 0.0
        # array b: proc0 touches item idx 4 -> home proc1 (remote); proc1 idx 5 -> home 1 (local)
        assert prof.array("b").remote_fraction == pytest.approx(0.5)

    def test_cross_phase_reuse(self):
        prof = profile_run(_run_two_arrays())
        # proc0's third access re-touches item 0 after the barrier
        assert prof.array("a").cross_phase_fraction == pytest.approx(1 / 4)

    def test_ordering_by_volume(self):
        prof = profile_run(_run_two_arrays())
        assert prof.arrays[0].name == "a"

    def test_unknown_array(self):
        with pytest.raises(KeyError):
            profile_run(_run_two_arrays()).array("nope")

    def test_describe(self):
        text = profile_run(_run_two_arrays()).describe()
        assert "traffic profile" in text and "dominant" in text


class TestOnRealApplications:
    def test_fft_roots_are_read_only_and_remote_heavy(self, fft_run_4):
        prof = profile_run(fft_run_4)
        roots = prof.array("roots")
        assert roots.write_fraction == 0.0
        # replicated table homed on proc 0: 3/4 of procs see it remote
        assert roots.remote_fraction == pytest.approx(0.75, abs=0.05)

    def test_radix_histogram_is_the_hot_structure(self, radix_run_4):
        prof = profile_run(radix_run_4)
        assert prof.arrays[0].name == "histogram"

    def test_shares_sum_to_one(self, edge_run_4):
        prof = profile_run(edge_run_4)
        assert sum(a.reference_share for a in prof.arrays) == pytest.approx(1.0)
