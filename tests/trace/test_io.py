"""Tests for trace and run persistence."""

import numpy as np
import pytest

from repro.trace.analysis import measure_sharing
from repro.trace.events import Trace
from repro.trace.io import load_run, load_trace, save_run, save_trace


def _trace():
    return Trace(
        addresses=np.array([3, 1, 4, 1, 5], dtype=np.int64),
        is_write=np.array([True, False, False, True, False]),
        work=np.array([0, 2, 0, 1, 7], dtype=np.int64),
        barriers=np.array([2, 5], dtype=np.int64),
        tail_work=9,
    )


class TestTraceRoundTrip:
    def test_round_trip(self, tmp_path):
        t = _trace()
        path = tmp_path / "trace.npz"
        save_trace(t, path)
        u = load_trace(path)
        np.testing.assert_array_equal(u.addresses, t.addresses)
        np.testing.assert_array_equal(u.is_write, t.is_write)
        np.testing.assert_array_equal(u.work, t.work)
        np.testing.assert_array_equal(u.barriers, t.barriers)
        assert u.tail_work == 9
        assert u.gamma == t.gamma

    def test_version_guard(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.int64(999), addresses=np.zeros(0))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestCorruptArchives:
    """Truncated/corrupt files must raise ValueError naming the path."""

    def test_truncated_trace_names_path(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(_trace(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(ValueError, match="trace.npz"):
            load_trace(path)

    def test_garbage_trace_names_path(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="garbage.npz"):
            load_trace(path)

    def test_missing_array_names_path(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1), addresses=np.zeros(3, np.int64))
        with pytest.raises(ValueError, match="partial.npz"):
            load_trace(path)

    def test_truncated_run_names_path(self, tmp_path, edge_run_4):
        path = tmp_path / "run.npz"
        save_run(edge_run_4, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValueError, match="run.npz"):
            load_run(path)

    def test_quarantine_moves_file_aside(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(_trace(), path)
        path.write_bytes(path.read_bytes()[:32])
        with pytest.raises(ValueError, match="quarantine"):
            load_trace(path, quarantine=True)
        assert not path.exists()
        assert (tmp_path / "quarantine" / "trace.npz").exists()

    def test_missing_file_still_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "never-written.npz")


class TestRunRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path, edge_run_4):
        path = tmp_path / "run.npz"
        save_run(edge_run_4, path)
        restored = load_run(path)
        assert restored.name == edge_run_4.name
        assert restored.num_procs == 4
        assert restored.verified == edge_run_4.verified
        assert restored.total_references == edge_run_4.total_references
        assert restored.total_instructions == edge_run_4.total_instructions
        for a, b in zip(restored.traces, edge_run_4.traces):
            np.testing.assert_array_equal(a.addresses, b.addresses)
            np.testing.assert_array_equal(a.barriers, b.barriers)

    def test_home_map_survives(self, tmp_path, fft_run_4):
        path = tmp_path / "run.npz"
        save_run(fft_run_4, path)
        restored = load_run(path)
        np.testing.assert_array_equal(
            restored.address_space.home_map(), fft_run_4.address_space.home_map()
        )

    def test_sharing_measure_identical_after_reload(self, tmp_path, fft_run_4):
        path = tmp_path / "run.npz"
        save_run(fft_run_4, path)
        restored = load_run(path)
        assert measure_sharing(restored) == pytest.approx(measure_sharing(fft_run_4))

    def test_restored_run_simulates(self, tmp_path, edge_run_4):
        from repro.core.platform import PlatformSpec
        from repro.sim.engine import SimulationEngine

        path = tmp_path / "run.npz"
        save_run(edge_run_4, path)
        restored = load_run(path)
        spec = PlatformSpec(
            name="io-smp", n=4, N=1, cache_bytes=2 * 1024, memory_bytes=256 * 1024
        )
        a = SimulationEngine(spec, edge_run_4, horizon=0.0).execute()
        b = SimulationEngine(spec, restored, horizon=0.0).execute()
        assert b.total_cycles == pytest.approx(a.total_cycles)
