"""Property tests for the topology IR (hypothesis).

The IR's contracts the rest of the stack leans on:

* ``topology_from_dict(t.to_dict())`` is lossless for every tree the
  constructors accept -- files, caches and the CLI all round-trip
  through dicts;
* homogeneous trees have exactly ONE representation: explicit all-equal
  ``children`` canonicalize to the count+child sugar on construction,
  so ``==`` and ``hash`` never depend on how a tree was spelled;
* the structural queries agree with the leaf list;
* ``classify`` calls a tree heterogeneous exactly when its machines
  differ;
* the strict schema rejects unknown keys with a pointed message.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import PlatformKind
from repro.sim.latencies import NetworkKind
from repro.topology.build import classify
from repro.topology.ir import (
    CacheLevel,
    ClusterNode,
    Contention,
    DiskLevel,
    InterconnectLevel,
    MachineNode,
    MemoryLevel,
    topology_from_dict,
)

# -- strategies --------------------------------------------------------
# Capacities come from small menus (not raw floats) so that distinct
# draws are often *equal* -- that is what exercises canonicalization.
caches = st.builds(
    CacheLevel,
    capacity_items=st.sampled_from([64.0, 512.0, 4096.0]),
    tau_cycles=st.sampled_from([1.0, 2.0]),
    ways=st.sampled_from([1, 2, 4]),
    peer_tau_cycles=st.sampled_from([10.0, 15.0]),
)
machines = st.builds(
    lambda cache, mem_factor, procs, speed, disk_tau: MachineNode(
        processors=procs,
        cache=cache,
        memory=MemoryLevel(capacity_items=cache.capacity_items * mem_factor),
        disk=DiskLevel(tau_cycles=disk_tau),
        speed=speed,
    ),
    cache=caches,
    mem_factor=st.sampled_from([16.0, 256.0]),
    procs=st.integers(min_value=1, max_value=8),
    speed=st.sampled_from([1.0, 1.5, 2.0]),
    disk_tau=st.sampled_from([1000.0, 2000.0]),
)
interconnects = st.builds(
    InterconnectLevel,
    network=st.sampled_from(list(NetworkKind)),
    contention=st.sampled_from(list(Contention)),
    remote_node_cycles=st.sampled_from([100.0, 400.0]),
    remote_cached_cycles=st.sampled_from([120.0, 500.0]),
    remote_disk_extra_cycles=st.sampled_from([0.0, 50.0]),
    label=st.sampled_from(["net", "rack bus"]),
)


def _cluster(children):
    return st.builds(
        lambda kids, link: ClusterNode(children=tuple(kids), interconnect=link),
        kids=st.lists(children, min_size=2, max_size=3),
        link=interconnects,
    )


topologies = st.recursive(machines, _cluster, max_leaves=6)
trees = topologies.filter(lambda t: t.total_processors >= 1)


# -- properties --------------------------------------------------------
class TestRoundTrip:
    @given(tree=trees)
    @settings(max_examples=120, deadline=None)
    def test_to_dict_from_dict_is_lossless(self, tree):
        assert topology_from_dict(tree.to_dict()) == tree

    @given(tree=trees)
    @settings(max_examples=60, deadline=None)
    def test_survives_json(self, tree):
        clone = topology_from_dict(json.loads(json.dumps(tree.to_dict())))
        assert clone == tree
        assert hash(clone) == hash(tree)

    @given(machine=machines)
    @settings(max_examples=40, deadline=None)
    def test_unit_speed_is_omitted_from_the_dict(self, machine):
        d = machine.to_dict()
        assert ("speed" in d) == (machine.speed != 1.0)


class TestCanonicalization:
    @given(machine=machines, count=st.integers(min_value=2, max_value=5),
           link=interconnects)
    @settings(max_examples=80, deadline=None)
    def test_equal_children_collapse_to_sugar(self, machine, count, link):
        explicit = ClusterNode(children=(machine,) * count, interconnect=link)
        sugar = ClusterNode(count=count, child=machine, interconnect=link)
        assert explicit == sugar
        assert hash(explicit) == hash(sugar)
        assert explicit.children == () and explicit.child == machine
        assert explicit.to_dict() == sugar.to_dict()

    @given(subtree=trees, count=st.integers(min_value=2, max_value=4),
           link=interconnects)
    @settings(max_examples=60, deadline=None)
    def test_collapse_works_for_whole_subtrees_too(self, subtree, count, link):
        explicit = ClusterNode(children=(subtree,) * count, interconnect=link)
        assert explicit.children == ()
        assert explicit.count == count and explicit.child == subtree

    @given(tree=trees)
    @settings(max_examples=80, deadline=None)
    def test_homogeneous_implies_all_leaves_equal(self, tree):
        # One-way only: equal leaves at *different depths* still make a
        # heterogeneous tree (each leaf sees a different hierarchy).
        leaves = tree.leaves
        if tree.is_homogeneous:
            assert all(m == leaves[0] for m in leaves)
        if any(m != leaves[0] for m in leaves):
            assert not tree.is_homogeneous


class TestStructuralQueries:
    @given(tree=trees)
    @settings(max_examples=80, deadline=None)
    def test_counts_agree_with_the_leaf_list(self, tree):
        leaves = tree.leaves
        assert tree.total_machines == len(leaves)
        assert tree.total_processors == sum(m.processors for m in leaves)
        assert tree.machine == leaves[0]

    @given(tree=trees)
    @settings(max_examples=60, deadline=None)
    def test_classify_marks_unequal_leaves_heterogeneous(self, tree):
        kind = classify(tree)
        if not tree.is_homogeneous:
            assert kind is PlatformKind.HETEROGENEOUS
        else:
            assert kind is not PlatformKind.HETEROGENEOUS

    @given(machine=machines, link=interconnects)
    @settings(max_examples=30, deadline=None)
    def test_hetero_trees_refuse_homogeneous_only_views(self, machine, link):
        other = MachineNode(
            processors=machine.processors + 1, cache=machine.cache,
            memory=machine.memory, disk=machine.disk, speed=machine.speed,
        )
        tree = ClusterNode(children=(machine, other), interconnect=link)
        with pytest.raises(ValueError, match="heterogeneous"):
            tree.procs_per_machine
        with pytest.raises(ValueError, match="homogeneous"):
            tree.interconnects


class TestStrictSchema:
    @given(tree=trees, key=st.sampled_from(["cpus", "speedup", "links"]))
    @settings(max_examples=40, deadline=None)
    def test_unknown_root_key_is_named_in_the_error(self, tree, key):
        payload = tree.to_dict()
        payload[key] = 1
        with pytest.raises(ValueError, match=key):
            topology_from_dict(payload)

    @given(machine=machines)
    @settings(max_examples=20, deadline=None)
    def test_unknown_nested_key_rejected(self, machine):
        payload = machine.to_dict()
        payload["memory"]["latency_ns"] = 70
        with pytest.raises(ValueError, match="latency_ns"):
            topology_from_dict(payload)

    def test_bad_speed_rejected_at_construction(self):
        with pytest.raises(ValueError, match="speed"):
            MachineNode(
                processors=1,
                cache=CacheLevel(capacity_items=64.0),
                memory=MemoryLevel(capacity_items=4096.0),
                disk=DiskLevel(),
                speed=0.0,
            )
