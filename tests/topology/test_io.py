"""Platform files: JSON/YAML loading and pointed rejection."""

from __future__ import annotations

import json
import sys

import pytest

from repro.core.platform import PlatformSpec
from repro.topology import clump_of_smps_spec, load_platform_file, platform_from_dict


def _short_form() -> dict:
    spec = clump_of_smps_spec()
    return {"name": "from-file", "topology": spec.topology.to_dict()}


class TestJson:
    def test_short_form(self, tmp_path):
        p = tmp_path / "plat.json"
        p.write_text(json.dumps(_short_form()))
        spec = load_platform_file(p)
        assert spec.name == "from-file"
        assert spec.topology is not None and spec.topology.depth == 2
        assert spec.total_processors == clump_of_smps_spec().total_processors

    def test_full_spec_round_trip(self, tmp_path):
        original = clump_of_smps_spec()
        p = tmp_path / "plat.json"
        p.write_text(json.dumps(original.to_dict()))
        assert load_platform_file(p) == original

    def test_invalid_json_names_file(self, tmp_path):
        p = tmp_path / "broken.json"
        p.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON") as err:
            load_platform_file(p)
        assert str(p) in str(err.value)

    def test_bad_topology_names_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"name": "x", "topology": {"type": "torus"}}))
        with pytest.raises(ValueError, match="'machine' or 'cluster'") as err:
            load_platform_file(p)
        assert str(p) in str(err.value)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read platform file"):
            load_platform_file(tmp_path / "nope.json")


class TestYaml:
    def test_yaml_loads_when_available(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        p = tmp_path / "plat.yaml"
        p.write_text(yaml.safe_dump(_short_form()))
        assert load_platform_file(p).name == "from-file"

    def test_yaml_gated_without_pyyaml(self, tmp_path, monkeypatch):
        """Without PyYAML the loader refuses .yaml files with a pointed
        message instead of crashing -- PyYAML is not a dependency."""
        monkeypatch.setitem(sys.modules, "yaml", None)
        p = tmp_path / "plat.yaml"
        p.write_text("name: x\n")
        with pytest.raises(ValueError, match="PyYAML.*not.*installed"):
            load_platform_file(p)


class TestPayloadValidation:
    def test_not_a_mapping(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            platform_from_dict(["nope"])

    def test_needs_name(self):
        with pytest.raises(ValueError, match="non-empty string 'name'"):
            platform_from_dict({"topology": _short_form()["topology"]})

    def test_unknown_keys_rejected(self):
        payload = _short_form()
        payload["colour"] = "blue"
        with pytest.raises(ValueError, match="unknown platform keys: colour"):
            platform_from_dict(payload)

    def test_spec_dict_unknown_keys_rejected(self):
        payload = clump_of_smps_spec().to_dict()
        payload["frobnicate"] = 1
        with pytest.raises(ValueError, match="unknown platform spec keys"):
            PlatformSpec.from_dict(payload)

    def test_spec_dict_missing_key_rejected(self):
        payload = clump_of_smps_spec().to_dict()
        del payload["memory_bytes"]
        with pytest.raises(ValueError, match="missing required key"):
            PlatformSpec.from_dict(payload)
