"""The generic fold: classification and hierarchy equivalence.

A platform spec carrying an explicit topology tree must model exactly
like the equivalent flat ``(n, N, network)`` spec -- same levels, same
rates, same taus, float-for-float.  The paper's Table 3 configurations
are the regression corpus.
"""

from __future__ import annotations

import pytest

from repro.core.hierarchy import LevelKind, PlatformKind
from repro.core.platform import PlatformSpec
from repro.sim.latencies import NetworkKind
from repro.topology import (
    build_hierarchy,
    classify,
    clump_of_smps_spec,
    clump_of_smps_topology,
    clump_topology,
    cow_topology,
    smp_topology,
    topology_for_spec,
)

KB = 1024
MB = 1024 * 1024


class TestClassify:
    def test_flat_shapes(self):
        assert classify(smp_topology(8, 64, 4096)) is PlatformKind.SMP
        assert classify(cow_topology(4, 64, 4096, NetworkKind.ATM_155)) is PlatformKind.COW
        assert (
            classify(clump_topology(2, 4, 64, 4096, NetworkKind.ATM_155))
            is PlatformKind.CLUMP
        )

    def test_deep_trees_classify_by_leaf(self):
        assert classify(clump_of_smps_topology(2, 2, 2, 64, 4096)) is PlatformKind.CLUMP
        assert classify(clump_of_smps_topology(2, 2, 1, 64, 4096)) is PlatformKind.COW


def _flat_specs():
    """One flat spec per paper shape, plus L2 and big-memory variants."""
    return [
        PlatformSpec(name="t-smp", n=8, N=1, cache_bytes=32 * KB, memory_bytes=4 * MB),
        PlatformSpec(
            name="t-smp-l2", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
            l2_bytes=16 * KB,
        ),
        PlatformSpec(
            name="t-cow", n=1, N=8, cache_bytes=32 * KB, memory_bytes=4 * MB,
            network=NetworkKind.ETHERNET_100,
        ),
        PlatformSpec(
            name="t-cow-sw", n=1, N=8, cache_bytes=32 * KB, memory_bytes=4 * MB,
            network=NetworkKind.ATM_155,
        ),
        PlatformSpec(
            name="t-clump", n=4, N=4, cache_bytes=32 * KB, memory_bytes=4 * MB,
            network=NetworkKind.ETHERNET_10,
        ),
    ]


@pytest.mark.parametrize("spec", _flat_specs(), ids=lambda s: s.name)
@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"include_peer_cache": True, "remote_cached_fraction": 0.2},
        {"cache_capacity_factor": 0.5},
    ],
    ids=["plain", "peer+dirty", "halved-cache"],
)
def test_topology_spec_models_like_flat_spec(spec, kwargs):
    """from_topology(spec's canned tree) and the flat spec produce
    float-identical hierarchies under every modeling knob."""
    topo_spec = PlatformSpec.from_topology(
        spec.name, topology_for_spec(spec), cpu_hz=spec.cpu_hz, latencies=spec.latencies
    )
    assert topo_spec.kind == spec.kind
    assert topo_spec.hierarchy(**kwargs) == spec.hierarchy(**kwargs)


def test_fold_equals_spec_hierarchy_directly():
    spec = PlatformSpec(
        name="d", n=2, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    )
    assert build_hierarchy(topology_for_spec(spec)) == spec.hierarchy()


class TestTwoLevelHierarchy:
    def test_clump_of_smps_has_two_remote_levels(self):
        """The new scenario's hierarchy carries one remote-memory level
        per interconnect -- the structure a flat spec cannot produce."""
        spec = clump_of_smps_spec()
        levels = spec.hierarchy().levels
        remote = [lv for lv in levels if lv.kind is LevelKind.REMOTE_MEMORY]
        assert len(remote) == 2
        intra, inter = remote
        assert "intra-rack" in intra.name and "inter-rack" in inter.name
        # the outer level serves the larger share of misses and costs more
        assert inter.tau_cycles > intra.tau_cycles

    def test_inexpressible_in_flat_enum(self):
        """No flat (n, N, network) spec can state two interconnects: the
        topology-bearing spec leaves its single ``network`` field empty,
        and handing a flat spec a second network has nowhere to go."""
        spec = clump_of_smps_spec()
        assert spec.network is None
        assert len(spec.topology.interconnects) == 2
        # a flat spec reproducing the same machine shape models exactly
        # one remote level, whichever network it picks
        for net in NetworkKind:
            flat = PlatformSpec(
                name="flat", n=spec.n, N=spec.N, cache_bytes=spec.cache_bytes,
                memory_bytes=spec.memory_bytes, network=net,
            )
            remote = [lv for lv in flat.hierarchy().levels if lv.kind is LevelKind.REMOTE_MEMORY]
            assert len(remote) == 1

    def test_scaled_preserves_structure(self):
        spec = clump_of_smps_spec().scaled(4)
        assert spec.topology.depth == 2
        assert spec.cache_items == spec.topology.machine.cache.capacity_items
        remote = [lv for lv in spec.hierarchy().levels if lv.kind is LevelKind.REMOTE_MEMORY]
        assert len(remote) == 2


def test_round_trip_through_spec_dict():
    """PlatformSpec.to_dict/from_dict is lossless for topology specs --
    the property the simulation cache key depends on."""
    spec = clump_of_smps_spec()
    again = PlatformSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.topology == spec.topology
    assert again.hierarchy() == spec.hierarchy()
