"""Property tests for the topology IR: round-trips, hashing, validation.

Topologies are the canonical cache-key material (``PlatformSpec.to_dict``
embeds them), so ``to_dict``/``from_dict`` must be lossless and the
frozen trees must hash stably -- two equal trees, built independently,
must serialize to the same JSON text.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.latencies import NetworkKind
from repro.topology import (
    CacheLevel,
    ClusterNode,
    Contention,
    DiskLevel,
    InterconnectLevel,
    MachineNode,
    MemoryLevel,
    clump_of_smps_topology,
    clump_topology,
    cow_topology,
    smp_topology,
    topology_from_dict,
)

CANNED = {
    "smp": lambda: smp_topology(8, 64, 4096),
    "smp-l2": lambda: smp_topology(8, 64, 4096, l2_items=256),
    "cow-bus": lambda: cow_topology(4, 64, 4096, NetworkKind.ETHERNET_100),
    "cow-switch": lambda: cow_topology(4, 64, 4096, NetworkKind.ATM_155),
    "clump": lambda: clump_topology(2, 4, 64, 4096, NetworkKind.ATM_155),
    "clump-of-smps": lambda: clump_of_smps_topology(2, 2, 2, 64, 4096),
    "cos-l2": lambda: clump_of_smps_topology(2, 2, 2, 64, 4096, l2_items=256),
}


@pytest.mark.parametrize("make", CANNED.values(), ids=CANNED.keys())
class TestRoundTrip:
    def test_to_dict_from_dict_lossless(self, make):
        topo = make()
        assert topology_from_dict(topo.to_dict()) == topo

    def test_dict_survives_json(self, make):
        """The cache key serializes through real JSON text, so the dict
        itself must survive a dumps/loads cycle."""
        topo = make()
        payload = json.loads(json.dumps(topo.to_dict()))
        assert topology_from_dict(payload) == topo

    def test_hash_and_serialization_stable(self, make):
        """Two independently built equal trees are interchangeable as
        dict keys and produce byte-identical canonical JSON."""
        a, b = make(), make()
        assert a == b and a is not b
        assert hash(a) == hash(b)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )


class TestTreeQueries:
    def test_flat_shapes(self):
        smp = smp_topology(8, 64, 4096)
        assert (smp.depth, smp.total_machines, smp.total_processors) == (0, 1, 8)
        assert smp.interconnects == ()
        cow = cow_topology(4, 64, 4096, NetworkKind.ATM_155)
        assert (cow.depth, cow.total_machines, cow.total_processors) == (1, 4, 4)
        clump = clump_topology(2, 4, 64, 4096, NetworkKind.ETHERNET_100)
        assert (clump.depth, clump.total_machines, clump.total_processors) == (1, 4, 8)

    def test_two_level_interconnects_innermost_first(self):
        topo = clump_of_smps_topology(3, 4, 2, 64, 4096)
        assert topo.depth == 2
        assert topo.total_machines == 12
        assert topo.total_processors == 24
        (intra, under_intra), (inter, under_inter) = topo.interconnects
        assert under_intra == 4 and under_inter == 12
        assert intra.contention is Contention.SWITCH
        assert inter.contention is Contention.BUS
        assert "intra-rack" in intra.label and "inter-rack" in inter.label

    def test_smp_nodes_surcharge(self):
        """Racks of SMPs pay the paper's +3-cycle intra-node hop on both
        network levels; racks of uniprocessors do not."""
        smps = clump_of_smps_topology(2, 2, 2, 64, 4096)
        unis = clump_of_smps_topology(2, 2, 1, 64, 4096)
        for (ic_s, _), (ic_u, _) in zip(smps.interconnects, unis.interconnects):
            assert ic_s.remote_node_cycles == ic_u.remote_node_cycles + 3
            assert ic_s.remote_cached_cycles == ic_u.remote_cached_cycles + 3


class TestValidation:
    def test_memory_must_exceed_cache(self):
        with pytest.raises(ValueError, match="memory must be larger than the cache"):
            MachineNode(
                processors=2,
                cache=CacheLevel(capacity_items=64),
                memory=MemoryLevel(capacity_items=64),
                disk=DiskLevel(),
            )

    def test_l2_must_sit_between(self):
        with pytest.raises(ValueError, match="L2 must sit strictly between"):
            MachineNode(
                processors=2,
                cache=CacheLevel(capacity_items=64),
                memory=MemoryLevel(capacity_items=4096),
                disk=DiskLevel(),
                l2=CacheLevel(capacity_items=64),
            )

    def test_cluster_needs_two_subtrees(self):
        with pytest.raises(ValueError, match=">= 2 subtrees"):
            ClusterNode(
                count=1,
                child=smp_topology(2, 64, 4096),
                interconnect=InterconnectLevel(
                    network=NetworkKind.ATM_155,
                    contention=Contention.SWITCH,
                    remote_node_cycles=100.0,
                    remote_cached_cycles=200.0,
                    remote_disk_extra_cycles=100.0,
                    label="switch",
                ),
            )

    def test_level_bounds(self):
        with pytest.raises(ValueError, match="at least one item"):
            CacheLevel(capacity_items=0)
        with pytest.raises(ValueError, match="at least one item"):
            MemoryLevel(capacity_items=0)
        with pytest.raises(ValueError, match="non-negative"):
            DiskLevel(tau_cycles=-1.0)


class TestFromDictErrors:
    def test_missing_type(self):
        with pytest.raises(ValueError, match="missing required key 'type'"):
            topology_from_dict({})

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="'machine' or 'cluster'"):
            topology_from_dict({"type": "torus"})

    def test_missing_machine_keys(self):
        with pytest.raises(ValueError, match="machine node is missing required key"):
            topology_from_dict({"type": "machine", "processors": 2})

    def test_unknown_network(self):
        payload = clump_topology(2, 2, 64, 4096, NetworkKind.ATM_155).to_dict()
        payload["interconnect"]["network"] = "carrier-pigeon"
        with pytest.raises(ValueError, match="unknown network 'carrier-pigeon'"):
            topology_from_dict(payload)

    def test_bad_contention(self):
        payload = cow_topology(2, 64, 4096, NetworkKind.ATM_155).to_dict()
        payload["interconnect"]["contention"] = "worm-hole"
        with pytest.raises(ValueError, match="'bus' or 'switch'"):
            topology_from_dict(payload)

    def test_interconnect_defaults_follow_network(self):
        """A hand-written minimal interconnect gets the bus/switch class
        and cost defaults from its network row."""
        payload = {
            "type": "cluster",
            "count": 2,
            "interconnect": {"network": "100Mb bus", "remote_node_cycles": 4575},
            "child": smp_topology(1, 64, 4096).to_dict(),
        }
        topo = topology_from_dict(payload)
        ic = topo.interconnect
        assert ic.contention is Contention.BUS
        assert ic.remote_cached_cycles == 2 * 4575
        assert ic.remote_disk_extra_cycles == 4575
