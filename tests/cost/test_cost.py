"""Tests for the price catalog and the Eq. 5 cost model."""

import pytest

from repro.core.platform import PlatformSpec
from repro.cost.catalog import DEFAULT_CATALOG, PriceCatalog
from repro.cost.model import cluster_cost, machine_cost, network_cost
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024


class TestCatalog:
    def test_cache_price_lookup(self):
        assert DEFAULT_CATALOG.cache_price(256) > 0
        assert DEFAULT_CATALOG.cache_price(512) > DEFAULT_CATALOG.cache_price(256)

    def test_unknown_cache_rejected(self):
        with pytest.raises(KeyError, match="cache option"):
            DEFAULT_CATALOG.cache_price(1024)

    def test_network_prices_ordered(self):
        c = DEFAULT_CATALOG
        assert (
            c.network_price(NetworkKind.ETHERNET_10)
            < c.network_price(NetworkKind.ETHERNET_100)
            < c.network_price(NetworkKind.ATM_155)
        )

    def test_options_listing(self):
        assert DEFAULT_CATALOG.cache_options_kb == (256, 512)
        assert len(DEFAULT_CATALOG.network_options) == 3

    def test_custom_catalog(self):
        c = PriceCatalog(memory_per_mb=2.0)
        assert machine_cost(c, 1, 256, 64) - machine_cost(c, 1, 256, 32) == pytest.approx(64.0)


class TestMachineCost:
    def test_workstation(self):
        c = DEFAULT_CATALOG
        expected = c.workstation_base + c.cache_price(256) + 64.0
        assert machine_cost(c, 1, 256, 64) == pytest.approx(expected)

    def test_smp_premium(self):
        c = DEFAULT_CATALOG
        two_way = machine_cost(c, 2, 256, 64)
        expected = (
            c.workstation_base
            + 2 * c.smp_chassis_per_socket
            + c.smp_cpu
            + 2 * c.cache_price(256)
            + 64.0
        )
        assert two_way == pytest.approx(expected)

    def test_smp_above_case1_budget(self):
        """The paper's Case 1: $5,000 cannot buy an SMP node."""
        assert machine_cost(DEFAULT_CATALOG, 2, 256, 32) > 5_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            machine_cost(DEFAULT_CATALOG, 0, 256, 64)
        with pytest.raises(ValueError):
            machine_cost(DEFAULT_CATALOG, 1, 256, 0)


class TestClusterCost:
    def test_eq5_shape(self):
        """C = N * (C_machine + C_net)."""
        spec = PlatformSpec(
            name="x", n=1, N=4, cache_bytes=256 * KB, memory_bytes=64 * MB,
            network=NetworkKind.ETHERNET_100,
        )
        per_machine = machine_cost(DEFAULT_CATALOG, 1, 256, 64)
        per_net = network_cost(DEFAULT_CATALOG, spec)
        assert cluster_cost(DEFAULT_CATALOG, spec) == pytest.approx(
            4 * (per_machine + per_net)
        )

    def test_single_smp_pays_no_network(self):
        spec = PlatformSpec(name="x", n=2, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB)
        assert network_cost(DEFAULT_CATALOG, spec) == 0.0

    def test_paper_fft_clusters_cost_the_same(self):
        """The Section 6 FFT comparison needs ~equal prices."""
        eth = PlatformSpec(
            name="e", n=1, N=4, cache_bytes=256 * KB, memory_bytes=64 * MB,
            network=NetworkKind.ETHERNET_10,
        )
        atm = PlatformSpec(
            name="a", n=1, N=3, cache_bytes=256 * KB, memory_bytes=32 * MB,
            network=NetworkKind.ATM_155,
        )
        ce, ca = cluster_cost(DEFAULT_CATALOG, eth), cluster_cost(DEFAULT_CATALOG, atm)
        assert abs(ce - ca) / ce < 0.02
