"""Tests for the Section 6 recommendation rule engine."""

import pytest

from repro.cost.recommend import (
    WorkloadClass,
    classify_workload,
    recommend,
    upgrade_advice,
)
from repro.workloads.params import (
    PAPER_EDGE,
    PAPER_FFT,
    PAPER_LU,
    PAPER_RADIX,
    PAPER_TPCC,
    WorkloadParams,
)


class TestClassification:
    def test_all_five_paper_examples(self):
        """Each paper example lands in the class the paper names it for."""
        assert classify_workload(PAPER_LU) is WorkloadClass.CPU_BOUND_GOOD_LOCALITY
        assert classify_workload(PAPER_FFT) is WorkloadClass.CPU_BOUND_POOR_LOCALITY
        assert classify_workload(PAPER_EDGE) is WorkloadClass.MEMORY_BOUND_GOOD_LOCALITY
        assert classify_workload(PAPER_RADIX) is WorkloadClass.MEMORY_BOUND_POOR_LOCALITY
        assert classify_workload(PAPER_TPCC) is WorkloadClass.MEMORY_AND_IO_BOUND

    def test_io_bound_needs_both_large_beta_and_gamma(self):
        cpu_io = WorkloadParams("x", alpha=1.5, beta=5000.0, gamma=0.1)
        assert classify_workload(cpu_io) is not WorkloadClass.MEMORY_AND_IO_BOUND

    def test_custom_thresholds(self):
        w = WorkloadParams("x", alpha=1.5, beta=50.0, gamma=0.3)
        assert classify_workload(w, gamma_threshold=0.2) in (
            WorkloadClass.MEMORY_BOUND_GOOD_LOCALITY,
        )


class TestRecommendations:
    def test_each_class_names_its_paper_example(self):
        assert recommend(PAPER_LU).paper_example == "LU"
        assert recommend(PAPER_FFT).paper_example == "FFT"
        assert recommend(PAPER_EDGE).paper_example == "EDGE"
        assert recommend(PAPER_RADIX).paper_example == "Radix"
        assert "TPC-C" in recommend(PAPER_TPCC).paper_example

    def test_platform_advice_content(self):
        assert "slow network" in recommend(PAPER_LU).platform
        assert "fast network" in recommend(PAPER_FFT).platform
        assert "SMP" in recommend(PAPER_RADIX).platform
        assert "SMP" in recommend(PAPER_TPCC).platform

    def test_describe(self):
        text = recommend(PAPER_LU).describe()
        assert "because" in text and "LU" in text


class TestUpgradeAdvice:
    def test_two_branches(self):
        assert "network bandwidth" in upgrade_advice(network_bound=True)
        assert "cache/memory" in upgrade_advice(network_bound=False)
