"""Tests for the budget and upgrade optimizers (paper Eq. 6)."""

import pytest

from repro.core.platform import PlatformSpec
from repro.cost.configspace import CandidateSpace
from repro.cost.optimizer import ModelOptions, optimize_cluster, optimize_upgrade
from repro.sim.latencies import NetworkKind
from repro.workloads.params import PAPER_EDGE, PAPER_LU, PAPER_RADIX, PAPER_TPCC

KB, MB = 1024, 1024 * 1024

SMALL_SPACE = CandidateSpace(
    max_machines=6, memory_mb_options=(32, 64), cache_kb_options=(256,)
)


class TestOptimizeCluster:
    def test_best_is_the_minimum(self):
        res = optimize_cluster(PAPER_LU, 8_000.0, space=SMALL_SPACE)
        assert res.best.e_instr_seconds == min(r.e_instr_seconds for r in res.ranking)
        assert res.best.price <= 8_000.0

    def test_ranking_sorted(self):
        res = optimize_cluster(PAPER_EDGE, 10_000.0, space=SMALL_SPACE)
        times = [r.e_instr_seconds for r in res.ranking]
        assert times == sorted(times)

    def test_bigger_budget_never_worse(self):
        small = optimize_cluster(PAPER_RADIX, 6_000.0, space=SMALL_SPACE)
        big = optimize_cluster(PAPER_RADIX, 30_000.0, space=SMALL_SPACE)
        assert big.best.e_instr_seconds <= small.best.e_instr_seconds

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            optimize_cluster(PAPER_LU, 100.0, space=SMALL_SPACE)

    def test_radix_prefers_smp_when_affordable(self):
        """Paper Section 6: Radix (memory bound, poor locality) -> SMP."""
        res = optimize_cluster(PAPER_RADIX, 20_000.0)
        assert res.best.spec.kind.value == "a single SMP"

    def test_tpcc_prefers_smp(self):
        res = optimize_cluster(PAPER_TPCC, 20_000.0)
        assert res.best.spec.N == 1

    def test_describe(self):
        res = optimize_cluster(PAPER_LU, 8_000.0, space=SMALL_SPACE)
        text = res.describe(top=2)
        assert "optimal platform" in text and "<== best" in text

    def test_cost_performance_metric(self):
        res = optimize_cluster(PAPER_LU, 8_000.0, space=SMALL_SPACE)
        r = res.ranking[0]
        assert r.cost_performance == pytest.approx(r.price * r.e_instr_seconds)


class TestOptimizeUpgrade:
    CURRENT = PlatformSpec(
        name="current", n=1, N=2, cache_bytes=256 * KB, memory_bytes=32 * MB,
        network=NetworkKind.ETHERNET_10,
    )

    def test_candidates_contain_the_current_cluster(self):
        res = optimize_upgrade(PAPER_LU, self.CURRENT, 3_000.0, space=SMALL_SPACE)
        for r in res.ranking:
            assert r.spec.N >= 2
            assert r.spec.cache_bytes >= 256 * KB
            assert r.spec.memory_bytes >= 32 * MB

    def test_upgrade_never_slower_than_current(self):
        res = optimize_upgrade(PAPER_EDGE, self.CURRENT, 2_000.0, space=SMALL_SPACE)
        assert res.best.e_instr_seconds <= res.current.e_instr_seconds
        assert res.speedup >= 1.0

    def test_spend_cap_respected(self):
        res = optimize_upgrade(PAPER_LU, self.CURRENT, 1_000.0, space=SMALL_SPACE)
        assert res.best.price <= res.current.price + 1_000.0 + 1e-9

    def test_zero_increase_keeps_something_feasible(self):
        res = optimize_upgrade(PAPER_LU, self.CURRENT, 0.0, space=SMALL_SPACE)
        assert res.best.e_instr_seconds <= res.current.e_instr_seconds

    def test_negative_increase_rejected(self):
        with pytest.raises(ValueError):
            optimize_upgrade(PAPER_LU, self.CURRENT, -1.0)

    def test_describe(self):
        res = optimize_upgrade(PAPER_LU, self.CURRENT, 2_000.0, space=SMALL_SPACE)
        assert "upgrade for LU" in res.describe()


class TestModelOptions:
    def test_sharing_toggle_changes_cluster_prediction(self):
        on = optimize_cluster(
            PAPER_RADIX, 8_000.0, space=SMALL_SPACE, options=ModelOptions(use_sharing=True)
        )
        off = optimize_cluster(
            PAPER_RADIX, 8_000.0, space=SMALL_SPACE, options=ModelOptions(use_sharing=False)
        )
        # with sharing off, clusters look faster than they are
        assert off.best.e_instr_seconds <= on.best.e_instr_seconds


class TestOptimizerProperties:
    def test_upgrade_monotone_in_budget_increase(self):
        current = PlatformSpec(
            name="cur", n=1, N=2, cache_bytes=256 * KB, memory_bytes=32 * MB,
            network=NetworkKind.ETHERNET_10,
        )
        results = [
            optimize_upgrade(PAPER_RADIX, current, inc, space=SMALL_SPACE)
            for inc in (0.0, 1_000.0, 3_000.0, 10_000.0)
        ]
        times = [r.best.e_instr_seconds for r in results]
        assert times == sorted(times, reverse=True)

    def test_design_best_never_beaten_by_any_candidate(self):
        from repro.cost.configspace import enumerate_configurations
        from repro.cost.optimizer import ModelOptions, _predict

        budget = 9_000.0
        res = optimize_cluster(PAPER_EDGE, budget, space=SMALL_SPACE)
        options = ModelOptions()
        for spec, price in enumerate_configurations(budget, space=SMALL_SPACE):
            est = _predict(spec, PAPER_EDGE, options)
            assert res.best.e_instr_seconds <= est.e_instr_seconds + 1e-18
