"""The pruned/parallel/batched search must answer exactly like enumeration.

Property tests over randomized price catalogs, candidate spaces and
budgets: branch-and-bound pruning (any method, any sharding) returns the
identical optimal configuration -- same spec, same price, bit-identical
E(Instr) -- as exhaustive enumeration, and ``method="pareto"`` returns
the exact price/time frontier.  Plus unit coverage of the disk cache
(hits, quarantine), the evaluation memo, the obs counters, and the
upgrade-path emitter.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cost.catalog import PriceCatalog
from repro.cost.configspace import CandidateSpace
from repro.cost.optimizer import ModelOptions, optimize_cluster
from repro.cost.search import (
    DesignQuery,
    DesignSearch,
    SearchOutcome,
    _ParetoFront,
    pareto_frontier,
    upgrade_path,
)
from repro.core.platform import PlatformSpec
from repro.obs.metrics import MetricsRegistry
from repro.sim.latencies import NetworkKind
from repro.workloads.params import (
    PAPER_EDGE,
    PAPER_FFT,
    PAPER_LU,
    PAPER_RADIX,
    WorkloadParams,
)

KB, MB = 1024, 1024 * 1024

SMALL_SPACE = CandidateSpace(
    max_machines=6, memory_mb_options=(32, 64), cache_kb_options=(256,)
)


def _random_catalog(rng: np.random.Generator) -> PriceCatalog:
    return PriceCatalog(
        workstation_base=float(rng.uniform(500, 2000)),
        smp_cpu=float(rng.uniform(800, 2500)),
        smp_chassis_per_socket=float(rng.uniform(500, 2500)),
        memory_per_mb=float(rng.uniform(0.5, 3.0)),
        cache_prices={256: float(rng.uniform(40, 150)), 512: float(rng.uniform(150, 400))},
        network_prices={
            NetworkKind.ETHERNET_10: float(rng.uniform(20, 90)),
            NetworkKind.ETHERNET_100: float(rng.uniform(90, 250)),
            NetworkKind.ATM_155: float(rng.uniform(250, 700)),
        },
    )


def _random_space(rng: np.random.Generator) -> CandidateSpace:
    extra = (int(rng.choice([2, 4])),) if rng.random() < 0.7 else ()
    return CandidateSpace(
        max_machines=int(rng.integers(3, 10)),
        processor_counts=(1, *extra),
        memory_mb_options=(32, 64),
        cache_kb_options=(256, 512),
    )


def _random_workload(rng: np.random.Generator, i: int) -> WorkloadParams:
    return WorkloadParams(
        name=f"w{i}",
        alpha=float(rng.uniform(1.15, 2.2)),
        beta=float(rng.uniform(20.0, 2000.0)),
        gamma=float(rng.uniform(0.1, 0.6)),
        max_distance=float(rng.uniform(1e4, 1e7)) if rng.random() < 0.5 else None,
        sharing_fraction=float(rng.choice([0.0, 0.2])),
        sharing_procs=4,
    )


def _same_best(outcome: SearchOutcome, reference) -> None:
    assert outcome.best.spec == reference.best.spec
    assert outcome.best.price == reference.best.price
    assert outcome.best.e_instr_seconds == reference.best.e_instr_seconds


class TestPrunedMatchesExhaustive:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_catalogs_and_budgets(self, seed: int) -> None:
        rng = np.random.default_rng(5000 + seed)
        catalog = _random_catalog(rng)
        space = _random_space(rng)
        workload = _random_workload(rng, seed)
        budget = float(rng.uniform(4_000, 40_000))
        try:
            exhaustive = optimize_cluster(
                workload, budget, catalog=catalog, space=space
            )
        except ValueError:  # budget drawn below this catalog's cheapest rig
            for method in ("pruned", "pareto"):
                with pytest.raises(ValueError, match="no feasible"):
                    DesignSearch(
                        catalog, space, method=method, metrics=MetricsRegistry()
                    ).search(workload, budget)
            return
        for method in ("pruned", "pareto"):
            engine = DesignSearch(
                catalog, space, method=method, metrics=MetricsRegistry()
            )
            outcome = engine.search(workload, budget)
            _same_best(outcome, exhaustive)
            assert outcome.stats.candidates == exhaustive.evaluated
            assert outcome.stats.evaluated <= outcome.stats.candidates

    def test_paper_workloads_prune_and_agree(self) -> None:
        for workload in (PAPER_FFT, PAPER_LU, PAPER_RADIX, PAPER_EDGE):
            exhaustive = optimize_cluster(workload, 20_000.0)
            engine = DesignSearch(method="pruned", metrics=MetricsRegistry())
            outcome = engine.search(workload, 20_000.0)
            _same_best(outcome, exhaustive)
            assert outcome.stats.pruned > 0, "default space should prune"

    def test_infeasible_budget_raises_like_optimizer(self) -> None:
        engine = DesignSearch(space=SMALL_SPACE, metrics=MetricsRegistry())
        with pytest.raises(ValueError, match="no feasible"):
            engine.search(PAPER_LU, 100.0)
        with pytest.raises(ValueError, match="budget must be positive"):
            engine.search(PAPER_LU, -5.0)

    def test_optimizer_method_pruned_routes_through_engine(self) -> None:
        exhaustive = optimize_cluster(PAPER_LU, 9_000.0, space=SMALL_SPACE)
        pruned = optimize_cluster(
            PAPER_LU, 9_000.0, space=SMALL_SPACE, method="pruned"
        )
        assert pruned.best.spec == exhaustive.best.spec
        assert pruned.best.e_instr_seconds == exhaustive.best.e_instr_seconds
        assert pruned.evaluated <= exhaustive.evaluated


class TestParetoFrontier:
    @pytest.mark.parametrize("seed", range(4))
    def test_pareto_method_keeps_exact_frontier(self, seed: int) -> None:
        rng = np.random.default_rng(7000 + seed)
        catalog = _random_catalog(rng)
        space = _random_space(rng)
        workload = _random_workload(rng, seed)
        budget = float(rng.uniform(6_000, 30_000))
        try:
            exhaustive = optimize_cluster(
                workload, budget, catalog=catalog, space=space
            )
        except ValueError:
            pytest.skip("budget drawn below this catalog's cheapest rig")
        truth = pareto_frontier(exhaustive.ranking)
        outcome = DesignSearch(
            catalog, space, method="pareto", metrics=MetricsRegistry()
        ).search(workload, budget)
        got = outcome.frontier
        assert [(r.spec, r.price, r.e_instr_seconds) for r in got] == [
            (r.spec, r.price, r.e_instr_seconds) for r in truth
        ]

    def test_frontier_is_clean(self) -> None:
        outcome = DesignSearch(
            space=SMALL_SPACE, method="pareto", metrics=MetricsRegistry()
        ).search(PAPER_EDGE, 15_000.0)
        prices = [r.price for r in outcome.frontier]
        times = [r.e_instr_seconds for r in outcome.frontier]
        assert prices == sorted(prices)
        assert times == sorted(times, reverse=True)
        assert outcome.frontier[-1].e_instr_seconds == outcome.best.e_instr_seconds

    def test_running_front_structure(self) -> None:
        front = _ParetoFront()
        assert front.min_seconds_at(1e9) == math.inf
        front.add(100.0, 5.0)
        front.add(200.0, 7.0)  # dearer and slower: ignored
        front.add(200.0, 3.0)
        front.add(50.0, 2.0)  # cheaper and faster: supersedes everything
        assert front.points() == [(50.0, 2.0)]
        assert front.min_seconds_at(49.0) == math.inf
        assert front.min_seconds_at(60.0) == 2.0

    def test_upgrade_path_grows_monotonically(self) -> None:
        outcome = DesignSearch(
            method="pareto", metrics=MetricsRegistry()
        ).search(PAPER_LU, 25_000.0)
        path = upgrade_path(outcome.frontier)
        assert path, "frontier is non-empty, so is the path"
        for earlier, later in zip(path, path[1:]):
            assert later.price >= earlier.price
            assert later.e_instr_seconds < earlier.e_instr_seconds
            assert later.spec.n >= earlier.spec.n
            assert later.spec.N >= earlier.spec.N
            assert later.spec.cache_bytes >= earlier.spec.cache_bytes
            assert later.spec.memory_bytes >= earlier.spec.memory_bytes


class TestParallelSharding:
    @pytest.mark.parametrize("method", ["pruned", "pareto"])
    def test_sharded_search_identical_to_serial(self, method: str) -> None:
        serial = DesignSearch(
            method=method, metrics=MetricsRegistry()
        ).search(PAPER_RADIX, 30_000.0)
        sharded = DesignSearch(
            method=method, jobs=3, metrics=MetricsRegistry()
        ).search(PAPER_RADIX, 30_000.0)
        _same_best(sharded, serial)
        assert sharded.stats.candidates == serial.stats.candidates
        if method == "pareto":
            assert [r.spec for r in sharded.frontier] == [
                r.spec for r in serial.frontier
            ]

    def test_batch_queries_match_single_queries(self) -> None:
        queries = [
            DesignQuery(PAPER_LU, 8_000.0),
            DesignQuery(PAPER_EDGE, 12_000.0),
            DesignQuery(PAPER_LU, 20_000.0),
        ]
        engine = DesignSearch(
            space=SMALL_SPACE, jobs=2, metrics=MetricsRegistry()
        )
        batch = engine.run(queries)
        assert len(batch) == 3
        for q, outcome in zip(queries, batch):
            single = DesignSearch(
                space=SMALL_SPACE, metrics=MetricsRegistry()
            ).search(q.workload, q.budget)
            _same_best(outcome, single)


class TestCachesAndMetrics:
    def test_disk_cache_round_trip(self, tmp_path) -> None:
        registry = MetricsRegistry()
        engine = DesignSearch(
            space=SMALL_SPACE, cache_dir=tmp_path, metrics=registry
        )
        first = engine.search(PAPER_LU, 9_000.0)
        assert not first.stats.from_cache
        second = DesignSearch(
            space=SMALL_SPACE, cache_dir=tmp_path, metrics=registry
        ).search(PAPER_LU, 9_000.0)
        assert second.stats.from_cache
        _same_best(second, first)
        lookups = registry.get("repro_cache_lookups_total")
        assert lookups.labels(kind="design", outcome="hit").value == 1
        assert lookups.labels(kind="design", outcome="miss").value == 1

    def test_corrupt_cache_entry_quarantined(self, tmp_path) -> None:
        registry = MetricsRegistry()
        engine = DesignSearch(
            space=SMALL_SPACE, cache_dir=tmp_path, metrics=registry
        )
        first = engine.search(PAPER_LU, 9_000.0)
        [entry] = list((tmp_path / "design").glob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        again = DesignSearch(
            space=SMALL_SPACE, cache_dir=tmp_path, metrics=registry
        ).search(PAPER_LU, 9_000.0)
        assert not again.stats.from_cache
        _same_best(again, first)
        assert registry.get("repro_cache_corrupt_total").labels(kind="design").value == 1
        assert list((tmp_path / "quarantine").glob("design-*.pkl"))

    def test_memo_reused_across_budgets(self) -> None:
        registry = MetricsRegistry()
        engine = DesignSearch(
            space=SMALL_SPACE, method="exhaustive", metrics=registry
        )
        engine.search(PAPER_LU, 9_000.0)
        hits_before = registry.get("design_memo_hits_total").value
        engine.search(PAPER_LU, 12_000.0)  # superset of the same candidates
        assert registry.get("design_memo_hits_total").value > hits_before

    def test_memo_never_crosses_workloads(self) -> None:
        """Regression: the evaluation memo must key on the workload's
        locality/gamma, not just the candidate's spec and sharing
        parameters.  Two workloads differing only in locality share
        every candidate and every sharing parameter; a shared engine
        must still answer exactly like a fresh one."""
        from dataclasses import replace

        other = replace(PAPER_LU, name="LU-bigbeta", beta=PAPER_LU.beta * 4)
        shared = DesignSearch(space=SMALL_SPACE, metrics=MetricsRegistry())
        shared.search(PAPER_LU, 9_000.0)  # warms the memo with PAPER_LU
        polluted = shared.search(other, 9_000.0)
        fresh = DesignSearch(
            space=SMALL_SPACE, metrics=MetricsRegistry()
        ).search(other, 9_000.0)
        assert polluted.best.spec == fresh.best.spec
        assert polluted.best.e_instr_seconds == fresh.best.e_instr_seconds

    def test_counters_add_up(self) -> None:
        registry = MetricsRegistry()
        outcome = DesignSearch(
            space=SMALL_SPACE, metrics=registry
        ).search(PAPER_RADIX, 10_000.0)
        stats = outcome.stats
        assert stats.candidates == stats.evaluated + stats.pruned + stats.memo_hits
        assert registry.get("design_candidates_total").value == stats.candidates
        assert registry.get("design_evaluations_total").value == stats.evaluated
        assert registry.get("design_pruned_total").value == stats.pruned
        assert 0.0 <= stats.pruning_ratio <= 1.0


class TestUpgradeSearch:
    CURRENT = PlatformSpec(
        name="owned", n=1, N=2, cache_bytes=256 * KB, memory_bytes=32 * MB,
        network=NetworkKind.ETHERNET_10,
    )

    def test_upgrade_search_matches_optimizer_best(self) -> None:
        from repro.cost.optimizer import optimize_upgrade

        reference = optimize_upgrade(
            PAPER_LU, self.CURRENT, 3_000.0, space=SMALL_SPACE
        )
        outcome = DesignSearch(
            space=SMALL_SPACE, metrics=MetricsRegistry()
        ).search_upgrade(PAPER_LU, self.CURRENT, 3_000.0)
        assert outcome.best.e_instr_seconds == reference.best.e_instr_seconds
        assert outcome.best.spec == reference.best.spec

    def test_upgrade_candidates_grow_current(self) -> None:
        outcome = DesignSearch(
            space=SMALL_SPACE, metrics=MetricsRegistry()
        ).search_upgrade(PAPER_EDGE, self.CURRENT, 2_000.0)
        for r in outcome.result.ranking:
            assert r.spec.N >= 2
            assert r.spec.cache_bytes >= 256 * KB
            assert r.spec.memory_bytes >= 32 * MB

    def test_unpriceable_current_rejected_up_front(self) -> None:
        odd = PlatformSpec(
            name="odd-cache", n=1, N=2, cache_bytes=128 * KB,
            memory_bytes=32 * MB, network=NetworkKind.ETHERNET_10,
        )
        with pytest.raises(ValueError, match="cannot be priced"):
            DesignSearch(
                space=SMALL_SPACE, metrics=MetricsRegistry()
            ).search_upgrade(PAPER_LU, odd, 1_000.0)

    def test_negative_increase_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            DesignSearch(metrics=MetricsRegistry()).search_upgrade(
                PAPER_LU, self.CURRENT, -1.0
            )


class TestValidation:
    def test_bad_method_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown search method"):
            DesignSearch(method="genetic", metrics=MetricsRegistry())
        engine = DesignSearch(metrics=MetricsRegistry())
        with pytest.raises(ValueError, match="unknown search method"):
            engine.search(PAPER_LU, 9_000.0, method="genetic")

    def test_bad_chunk_rejected(self) -> None:
        with pytest.raises(ValueError, match="chunk"):
            DesignSearch(chunk=0, metrics=MetricsRegistry())

    def test_pool_knobs_validated(self) -> None:
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            DesignSearch(jobs=0, metrics=MetricsRegistry())
        with pytest.raises(ValueError, match="max_retries"):
            DesignSearch(max_retries=-1, metrics=MetricsRegistry())
