"""The batched model evaluator must be bit-identical to scalar ``evaluate``.

Property tests in the style of ``tests/sim/test_fastpath_equivalence``:
for randomized platforms (SMP / COW / CLUMP, with and without L2, all
networks), randomized workload parameters (alpha, beta, truncation,
gamma, sharing, coherence adjustment, burstiness) and both analytic
modes, ``e_instr_seconds_batch`` must equal per-spec ``evaluate`` with
``==`` on float64 — including ``inf`` on saturated candidates.  The
zero-contention lower bound must never exceed the true E(Instr) in any
mode.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.amat import zero_contention_amat
from repro.core.batch import BatchCase, e_instr_lower_bounds, e_instr_seconds_batch
from repro.core.execution import evaluate, evaluate_batch
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec
from repro.sim.latencies import NetworkKind

KB = 1024
MB = 1024 * KB

_NETWORKS = [NetworkKind.ETHERNET_10, NetworkKind.ETHERNET_100, NetworkKind.ATM_155]


def _random_spec(rng: np.random.Generator, i: int) -> PlatformSpec:
    while True:
        n = int(rng.choice([1, 2, 4, 8]))
        N = int(rng.choice([1, 2, 4, 8, 16]))
        if n * N >= 2:
            break
    cache_kb = int(rng.choice([2, 64, 256, 512]))
    memory_mb = int(rng.choice([4, 32, 64, 128]))
    l2_bytes = None
    if rng.random() < 0.3:
        l2_kb = 4 * cache_kb
        if cache_kb < l2_kb < memory_mb * KB:
            l2_bytes = l2_kb * KB
    return PlatformSpec(
        name=f"rand-{i}",
        n=n,
        N=N,
        cache_bytes=cache_kb * KB,
        memory_bytes=memory_mb * MB,
        network=None if N == 1 else _NETWORKS[int(rng.integers(len(_NETWORKS)))],
        l2_bytes=l2_bytes,
    )


def _random_workload(rng: np.random.Generator) -> tuple[StackDistanceModel, float]:
    alpha = float(rng.uniform(1.15, 2.6))
    beta = float(rng.uniform(5.0, 5000.0))
    max_distance = float(rng.uniform(1e5, 1e8)) if rng.random() < 0.5 else None
    gamma = float(rng.uniform(0.05, 1.0))
    return StackDistanceModel(alpha=alpha, beta=beta, max_distance=max_distance), gamma


def _random_kwargs(rng: np.random.Generator) -> dict:
    return dict(
        remote_rate_adjustment=float(rng.choice([0.0, 0.124, 0.5])),
        barrier_scale=float(rng.choice([0.0, 1.0, 2.5])),
        sharing_fraction=float(rng.choice([0.0, 0.1, 0.6])),
        sharing_fresh_fraction=float(rng.choice([0.0, 0.35, 1.0])),
        cache_capacity_factor=float(rng.choice([0.5, 1.0])),
        contention_boost=float(rng.choice([1.0, 2.0])),
    )


def _scalar_reference(specs, locality, gamma, mode, **kwargs):
    return [
        evaluate(
            spec, locality, gamma, mode=mode, on_saturation="inf", **kwargs
        ).e_instr_seconds
        for spec in specs
    ]


@pytest.mark.parametrize("mode", ["open", "throttled"])
@pytest.mark.parametrize("seed", range(8))
def test_batch_matches_scalar_bitwise(mode: str, seed: int) -> None:
    rng = np.random.default_rng(1234 + seed)
    specs = [_random_spec(rng, i) for i in range(12)]
    locality, gamma = _random_workload(rng)
    kwargs = _random_kwargs(rng)
    expected = _scalar_reference(specs, locality, gamma, mode, **kwargs)
    got = e_instr_seconds_batch(
        specs, locality, gamma, mode=mode, on_saturation="inf", **kwargs
    )
    assert got.dtype == np.float64
    for j, (want, have) in enumerate(zip(expected, got)):
        assert want == have, (
            f"mismatch at candidate {j} ({specs[j].describe()}): "
            f"scalar={want!r} batch={have!r}"
        )


@pytest.mark.parametrize("mode", ["open", "throttled", "mva"])
def test_lower_bound_is_admissible(mode: str) -> None:
    rng = np.random.default_rng(99)
    for trial in range(6):
        specs = [_random_spec(rng, i) for i in range(10)]
        locality, gamma = _random_workload(rng)
        kwargs = _random_kwargs(rng)
        boost = kwargs.pop("contention_boost")
        bounds = e_instr_lower_bounds(specs, locality, gamma, **kwargs)
        truth = _scalar_reference(
            specs, locality, gamma, mode, contention_boost=boost, **kwargs
        )
        for j, (lb, t) in enumerate(zip(bounds, truth)):
            assert math.isfinite(lb)
            assert lb <= t, (
                f"bound not admissible for candidate {j} in mode {mode}: "
                f"LB={lb!r} > E={t!r} ({specs[j].describe()})"
            )


def test_lower_bound_matches_scalar_reference() -> None:
    rng = np.random.default_rng(7)
    specs = [_random_spec(rng, i) for i in range(10)]
    locality, gamma = _random_workload(rng)
    kwargs = _random_kwargs(rng)
    kwargs.pop("contention_boost")
    ccf = kwargs.pop("cache_capacity_factor")
    bounds = e_instr_lower_bounds(
        specs, locality, gamma, cache_capacity_factor=ccf, **kwargs
    )
    for spec, lb in zip(specs, bounds):
        amat = zero_contention_amat(
            spec.hierarchy(cache_capacity_factor=ccf), locality, gamma, **kwargs
        )
        want = ((1.0 + gamma * amat) / spec.total_processors) / spec.cpu_hz
        assert lb == pytest.approx(want, rel=1e-12)


def test_per_case_knobs_match_scalar() -> None:
    """BatchCase carries per-candidate sharing / coherence adjustments."""
    rng = np.random.default_rng(21)
    locality, gamma = _random_workload(rng)
    cases = []
    for i in range(8):
        spec = _random_spec(rng, i)
        cases.append(
            BatchCase(
                spec,
                sharing_fraction=float(rng.choice([0.0, 0.25, 0.8])),
                sharing_fresh_fraction=float(rng.uniform(0.0, 1.0)),
                remote_rate_adjustment=0.124 if spec.N > 1 else 0.0,
            )
        )
    got = e_instr_seconds_batch(
        cases, locality, gamma, mode="throttled", on_saturation="inf"
    )
    for case, have in zip(cases, got):
        want = evaluate(
            case.spec,
            locality,
            gamma,
            mode="throttled",
            on_saturation="inf",
            remote_rate_adjustment=case.remote_rate_adjustment,
            sharing_fraction=case.sharing_fraction,
            sharing_fresh_fraction=case.sharing_fresh_fraction,
        ).e_instr_seconds
        assert want == have


def test_mva_mode_falls_back_to_scalar() -> None:
    loc = StackDistanceModel(alpha=1.6, beta=800.0)
    smp = PlatformSpec("mva-smp", n=4, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB)
    cow = PlatformSpec(
        "mva-cow", n=1, N=4, cache_bytes=256 * KB, memory_bytes=64 * MB,
        network=NetworkKind.ATM_155,
    )
    got = e_instr_seconds_batch(
        [smp, cow], loc, 0.3, mode="mva", on_saturation="inf"
    )
    for spec, have in zip([smp, cow], got):
        want = evaluate(spec, loc, 0.3, mode="mva", on_saturation="inf").e_instr_seconds
        assert want == have


def test_force_scalar_lane_identical() -> None:
    rng = np.random.default_rng(4)
    specs = [_random_spec(rng, i) for i in range(6)]
    locality, gamma = _random_workload(rng)
    fast = e_instr_seconds_batch(
        specs, locality, gamma, mode="throttled", on_saturation="inf"
    )
    slow = e_instr_seconds_batch(
        specs, locality, gamma, mode="throttled", on_saturation="inf", force_scalar=True
    )
    assert np.array_equal(fast, slow)


def test_saturation_raise_matches_scalar() -> None:
    """A saturating batch raises the same error the scalar lane raises."""
    from repro.core.contention import QueueSaturationError

    loc = StackDistanceModel(alpha=1.2, beta=5000.0)
    hot = PlatformSpec(
        "hot", n=1, N=16, cache_bytes=2 * KB, memory_bytes=4 * MB,
        network=NetworkKind.ETHERNET_10,
    )
    with pytest.raises(QueueSaturationError):
        evaluate(hot, loc, 0.9, mode="open")
    with pytest.raises(QueueSaturationError):
        e_instr_seconds_batch([hot], loc, 0.9, mode="open")


def test_empty_batch_and_validation() -> None:
    loc = StackDistanceModel(alpha=1.6, beta=800.0)
    assert e_instr_seconds_batch([], loc, 0.3).size == 0
    assert e_instr_lower_bounds([], loc, 0.3).size == 0
    smp = PlatformSpec("v", n=2, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB)
    with pytest.raises(ValueError, match="gamma"):
        e_instr_seconds_batch([smp], loc, 0.0)
    with pytest.raises(ValueError, match="mode"):
        e_instr_seconds_batch([smp], loc, 0.3, mode="bogus")
    with pytest.raises(ValueError, match="sharing_fraction"):
        e_instr_seconds_batch([smp], loc, 0.3, sharing_fraction=1.5)
    with pytest.raises(ValueError, match="contention_boost"):
        e_instr_seconds_batch([smp], loc, 0.3, contention_boost=0.5)


def test_mixed_locality_falls_back_to_scalar() -> None:
    """Duck-typed localities (workload mixtures) must keep working.

    ``MixedLocality`` only promises ``tail``/``cdf``/``rescaled``, so the
    batch lane must route it through scalar ``evaluate`` and the lower
    bound through scalar ``zero_contention_amat`` — bit-identical and
    admissible, exactly like the power-law path.
    """
    from repro.workloads.mix import mix_workloads
    from repro.workloads.params import PAPER_FFT, PAPER_RADIX

    mixed = mix_workloads([PAPER_FFT, PAPER_RADIX], [0.7, 0.3], name="blend")
    rng = np.random.default_rng(17)
    specs = [_random_spec(rng, i) for i in range(8)]
    for mode in ("open", "throttled"):
        got = e_instr_seconds_batch(
            specs, mixed.locality, mixed.gamma, mode=mode, on_saturation="inf"
        )
        want = _scalar_reference(specs, mixed.locality, mixed.gamma, mode)
        assert list(got) == want
    bounds = e_instr_lower_bounds(specs, mixed.locality, mixed.gamma)
    truth = _scalar_reference(specs, mixed.locality, mixed.gamma, "throttled")
    for spec, lb, t in zip(specs, bounds, truth):
        assert math.isfinite(lb) and lb <= t
        amat = zero_contention_amat(spec.hierarchy(), mixed.locality, mixed.gamma)
        assert lb == ((1.0 + mixed.gamma * amat) / spec.total_processors) / spec.cpu_hz


def test_optimizer_accepts_workload_mixture() -> None:
    """The pruned search answers mixture queries identically to exhaustive."""
    from repro.cost import DesignSearch, optimize_cluster
    from repro.workloads.mix import mix_workloads
    from repro.workloads.params import PAPER_EDGE, PAPER_LU

    mixed = mix_workloads([PAPER_LU, PAPER_EDGE], [0.5, 0.5], name="lu-edge")
    exhaustive = optimize_cluster(mixed, budget=12_000.0)
    outcome = DesignSearch(method="pruned").search(mixed, budget=12_000.0)
    assert outcome.best.spec == exhaustive.best.spec
    assert outcome.best.e_instr_seconds == exhaustive.best.e_instr_seconds


def test_evaluate_batch_wrapper_round_trip() -> None:
    loc = StackDistanceModel(alpha=1.7, beta=400.0)
    specs = [
        PlatformSpec("w1", n=4, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB),
        PlatformSpec(
            "w2", n=2, N=4, cache_bytes=512 * KB, memory_bytes=128 * MB,
            network=NetworkKind.ATM_155,
        ),
    ]
    got = evaluate_batch(specs, loc, 0.25, mode="throttled", on_saturation="inf")
    for spec, have in zip(specs, got):
        want = evaluate(
            spec, loc, 0.25, mode="throttled", on_saturation="inf"
        ).e_instr_seconds
        assert want == have
