"""Tests for configuration-space enumeration."""

import pytest

from repro.cost.catalog import DEFAULT_CATALOG
from repro.cost.configspace import CandidateSpace, enumerate_configurations
from repro.cost.model import cluster_cost
from repro.sim.latencies import NetworkKind


class TestEnumeration:
    def test_every_candidate_fits_the_budget(self):
        for spec, price in enumerate_configurations(8_000.0):
            assert price <= 8_000.0

    def test_price_matches_cost_model(self):
        for spec, price in enumerate_configurations(6_000.0):
            # spec carries full-size capacities at size_scale=1
            assert price == pytest.approx(cluster_cost(DEFAULT_CATALOG, spec))

    def test_no_uniprocessor_platforms(self):
        for spec, _ in enumerate_configurations(50_000.0):
            assert spec.total_processors >= 2

    def test_single_machines_have_no_network(self):
        for spec, _ in enumerate_configurations(20_000.0):
            assert (spec.N == 1) == (spec.network is None)

    def test_bigger_budget_strictly_more_options(self):
        small = sum(1 for _ in enumerate_configurations(5_000.0))
        big = sum(1 for _ in enumerate_configurations(20_000.0))
        assert big > small > 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            list(enumerate_configurations(0.0))


class TestCandidateSpace:
    def test_restricted_space(self):
        space = CandidateSpace(
            max_machines=2,
            processor_counts=(1,),
            cache_kb_options=(256,),
            memory_mb_options=(32,),
            networks=(NetworkKind.ETHERNET_10,),
        )
        specs = list(enumerate_configurations(50_000.0, space=space))
        assert len(specs) == 1  # only N=2 qualifies (n*N >= 2)
        assert specs[0][0].N == 2

    def test_size_scale_shrinks_spec_not_price(self):
        space = CandidateSpace(size_scale=64)
        for spec, price in enumerate_configurations(6_000.0, space=space):
            assert spec.cache_bytes <= 512 * 1024 // 64
            # price still quotes the full-size parts
            assert price >= 1_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateSpace(max_machines=0)
        with pytest.raises(ValueError):
            CandidateSpace(processor_counts=())
        with pytest.raises(ValueError):
            CandidateSpace(size_scale=0)

    def test_names_are_informative(self):
        spec, _ = next(iter(enumerate_configurations(20_000.0)))
        assert "n=" in spec.name and "KB" in spec.name


class TestL2Axis:
    def test_default_space_has_no_l2(self):
        for spec, _ in enumerate_configurations(20_000.0):
            assert spec.l2_bytes is None

    def test_l2_options_enumerate_and_price(self):
        space = CandidateSpace(
            max_machines=2, processor_counts=(2,), cache_kb_options=(256,),
            memory_mb_options=(32,), l2_kb_options=(None, 2048),
        )
        specs = list(enumerate_configurations(50_000.0, space=space))
        with_l2 = [s for s, _ in specs if s.l2_bytes is not None]
        without = [s for s, _ in specs if s.l2_bytes is None]
        assert with_l2 and without
        # the L2 variant of the same shape costs exactly the module price
        price = {s.name: p for s, p in specs}
        base = [p for s, p in specs if s.l2_bytes is None and s.N == 1][0]
        l2 = [p for s, p in specs if s.l2_bytes is not None and s.N == 1][0]
        assert l2 - base == pytest.approx(DEFAULT_CATALOG.l2_price(2048))

    def test_unknown_l2_size_rejected(self):
        space = CandidateSpace(
            max_machines=1, processor_counts=(2,), cache_kb_options=(256,),
            memory_mb_options=(32,), l2_kb_options=(999,),
        )
        with pytest.raises(KeyError, match="L2 option"):
            list(enumerate_configurations(50_000.0, space=space))

    def test_l2_can_win_for_memory_bound_workloads(self):
        """The hierarchy-length extension pays for itself on Radix."""
        from repro.cost.optimizer import optimize_cluster
        from repro.workloads.params import PAPER_RADIX

        space = CandidateSpace(l2_kb_options=(None, 2048))
        res = optimize_cluster(PAPER_RADIX, 20_000.0, space=space)
        assert res.best.spec.l2_bytes is not None
