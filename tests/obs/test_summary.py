"""The --metrics-out payload and the `repro obs summary` / `repro
simulate` CLI paths (mirrors the CI observability smoke)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.summary import SCHEMA, build_payload, summarize, write_payload
from repro.obs.timeline import Timeline, TimelineWindow


@pytest.fixture
def payload():
    reg = MetricsRegistry()
    reg.counter("repro_cache_lookups_total", "lookups", labelnames=("kind", "outcome")).labels(
        kind="sim", outcome="miss"
    ).inc(2)
    tracer = Tracer()
    with tracer.span("report"):
        with tracer.span("table2"):
            pass
    tl = Timeline(
        sample_every=100.0,
        total_cycles=250.0,
        resources=("memory bus",),
        windows=(
            TimelineWindow(0, 0.0, 100.0, {"references": 10, "cache_hits": 9}),
            TimelineWindow(2, 200.0, 250.0, {"references": 4, "cache_hits": 1}),
        ),
    )
    return build_payload(registry=reg, tracer=tracer, timelines={"FFT@smp": tl})


def test_build_payload_schema(payload):
    assert payload["schema"] == SCHEMA
    assert payload["metrics"]["metrics"][0]["name"] == "repro_cache_lookups_total"
    assert payload["spans"][0]["name"] == "report"
    assert payload["timelines"]["FFT@smp"]["total_cycles"] == 250.0
    json.dumps(payload)  # must be JSON-serializable as-is


def test_summarize_renders_all_sections(payload):
    text = summarize(payload)
    assert text.startswith("# Observability summary")
    assert "## Spans" in text and "report" in text and "  table2" in text
    assert "## Metrics" in text and "repro_cache_lookups_total" in text
    assert "kind=sim,outcome=miss} = 2" in text
    assert "### FFT@smp" in text
    assert "timeline: 250 cycles" in text


def test_summarize_rejects_unknown_schema(payload):
    with pytest.raises(ValueError):
        summarize({**payload, "schema": "repro-obs/99"})


def test_summarize_empty_payload():
    text = summarize(build_payload(registry=MetricsRegistry(), tracer=Tracer()))
    assert "(none recorded)" in text
    assert "--sample-every" in text  # hint at how to get timelines


def test_write_payload_round_trip(tmp_path, payload):
    path = write_payload(
        tmp_path / "metrics.json",
        registry=MetricsRegistry(),
        tracer=Tracer(),
        timelines={"FFT@smp": Timeline.from_obj(payload["timelines"]["FFT@smp"])},
    )
    restored = json.loads(path.read_text())
    assert restored["schema"] == SCHEMA
    assert restored["timelines"]["FFT@smp"] == payload["timelines"]["FFT@smp"]


def test_payload_profiles_section(payload):
    """Profiles enter the payload only when present, survive the JSON
    round trip bit-exactly, and render their own summary section."""
    from repro.obs.profile import CycleProfile

    assert "profiles" not in payload  # absent when none were recorded
    prof = CycleProfile(
        cycles={("cpu", "compute"): 2.5, ("memory", "local_memory"): 1.5},
        proc_cycles=4.0,
    )
    reg = MetricsRegistry()
    with_prof = build_payload(registry=reg, profiles={"FFT@smp": prof})
    json.dumps(with_prof)
    back = CycleProfile.from_obj(with_prof["profiles"]["FFT@smp"])
    assert back.cycles == prof.cycles
    assert back.proc_cycles == prof.proc_cycles

    text = summarize(with_prof)
    assert "## Cycle attribution" in text
    assert "FFT@smp" in text
    assert "compute" in text

    # a payload without the key renders without the section
    assert "## Cycle attribution" not in summarize(
        build_payload(registry=reg, tracer=Tracer())
    )


def test_profiles_accepts_pre_rendered_objects():
    """write_payload callers may pass already-serialized profile dicts
    (the CLI does after a cache hit); they pass through untouched."""
    from repro.obs.profile import CycleProfile

    prof = CycleProfile(cycles={("cpu", "compute"): 1.0}, proc_cycles=1.0)
    payload = build_payload(
        registry=MetricsRegistry(), profiles={"a": prof.to_obj()}
    )
    assert payload["profiles"]["a"] == prof.to_obj()


def test_cli_simulate_and_obs_summary(tmp_path, capsys):
    """End-to-end: simulate a tiny cell with sampling, render the payload."""
    out = tmp_path / "metrics.json"
    rc = main(
        [
            "simulate", "--app", "FFT", "--seed", "0",
            "--app-arg", "points=1024",
            "--machines", "1", "--procs-per-machine", "4",
            "--cache-kb", "2", "--memory-mb", "1",
            "--sample-every", "20000", "--metrics-out", str(out),
            "--cache-dir", "", "--jobs", "1",
        ]
    )
    sim_stdout = capsys.readouterr().out
    assert rc == 0
    assert "FFT on cli:" in sim_stdout
    assert "timeline:" in sim_stdout
    assert out.exists()

    rc = main(["obs", "summary", str(out)])
    text = capsys.readouterr().out
    assert rc == 0
    assert "# Observability summary" in text
    assert "simulate:FFT@cli" in text
    assert "### FFT@cli" in text


def test_cli_obs_summary_max_windows(tmp_path, capsys, payload):
    path = tmp_path / "p.json"
    path.write_text(json.dumps(payload))
    assert main(["obs", "summary", str(path), "--max-windows", "1"]) == 0
    text = capsys.readouterr().out
    assert "timeline:" in text
