"""Span tracing and the structured logger."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import log as obslog
from repro.obs.spans import Span, Tracer, get_tracer, span


# -- spans --------------------------------------------------------------
def test_spans_nest_and_time():
    tracer = Tracer()
    with tracer.span("outer", phase="x"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    (root,) = tracer.roots
    assert root.name == "outer"
    assert root.attrs == {"phase": "x"}
    assert [c.name for c in root.children] == ["inner", "inner2"]
    assert root.duration >= root.children[0].duration >= 0.0
    assert not tracer._stack  # everything closed


def test_span_closes_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert tracer.roots[0].duration >= 0.0
    assert not tracer._stack


def test_span_round_trip_and_attach():
    worker = Tracer()
    with worker.span("simulate:FFT@smp", worker=1234):
        pass
    obj = worker.roots[0].to_obj()
    obj = json.loads(json.dumps(obj))  # across a process boundary

    parent = Tracer()
    with parent.span("prefetch"):
        parent.attach(Span.from_obj(obj))
    (root,) = parent.roots
    (child,) = root.children
    assert child.name == "simulate:FFT@smp"
    assert child.attrs == {"worker": 1234}
    assert child.to_obj() == obj


def test_describe_renders_tree():
    tracer = Tracer()
    with tracer.span("report"):
        with tracer.span("table2"):
            pass
    text = tracer.describe()
    lines = text.split("\n")
    assert lines[0].startswith("report")
    assert lines[1].startswith("  table2")
    assert all(line.endswith("ms") for line in lines)


def test_module_level_span_uses_default_tracer():
    tracer = get_tracer()
    before = len(tracer.roots)
    with span("test-span"):
        pass
    assert tracer.roots[-1].name == "test-span"
    del tracer.roots[before:]  # leave global state as found


def test_tracer_clear():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.clear()
    assert tracer.roots == [] and tracer._stack == []


# -- structured log -----------------------------------------------------
@pytest.fixture
def captured_log():
    """Route the global logger into a buffer, restoring config after."""
    cfg = obslog._config
    saved = (cfg.level, cfg.stream, cfg.json_lines)
    buf = io.StringIO()
    obslog.configure(level="info", stream=buf, json_lines=False)
    yield buf
    cfg.level, cfg.stream, cfg.json_lines = saved


def test_log_line_format(captured_log):
    obslog.get_logger("repro.test").info("hello", cell="FFT@smp", n=4)
    line = captured_log.getvalue().strip()
    assert " INFO    repro.test: hello cell=FFT@smp n=4" in line
    assert line.split(" ")[0].endswith("Z")  # UTC timestamp first


def test_log_level_filtering(captured_log):
    log = obslog.get_logger("repro.test")
    log.debug("invisible")
    assert captured_log.getvalue() == ""
    assert not log.enabled_for("debug")
    obslog.set_level("debug")
    log.debug("visible")
    assert "visible" in captured_log.getvalue()
    obslog.set_level("error")
    log.warning("also invisible")
    assert "also invisible" not in captured_log.getvalue()


def test_log_json_lines(captured_log):
    obslog.configure(json_lines=True)
    obslog.get_logger("repro.test").warning("careful", path="/tmp/x")
    record = json.loads(captured_log.getvalue())
    assert record["level"] == "WARNING"
    assert record["logger"] == "repro.test"
    assert record["msg"] == "careful"
    assert record["path"] == "/tmp/x"


def test_unknown_level_raises():
    with pytest.raises(ValueError):
        obslog.set_level("loud")


def test_get_logger_is_cached():
    assert obslog.get_logger("repro.x") is obslog.get_logger("repro.x")
