"""Simulated-time interval sampling: the PR's acceptance properties.

For every backend family and both execution lanes:

* the per-window counters sum EXACTLY to the end-of-run
  ``BackendStats`` totals (ints compared with ``==``);
* barrier wait and resource busy cycles sum to the engine's totals;
* the scalar and fastpath lanes produce bit-identical timelines;
* enabling sampling does not perturb the simulation result.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.timeline import (
    STAT_FIELDS,
    Timeline,
    TimelineRecorder,
    TimelineWindow,
)
from repro.sim.engine import SimulationEngine

from tests.sim.test_fastpath_equivalence import SPECS, _SPEC_IDS, _random_run

SAMPLE_EVERY = 5000.0


def _run_pair(spec, seed):
    run = _random_run(spec.total_processors, seed)
    sampled = SimulationEngine(
        spec, run, fastpath=True, sample_every=SAMPLE_EVERY
    ).execute()
    plain = SimulationEngine(spec, run, fastpath=True).execute()
    return run, sampled, plain


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_window_sums_equal_totals(spec, seed):
    _, sampled, _ = _run_pair(spec, seed)
    tl = sampled.timeline
    assert tl is not None
    totals = tl.totals()
    for field in STAT_FIELDS:
        assert totals.get(field, 0) == getattr(sampled.stats, field), field
    assert totals.get("barrier_wait_cycles", 0.0) == pytest.approx(
        sampled.barrier_wait_cycles, rel=1e-12, abs=1e-9
    )
    for resource in tl.resources:
        assert totals.get(f"busy:{resource}", 0.0) == pytest.approx(
            sampled.utilizations[resource] * sampled.total_cycles,
            rel=1e-9, abs=1e-6,
        ), resource
        # traffic counts are integers and must be non-negative
        reqs = totals.get(f"requests:{resource}", 0)
        assert reqs == int(reqs) >= 0


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_sampling_does_not_perturb_results(spec, seed):
    _, sampled, plain = _run_pair(spec, seed)
    assert plain.timeline is None
    assert sampled.total_cycles == plain.total_cycles
    assert sampled.per_process_cycles == plain.per_process_cycles
    assert sampled.barrier_wait_cycles == plain.barrier_wait_cycles
    assert sampled.stats.as_dict() == plain.stats.as_dict()


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_lanes_produce_identical_timelines(spec, seed):
    run = _random_run(spec.total_processors, seed)
    batched = SimulationEngine(
        spec, run, fastpath=True, sample_every=SAMPLE_EVERY
    ).execute()
    scalar = SimulationEngine(
        spec, run, fastpath=False, sample_every=SAMPLE_EVERY
    ).execute()
    assert batched.timeline.to_obj() == scalar.timeline.to_obj()


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
def test_window_invariants(spec):
    _, sampled, _ = _run_pair(spec, 0)
    tl = sampled.timeline
    assert tl.sample_every == SAMPLE_EVERY
    assert tl.total_cycles == sampled.total_cycles
    indices = [w.index for w in tl.windows]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)
    for w in tl.windows:
        assert w.start == w.index * SAMPLE_EVERY
        assert 0 < w.end - w.start <= SAMPLE_EVERY
        assert w.counters, "empty windows must be omitted"
    assert tl.windows[-1].end == pytest.approx(
        min((tl.windows[-1].index + 1) * SAMPLE_EVERY, tl.total_cycles)
    )


def test_engine_rejects_non_positive_sample_every():
    spec = SPECS[0]
    run = _random_run(spec.total_processors, 0)
    with pytest.raises(ValueError):
        SimulationEngine(spec, run, sample_every=0.0)
    with pytest.raises(ValueError):
        SimulationEngine(spec, run, sample_every=-100.0)
    with pytest.raises(ValueError):
        TimelineRecorder(0.0, backend=None)


def test_timeline_round_trips_through_json():
    _, sampled, _ = _run_pair(SPECS[0], 0)
    tl = sampled.timeline
    restored = Timeline.from_obj(json.loads(json.dumps(tl.to_obj())))
    assert restored.to_obj() == tl.to_obj()
    assert restored.totals() == tl.totals()


def test_describe_merges_but_preserves_sums():
    _, sampled, _ = _run_pair(SPECS[0], 0)
    tl = sampled.timeline
    assert len(tl.windows) > 2
    merged = tl._merged(group=4)
    merged_totals: dict = {}
    for w in merged:
        for k, v in w.counters.items():
            merged_totals[k] = merged_totals.get(k, 0) + v
    assert merged_totals == tl.totals()
    wide = tl.describe(max_rows=2)
    narrow = tl.describe(max_rows=10_000)
    assert wide.count("\n") < narrow.count("\n")
    assert "timeline:" in wide


def test_window_helpers():
    w = TimelineWindow(
        index=2,
        start=10_000.0,
        end=15_000.0,
        counters={"references": 80, "cache_hits": 60, "busy:memory bus": 2500.0},
    )
    assert w.references == 80
    assert w.miss_ratio == pytest.approx(0.25)
    assert w.utilization("memory bus") == pytest.approx(0.5)
    assert w.utilization("network") == 0.0
    assert w.get("missing") == 0.0
    empty = TimelineWindow(index=0, start=0.0, end=1.0, counters={})
    assert empty.miss_ratio == 0.0


def test_empty_timeline_describe():
    tl = Timeline(sample_every=100.0, total_cycles=0.0, resources=(), windows=())
    assert "no events" in tl.describe()
    assert tl.totals() == {}
