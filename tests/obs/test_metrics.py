"""Metrics registry: counter/gauge/histogram semantics and exporters.

Includes the Prometheus text-format lint: every exposition line the
registry emits must parse under the 0.0.4 grammar, histograms must
expose cumulative, monotone ``_bucket`` series ending at ``+Inf`` with
a matching ``_count``.
"""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


def test_counter_basic():
    reg = MetricsRegistry()
    c = reg.counter("refs_total", "references")
    assert c.value == 0
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_are_independent_series():
    reg = MetricsRegistry()
    c = reg.counter("lookups_total", labelnames=("kind", "outcome"))
    c.labels(kind="sim", outcome="hit").inc()
    c.labels(kind="sim", outcome="hit").inc()
    c.labels(kind="sim", outcome="miss").inc()
    samples = {tuple(l.values()): s.value for l, s in c.samples()}
    assert samples == {("sim", "hit"): 2.0, ("sim", "miss"): 1.0}


def test_labeled_metric_rejects_wrong_labels():
    reg = MetricsRegistry()
    c = reg.counter("x_total", labelnames=("kind",))
    with pytest.raises(ValueError):
        c.labels(wrong="sim")
    with pytest.raises(ValueError):
        c.inc()  # labeled metric has no solo series


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("util")
    g.set(0.5)
    g.inc(0.25)
    g.dec(0.5)
    assert g.value == pytest.approx(0.25)


def test_histogram_observe_and_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("dur_seconds", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(v)
    series = h._solo()
    # bisect_left puts a value equal to an edge in that edge's bucket
    assert series.cumulative() == [(1.0, 2), (10.0, 3), (100.0, 4), (math.inf, 5)]
    assert series.count == 5
    assert series.sum == pytest.approx(556.5)


def test_histogram_rejects_bad_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("h1", buckets=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        reg.histogram("h2", buckets=(2.0, 1.0))


def test_log_buckets_edges():
    edges = log_buckets(1e-3, 1e3, per_decade=1)
    assert edges == tuple(10.0 ** k for k in range(-3, 4))
    finer = log_buckets(0.5, 2.0, per_decade=3)
    assert finer[0] <= 0.5 and finer[-1] >= 2.0
    assert list(finer) == sorted(finer)
    with pytest.raises(ValueError):
        log_buckets(0, 1)
    with pytest.raises(ValueError):
        log_buckets(2.0, 1.0)


def test_registry_get_or_create_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("c_total", "help", labelnames=("k",))
    b = reg.counter("c_total", "ignored", labelnames=("k",))
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("c_total")  # kind mismatch
    with pytest.raises(ValueError):
        reg.counter("c_total", labelnames=("other",))  # labelnames mismatch


def test_registry_rejects_invalid_names():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad name")
    with pytest.raises(ValueError):
        reg.counter("ok_total", labelnames=("bad-label",))


@pytest.fixture
def populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_lookups_total", "disk lookups", labelnames=("kind", "outcome"))
    c.labels(kind="sim", outcome="hit").inc(3)
    c.labels(kind="sim", outcome="miss").inc()
    reg.gauge("repro_util", "bus utilization").set(0.875)
    h = reg.histogram("repro_span_seconds", "span durations", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(5.0)
    return reg


def test_json_export_round_trips(populated):
    obj = json.loads(populated.to_json())
    by_name = {f["name"]: f for f in obj["metrics"]}
    assert set(by_name) == {"repro_lookups_total", "repro_util", "repro_span_seconds"}
    counter = by_name["repro_lookups_total"]
    assert counter["kind"] == "counter"
    assert counter["labelnames"] == ["kind", "outcome"]
    values = {tuple(s["labels"].values()): s["value"] for s in counter["series"]}
    assert values == {("sim", "hit"): 3.0, ("sim", "miss"): 1.0}
    hist = by_name["repro_span_seconds"]["series"][0]
    assert hist["count"] == 2
    assert hist["buckets"][-1] == ["+Inf", 2]


def test_csv_export(populated):
    lines = populated.to_csv().strip().split("\n")
    assert lines[0] == "metric,kind,labels,field,value"
    assert "repro_lookups_total,counter,kind=sim;outcome=hit,value,3" in lines
    assert "repro_util,gauge,,value,0.875" in lines
    assert "repro_span_seconds,histogram,,le=+Inf,2" in lines
    assert "repro_span_seconds,histogram,,count,2" in lines


def test_csv_escapes_label_structural_characters():
    """`;` and `=` inside label values are backslash-escaped so the
    ``k=v;k=v`` cell parses unambiguously."""
    reg = MetricsRegistry()
    reg.counter("c_total", labelnames=("p",)).labels(p="a=b;c\\d").inc()
    lines = reg.to_csv().strip().split("\n")
    assert r"c_total,counter,p=a\=b\;c\\d,value,1" in lines


def test_csv_quotes_cells_with_commas_and_quotes():
    """Label values containing CSV's own structural characters get the
    whole labels cell RFC 4180-quoted, inner quotes doubled."""
    reg = MetricsRegistry()
    reg.counter("c_total", labelnames=("p",)).labels(p='x,y "z"').inc()
    line = [l for l in reg.to_csv().split("\n") if l.startswith("c_total")][0]
    assert line == 'c_total,counter,"p=x,y ""z""",value,1'


def test_csv_quotes_cells_with_newlines():
    # the quoted newline keeps the row count honest for a CSV parser
    import csv
    import io

    reg = MetricsRegistry()
    reg.counter("c_total", labelnames=("p",)).labels(p="a\nb").inc()
    assert '"p=a\nb"' in reg.to_csv()
    rows = list(csv.reader(io.StringIO(reg.to_csv())))
    assert len(rows) == 2
    assert rows[1][2] == "p=a\nb"


def test_csv_simple_labels_stay_byte_identical():
    reg = MetricsRegistry()
    reg.counter("c_total", labelnames=("kind", "outcome")).labels(
        kind="sim", outcome="hit"
    ).inc()
    lines = reg.to_csv().strip().split("\n")
    assert "c_total,counter,kind=sim;outcome=hit,value,1" in lines


def test_csv_label_round_trip():
    """A parser reversing the documented escaping recovers the exact
    original label values, however hostile."""
    import csv
    import io
    import re as _re

    def unescape_labels(cell):
        out = {}
        for pair in _re.split(r"(?<!\\);", cell):
            k, v = _re.split(r"(?<!\\)=", pair, maxsplit=1)
            out[k] = _re.sub(r"\\(.)", r"\1", v)
        return out

    hostile = {"a": "x=y;z\\w", "b": 'comma, "quote"\nnewline'}
    reg = MetricsRegistry()
    reg.counter("c_total", labelnames=tuple(hostile)).labels(**hostile).inc()
    rows = list(csv.reader(io.StringIO(reg.to_csv())))
    assert unescape_labels(rows[1][2]) == hostile


# -- Prometheus text-format lint ---------------------------------------
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?P<value>[+-]?(Inf|[0-9][0-9.e+-]*))$"
)


def test_prometheus_lint(populated):
    text = populated.to_prometheus()
    assert text.endswith("\n")
    typed: dict[str, str] = {}
    samples: list[tuple[str, str, float]] = []
    for line in text.strip().split("\n"):
        if line.startswith("#"):
            assert _COMMENT.match(line), f"bad comment line: {line!r}"
            parts = line.split(None, 3)
            if parts[1] == "TYPE":
                typed[parts[2]] = parts[3]
            continue
        m = _SAMPLE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        value = float(m.group("value").replace("Inf", "inf"))
        samples.append((m.group("name"), m.group("labels") or "", value))

    assert typed == {
        "repro_lookups_total": "counter",
        "repro_util": "gauge",
        "repro_span_seconds": "histogram",
    }
    # every sample belongs to a declared family (histograms via suffixes)
    for name, _, _ in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, name

    buckets = [s for s in samples if s[0] == "repro_span_seconds_bucket"]
    counts = [v for _, _, v in buckets]
    assert counts == sorted(counts), "bucket series must be cumulative"
    assert 'le="+Inf"' in buckets[-1][1]
    (count,) = [v for n, _, v in samples if n == "repro_span_seconds_count"]
    assert buckets[-1][2] == count


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c_total", labelnames=("p",)).labels(p='a"b\\c\nd').inc()
    text = reg.to_prometheus()
    assert r'p="a\"b\\c\nd"' in text


def test_empty_registry_exports():
    reg = MetricsRegistry()
    assert reg.to_prometheus() == ""
    assert json.loads(reg.to_json()) == {"metrics": []}
    assert reg.to_csv().strip() == "metric,kind,labels,field,value"
    assert len(reg) == 0


def test_registry_iteration_sorted(populated):
    assert [m.name for m in populated] == sorted(m.name for m in populated)
    assert isinstance(populated.get("repro_util"), Gauge)
    assert isinstance(populated.get("repro_lookups_total"), Counter)
    assert isinstance(populated.get("repro_span_seconds"), Histogram)
    assert populated.get("missing") is None
