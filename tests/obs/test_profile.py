"""The cycle-attribution profiler: exactness, lane invariance, plumbing.

The profiler's contract is unusually strong and therefore unusually
testable: every simulated cycle lands in exactly one (topology node,
cause) bucket, and the buckets sum *bit-exactly* (float ``==``, no
tolerance) to ``P * total_cycles``.  The property tests here drive the
same random traces, platform specs, and fault plans as the fast-path
equivalence suite through all three execution lanes and assert both
the sum invariant and that lane choice never changes any bucket.

Unit tests cover the :class:`~repro.obs.profile.CycleProfile` value
type (merge, diff, round-trip, exports) and the run ledger.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    BENCH_FLOORS,
    ledger_path,
    make_entry,
    read_entries,
    read_ledger,
    record_run,
    describe_entries,
)
from repro.obs.profile import CAUSES, CycleProfile, describe_diff
from repro.sim.engine import SimulationEngine
from tests.sim.test_fastpath_equivalence import (
    SPECS,
    _SPEC_IDS,
    _assert_identical,
    _legacy_backend,
    _random_run,
)

# ---------------------------------------------------------------------------
# CycleProfile value type


def _profile(cycles, proc_cycles):
    return CycleProfile(cycles=dict(cycles), proc_cycles=proc_cycles)


class TestCycleProfile:
    def test_exactness_check(self):
        p = _profile({("cpu", "compute"): 3.0, ("memory", "local_memory"): 1.5}, 4.5)
        assert p.check_exact()
        assert p.residue() == 0.0
        p.assert_exact()

    def test_inexact_detected(self):
        p = _profile({("cpu", "compute"): 3.0}, 4.5)
        assert not p.check_exact()
        assert p.residue() == 1.5
        with pytest.raises(ValueError):
            p.assert_exact()

    def test_merge_sums_buckets_and_runs(self):
        a = _profile({("cpu", "compute"): 3.0, ("disk", "disk"): 1.0}, 4.0)
        b = _profile({("cpu", "compute"): 2.0, ("l2", "l2"): 5.0}, 7.0)
        m = a.merge(b)
        assert m.cycles[("cpu", "compute")] == 5.0
        assert m.cycles[("disk", "disk")] == 1.0
        assert m.cycles[("l2", "l2")] == 5.0
        assert m.proc_cycles == 11.0
        assert m.runs == 2
        assert m.check_exact()

    def test_merged_classmethod(self):
        assert CycleProfile.merged([]) is None
        a = _profile({("cpu", "compute"): 1.0}, 1.0)
        b = _profile({("cpu", "compute"): 2.0}, 2.0)
        m = CycleProfile.merged([a, b])
        assert m.cycles[("cpu", "compute")] == 3.0
        assert m.runs == 2

    def test_diff(self):
        a = _profile({("cpu", "compute"): 3.0, ("disk", "disk"): 1.0}, 4.0)
        b = _profile({("cpu", "compute"): 2.0, ("l2", "l2"): 5.0}, 7.0)
        d = b.diff(a)
        assert d[("cpu", "compute")] == -1.0
        assert d[("disk", "disk")] == -1.0
        assert d[("l2", "l2")] == 5.0

    def test_top_causes(self):
        p = _profile(
            {
                ("cpu", "compute"): 1.0,
                ("network", "remote_clean"): 10.0,
                ("network", "contention"): 7.0,
                ("memory", "local_memory"): 3.0,
            },
            21.0,
        )
        assert p.top_causes(2) == [("remote_clean", 10.0), ("contention", 7.0)]

    def test_by_node_and_cause(self):
        p = _profile(
            {("network", "remote_clean"): 2.0, ("network", "contention"): 3.0},
            5.0,
        )
        assert p.by_node() == {
            "network": {"remote_clean": 2.0, "contention": 3.0}
        }
        assert p.by_cause() == {"remote_clean": 2.0, "contention": 3.0}

    def test_obj_round_trip_bit_exact(self):
        p = _profile(
            {("cpu", "compute"): 3.140625, ("network[atm]", "coherence"): 0.015625},
            3.15625,
        )
        obj = p.to_obj()
        json.dumps(obj)  # JSON-serializable as-is
        back = CycleProfile.from_obj(obj)
        assert back.cycles == p.cycles
        assert back.proc_cycles == p.proc_cycles
        assert back.runs == p.runs

    def test_from_obj_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            CycleProfile.from_obj({"schema": "not-a-profile", "nodes": {}})

    def test_from_sink_drops_zero_buckets(self):
        p = CycleProfile.from_sink(
            {("cpu", "compute"): 2.0, ("disk", "disk"): 0.0}, 2.0
        )
        assert ("disk", "disk") not in p.cycles
        assert p.check_exact()

    def test_describe_flags_exactness(self):
        p = _profile({("cpu", "compute"): 2.0}, 2.0)
        assert "exact" in p.describe()
        bad = _profile({("cpu", "compute"): 2.0}, 3.0)
        assert "INEXACT" in bad.describe()

    def test_describe_cause_filter(self):
        p = _profile(
            {("cpu", "compute"): 2.0, ("disk", "disk"): 1.0}, 3.0
        )
        text = p.describe(causes=["disk"])
        assert "disk" in text
        assert "compute" not in text

    def test_collapsed_stack_format(self):
        p = _profile(
            {("cpu", "compute"): 10.0, ("memory", "local_memory"): 2.0}, 12.0
        )
        lines = p.to_collapsed().splitlines()
        assert lines[0] == "cpu;compute 10"
        assert lines[1] == "memory;local_memory 2"

    def test_trace_events_shape(self):
        p = _profile({("cpu", "compute"): 10.0}, 10.0)
        obj = p.to_trace_events()
        events = obj["traceEvents"]
        assert isinstance(events, list) and events
        complete = [e for e in events if e.get("ph") == "X"]
        assert complete and all("ts" in e and "dur" in e for e in complete)
        json.dumps(obj)

    def test_describe_diff(self):
        a = _profile({("cpu", "compute"): 3.0}, 3.0)
        b = _profile({("cpu", "compute"): 5.0}, 5.0)
        assert "compute" in describe_diff(a, b)
        assert "identical" in describe_diff(a, a)


# ---------------------------------------------------------------------------
# The run ledger


class TestLedger:
    def test_record_and_read_round_trip(self, tmp_path):
        prof = _profile({("cpu", "compute"): 2.0, ("disk", "disk"): 1.0}, 3.0)
        record_run(
            tmp_path, app="FFT", platform="smp", lane="tensor",
            config_hash="abc123", total_cycles=3.0, references=10, profile=prof,
        )
        record_run(
            tmp_path, app="LU", platform="cow", lane="serial",
            config_hash="def456", total_cycles=7.0,
        )
        entries = read_entries(ledger_path(tmp_path))
        assert [e["app"] for e in entries] == ["FFT", "LU"]
        assert entries[0]["exact"] is True
        assert entries[0]["top_causes"][0]["cause"] == "compute"
        assert entries[0]["floors"] == BENCH_FLOORS
        assert "references" not in entries[1]

    def test_read_skips_corrupt_and_foreign_lines(self, tmp_path):
        path = ledger_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        good = json.dumps(make_entry(
            app="FFT", platform="smp", lane="serial",
            config_hash="x", total_cycles=1.0,
        ))
        path.write_text(
            "not json at all\n"
            '{"schema": "someone-elses/9", "app": "nope"}\n'
            + good + "\n",
            encoding="utf-8",
        )
        entries = read_entries(path)
        assert len(entries) == 1
        assert entries[0]["app"] == "FFT"

    def test_read_missing_file(self, tmp_path):
        assert read_entries(tmp_path / "absent.jsonl") == []

    def test_truncated_last_line_is_skipped_and_counted(self, tmp_path):
        """A crash mid-append leaves a torn final line; the reader must
        keep every whole entry and report the damage instead of dying."""
        record_run(tmp_path, app="FFT", platform="smp", lane="serial",
                   config_hash="a", total_cycles=1.0)
        record_run(tmp_path, app="LU", platform="cow", lane="serial",
                   config_hash="b", total_cycles=2.0)
        path = ledger_path(tmp_path)
        path.write_bytes(path.read_bytes()[:-10])  # tear the last record

        entries, malformed = read_ledger(path)
        assert [e["app"] for e in entries] == ["FFT"]
        assert malformed == 1

    def test_torn_multibyte_utf8_is_malformed_not_a_crash(self, tmp_path):
        path = ledger_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        good = json.dumps(make_entry(
            app="FFT", platform="smp", lane="serial",
            config_hash="x", total_cycles=1.0,
        )).encode("utf-8")
        # A record holding non-ASCII text, torn mid-codepoint.
        torn = json.dumps({"schema": "repro/run-ledger/1", "app": "café"})
        torn_bytes = torn.encode("utf-8")[:-2]
        path.write_bytes(good + b"\n" + torn_bytes)

        entries, malformed = read_ledger(path)
        assert len(entries) == 1 and malformed == 1

    def test_malformed_count_distinguishes_garbage_from_foreign_schema(
        self, tmp_path
    ):
        path = ledger_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        good = json.dumps(make_entry(
            app="FFT", platform="smp", lane="serial",
            config_hash="x", total_cycles=1.0,
        ))
        path.write_text(
            "not json at all\n"          # malformed
            "[1, 2, 3]\n"                 # valid JSON, not an object: malformed
            '{"schema": "someone-elses/9"}\n'  # foreign but well-formed: skipped quietly
            + good + "\n"
            + '{"torn": ',                # truncated tail: malformed
            encoding="utf-8",
        )
        entries, malformed = read_ledger(path)
        assert len(entries) == 1
        assert malformed == 3

    def test_describe_surfaces_the_malformed_count(self, tmp_path):
        e = make_entry(app="FFT", platform="smp", lane="serial",
                       config_hash="x", total_cycles=1.0)
        assert "2 malformed lines skipped" in describe_entries([e], malformed=2)
        assert "1 malformed line skipped" in describe_entries([], malformed=1)
        assert "malformed" not in describe_entries([e])
        assert "malformed" not in describe_entries([])

    def test_describe(self, tmp_path):
        assert "empty" in describe_entries([])
        e = make_entry(app="FFT", platform="smp", lane="serial",
                       config_hash="deadbeef", total_cycles=1.0)
        text = describe_entries([e])
        assert "FFT" in text and "deadbeef"[:12] in text

    def test_entries_are_json_native(self):
        # np.float64 bucket values and np.bool_ exactness flags must be
        # coerced before they reach json.dumps (np.bool_ is not a bool).
        import numpy as np

        prof = CycleProfile.from_sink(
            {("cpu", "compute"): np.float64(2.0)}, np.float64(2.0)
        )
        entry = make_entry(
            app="FFT", platform="smp", lane="serial",
            config_hash="x", total_cycles=2.0, profile=prof,
        )
        json.dumps(entry)


# ---------------------------------------------------------------------------
# The hard invariant, property-tested across lanes


def _stacked_profiled(spec, seed):
    from repro.sim.stacked import StackedCell, simulate_grid

    (res,) = simulate_grid(
        [StackedCell.make("random", spec, seed=seed)],
        run_provider=lambda name, procs, s, kw: _random_run(procs, s),
        profile=True,
    )
    return res


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_attribution_exact_and_lane_invariant(spec, seed):
    """Every cycle attributed, bit-exactly, in all three lanes -- and
    the per-(node, cause) buckets are identical across lanes."""
    run = _random_run(spec.total_processors, seed)
    scalar = SimulationEngine(spec, run, fastpath=False, profile=True).execute()
    batched = SimulationEngine(spec, run, fastpath=True, profile=True).execute()
    stacked = _stacked_profiled(spec, seed)

    _assert_identical(scalar, batched)
    _assert_identical(scalar, stacked)
    for res in (scalar, batched, stacked):
        prof = res.profile
        assert prof is not None
        assert prof.check_exact()
        assert prof.total_attributed() == prof.proc_cycles
        assert prof.proc_cycles == spec.total_processors * res.total_cycles
        assert all(cause in CAUSES for _, cause in prof.cycles)
    assert batched.profile.cycles == scalar.profile.cycles
    assert stacked.profile.cycles == scalar.profile.cycles


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("fastpath", [False, True], ids=["scalar", "batched"])
def test_attribution_exact_under_faults(spec, fastpath):
    """Fault plans (delays, stalls, slowdowns, spikes) route their
    cycles into the ``fault_stall`` bucket without breaking exactness."""
    from repro.faults.plan import FaultPlan

    run = _random_run(spec.total_processors, 3)
    plan = FaultPlan.generate(
        seed=7, num_procs=spec.total_processors, span=100_000.0
    )
    res = SimulationEngine(
        spec, run, fault_plan=plan, fastpath=fastpath, profile=True
    ).execute()
    prof = res.profile
    assert prof.check_exact()
    if res.fault_cycles:
        assert prof.cycles.get(("engine", "fault_stall"), 0.0) > 0.0


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
def test_legacy_and_composed_profiles_identical(spec):
    """The bespoke SMP/COW/CLUMP back-ends and the topology-composed
    back-end attribute every bucket identically."""
    run = _random_run(spec.total_processors, 1)
    legacy = SimulationEngine(
        spec, run, backend=_legacy_backend(spec, run), profile=True
    ).execute()
    composed = SimulationEngine(spec, run, profile=True).execute()
    assert legacy.profile.check_exact()
    assert legacy.profile.cycles == composed.profile.cycles
    assert legacy.profile.proc_cycles == composed.profile.proc_cycles


@pytest.mark.parametrize("spec", SPECS[:2], ids=_SPEC_IDS[:2])
def test_profiling_never_changes_the_simulation(spec):
    """`profile=True` is observation only: results are bit-identical
    with it on and off, in both per-cell lanes."""
    run = _random_run(spec.total_processors, 2)
    for fastpath in (False, True):
        off = SimulationEngine(spec, run, fastpath=fastpath).execute()
        on = SimulationEngine(spec, run, fastpath=fastpath, profile=True).execute()
        _assert_identical(off, on)
        assert off.profile is None


def test_profiler_detaches_after_run():
    """The engine detaches the sink at finish: a second run on the same
    backend must not bleed cycles into the first run's profile."""
    spec = SPECS[0]
    run = _random_run(spec.total_processors, 0)
    engine = SimulationEngine(spec, run, profile=True)
    first = engine.execute()
    snapshot = dict(first.profile.cycles)
    SimulationEngine(
        spec, run, backend=engine.backend, profile=False
    ).execute()
    assert first.profile.cycles == snapshot


# ---------------------------------------------------------------------------
# Runner plumbing: merge, process pool, disk cache


def _runner(tmp_path, lane, **kwargs):
    from repro.experiments.runner import ExperimentRunner
    from repro.obs.metrics import MetricsRegistry

    return ExperimentRunner(
        app_kwargs={"FFT": {"points": 256}},
        cache_dir=tmp_path / "cache",
        metrics=MetricsRegistry(),
        lane=lane,
        profile=True,
        **kwargs,
    )


def test_runner_carries_and_merges_profiles(tmp_path):
    spec = SPECS[0]
    runner = _runner(tmp_path, "serial")
    res = runner.simulate("FFT", spec)
    assert res.profile is not None and res.profile.check_exact()
    profs = runner.profiles()
    assert f"FFT@{spec.name}" in profs
    merged = runner.merged_profile()
    assert merged is not None and merged.check_exact()


def test_runner_profile_survives_disk_cache(tmp_path):
    spec = SPECS[0]
    first = _runner(tmp_path, "serial").simulate("FFT", spec)
    cached = _runner(tmp_path, "serial").simulate("FFT", spec)
    assert cached.profile is not None
    assert cached.profile.cycles == first.profile.cycles
    assert cached.profile.proc_cycles == first.profile.proc_cycles


def test_runner_cache_separates_profiled_and_unprofiled(tmp_path):
    from repro.experiments.runner import ExperimentRunner
    from repro.obs.metrics import MetricsRegistry

    spec = SPECS[0]
    _runner(tmp_path, "serial").simulate("FFT", spec)
    plain = ExperimentRunner(
        app_kwargs={"FFT": {"points": 256}},
        cache_dir=tmp_path / "cache",
        metrics=MetricsRegistry(),
        lane="serial",
    ).simulate("FFT", spec)
    assert plain.profile is None


def test_runner_tensor_lane_profiles(tmp_path):
    spec = SPECS[0]
    runner = _runner(tmp_path, "tensor")
    runner.prefetch_simulations([("FFT", spec)])
    res = runner.simulate("FFT", spec)
    assert res.profile is not None and res.profile.check_exact()
    serial = _runner(tmp_path / "b", "serial").simulate("FFT", spec)
    assert res.profile.cycles == serial.profile.cycles
