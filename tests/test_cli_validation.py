"""Argument validation and the ``faults`` subcommand.

Bad numeric inputs must die at parse time with argparse's clear
``error: argument --x: ...`` message (SystemExit 2), never as a
traceback from deep inside the model.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def _parse(argv):
    return build_parser().parse_args(argv)


class TestNumericValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["design", "--alpha", "0", "--beta", "50", "--gamma", "0.3",
             "--budget", "8000"],
            ["design", "--alpha", "-1.5", "--beta", "50", "--gamma", "0.3",
             "--budget", "8000"],
            ["design", "--workload", "FFT", "--budget", "0"],
            ["design", "--workload", "FFT", "--budget", "-100"],
            ["design", "--workload", "FFT", "--budget", "1e4", "--top", "0"],
        ],
        ids=["alpha-zero", "alpha-negative", "budget-zero", "budget-negative",
             "top-zero"],
    )
    def test_design_rejects_bad_numbers(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "gamma", ["0", "-0.2", "1.5", "nan", "abc"],
    )
    def test_gamma_must_be_a_fraction(self, gamma, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["design", "--alpha", "1.5", "--beta", "50",
                    "--gamma", gamma, "--budget", "8000"])
        assert exc.value.code == 2
        assert "--gamma" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["predict", "--workload", "FFT", "--machines", "0"],
            ["predict", "--workload", "FFT", "--machines", "-2"],
            ["predict", "--workload", "FFT", "--procs-per-machine", "0"],
            ["predict", "--workload", "FFT", "--cache-kb", "0"],
            ["predict", "--workload", "FFT", "--memory-mb", "0"],
            ["predict", "--workload", "FFT", "--l2-kb", "0"],
        ],
        ids=["machines-zero", "machines-negative", "procs-zero",
             "cache-zero", "memory-zero", "l2-zero"],
    )
    def test_platform_rejects_zero_sizes(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--app", "FFT", "--jobs", "0"],
            ["simulate", "--app", "FFT", "--jobs", "-1"],
            ["simulate", "--app", "FFT", "--horizon", "-5"],
            ["simulate", "--app", "FFT", "--sample-every", "0"],
            ["simulate", "--app", "FFT", "--cell-timeout", "0"],
        ],
        ids=["jobs-zero", "jobs-negative", "horizon-negative",
             "sample-every-zero", "cell-timeout-zero"],
    )
    def test_runner_knobs_validated(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_max_retries_validated_at_dispatch(self):
        with pytest.raises(SystemExit, match="--max-retries"):
            main(["faults", "--app", "FFT", "--max-retries", "-1",
                  "--cache-dir", ""])


class TestDesignBatchOptions:
    def test_repeated_budgets_answered_in_order(self, capsys):
        rc = main(
            ["design", "--workload", "LU", "--budget", "8000",
             "--budget", "16000", "--top", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.index("$8,000") < out.index("$16,000")
        assert out.count("search:") == 2

    def test_json_output_is_machine_readable(self, capsys):
        import json

        rc = main(
            ["design", "--workload", "Radix", "--budget", "9000",
             "--budget", "15000", "--json", "--pareto"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [q["budget"] for q in payload] == [9000.0, 15000.0]
        for q in payload:
            assert q["best"]["price"] <= q["budget"]
            assert q["stats"]["candidates"] > 0
            prices = [c["price"] for c in q["frontier"]]
            assert prices == sorted(prices)
            assert q["upgrade_path"]

    def test_pareto_flag_prints_frontier(self, capsys):
        rc = main(
            ["design", "--workload", "EDGE", "--budget", "12000",
             "--pareto", "--top", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "price/performance frontier" in out

    def test_method_choices_enforced(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["design", "--workload", "LU", "--budget", "8000",
                    "--method", "genetic"])
        assert exc.value.code == 2
        assert "--method" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["design", "--workload", "LU", "--budget", "8000",
                    "--jobs", "0"])
        assert exc.value.code == 2

    def test_infeasible_budget_is_a_clean_exit(self):
        with pytest.raises(SystemExit, match="no feasible"):
            main(["design", "--workload", "LU", "--budget", "50"])


class TestLaneValidation:
    def test_runner_lane_choices_enforced(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["simulate", "--app", "FFT", "--lane", "warp"])
        assert exc.value.code == 2
        assert "--lane" in capsys.readouterr().err

    def test_runner_lane_accepts_all_four(self):
        for lane in ("auto", "tensor", "pool", "serial"):
            args = _parse(["simulate", "--app", "FFT", "--lane", lane])
            assert args.lane == lane

    def test_design_lane_has_no_serial(self, capsys):
        """The design search has no serial lane (jobs=1 pool already is
        one); the CLI must not pretend otherwise."""
        with pytest.raises(SystemExit) as exc:
            _parse(["design", "--workload", "LU", "--budget", "8000",
                    "--lane", "serial"])
        assert exc.value.code == 2
        assert "--lane" in capsys.readouterr().err

    def test_design_lane_accepts_tensor(self):
        args = _parse(["design", "--workload", "LU", "--budget", "8000",
                       "--lane", "tensor"])
        assert args.lane == "tensor"


class TestUpgradeGrowthValidation:
    BASE = ["upgrade", "--workload", "FFT", "--budget-increase", "2000"]

    def test_odd_cache_size_rejected_at_cli(self):
        with pytest.raises(SystemExit, match="--cache-kb"):
            main(self.BASE + ["--cache-kb", "128"])

    def test_odd_l2_size_rejected_at_cli(self):
        with pytest.raises(SystemExit, match="--l2-kb"):
            main(self.BASE + ["--l2-kb", "333"])

    def test_too_many_machines_rejected_at_cli(self):
        with pytest.raises(SystemExit, match="--machines"):
            main(self.BASE + ["--machines", "99"])

    def test_too_many_procs_rejected_at_cli(self):
        with pytest.raises(SystemExit, match="--procs-per-machine"):
            main(self.BASE + ["--procs-per-machine", "8"])

    def test_oversized_memory_rejected_at_cli(self):
        with pytest.raises(SystemExit, match="--memory-mb"):
            main(self.BASE + ["--memory-mb", "4096"])

    def test_growable_current_still_accepted(self, capsys):
        rc = main(self.BASE + ["--machines", "2", "--memory-mb", "32"])
        assert rc == 0
        assert "upgrade for FFT" in capsys.readouterr().out


class TestPlatformArg:
    """``--platform`` resolves built-in names and topology files at the
    argparse layer; anything malformed dies as SystemExit 2 there."""

    def test_builtin_name_accepted(self):
        args = _parse(["simulate", "--app", "FFT", "--platform", "clump-of-smps"])
        assert args.platform.name == "clump-of-smps"
        assert args.platform.topology is not None
        assert args.platform.topology.depth == 2

    def test_platform_file_accepted(self, tmp_path):
        import json

        from repro.topology import clump_of_smps_spec

        p = tmp_path / "plat.json"
        p.write_text(json.dumps(clump_of_smps_spec().to_dict()))
        args = _parse(["simulate", "--app", "FFT", "--platform", str(p)])
        assert args.platform == clump_of_smps_spec()

    def test_unknown_name_lists_builtins(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["simulate", "--app", "FFT", "--platform", "hypercube"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "clump-of-smps" in err

    def test_malformed_file_rejected_at_parse_time(self, tmp_path, capsys):
        p = tmp_path / "broken.json"
        p.write_text("{not json")
        with pytest.raises(SystemExit) as exc:
            _parse(["simulate", "--app", "FFT", "--platform", str(p)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "invalid JSON" in err

    def test_bad_topology_file_rejected_at_parse_time(self, tmp_path, capsys):
        import json

        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"name": "x", "topology": {"type": "torus"}}))
        with pytest.raises(SystemExit) as exc:
            _parse(["faults", "--app", "FFT", "--platform", str(p)])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err


class TestDesignTopologyOptions:
    def test_rack_size_must_hold_two_machines(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["design", "--workload", "LU", "--budget", "9000",
                    "--rack-size", "1"])
        assert exc.value.code == 2
        assert "--rack-size" in capsys.readouterr().err

    def test_unpriceable_extra_platform_is_clean_exit(self):
        # the demo platform's 2KB cache is not a catalog option
        with pytest.raises(SystemExit, match="--add-platform"):
            main(["design", "--workload", "LU", "--budget", "9000",
                  "--add-platform", "clump-of-smps"])

    def test_rack_mutation_competes(self, capsys):
        rc = main(["design", "--workload", "LU", "--budget", "9000",
                   "--rack-size", "2", "--top", "1"])
        assert rc == 0
        assert "optimal platform" in capsys.readouterr().out


class TestInjectSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            "bogus:proc=0",
            "delay:proc=0",
            "delay:proc=0,at=1,cycles=-5",
            "slow:proc=0,start=9,end=1,factor=2",
        ],
    )
    def test_bad_inject_spec_is_a_clean_exit(self, spec):
        with pytest.raises(SystemExit, match="--inject"):
            main(["faults", "--app", "FFT", "--app-arg", "points=64",
                  "--inject", spec, "--cache-dir", ""])


class TestProfileValidation:
    """`repro profile` / `--profile-out`: bad paths and unknown causes
    die at the argparse layer, and the diff/app requirement is a clean
    SystemExit, never a traceback."""

    def test_profile_out_parent_must_exist(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["simulate", "--app", "FFT", "--profile-out",
                    str(tmp_path / "missing" / "prof.json")])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_out_must_not_be_a_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["profile", "--app", "FFT", "--out", str(tmp_path)])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_out_in_existing_dir_accepted(self, tmp_path):
        target = tmp_path / "prof.json"
        args = _parse(["profile", "--app", "FFT", "--out", str(target)])
        assert str(args.out) == str(target)

    def test_diff_files_must_exist(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["profile", "--diff", str(tmp_path / "a.json"),
                    str(tmp_path / "b.json")])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_diff_wants_exactly_two_files(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text("{}")
        with pytest.raises(SystemExit) as exc:
            _parse(["profile", "--diff", str(a)])
        assert exc.value.code == 2

    def test_unknown_cause_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["profile", "--app", "FFT", "--cause", "vibes"])
        assert exc.value.code == 2
        assert "--cause" in capsys.readouterr().err

    def test_known_causes_accepted(self):
        args = _parse(["profile", "--app", "FFT",
                       "--cause", "compute", "--cause", "contention"])
        assert args.cause == ["compute", "contention"]

    def test_app_or_diff_required_at_dispatch(self):
        with pytest.raises(SystemExit, match="--app"):
            main(["profile"])

    def test_diff_rejects_non_profile_json(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"schema": "not-a-profile"}')
        b.write_text('{"schema": "not-a-profile"}')
        with pytest.raises(SystemExit, match="--diff"):
            main(["profile", "--diff", str(a), str(b)])

    def test_ledger_last_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["obs", "ledger", "--last", "0"])
        assert exc.value.code == 2


class TestFaultsCommand:
    ARGS = [
        "faults", "--app", "FFT", "--app-arg", "points=64",
        "--machines", "1", "--procs-per-machine", "2",
        "--cache-dir", "",
    ]

    def test_injected_delay_demo(self, capsys):
        rc = main(
            self.ARGS + ["--inject", "delay:proc=0,at=100,cycles=5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out and "faulted" in out
        assert "delay" in out

    def test_generated_plan_demo(self, capsys):
        assert main(self.ARGS + ["--gen-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out

    def test_propagation_sweep(self, capsys):
        rc = main(
            self.ARGS
            + ["--inject", "delay:proc=0,at=100,cycles=1000", "--propagation"]
        )
        assert rc == 0
        assert "delay propagation" in capsys.readouterr().out
