"""Argument validation and the ``faults`` subcommand.

Bad numeric inputs must die at parse time with argparse's clear
``error: argument --x: ...`` message (SystemExit 2), never as a
traceback from deep inside the model.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def _parse(argv):
    return build_parser().parse_args(argv)


class TestNumericValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["design", "--alpha", "0", "--beta", "50", "--gamma", "0.3",
             "--budget", "8000"],
            ["design", "--alpha", "-1.5", "--beta", "50", "--gamma", "0.3",
             "--budget", "8000"],
            ["design", "--workload", "FFT", "--budget", "0"],
            ["design", "--workload", "FFT", "--budget", "-100"],
            ["design", "--workload", "FFT", "--budget", "1e4", "--top", "0"],
        ],
        ids=["alpha-zero", "alpha-negative", "budget-zero", "budget-negative",
             "top-zero"],
    )
    def test_design_rejects_bad_numbers(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "gamma", ["0", "-0.2", "1.5", "nan", "abc"],
    )
    def test_gamma_must_be_a_fraction(self, gamma, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(["design", "--alpha", "1.5", "--beta", "50",
                    "--gamma", gamma, "--budget", "8000"])
        assert exc.value.code == 2
        assert "--gamma" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["predict", "--workload", "FFT", "--machines", "0"],
            ["predict", "--workload", "FFT", "--machines", "-2"],
            ["predict", "--workload", "FFT", "--procs-per-machine", "0"],
            ["predict", "--workload", "FFT", "--cache-kb", "0"],
            ["predict", "--workload", "FFT", "--memory-mb", "0"],
            ["predict", "--workload", "FFT", "--l2-kb", "0"],
        ],
        ids=["machines-zero", "machines-negative", "procs-zero",
             "cache-zero", "memory-zero", "l2-zero"],
    )
    def test_platform_rejects_zero_sizes(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--app", "FFT", "--jobs", "0"],
            ["simulate", "--app", "FFT", "--jobs", "-1"],
            ["simulate", "--app", "FFT", "--horizon", "-5"],
            ["simulate", "--app", "FFT", "--sample-every", "0"],
            ["simulate", "--app", "FFT", "--cell-timeout", "0"],
        ],
        ids=["jobs-zero", "jobs-negative", "horizon-negative",
             "sample-every-zero", "cell-timeout-zero"],
    )
    def test_runner_knobs_validated(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_max_retries_validated_at_dispatch(self):
        with pytest.raises(SystemExit, match="--max-retries"):
            main(["faults", "--app", "FFT", "--max-retries", "-1",
                  "--cache-dir", ""])


class TestInjectSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            "bogus:proc=0",
            "delay:proc=0",
            "delay:proc=0,at=1,cycles=-5",
            "slow:proc=0,start=9,end=1,factor=2",
        ],
    )
    def test_bad_inject_spec_is_a_clean_exit(self, spec):
        with pytest.raises(SystemExit, match="--inject"):
            main(["faults", "--app", "FFT", "--app-arg", "points=64",
                  "--inject", spec, "--cache-dir", ""])


class TestFaultsCommand:
    ARGS = [
        "faults", "--app", "FFT", "--app-arg", "points=64",
        "--machines", "1", "--procs-per-machine", "2",
        "--cache-dir", "",
    ]

    def test_injected_delay_demo(self, capsys):
        rc = main(
            self.ARGS + ["--inject", "delay:proc=0,at=100,cycles=5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out and "faulted" in out
        assert "delay" in out

    def test_generated_plan_demo(self, capsys):
        assert main(self.ARGS + ["--gen-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out

    def test_propagation_sweep(self, capsys):
        rc = main(
            self.ARGS
            + ["--inject", "delay:proc=0,at=100,cycles=1000", "--propagation"]
        )
        assert rc == 0
        assert "delay propagation" in capsys.readouterr().out
