"""Machine-mix enumeration and the heterogeneous cost model."""

import math

import pytest

from repro.cost.catalog import DEFAULT_CATALOG
from repro.cost.configspace import CandidateSpace
from repro.cost.model import cluster_cost, hetero_cluster_cost
from repro.scheduling import design_mix, enumerate_mixed_configurations
from repro.sim.latencies import NetworkKind
from repro.workloads.params import PAPER_LU

#: A deliberately tiny market so enumeration tests run in milliseconds.
SMALL_SPACE = CandidateSpace(
    processor_counts=(1,),
    cache_kb_options=(256, 512),
    memory_mb_options=(32,),
    networks=(NetworkKind.ETHERNET_10,),
    machine_speeds=(1.0, 2.0),
    mix_max_machines=4,
)


class TestHeteroCost:
    def test_flat_homogeneous_tree_matches_eq5(self):
        """On a homogeneous flat cluster the recursive pricing must
        reduce to the paper's N * (C_machine + C_net)."""
        from repro.core.platform import PlatformSpec
        from repro.topology.canned import topology_for_spec

        KB, MB = 1024, 1024 * 1024
        spec = PlatformSpec(
            name="cow", n=1, N=4, cache_bytes=256 * KB,
            memory_bytes=32 * MB, network=NetworkKind.ETHERNET_10,
        )
        tree = topology_for_spec(spec)
        assert hetero_cluster_cost(DEFAULT_CATALOG, tree) == pytest.approx(
            cluster_cost(DEFAULT_CATALOG, spec)
        )

    def test_speed_premium_charged_per_processor(self):
        from repro.scheduling.mix import MachineVariant

        slow = MachineVariant(1, 256, 32, 1.0).node()
        fast = MachineVariant(1, 256, 32, 2.0).node()
        delta = hetero_cluster_cost(DEFAULT_CATALOG, fast) - hetero_cluster_cost(
            DEFAULT_CATALOG, slow
        )
        assert delta == pytest.approx(DEFAULT_CATALOG.speed_premium_per_unit)


class TestEnumeration:
    def test_every_candidate_is_affordable_and_mixed(self):
        budget = 12_000.0
        candidates = list(
            enumerate_mixed_configurations(budget, space=SMALL_SPACE)
        )
        assert candidates
        for cand in candidates:
            assert cand.cost <= budget
            assert not cand.topology.is_homogeneous
            assert len(cand.counts) == 2
            total = sum(count for _, count in cand.counts)
            assert 2 <= total <= SMALL_SPACE.mix_max_machines

    def test_budget_prunes(self):
        wide = list(enumerate_mixed_configurations(12_000.0, space=SMALL_SPACE))
        tight = list(enumerate_mixed_configurations(6_000.0, space=SMALL_SPACE))
        assert len(tight) < len(wide)
        assert all(c.cost <= 6_000.0 for c in tight)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget"):
            next(enumerate_mixed_configurations(0.0, space=SMALL_SPACE))


class TestDesignMix:
    def test_ranked_feasible_and_affordable(self):
        top = design_mix(
            PAPER_LU.locality, PAPER_LU.gamma, 12_000.0, space=SMALL_SPACE,
            top=3, remote_rate_adjustment=0.124,
        )
        assert 1 <= len(top) <= 3
        times = [c.e_instr_seconds for c in top]
        assert times == sorted(times)
        for cand in top:
            assert cand.feasible and math.isfinite(cand.e_instr_seconds)
            assert cand.cost <= 12_000.0
            assert cand.policy == "memory-aware"

    def test_policy_flows_through(self):
        top = design_mix(
            PAPER_LU.locality, PAPER_LU.gamma, 12_000.0, space=SMALL_SPACE,
            top=1, policy="round-robin", remote_rate_adjustment=0.124,
        )
        assert top and top[0].policy == "round-robin"

    def test_memory_aware_never_worse_than_round_robin_on_the_winner(self):
        kw = dict(space=SMALL_SPACE, top=1, remote_rate_adjustment=0.124)
        best_ma = design_mix(
            PAPER_LU.locality, PAPER_LU.gamma, 12_000.0, policy="memory-aware", **kw
        )
        best_rr = design_mix(
            PAPER_LU.locality, PAPER_LU.gamma, 12_000.0, policy="round-robin", **kw
        )
        assert best_ma[0].e_instr_seconds <= best_rr[0].e_instr_seconds

    def test_as_dict_is_json_ready(self):
        import json

        top = design_mix(
            PAPER_LU.locality, PAPER_LU.gamma, 12_000.0, space=SMALL_SPACE,
            top=1, remote_rate_adjustment=0.124,
        )
        payload = json.dumps([c.as_dict() for c in top])
        assert "memory-aware" in payload

    def test_top_must_be_positive(self):
        with pytest.raises(ValueError, match="top"):
            design_mix(PAPER_LU.locality, PAPER_LU.gamma, 1000.0, top=0)
