"""Placement policies: dominance, homogeneous collapse, resolution."""

import math

import pytest

from repro.scheduling import (
    POLICIES,
    HeteroPlatform,
    builtin_hetero_platform,
    compare_policies,
    memory_aware,
    resolve_policy,
    round_robin,
    speed_proportional,
)
from repro.core.platform import PlatformSpec
from repro.sim.latencies import NetworkKind
from repro.workloads.params import PAPER_WORKLOADS

KB, MB = 1024, 1024 * 1024

MIXED = ("mixed-cow", "mixed-clump")


def _grid():
    for name in MIXED:
        platform = builtin_hetero_platform(name)
        for params in PAPER_WORKLOADS:
            yield platform, params


class TestDominance:
    @pytest.mark.parametrize(
        "platform,params",
        list(_grid()),
        ids=[f"{n}-{w.name}" for n in MIXED for w in PAPER_WORKLOADS],
    )
    def test_memory_aware_never_loses(self, platform, params):
        """The acceptance criterion: memory-aware <= round-robin AND
        <= speed on every canned mixed tree x paper workload cell.

        Dominance is by construction (the rival splits are descent
        starts), so any violation is a regression in the descent."""
        estimates = compare_policies(
            platform, params.locality, params.gamma,
            remote_rate_adjustment=0.124, on_saturation="inf",
        )
        best = estimates["memory-aware"].e_instr_seconds
        assert best <= estimates["round-robin"].e_instr_seconds
        assert best <= estimates["speed"].e_instr_seconds

    def test_memory_aware_strictly_wins_somewhere(self):
        """On mixed-cow/LU the win is large (the fast CPUs sit behind
        small caches), anchoring that the policy does real work."""
        platform = builtin_hetero_platform("mixed-cow")
        lu = next(w for w in PAPER_WORKLOADS if w.name == "LU")
        estimates = compare_policies(
            platform, lu.locality, lu.gamma,
            remote_rate_adjustment=0.124, on_saturation="inf",
        )
        rr = estimates["round-robin"].e_instr_seconds
        ma = estimates["memory-aware"].e_instr_seconds
        assert math.isfinite(ma)
        assert ma < 0.75 * rr

    def test_speed_split_can_lose_to_even(self):
        """The cautionary tale the doc tells: speed-proportional
        placement backfires when the fast machines are cache-starved."""
        platform = builtin_hetero_platform("mixed-cow")
        lu = next(w for w in PAPER_WORKLOADS if w.name == "LU")
        estimates = compare_policies(
            platform, lu.locality, lu.gamma,
            remote_rate_adjustment=0.124, on_saturation="inf",
        )
        assert (
            estimates["speed"].e_instr_seconds
            > estimates["round-robin"].e_instr_seconds
        )


class TestHomogeneousCollapse:
    @pytest.fixture()
    def platform(self):
        spec = PlatformSpec(
            name="cow", n=1, N=4, cache_bytes=256 * KB,
            memory_bytes=64 * MB, network=NetworkKind.ETHERNET_100,
        )
        return HeteroPlatform.from_spec(spec)

    def test_every_policy_returns_exactly_even(self, platform):
        lu = next(w for w in PAPER_WORKLOADS if w.name == "LU")
        for name, place in POLICIES.items():
            share = place(
                platform, lu.locality, lu.gamma, remote_rate_adjustment=0.124
            )
            assert share.weights == (1.0, 1.0, 1.0, 1.0), name


class TestShapes:
    def test_round_robin_ignores_workload(self):
        platform = builtin_hetero_platform("mixed-cow")
        assert round_robin(platform).weights == (1.0,) * 4

    def test_speed_proportional_normalizes_by_max(self):
        platform = builtin_hetero_platform("mixed-cow")
        share = speed_proportional(platform)
        assert max(share.weights) == 1.0
        assert share.weights == (1.0, 1.0, 0.5, 0.5)

    def test_memory_aware_weights_grouped_by_machine_kind(self):
        platform = builtin_hetero_platform("mixed-cow")
        lu = next(w for w in PAPER_WORKLOADS if w.name == "LU")
        share = memory_aware(
            platform, lu.locality, lu.gamma, remote_rate_adjustment=0.124
        )
        # Symmetric processes get identical weights.
        assert share.weights[0] == share.weights[1]
        assert share.weights[2] == share.weights[3]
        assert share.policy == "memory-aware"

    def test_memory_aware_saturated_falls_back_to_speed(self):
        from repro.core.locality import StackDistanceModel

        platform = builtin_hetero_platform("mixed-cow")
        loc = StackDistanceModel(alpha=1.2, beta=5e4)
        share = memory_aware(platform, loc, 0.8, remote_rate_adjustment=0.124)
        assert share.weights == speed_proportional(platform).weights
        assert share.policy == "memory-aware"


class TestResolution:
    def test_known_names(self):
        for name in ("round-robin", "speed", "memory-aware"):
            assert callable(resolve_policy(name))

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="memory-aware"):
            resolve_policy("fastest-first")

    def test_compare_policies_respects_selection(self):
        platform = builtin_hetero_platform("mixed-cow")
        lu = next(w for w in PAPER_WORKLOADS if w.name == "LU")
        out = compare_policies(
            platform, lu.locality, lu.gamma, policies=("round-robin",),
            remote_rate_adjustment=0.124,
        )
        assert set(out) == {"round-robin"}
