"""WorkShare: the work-split value object."""

import math

import pytest

from repro.scheduling import WorkShare


class TestValidation:
    def test_needs_weights(self):
        with pytest.raises(ValueError):
            WorkShare(())

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        with pytest.raises(ValueError):
            WorkShare((1.0, bad))

    def test_coerces_to_floats(self):
        share = WorkShare((1, 2))
        assert share.weights == (1.0, 2.0)
        assert all(isinstance(w, float) for w in share.weights)


class TestSemantics:
    def test_even_is_all_ones(self):
        share = WorkShare.even(4)
        assert share.weights == (1.0, 1.0, 1.0, 1.0)
        assert share.num_processes == 4

    def test_even_policy_label(self):
        assert WorkShare.even(2, policy="round-robin").policy == "round-robin"

    def test_fractions_sum_to_one(self):
        share = WorkShare((3.0, 1.0, 4.0, 1.0, 5.0))
        assert math.fsum(share.fractions) == pytest.approx(1.0, abs=0)
        assert share.total == pytest.approx(14.0)

    def test_even_total_is_exact_float_count(self):
        # fsum of ones is exactly float(P): the homogeneous reduction
        # divides by this, so it must be the same float evaluate() uses.
        for p in (2, 3, 7, 16, 1000):
            assert WorkShare.even(p).total == float(p)

    def test_describe_mentions_policy(self):
        assert "custom" in WorkShare((1.0, 2.0)).describe()
