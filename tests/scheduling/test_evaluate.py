"""evaluate_hetero: the heterogeneous model and its homogeneous reduction.

The load-bearing property is *bit-identity*: on any homogeneous tree
with even shares, the heterogeneous evaluation must return exactly --
not approximately -- what ``evaluate(spec, ..., mode="open")`` returns.
The caches, the search engine and the experiment grids all assume model
results are reproducible to the last ulp, so a 1-ulp divergence here
would silently fork the two code paths.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import evaluate
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec
from repro.workloads.params import PAPER_LU
from repro.scheduling import (
    HeteroPlatform,
    WorkShare,
    barrier_free_cycles,
    builtin_hetero_platform,
    evaluate_hetero,
)
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024

workloads = st.builds(
    StackDistanceModel,
    alpha=st.floats(min_value=1.3, max_value=4.0),
    beta=st.floats(min_value=1.0, max_value=1e4),
)
gammas = st.floats(min_value=0.05, max_value=0.8)
shapes = st.tuples(
    st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=6)
).filter(lambda shape: shape[0] * shape[1] >= 2)
specs = st.builds(
    lambda shape, cache_kb, mem_mb, net: PlatformSpec(
        name=f"h-{shape[0]}x{shape[1]}", n=shape[0], N=shape[1],
        cache_bytes=cache_kb * KB, memory_bytes=mem_mb * MB,
        network=net if shape[1] > 1 else None,
    ),
    shape=shapes,
    cache_kb=st.sampled_from([4, 64, 256]),
    mem_mb=st.sampled_from([1, 8, 64]),
    net=st.sampled_from(list(NetworkKind)),
)


class TestHomogeneousBitIdentity:
    @given(spec=specs, loc=workloads, gamma=gammas,
           adj=st.sampled_from([0.0, 0.124, 0.3]))
    @settings(max_examples=80, deadline=None)
    def test_even_share_reduces_bitwise_to_evaluate_open(
        self, spec, loc, gamma, adj
    ):
        reference = evaluate(
            spec, loc, gamma, mode="open", on_saturation="inf",
            remote_rate_adjustment=adj,
        )
        hetero = evaluate_hetero(
            HeteroPlatform.from_spec(spec), loc, gamma,
            remote_rate_adjustment=adj,
        )
        # Bitwise, not approx: both inf, or the identical float.
        assert hetero.e_instr_seconds == reference.e_instr_seconds
        if math.isfinite(reference.e_instr_seconds):
            assert hetero.e_instr_cycles == reference.e_instr_cycles

    @given(loc=workloads, gamma=gammas)
    @settings(max_examples=30, deadline=None)
    def test_deep_tree_reduces_too(self, loc, gamma):
        from repro.topology import clump_of_smps_spec

        spec = clump_of_smps_spec()
        reference = evaluate(
            spec, loc, gamma, mode="open", on_saturation="inf",
            remote_rate_adjustment=0.124,
        )
        hetero = evaluate_hetero(
            HeteroPlatform.from_spec(spec), loc, gamma,
            remote_rate_adjustment=0.124,
        )
        assert hetero.e_instr_seconds == reference.e_instr_seconds

    def test_even_explicit_share_equals_default(self):
        spec = PlatformSpec(
            name="cow", n=1, N=4, cache_bytes=256 * KB,
            memory_bytes=64 * MB, network=NetworkKind.ETHERNET_100,
        )
        platform = HeteroPlatform.from_spec(spec)
        loc = StackDistanceModel(alpha=1.5, beta=50.0)
        a = evaluate_hetero(platform, loc, 0.3)
        b = evaluate_hetero(platform, loc, 0.3, WorkShare.even(4))
        assert a.e_instr_seconds == b.e_instr_seconds


class TestHeterogeneous:
    @pytest.fixture()
    def cow(self):
        return builtin_hetero_platform("mixed-cow")

    def test_uneven_share_changes_the_answer(self, cow):
        loc, gamma = PAPER_LU.locality, PAPER_LU.gamma
        even = evaluate_hetero(cow, loc, gamma, remote_rate_adjustment=0.124)
        skew = evaluate_hetero(
            cow, loc, gamma, WorkShare((0.1, 0.1, 1.0, 1.0)),
            remote_rate_adjustment=0.124,
        )
        assert even.feasible and skew.feasible
        assert even.e_instr_seconds != skew.e_instr_seconds

    def test_barrier_free_cycles_share_independent_and_per_machine(self, cow):
        loc, gamma = PAPER_LU.locality, PAPER_LU.gamma
        tilde = barrier_free_cycles(cow, loc, gamma, remote_rate_adjustment=0.124)
        assert len(tilde) == cow.total_processors
        # mixed-cow: two fast-small machines then two slow-large ones.
        assert tilde[0] == tilde[1] and tilde[2] == tilde[3]
        assert tilde[0] != tilde[2]

    def test_straggler_sets_the_estimate(self, cow):
        loc, gamma = PAPER_LU.locality, PAPER_LU.gamma
        est = evaluate_hetero(cow, loc, gamma, remote_rate_adjustment=0.124)
        worst = max(
            p.weight * p.cycles_per_instruction for p in est.processes
        )
        total = math.fsum(p.weight for p in est.processes)
        assert est.e_instr_cycles == worst / total

    def test_process_metadata(self, cow):
        loc, gamma = PAPER_LU.locality, PAPER_LU.gamma
        est = evaluate_hetero(cow, loc, gamma, remote_rate_adjustment=0.124)
        assert [p.machine for p in est.processes] == [0, 1, 2, 3]
        assert [p.speed for p in est.processes] == [2.0, 2.0, 1.0, 1.0]
        assert est.bottleneck in est.processes
        payload = est.as_dict()
        assert payload["feasible"] and len(payload["processes"]) == 4

    def test_saturation_reports_inf_not_raise(self, cow):
        # A hot workload on the tiny mixed tree saturates in open mode.
        loc = StackDistanceModel(alpha=1.2, beta=5e4)
        est = evaluate_hetero(cow, loc, 0.8, remote_rate_adjustment=0.124)
        assert not est.feasible
        assert est.e_instr_seconds == math.inf


class TestErrors:
    def test_rejects_non_open_mode(self):
        cow = builtin_hetero_platform("mixed-cow")
        loc = StackDistanceModel(alpha=1.5, beta=50.0)
        with pytest.raises(ValueError, match="open"):
            evaluate_hetero(cow, loc, 0.3, mode="throttled")

    def test_rejects_share_of_wrong_size(self):
        cow = builtin_hetero_platform("mixed-cow")
        loc = StackDistanceModel(alpha=1.5, beta=50.0)
        with pytest.raises(ValueError, match="4 processes"):
            evaluate_hetero(cow, loc, 0.3, WorkShare((1.0, 1.0)))

    def test_rejects_bad_gamma(self):
        cow = builtin_hetero_platform("mixed-cow")
        loc = StackDistanceModel(alpha=1.5, beta=50.0)
        with pytest.raises(ValueError, match="gamma"):
            evaluate_hetero(cow, loc, 1.5)
