"""HeteroPlatform: wrapping, round-trip, loaders."""

import json

import pytest

from repro.core.platform import PlatformKind, PlatformSpec
from repro.scheduling import (
    HeteroPlatform,
    builtin_hetero_platform,
    load_hetero_platform_file,
)
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024


class TestShape:
    def test_mixed_cow_views(self):
        platform = builtin_hetero_platform("mixed-cow")
        assert platform.total_machines == 4
        assert platform.total_processors == 4
        assert not platform.is_homogeneous
        assert platform.kind is PlatformKind.HETEROGENEOUS
        assert platform.speeds == (2.0, 2.0, 1.0, 1.0)
        assert platform.machine_of_process == (0, 1, 2, 3)
        assert len(platform.hierarchies()) == 4

    def test_mixed_clump_processes_follow_leaf_order(self):
        platform = builtin_hetero_platform("mixed-clump")
        # 2 wide 4-way nodes then 2 fast 2-way nodes.
        assert platform.total_processors == 12
        assert platform.machine_of_process == (0,) * 4 + (1,) * 4 + (2,) * 2 + (3,) * 2
        assert platform.speeds == (1.0,) * 8 + (2.5,) * 4

    def test_from_spec_is_homogeneous(self):
        spec = PlatformSpec(
            name="cow", n=1, N=4, cache_bytes=256 * KB,
            memory_bytes=64 * MB, network=NetworkKind.ETHERNET_100,
        )
        platform = HeteroPlatform.from_spec(spec)
        assert platform.is_homogeneous
        assert platform.kind is PlatformKind.COW
        assert platform.cpu_hz == spec.cpu_hz

    def test_describe_lists_machines(self):
        text = builtin_hetero_platform("mixed-cow").describe()
        assert "heterogeneous" in text
        assert "machine 3" in text


class TestRoundTrip:
    def test_to_dict_from_dict_lossless(self):
        platform = builtin_hetero_platform("mixed-cow")
        clone = HeteroPlatform.from_dict(platform.to_dict())
        assert clone == platform

    def test_survives_json(self):
        platform = builtin_hetero_platform("mixed-clump")
        clone = HeteroPlatform.from_dict(
            json.loads(json.dumps(platform.to_dict()))
        )
        assert clone == platform

    def test_unknown_keys_rejected(self):
        payload = builtin_hetero_platform("mixed-cow").to_dict()
        payload["cpuhz"] = 1e8
        with pytest.raises(ValueError, match="cpuhz"):
            HeteroPlatform.from_dict(payload)

    def test_needs_name_and_topology(self):
        with pytest.raises(ValueError, match="name"):
            HeteroPlatform.from_dict({"topology": {}})
        with pytest.raises(ValueError, match="topology"):
            HeteroPlatform.from_dict({"name": "x"})


class TestValidation:
    def test_needs_two_processors(self):
        from repro.topology.canned import _machine
        from repro.sim.latencies import PAPER_LATENCIES

        leaf = _machine(1, 256.0, 4096.0, PAPER_LATENCIES)
        with pytest.raises(ValueError, match="two processors"):
            HeteroPlatform(name="solo", topology=leaf)

    def test_rejects_non_topology(self):
        with pytest.raises(ValueError, match="topology"):
            HeteroPlatform(name="x", topology={"type": "machine"})

    def test_builtin_unknown_name_is_pointed(self):
        with pytest.raises(ValueError, match="mixed-clump"):
            builtin_hetero_platform("mixed-tower")


class TestFileLoader:
    def test_round_trip_through_file(self, tmp_path):
        platform = builtin_hetero_platform("mixed-cow")
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps(platform.to_dict()))
        assert load_hetero_platform_file(path) == platform

    def test_error_carries_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ValueError, match="bad.json"):
            load_hetero_platform_file(path)
