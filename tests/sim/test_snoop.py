"""Tests for the snooping write-invalidate protocol."""

import pytest

from repro.sim.cache import SetAssociativeCache
from repro.sim.snoop import SnoopSource, SnoopingBus


def make_bus(n=2, capacity=8):
    caches = [SetAssociativeCache(capacity) for _ in range(n)]
    return SnoopingBus(caches), caches


class TestReads:
    def test_cold_read_served_by_memory(self):
        bus, _ = make_bus()
        out = bus.access(0, 100, is_write=False)
        assert out.source is SnoopSource.MEMORY
        assert out.invalidated == ()

    def test_second_read_hits_own_cache(self):
        bus, _ = make_bus()
        bus.access(0, 100, False)
        out = bus.access(0, 100, False)
        assert out.source is SnoopSource.OWN_CACHE

    def test_peer_supplies_shared_line(self):
        bus, _ = make_bus()
        bus.access(0, 100, False)
        out = bus.access(1, 100, False)
        assert out.source is SnoopSource.PEER_CACHE
        assert bus.cache_to_cache == 1


class TestWrites:
    def test_write_upgrade_invalidates_peers(self):
        bus, caches = make_bus()
        bus.access(0, 100, False)
        bus.access(1, 100, False)  # both share the line
        out = bus.access(0, 100, True)  # upgrade
        assert out.source is SnoopSource.OWN_CACHE
        assert out.invalidated == (1,)
        assert not caches[1].contains(100)
        assert caches[0].is_dirty(100)

    def test_write_miss_invalidates_and_fills(self):
        bus, caches = make_bus()
        bus.access(1, 100, False)
        out = bus.access(0, 100, True)
        assert out.source is SnoopSource.PEER_CACHE  # data came from peer
        assert out.invalidated == (1,)
        assert caches[0].is_dirty(100)

    def test_exclusive_write_invalidates_nobody(self):
        bus, _ = make_bus()
        bus.access(0, 100, True)
        out = bus.access(0, 100, True)
        assert out.invalidated == ()

    def test_invalidation_counter(self):
        bus, _ = make_bus(n=4)
        for p in range(4):
            bus.access(p, 100, False)
        bus.access(0, 100, True)
        assert bus.invalidations == 3


class TestEvictionsAndExternal:
    def test_dirty_eviction_reports_writeback(self):
        bus, _ = make_bus(n=1, capacity=2)  # 1 set x 2 ways... capacity 2
        bus.access(0, 0, True)
        bus.access(0, 2, True)
        out = bus.access(0, 4, False)  # evicts a dirty line
        assert out.writeback

    def test_external_invalidation(self):
        bus, caches = make_bus()
        bus.access(0, 100, True)
        assert bus.holds(100) and bus.holds_dirty(100)
        assert bus.invalidate_line(100) is True  # dirty copy existed
        assert not bus.holds(100)
        assert bus.invalidate_line(100) is False

    def test_holds_queries(self):
        bus, _ = make_bus()
        assert not bus.holds(5)
        bus.access(1, 5, False)
        assert bus.holds(5) and not bus.holds_dirty(5)

    def test_empty_bus_rejected(self):
        with pytest.raises(ValueError):
            SnoopingBus([])
