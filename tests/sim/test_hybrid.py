"""Tests for the hybrid (directory-across + snooping-within) protocol."""

from repro.sim.cache import SetAssociativeCache
from repro.sim.hybrid import HybridProtocol, HybridServe
from repro.sim.snoop import SnoopingBus


def make_hybrid(machines=2, per_node=2, capacity=16):
    snoops = [
        SnoopingBus([SetAssociativeCache(capacity) for _ in range(per_node)])
        for _ in range(machines)
    ]
    # blocks homed round-robin
    return HybridProtocol(snoops, lambda b: b % machines, machines), snoops


class TestLocalPath:
    def test_cold_read_from_home_memory(self):
        h, _ = make_hybrid()
        out = h.access(machine=0, local_proc=0, line=0, is_write=False)  # home 0
        assert out.serve is HybridServe.LOCAL_MEMORY

    def test_peer_cache_within_smp(self):
        h, _ = make_hybrid()
        h.access(0, 0, 0, False)
        out = h.access(0, 1, 0, False)
        assert out.serve is HybridServe.PEER_CACHE

    def test_own_cache_hit(self):
        h, _ = make_hybrid()
        h.access(0, 0, 0, False)
        out = h.access(0, 0, 0, False)
        assert out.serve is HybridServe.OWN_CACHE


class TestRemotePath:
    def test_remote_clean_block(self):
        h, _ = make_hybrid()
        out = h.access(machine=0, local_proc=0, line=4, is_write=False)  # block 1, home 1
        assert out.serve is HybridServe.REMOTE_NODE
        assert out.home == 1

    def test_remote_dirty_block(self):
        h, _ = make_hybrid()
        h.access(1, 0, 0, True)  # machine 1 dirties block 0 (home 0)
        out = h.access(0, 0, 0, False)
        assert out.serve is HybridServe.REMOTE_DIRTY
        assert out.data_source == 1

    def test_write_invalidates_other_machines_lines(self):
        h, snoops = make_hybrid()
        h.access(1, 0, 0, False)  # machine 1 caches line 0
        h.access(1, 1, 1, False)  # and line 1 (same block) on another proc
        out = h.access(0, 0, 0, True)
        assert 1 in out.invalidated_machines
        assert not snoops[1].holds(0)
        assert not snoops[1].holds(1)  # whole 256B block invalidated

    def test_write_hit_still_needs_internode_exclusivity(self):
        h, snoops = make_hybrid()
        h.access(0, 0, 0, False)  # machine 0 caches it (shared)
        h.access(1, 0, 0, False)  # machine 1 too
        out = h.access(0, 0, 0, True)  # write hit locally
        assert out.serve is HybridServe.OWN_CACHE
        assert out.invalidated_machines == (1,)
        assert not snoops[1].holds(0)

    def test_local_invalidations_counted(self):
        h, _ = make_hybrid()
        h.access(0, 0, 0, False)
        h.access(0, 1, 0, False)
        out = h.access(0, 0, 0, True)
        assert out.local_invalidations == 1
        assert out.invalidated_machines == ()
