"""Tests for the platform back-ends' cycle accounting."""

import numpy as np
import pytest

from repro.core.platform import PlatformSpec
from repro.sim.backends import (
    ClumpBackend,
    ComposedBackend,
    CowBackend,
    SmpBackend,
    make_backend,
)
from repro.sim.latencies import NetworkKind

KB = 1024


def _home_all_zero(items=10_000):
    return np.zeros(items, dtype=np.int64)


def _home_split(machines, items=10_000):
    """Items striped over machines in 4-line (one-block) chunks."""
    return ((np.arange(items) // 4) % machines).astype(np.int64)


def smp_backend(n=2):
    spec = PlatformSpec(name="s", n=n, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
    return SmpBackend(spec, _home_all_zero())


def cow_backend(net=NetworkKind.ETHERNET_100, N=2):
    spec = PlatformSpec(
        name="c", n=1, N=N, cache_bytes=2 * KB, memory_bytes=256 * KB, network=net
    )
    return CowBackend(spec, _home_split(N))


def clump_backend(net=NetworkKind.ETHERNET_100):
    spec = PlatformSpec(
        name="k", n=2, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB, network=net
    )
    return ClumpBackend(spec, _home_split(2))


class TestFactory:
    def test_dispatch(self, smp_spec, cow_spec, clump_spec):
        home = _home_all_zero()
        for spec in (smp_spec, cow_spec, clump_spec):
            backend = make_backend(spec, home)
            assert isinstance(backend, ComposedBackend)
            assert backend.topology.total_machines == spec.N
            assert backend.topology.procs_per_machine == spec.n

    def test_unsupported_kind_raises_precisely(self, smp_spec):
        """An unclassifiable platform must fail loudly, naming itself,
        instead of falling through to a wrong back-end."""

        class AlienSpec:
            name = "alien-platform"
            kind = "a hypercube of accelerators"

        with pytest.raises(ValueError) as err:
            make_backend(AlienSpec(), _home_all_zero())
        msg = str(err.value)
        assert "alien-platform" in msg
        assert "a hypercube of accelerators" in msg
        assert "SMP" in msg and "COW" in msg and "CLUMP" in msg

    def test_shape_validation(self, smp_spec, cow_spec, clump_spec):
        home = _home_all_zero()
        with pytest.raises(ValueError):
            CowBackend(smp_spec, home)
        with pytest.raises(ValueError):
            SmpBackend(cow_spec, home)
        with pytest.raises(ValueError):
            ClumpBackend(cow_spec, home)


class TestSmpTiming:
    def test_cold_miss_cost(self):
        b = smp_backend()
        # memory page is also cold: 1 (cache) + 50 (memory) + 2000 (disk)
        assert b.access(0, 100, False, 0.0) == pytest.approx(2051.0)
        assert b.stats.disk == 1

    def test_warm_page_miss_cost(self):
        b = smp_backend()
        b.access(0, 100, False, 0.0)  # faults the page in
        t = b.access(0, 101, False, 10_000.0)  # same page, new line
        assert t == pytest.approx(10_000.0 + 1.0 + 50.0)

    def test_cache_hit_cost(self):
        b = smp_backend()
        b.access(0, 100, False, 0.0)
        assert b.access(0, 100, False, 5000.0) == pytest.approx(5001.0)
        assert b.stats.cache_hits == 1

    def test_peer_transfer_cost(self):
        b = smp_backend()
        b.access(0, 100, False, 0.0)
        t = b.access(1, 100, False, 10_000.0)
        assert t == pytest.approx(10_000.0 + 1.0 + 15.0)
        assert b.stats.peer_cache == 1

    def test_bus_contention_serializes(self):
        b = smp_backend()
        b.access(0, 100, False, 0.0)  # warm the page
        b.memory.access(0)  # ensure page 0 resident
        t0 = b.access(0, 8, False, 10_000.0)  # occupies bus 50 cycles
        t1 = b.access(1, 16, False, 10_000.0)  # queued behind it
        assert t1 >= t0 + 49.0

    def test_coherence_traffic_fraction(self):
        b = smp_backend()
        b.access(0, 100, False, 0.0)
        b.access(1, 100, False, 0.0)
        b.access(0, 100, True, 0.0)
        assert 0.0 < b.coherence_traffic_fraction() <= 1.0

    def test_barrier_overhead_positive(self):
        b = smp_backend()
        assert b.barrier_overhead() == pytest.approx(100.0)
        assert b.stats.barrier_count == 1


class TestCowTiming:
    def test_local_home_access(self):
        b = cow_backend()
        b.memories[0].access(0)  # pre-fault the page
        t = b.access(0, 0, False, 0.0)  # line 0 homed on machine 0
        assert t == pytest.approx(1.0 + 50.0)
        assert b.stats.local_memory == 1

    def test_remote_clean_access(self):
        b = cow_backend()
        b.memories[1].access(0)  # pre-fault home page on machine 1
        t = b.access(0, 4, False, 0.0)  # line 4 -> block 1 -> home 1
        assert t == pytest.approx(1.0 + 4575.0)
        assert b.stats.remote_clean == 1

    def test_remote_dirty_costs_double_constant(self):
        b = cow_backend()
        b.memories[1].access(0)
        b.access(1, 4, True, 0.0)  # machine 1 dirties its own block
        t = b.access(0, 4, False, 100_000.0)
        assert t == pytest.approx(100_000.0 + 1.0 + 9150.0)
        assert b.stats.remote_dirty == 1

    def test_cache_hit_is_one_cycle(self):
        b = cow_backend()
        b.access(0, 0, False, 0.0)
        assert b.access(0, 0, False, 50_000.0) == pytest.approx(50_001.0)

    def test_write_hit_to_exclusive_block_is_cheap(self):
        b = cow_backend()
        b.access(0, 0, True, 0.0)
        t = b.access(0, 0, True, 50_000.0)
        assert t == pytest.approx(50_001.0)

    def test_ethernet_bus_serializes_remote_traffic(self):
        b = cow_backend(net=NetworkKind.ETHERNET_100, N=2)
        b.memories[0].access(0)
        b.memories[1].access(0)
        t0 = b.access(0, 4, False, 0.0)  # 0 -> 1
        t1 = b.access(1, 0, False, 0.0)  # 1 -> 0, queued on the bus
        assert t1 >= t0 + 4574.0

    def test_atm_switch_parallel_remote_traffic(self):
        b = cow_backend(net=NetworkKind.ATM_155, N=2)
        b.memories[0].access(0)
        b.memories[1].access(0)
        t0 = b.access(0, 4, False, 0.0)
        t1 = b.access(1, 0, False, 0.0)  # opposite direction: no queueing
        assert t0 == pytest.approx(1.0 + 3275.0)
        assert t1 == pytest.approx(1.0 + 3275.0)


class TestClumpTiming:
    def test_peer_cache_within_node(self):
        b = clump_backend()
        b.memories[0].access(0)
        b.access(0, 0, False, 0.0)  # proc 0 (machine 0)
        t = b.access(1, 0, False, 10_000.0)  # proc 1, same machine
        assert t == pytest.approx(10_000.0 + 1.0 + 15.0)
        assert b.stats.peer_cache == 1

    def test_remote_node_uses_clump_latency(self):
        b = clump_backend()
        b.memories[1].access(0)
        t = b.access(0, 4, False, 0.0)  # block 1 homed on machine 1
        assert t == pytest.approx(1.0 + 4578.0)  # COW value + 3

    def test_cross_machine_write_invalidates(self):
        b = clump_backend()
        b.memories[0].access(0)
        b.access(2, 0, False, 0.0)  # proc 2 = machine 1 reads block 0
        b.access(0, 0, False, 0.0)  # machine 0 reads it too
        b.access(0, 0, True, 0.0)  # machine 0 writes: invalidate machine 1
        assert b.stats.invalidations >= 1
        assert not b.protocol.snoops[1].holds(0)
