"""Tests for the SPMD execution engine's timing and synchronization."""

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.core.platform import PlatformSpec
from repro.sim.engine import SimulationEngine
from repro.trace.events import Trace

KB = 1024


def _trace(addrs, work=None, writes=None, barriers=(), tail_work=0):
    addrs = np.asarray(addrs, dtype=np.int64)
    n = addrs.size
    return Trace(
        addresses=addrs,
        is_write=np.asarray(writes if writes is not None else [False] * n, dtype=bool),
        work=np.asarray(work if work is not None else [0] * n, dtype=np.int64),
        barriers=np.asarray(barriers, dtype=np.int64),
        tail_work=tail_work,
    )


def _run(traces, procs):
    space = AddressSpace(procs)
    space.alloc("data", (100_000,), element_bytes=64)
    return ApplicationRun(
        name="crafted", problem_size="tiny", num_procs=procs,
        traces=tuple(traces), address_space=space, verified=True,
    )


def _smp(n=2):
    return PlatformSpec(name="e", n=n, N=1, cache_bytes=2 * KB, memory_bytes=1024 * KB)


class TestSerialTiming:
    def test_single_access_cycle_math(self):
        """work + 1 (instruction) + 1 (cache) + 50 (memory, warm page)."""
        run = _run([_trace([8], work=[5]), _trace([], work=[])], procs=2)
        engine = SimulationEngine(_smp(), run, horizon=0.0)
        engine.backend.memory.access(0)  # pre-fault the page
        res = engine.execute()
        assert res.total_cycles == pytest.approx(5 + 1 + 1 + 50)

    def test_cache_hit_sequence(self):
        run = _run([_trace([8, 8, 8]), _trace([])], procs=2)
        engine = SimulationEngine(_smp(), run, horizon=0.0)
        engine.backend.memory.access(0)
        res = engine.execute()
        # miss: 1+1+50; two hits: 1+1 each
        assert res.total_cycles == pytest.approx(52 + 2 + 2)
        assert res.stats.cache_hits == 2

    def test_tail_work_counts(self):
        run = _run([_trace([8], tail_work=100), _trace([])], procs=2)
        engine = SimulationEngine(_smp(), run, horizon=0.0)
        engine.backend.memory.access(0)
        res = engine.execute()
        assert res.total_cycles == pytest.approx(1 + 1 + 50 + 100)

    def test_e_instr_accounting(self):
        run = _run([_trace([8], work=[9]), _trace([8], work=[9])], procs=2)
        res = SimulationEngine(_smp(), run, horizon=0.0).execute()
        assert res.total_instructions == 20
        assert res.e_instr_cycles == pytest.approx(res.total_cycles / 20)
        assert res.e_app_seconds == pytest.approx(
            res.e_instr_seconds * res.total_instructions
        )


class TestBarriers:
    def test_barrier_aligns_clocks(self):
        # proc 0 does heavy work before the barrier, proc 1 nothing
        t0 = _trace([8, 16], work=[1000, 0], barriers=[1])
        t1 = _trace([24, 32], work=[0, 0], barriers=[1])
        run = _run([t0, t1], procs=2)
        res = SimulationEngine(_smp(), run, horizon=0.0).execute()
        assert res.barrier_wait_cycles > 900  # proc 1 waited for proc 0

    def test_barrier_release_includes_overhead(self):
        t0 = _trace([8], barriers=[1])
        t1 = _trace([16], barriers=[1])
        run = _run([t0, t1], procs=2)
        engine = SimulationEngine(_smp(), run, horizon=0.0)
        res = engine.execute()
        assert res.stats.barrier_count == 1
        # both finish exactly at the release time
        assert res.per_process_cycles[0] == res.per_process_cycles[1]

    def test_mismatched_barriers_rejected_upstream(self):
        with pytest.raises(ValueError):
            _run([_trace([8], barriers=[0]), _trace([8])], procs=2)


class TestContention:
    def test_two_procs_serialize_on_the_bus(self):
        # both procs miss simultaneously on different lines
        t0 = _trace([8])
        t1 = _trace([512])
        run = _run([t0, t1], procs=2)
        engine = SimulationEngine(_smp(), run, horizon=0.0)
        engine.backend.memory.access(0)
        engine.backend.memory.access(8)  # page of line 512
        res = engine.execute()
        # first finishes at 52, second waits for the bus: 2 + 50 + 50
        assert res.total_cycles == pytest.approx(102.0)


class TestConfigValidation:
    def test_processor_count_must_match(self):
        run = _run([_trace([8])], procs=1)
        with pytest.raises(ValueError, match="processes"):
            SimulationEngine(_smp(n=2), run)

    def test_negative_horizon_rejected(self):
        run = _run([_trace([8]), _trace([8])], procs=2)
        with pytest.raises(ValueError):
            SimulationEngine(_smp(), run, horizon=-1.0)


class TestHorizonEquivalence:
    def test_aggregate_time_insensitive_to_horizon(self, fft_run_4):
        spec = PlatformSpec(name="h", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
        strict = SimulationEngine(spec, fft_run_4, horizon=0.0).execute()
        chunked = SimulationEngine(spec, fft_run_4, horizon=500.0).execute()
        assert chunked.total_cycles == pytest.approx(strict.total_cycles, rel=0.15)
        assert chunked.stats.references == strict.stats.references

    def test_describe(self, fft_run_4):
        spec = PlatformSpec(name="h", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
        res = SimulationEngine(spec, fft_run_4).execute()
        assert "FFT" in res.describe()


class TestUtilizations:
    def test_smp_reports_bus_and_disk(self, fft_run_4):
        spec = PlatformSpec(name="u", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
        res = SimulationEngine(spec, fft_run_4).execute()
        u = res.utilizations
        assert set(u) == {"memory bus", "disk"}
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in u.values())
        assert res.bottleneck in u

    def test_network_is_the_cow_bottleneck_for_fft(self, fft_run_4):
        from repro.sim.latencies import NetworkKind

        spec = PlatformSpec(
            name="u2", n=1, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
            network=NetworkKind.ETHERNET_100,
        )
        res = SimulationEngine(spec, fft_run_4).execute()
        assert res.bottleneck == "network"
        assert res.utilizations["network"] > 0.5

    def test_describe_mentions_utilization(self, fft_run_4):
        spec = PlatformSpec(name="u3", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
        res = SimulationEngine(spec, fft_run_4).execute()
        assert "util:" in res.describe()
