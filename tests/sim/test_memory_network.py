"""Tests for FCFS servers, paged memory and the two network topologies."""

import pytest

from repro.sim.latencies import NetworkKind
from repro.sim.memory import PAGE_ITEMS, PagedMemory, Server, page_of
from repro.sim.network import CONTROL_FRACTION, BusNetwork, SwitchNetwork, make_network


class TestServer:
    def test_idle_server_serves_immediately(self):
        s = Server()
        assert s.request(10.0, 5.0) == 15.0

    def test_fcfs_queueing(self):
        s = Server()
        assert s.request(0.0, 10.0) == 10.0
        # arrives at t=2 while busy: waits until 10, finishes 20
        assert s.request(2.0, 10.0) == 20.0
        assert s.waiting_time(12.0) == pytest.approx(8.0)

    def test_gap_resets_queue(self):
        s = Server()
        s.request(0.0, 5.0)
        assert s.request(100.0, 5.0) == 105.0

    def test_accounting(self):
        s = Server()
        s.request(0.0, 5.0)
        s.request(0.0, 5.0)
        assert s.busy_cycles == 10.0 and s.requests == 2


class TestPagedMemory:
    def test_hit_after_touch(self):
        m = PagedMemory(capacity_items=4 * PAGE_ITEMS)
        assert not m.access(0)  # cold
        assert m.access(0)

    def test_lru_page_replacement(self):
        m = PagedMemory(capacity_items=2 * PAGE_ITEMS)
        m.access(0)
        m.access(1)
        m.access(0)  # refresh page 0
        m.access(2)  # evicts page 1
        assert m.access(0)
        assert not m.access(1)

    def test_counters(self):
        m = PagedMemory(capacity_items=PAGE_ITEMS)
        m.access(0)
        m.access(0)
        assert (m.hits, m.misses) == (1, 1)
        assert m.resident_pages == 1

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            PagedMemory(capacity_items=PAGE_ITEMS - 1)

    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_ITEMS) == 1


class TestNetworks:
    def test_factory_topologies(self):
        assert isinstance(make_network(NetworkKind.ETHERNET_10, 4), BusNetwork)
        assert isinstance(make_network(NetworkKind.ETHERNET_100, 4), BusNetwork)
        assert isinstance(make_network(NetworkKind.ATM_155, 4), SwitchNetwork)

    def test_bus_serializes_everything(self):
        net = BusNetwork(NetworkKind.ETHERNET_100, 4)
        assert net.transfer(0.0, 0, 1, 100.0) == 100.0
        # different destination, still the same shared medium
        assert net.transfer(0.0, 2, 3, 100.0) == 200.0

    def test_switch_parallel_destinations(self):
        net = SwitchNetwork(NetworkKind.ATM_155, 4)
        assert net.transfer(0.0, 0, 1, 100.0) == 100.0
        assert net.transfer(0.0, 2, 3, 100.0) == 100.0  # disjoint ports

    def test_switch_queues_per_destination(self):
        net = SwitchNetwork(NetworkKind.ATM_155, 4)
        net.transfer(0.0, 0, 1, 100.0)
        assert net.transfer(0.0, 2, 1, 100.0) == 200.0

    def test_control_message_fraction(self):
        net = BusNetwork(NetworkKind.ETHERNET_10, 2)
        finish = net.control(0.0, 0, 1, 100.0)
        assert finish == pytest.approx(100.0 * CONTROL_FRACTION)
        assert net.control_messages == 1

    def test_busy_cycles_aggregate(self):
        net = SwitchNetwork(NetworkKind.ATM_155, 3)
        net.transfer(0.0, 0, 1, 50.0)
        net.transfer(0.0, 0, 2, 70.0)
        assert net.busy_cycles == pytest.approx(120.0)

    def test_minimum_two_machines(self):
        with pytest.raises(ValueError):
            BusNetwork(NetworkKind.ETHERNET_10, 1)
