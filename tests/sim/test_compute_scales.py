"""Per-process compute scales: the simulator's half of heterogeneity.

Three contracts:

* all-unity scales collapse to the legacy expressions, bit-identically
  -- a build with the feature and a build without it must be
  indistinguishable on homogeneous inputs;
* with real scales the scalar and vectorized lanes still agree bitwise
  (the 2^-6-grid quantization gives both lanes literally the same
  per-reference steps);
* the stacked tensor lane's scaled schedules match what the engine
  builds for itself.
"""

import math

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.core.platform import PlatformSpec
from repro.sim.engine import SimulationEngine
from repro.sim.stacked import stacked_schedules
from repro.trace.events import Trace

KB = 1024
rng = np.random.default_rng(7)


def _trace(n, procs, seed):
    r = np.random.default_rng(seed)
    addrs = r.integers(0, 4096, size=n)
    return Trace(
        addresses=np.asarray(addrs, dtype=np.int64),
        is_write=r.random(n) < 0.3,
        work=r.integers(0, 4, size=n).astype(np.int64),
        barriers=np.asarray([n // 3, 2 * n // 3], dtype=np.int64),
        tail_work=5,
    )


def _run(procs=4, n=400):
    space = AddressSpace(procs)
    space.alloc("data", (100_000,), element_bytes=64)
    return ApplicationRun(
        name="crafted", problem_size="tiny", num_procs=procs,
        traces=tuple(_trace(n, procs, seed=10 + p) for p in range(procs)),
        address_space=space, verified=True,
    )


def _smp(n=4):
    return PlatformSpec(name="s", n=n, N=1, cache_bytes=2 * KB, memory_bytes=1024 * KB)


class TestUnityCollapse:
    def test_unity_scales_bit_identical_to_no_scales(self):
        run = _run()
        base = SimulationEngine(_smp(), run).execute()
        unity = SimulationEngine(_smp(), run, compute_scales=(1.0,) * 4).execute()
        assert unity.total_cycles == base.total_cycles
        assert unity.per_process_cycles == base.per_process_cycles

    def test_unity_scales_scalar_lane_too(self):
        run = _run()
        base = SimulationEngine(_smp(), run, fastpath=False).execute()
        unity = SimulationEngine(
            _smp(), run, fastpath=False, compute_scales=(1.0,) * 4
        ).execute()
        assert unity.total_cycles == base.total_cycles


class TestScaledLanes:
    @pytest.mark.parametrize("scales", [(2.0, 2.0, 1.0, 1.0), (2.5, 1.0, 1.5, 1.0)])
    def test_scalar_and_fastpath_agree_bitwise(self, scales):
        run = _run()
        fast = SimulationEngine(_smp(), run, compute_scales=scales).execute()
        slow = SimulationEngine(
            _smp(), run, fastpath=False, compute_scales=scales
        ).execute()
        assert fast.total_cycles == slow.total_cycles
        assert fast.per_process_cycles == slow.per_process_cycles

    def test_faster_cpus_finish_sooner(self):
        run = _run()
        base = SimulationEngine(_smp(), run).execute()
        scaled = SimulationEngine(
            _smp(), run, compute_scales=(2.0, 2.0, 2.0, 2.0)
        ).execute()
        assert scaled.total_cycles < base.total_cycles

    def test_profile_accounting_survives_scales(self):
        run = _run()
        res = SimulationEngine(
            _smp(), run, compute_scales=(2.0, 1.0, 1.0, 1.0), profile=True
        ).execute()
        total = math.fsum(res.profile.cycles.values())
        assert total == res.profile.proc_cycles == 4 * res.total_cycles


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="4"):
            SimulationEngine(_smp(), _run(), compute_scales=(1.0, 2.0))

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError):
            SimulationEngine(_smp(), _run(), compute_scales=(1.0, 1.0, 1.0, bad))


class TestStackedSchedules:
    def test_scaled_schedules_match_engine(self):
        run = _run()
        scales = (2.5, 2.5, 1.0, 1.0)
        engine = SimulationEngine(_smp(), run, compute_scales=scales)
        works = np.stack([t.work for t in run.traces])[None, :, :].astype(np.float64)
        hits = np.asarray([engine.backend.t_hit], dtype=np.float64)
        scheds = stacked_schedules(
            works, None,
            scales=np.asarray([scales], dtype=np.float64), hits=hits,
        )
        for p in range(4):
            assert np.array_equal(scheds[0, p], engine._scheds[p])

    def test_unscaled_schedules_unchanged(self):
        run = _run()
        engine = SimulationEngine(_smp(), run)
        works = np.stack([t.work for t in run.traces])[None, :, :].astype(np.float64)
        steps = np.asarray([1.0 + engine.backend.t_hit], dtype=np.float64)
        legacy = stacked_schedules(works, steps)
        for p in range(4):
            assert np.array_equal(legacy[0, p], engine._scheds[p])
