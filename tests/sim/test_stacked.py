"""The stacked tensor lane: grouping, kernels, and the three-lane
bit-identity invariant (scalar == vectorized == stacked).

The stacked lane's contract is that *batch composition is invisible*:
a cell's result depends only on the cell, never on which cells happen
to share its grid, its group, or its padded tensor.  These tests
attack that contract from every angle the ISSUE names -- randomized
topologies (including deepened CLUMP-of-SMPs), localities, seeds,
fault plans, timelines, resource counters, and the RNG discipline
(seeds derive from cell identity, not batch position).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.core.platform import PlatformSpec
from repro.faults.plan import FaultPlan
from repro.sim.engine import SimulationEngine
from repro.sim.latencies import NetworkKind
from repro.sim.stacked import (
    StackedCell,
    derive_cell_seed,
    group_cells,
    shape_signature,
    simulate_grid,
    stacked_schedules,
)
from repro.topology.canned import deepen_spec
from repro.trace.events import Trace

KB = 1024

SPECS = [
    PlatformSpec(name="st-smp", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB),
    PlatformSpec(
        name="st-smp-l2", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
        l2_bytes=8 * KB,
    ),
    PlatformSpec(
        name="st-cow", n=1, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    ),
    PlatformSpec(
        name="st-clump", n=2, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    ),
]

#: A two-level CLUMP-of-SMPs (racks of switched machines) -- the
#: deepest topology the repo can express, exercising the stacked
#: lane's step probe on a non-flat hierarchy.
DEEP = deepen_spec(
    PlatformSpec(
        name="st-flat8", n=2, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ETHERNET_100,
    ),
    rack_size=2,
)


def _random_run(procs: int, seed: int, refs: int = 400) -> ApplicationRun:
    """Synthetic SPMD run mixing private streaks (fastpath segments)
    with shared lines and writes (scalar coherence fallbacks)."""
    rng = np.random.default_rng(seed)
    space = AddressSpace(procs)
    space.alloc("data", (100_000,), element_bytes=64)
    n_barriers = int(rng.integers(1, 4))
    traces = []
    for p in range(procs):
        blocks = rng.integers(p * 128, p * 128 + 96, size=refs // 4 + 1)
        addrs = np.repeat(blocks, 4)[:refs].copy()
        shared = rng.random(refs) < 0.08
        addrs[shared] = rng.integers(0, 64, size=int(shared.sum()))
        barriers = np.sort(
            rng.choice(np.arange(1, refs), size=n_barriers, replace=False)
        )
        traces.append(
            Trace(
                addresses=addrs.astype(np.int64),
                is_write=rng.random(refs) < 0.3,
                work=rng.integers(0, 4, size=refs).astype(np.int64),
                barriers=barriers.astype(np.int64),
                tail_work=int(rng.integers(0, 50)),
            )
        )
    return ApplicationRun(
        name="random", problem_size=f"seed={seed}", num_procs=procs,
        traces=tuple(traces), address_space=space, verified=True,
    )


def _provider(name, procs, seed, app_kwargs):
    return _random_run(procs, seed)


def _reference(cell: StackedCell, **kw):
    """Scalar-lane reference result for one cell, computed in isolation."""
    run = _random_run(cell.procs, cell.seed)
    return SimulationEngine(
        cell.spec, run, fastpath=False, fault_plan=cell.fault_plan, **kw
    ).execute()


def _assert_identical(a, b) -> None:
    assert a.total_cycles == b.total_cycles
    assert a.per_process_cycles == b.per_process_cycles
    assert a.barrier_wait_cycles == b.barrier_wait_cycles
    assert a.stats.as_dict() == b.stats.as_dict()


# ----------------------------------------------------------------------
# The stacked-schedule kernel
# ----------------------------------------------------------------------
def test_stacked_schedules_bit_identical_to_per_trace_cumsum():
    """One batched cumsum over (R, P, Lmax) rows == R*P separate 1-D
    cumsums, bit for bit, including ragged live prefixes."""
    rng = np.random.default_rng(0)
    R, P, Lmax = 5, 3, 64
    lengths = rng.integers(1, Lmax + 1, size=R)
    works = np.zeros((R, P, Lmax))
    for r in range(R):
        works[r, :, : lengths[r]] = rng.integers(0, 5, size=(P, lengths[r]))
    steps = rng.uniform(1.0, 3.0, size=R)
    stacked = stacked_schedules(works, steps)
    for r in range(R):
        for p in range(P):
            expect = (works[r, p, : lengths[r]] + steps[r]).cumsum()
            got = stacked[r, p, : lengths[r]]
            assert got.tolist() == expect.tolist()


def test_stacked_schedules_padding_never_leaks():
    """Garbage beyond a row's live prefix cannot perturb the prefix:
    cumsum accumulates left to right, so two tensors agreeing on
    [:L] agree on the schedule's [:L] exactly."""
    rng = np.random.default_rng(1)
    works = rng.integers(0, 5, size=(2, 2, 32)).astype(float)
    L = 10
    dirty = works.copy()
    dirty[:, :, L:] = 1e12  # hostile padding
    steps = np.array([1.5, 2.0])
    a = stacked_schedules(works, steps)[:, :, :L]
    b = stacked_schedules(dirty, steps)[:, :, :L]
    assert a.tolist() == b.tolist()


def test_stacked_schedules_validates_shapes():
    with pytest.raises(ValueError):
        stacked_schedules(np.zeros((2, 2)), np.zeros(2))
    with pytest.raises(ValueError):
        stacked_schedules(np.zeros((2, 2, 4)), np.zeros(3))


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------
def test_group_cells_partitions_by_signature():
    cells = [StackedCell.make("random", spec, seed=s) for spec in SPECS for s in (0, 1)]
    cells.append(StackedCell.make(
        "random", SPECS[0], seed=0,
        fault_plan=FaultPlan.generate(seed=3, num_procs=4, span=5e4),
    ))
    groups = group_cells(cells)
    # every cell lands in exactly one group, at its original index
    seen = sorted(pos for g in groups for pos in g.positions)
    assert seen == list(range(len(cells)))
    for g in groups:
        assert len(g.cells) == len(g.positions)
        for cell in g.cells:
            assert shape_signature(cell) == g.signature
    # the faulted cell must not share a group with its clean twin
    faulted = [g for g in groups if g.signature[2]]
    assert len(faulted) == 1 and len(faulted[0].cells) == 1


def test_signature_separates_topology_kinds():
    smp, cow, clump = SPECS[0], SPECS[2], SPECS[3]
    sigs = {shape_signature(StackedCell.make("x", s)) for s in (smp, cow, clump)}
    assert len(sigs) == 3


# ----------------------------------------------------------------------
# Three-lane bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SPECS + [DEEP], ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 1])
def test_three_lanes_identical(spec, seed):
    """scalar == vectorized == stacked for every topology family,
    including the deepened CLUMP-of-SMPs."""
    cell = StackedCell.make("random", spec, seed=seed)
    run = _random_run(cell.procs, seed)
    scalar = SimulationEngine(spec, run, fastpath=False).execute()
    batched = SimulationEngine(spec, run, fastpath=True).execute()
    (stacked,) = simulate_grid([cell], run_provider=_provider)
    _assert_identical(scalar, batched)
    _assert_identical(scalar, stacked)


def test_mixed_grid_matches_isolated_references():
    """A heterogeneous grid -- all topology kinds, multiple seeds, a
    fault-injected cell -- slices back to exactly what each cell
    computes alone in the scalar lane."""
    plan = FaultPlan.generate(seed=11, num_procs=4, span=5e4)
    cells = [StackedCell.make("random", spec, seed=s) for spec in SPECS for s in (0, 1)]
    cells.append(StackedCell.make("random", SPECS[0], seed=0, fault_plan=plan))
    cells.append(StackedCell.make("random", DEEP, seed=2))
    results = simulate_grid(cells, run_provider=_provider)
    assert len(results) == len(cells)
    for cell, got in zip(cells, results):
        _assert_identical(_reference(cell), got)


def test_fault_injected_cells_identical_across_lanes():
    plan = FaultPlan.generate(seed=5, num_procs=4, span=5e4)
    cell = StackedCell.make("random", SPECS[0], seed=3, fault_plan=plan)
    run = _random_run(4, 3)
    scalar = SimulationEngine(
        SPECS[0], run, fastpath=False, fault_plan=plan
    ).execute()
    (stacked,) = simulate_grid([cell], run_provider=_provider)
    _assert_identical(scalar, stacked)
    assert stacked.fault_cycles == scalar.fault_cycles
    assert stacked.fault_events == scalar.fault_events


def test_timelines_identical_across_lanes():
    cells = [StackedCell.make("random", spec, seed=0) for spec in SPECS]
    results = simulate_grid(cells, run_provider=_provider, sample_every=5000.0)
    for cell, got in zip(cells, results):
        ref = _reference(cell, sample_every=5000.0)
        assert got.timeline == ref.timeline


# ----------------------------------------------------------------------
# Batch composition is invisible
# ----------------------------------------------------------------------
def test_grid_composition_never_changes_a_cell():
    """The same cell alone, permuted, and padded against strangers
    yields the same bits."""
    probe = StackedCell.make("random", SPECS[0], seed=7)
    (alone,) = simulate_grid([probe], run_provider=_provider)
    strangers = [
        StackedCell.make("random", SPECS[0], seed=s) for s in (8, 9)
    ] + [StackedCell.make("random", SPECS[3], seed=1)]
    for arrangement in ([probe, *strangers], [*strangers, probe]):
        results = simulate_grid(arrangement, run_provider=_provider)
        got = results[arrangement.index(probe)]
        _assert_identical(alone, got)


def test_derive_cell_seed_ignores_batch_position():
    """Seeds derive from cell identity (the cell key), never from where
    the cell sits in a batch -- the ISSUE's RNG-discipline regression."""
    a = StackedCell.make("random", SPECS[0], seed=1)
    b = StackedCell.make("random", SPECS[2], seed=1)
    # same cell, any context: same derived stream
    assert derive_cell_seed(a) == derive_cell_seed(a)
    assert derive_cell_seed(a, "faults") == derive_cell_seed(a, "faults")
    # different cells or purposes: different streams
    assert derive_cell_seed(a) != derive_cell_seed(b)
    assert derive_cell_seed(a) != derive_cell_seed(a, "faults")
    # and the key itself is positionless: rebuilding the cell gives the
    # same key, so grouping/regrouping cannot perturb the stream
    assert StackedCell.make("random", SPECS[0], seed=1).cell_key() == a.cell_key()


def test_cell_key_distinguishes_fault_plans_and_kwargs():
    base = StackedCell.make("random", SPECS[0], seed=1)
    keys = {
        base.cell_key(),
        StackedCell.make("random", SPECS[0], seed=2).cell_key(),
        StackedCell.make("random", SPECS[1], seed=1).cell_key(),
        StackedCell.make("random", SPECS[0], seed=1,
                         app_kwargs={"points": 64}).cell_key(),
        StackedCell.make(
            "random", SPECS[0], seed=1,
            fault_plan=FaultPlan.generate(seed=1, num_procs=4, span=1e4),
        ).cell_key(),
    }
    assert len(keys) == 5


def test_stacked_metrics_observable():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cells = [StackedCell.make("random", spec, seed=0) for spec in SPECS]
    simulate_grid(cells, run_provider=_provider, metrics=registry)
    counter = registry.get("repro_stacked_cells_total")
    assert counter is not None
    assert sum(s.value for _, s in counter.samples()) == len(cells)
