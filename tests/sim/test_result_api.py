"""SimulationResult's designer-facing API and BackendStats export.

Satellite coverage: ``utilizations``/``bottleneck``/``describe`` on real
runs of each backend family, plus ``BackendStats.as_dict()`` surviving a
round trip through the metrics JSON exporter.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.backends.base import BackendStats
from repro.sim.engine import SimulationEngine

from tests.sim.test_fastpath_equivalence import SPECS, _SPEC_IDS, _random_run


@pytest.fixture(scope="module")
def results():
    return {
        spec.name: SimulationEngine(
            spec, _random_run(spec.total_processors, 0)
        ).execute()
        for spec in SPECS
    }


_EXPECTED_RESOURCES = {
    "eq-smp": {"memory bus", "disk"},
    "eq-smp-l2": {"memory bus", "disk"},
    "eq-cow-bus": {"network", "disks"},
    "eq-cow-switch": {"network", "disks"},
    "eq-clump": {"network", "memory buses", "disks"},
}


@pytest.mark.parametrize("name", list(_EXPECTED_RESOURCES), ids=_SPEC_IDS)
def test_utilizations_per_family(results, name):
    res = results[name]
    util = res.utilizations
    assert set(util) == _EXPECTED_RESOURCES[name]
    for resource, value in util.items():
        # A switch's ports queue independently, so its aggregate busy
        # cycles (and hence "utilization") may legitimately exceed 1.
        assert value >= 0.0, resource
    # utilization:<r> extras are exactly busy/span, nothing else leaks in
    for key in res.stats.extra:
        if key.startswith("utilization:"):
            assert key[len("utilization:"):] in util


@pytest.mark.parametrize("name", list(_EXPECTED_RESOURCES), ids=_SPEC_IDS)
def test_bottleneck_is_the_busiest_resource(results, name):
    res = results[name]
    util = res.utilizations
    assert res.bottleneck in util
    assert util[res.bottleneck] == max(util.values())


def test_bottleneck_none_without_resources():
    stats = BackendStats()
    from repro.sim.engine import SimulationResult

    res = SimulationResult(
        platform_name="p", application="a", total_cycles=0.0,
        total_instructions=0, total_references=0,
        e_instr_seconds=0.0, e_instr_cycles=0.0,
        barrier_wait_cycles=0.0, stats=stats,
    )
    assert res.utilizations == {}
    assert res.bottleneck is None


@pytest.mark.parametrize("name", list(_EXPECTED_RESOURCES), ids=_SPEC_IDS)
def test_describe_mentions_the_headline_numbers(results, name):
    res = results[name]
    text = res.describe()
    assert res.application in text and res.platform_name in text
    assert f"{res.total_cycles:,.0f} cycles" in text
    assert "miss" in text and "util:" in text
    assert res.bottleneck in text


def test_stats_ratios_handle_zero_references():
    stats = BackendStats()
    assert stats.miss_ratio == 0.0
    assert stats.remote_ratio == 0.0


def test_as_dict_round_trips_through_metrics_json(results):
    """Feed every as_dict() field into gauges, export, and read it back."""
    res = results["eq-clump"]
    flat = res.stats.as_dict()
    assert flat["references"] == res.stats.references
    assert all(isinstance(k, str) for k in flat)

    reg = MetricsRegistry()
    gauge = reg.gauge("repro_backend_stat", "one BackendStats field", labelnames=("field",))
    for field, value in flat.items():
        gauge.labels(field=field).set(float(value))

    exported = json.loads(reg.to_json())
    (family,) = exported["metrics"]
    recovered = {
        s["labels"]["field"]: s["value"] for s in family["series"]
    }
    assert recovered == {k: pytest.approx(float(v)) for k, v in flat.items()}
    # the access-class identity: every reference is served by exactly one level
    served = (
        flat["cache_hits"] + flat["l2_hits"] + flat["peer_cache"]
        + flat["local_memory"] + flat["remote_clean"] + flat["remote_dirty"]
    )
    assert served == flat["references"]
