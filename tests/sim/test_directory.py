"""Tests for the directory-based DSM coherence protocol."""

import pytest

from repro.sim.directory import (
    BlockState,
    Directory,
    DirServe,
    LINES_PER_BLOCK,
    block_of,
)


def make_dir(machines=4):
    # blocks homed round-robin over machines
    return Directory(lambda block: block % machines, machines)


class TestGeometry:
    def test_block_of(self):
        assert LINES_PER_BLOCK == 4
        assert block_of(0) == 0
        assert block_of(3) == 0
        assert block_of(4) == 1


class TestReads:
    def test_cold_read_from_home(self):
        d = make_dir()
        out = d.read(machine=2, line=0)  # block 0, home 0
        assert out.serve is DirServe.HOME_MEMORY
        assert out.home == 0
        assert out.state is BlockState.SHARED
        assert d.state(0) is BlockState.SHARED
        assert 2 in d.holders(0)

    def test_read_of_dirty_block_forces_writeback(self):
        d = make_dir()
        d.write(machine=1, line=0, hit_own_cache=False)
        assert d.state(0) is BlockState.EXCLUSIVE
        out = d.read(machine=2, line=0)
        assert out.serve is DirServe.REMOTE_DIRTY
        assert out.dirty_owner == 1
        assert d.state(0) is BlockState.SHARED
        assert d.writebacks == 1

    def test_owner_rereads_own_dirty_block(self):
        d = make_dir()
        d.write(machine=1, line=0, hit_own_cache=False)
        out = d.read(machine=1, line=0)
        assert out.serve is DirServe.HOME_MEMORY
        assert out.state is BlockState.EXCLUSIVE  # ownership retained


class TestWrites:
    def test_write_invalidates_all_sharers(self):
        d = make_dir()
        for m in (0, 2, 3):
            d.read(m, 0)
        out = d.write(machine=1, line=0, hit_own_cache=False)
        assert out.invalidated == (0, 2, 3)
        assert d.state(0) is BlockState.EXCLUSIVE
        assert d.holders(0) == frozenset({1})
        assert d.invalidations == 3

    def test_write_steals_dirty_ownership(self):
        d = make_dir()
        d.write(1, 0, hit_own_cache=False)
        out = d.write(2, 0, hit_own_cache=False)
        assert out.serve is DirServe.REMOTE_DIRTY
        assert out.dirty_owner == 1
        assert d.state(0) is BlockState.EXCLUSIVE
        assert d.holders(0) == frozenset({2})

    def test_silent_upgrade_when_sole_cached_owner(self):
        d = make_dir()
        d.read(1, 0)
        d.write(1, 0, hit_own_cache=True)
        out = d.write(1, 0, hit_own_cache=True)
        assert out.serve is DirServe.HOME_MEMORY
        assert out.invalidated == ()

    def test_false_sharing_at_block_granularity(self):
        """Writes to *different lines* of one block still conflict."""
        d = make_dir()
        d.write(0, 0, hit_own_cache=False)  # line 0 of block 0
        out = d.write(1, 3, hit_own_cache=False)  # line 3 of block 0
        assert out.dirty_owner == 0


class TestOwnershipDrop:
    def test_drop_owner_on_eviction(self):
        d = make_dir()
        d.write(1, 0, hit_own_cache=False)
        d.drop_owner(0, 1)
        assert d.state(0) is BlockState.SHARED  # holders still recorded
        assert d.writebacks == 1

    def test_drop_by_non_owner_is_noop(self):
        d = make_dir()
        d.write(1, 0, hit_own_cache=False)
        d.drop_owner(0, 2)
        assert d.state(0) is BlockState.EXCLUSIVE

    def test_uncached_initially(self):
        d = make_dir()
        assert d.state(7) is BlockState.UNCACHED
        assert d.holders(7) == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError):
            Directory(lambda b: 0, 0)
