"""Property-based invariants of the back-ends under random traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import PlatformSpec
from repro.sim.backends import ClumpBackend, CowBackend, SmpBackend
from repro.sim.latencies import NetworkKind

KB = 1024

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # proc
        st.integers(min_value=0, max_value=300),  # line
        st.booleans(),  # write
    ),
    min_size=1,
    max_size=150,
)


def _home(items=10_000, machines=2):
    return ((np.arange(items) // 4) % machines).astype(np.int64)


def _drive(backend, stream, procs):
    clocks = [0.0] * procs
    for proc, line, write in stream:
        p = proc % procs
        clocks[p] = backend.access(p, line, write, clocks[p] + 1.0)
    return clocks


def _check_counters(backend, stream):
    st_ = backend.stats
    assert st_.references == len(stream)
    served = (
        st_.cache_hits
        + st_.l2_hits
        + st_.peer_cache
        + st_.local_memory
        + st_.remote_clean
        + st_.remote_dirty
    )
    assert served == st_.references
    # page faults are a sub-stage of memory-served accesses
    assert st_.disk <= st_.local_memory + st_.remote_clean
    for field in ("cache_hits", "invalidations", "writebacks", "disk"):
        assert getattr(st_, field) >= 0


class TestSmpInvariants:
    @given(stream=accesses)
    @settings(max_examples=60, deadline=None)
    def test_counters_account_for_every_reference(self, stream):
        spec = PlatformSpec(name="p", n=4, N=1, cache_bytes=1 * KB, memory_bytes=256 * KB)
        b = SmpBackend(spec, _home(machines=1))
        _drive(b, stream, 4)
        _check_counters(b, stream)

    @given(stream=accesses)
    @settings(max_examples=60, deadline=None)
    def test_time_moves_forward(self, stream):
        spec = PlatformSpec(name="p", n=4, N=1, cache_bytes=1 * KB, memory_bytes=256 * KB)
        b = SmpBackend(spec, _home(machines=1))
        clock = 0.0
        for proc, line, write in stream:
            finish = b.access(proc % 4, line, write, clock + 1.0)
            assert finish >= clock + 1.0
            clock = finish

    @given(stream=accesses)
    @settings(max_examples=40, deadline=None)
    def test_no_line_cached_twice_dirty(self, stream):
        """At most one cache may hold a line dirty (write-invalidate)."""
        spec = PlatformSpec(name="p", n=4, N=1, cache_bytes=1 * KB, memory_bytes=256 * KB)
        b = SmpBackend(spec, _home(machines=1))
        _drive(b, stream, 4)
        for line in {line for _, line, _ in stream}:
            dirty_holders = sum(1 for c in b.caches if c.is_dirty(line))
            assert dirty_holders <= 1

    @given(stream=accesses)
    @settings(max_examples=40, deadline=None)
    def test_written_line_exclusive(self, stream):
        """After any write, no other cache still holds the line."""
        spec = PlatformSpec(name="p", n=2, N=1, cache_bytes=1 * KB, memory_bytes=256 * KB)
        b = SmpBackend(spec, _home(machines=1))
        last_writer: dict[int, int] = {}
        clocks = [0.0, 0.0]
        for proc, line, write in stream:
            p = proc % 2
            clocks[p] = b.access(p, line, write, clocks[p] + 1.0)
            if write:
                last_writer[line] = p
        for line, writer in last_writer.items():
            # if the writer still holds it dirty, nobody else may hold it
            if b.caches[writer].is_dirty(line):
                others = [c for i, c in enumerate(b.caches) if i != writer]
                assert not any(c.contains(line) for c in others)


class TestCowInvariants:
    @given(stream=accesses)
    @settings(max_examples=50, deadline=None)
    def test_counters_and_directory_consistency(self, stream):
        spec = PlatformSpec(
            name="p", n=1, N=4, cache_bytes=1 * KB, memory_bytes=256 * KB,
            network=NetworkKind.ATM_155,
        )
        b = CowBackend(spec, _home(machines=4))
        _drive(b, stream, 4)
        _check_counters(b, stream)
        # directory exclusivity: a dirty block's lines live only at the owner
        for block, owner in list(b.directory._owner.items()):
            for m, cache in enumerate(b.caches):
                if m == owner:
                    continue
                for l in range(block * 4, block * 4 + 4):
                    assert not cache.contains(l)

    @given(stream=accesses)
    @settings(max_examples=30, deadline=None)
    def test_bus_and_switch_serve_identical_traffic(self, stream):
        """Topology changes timing, never the access classification."""
        def counts(net):
            spec = PlatformSpec(
                name="p", n=1, N=4, cache_bytes=1 * KB, memory_bytes=256 * KB,
                network=net,
            )
            b = CowBackend(spec, _home(machines=4))
            _drive(b, stream, 4)
            s = b.stats
            return (s.cache_hits, s.local_memory, s.remote_clean, s.remote_dirty)

        assert counts(NetworkKind.ETHERNET_10) == counts(NetworkKind.ATM_155)


class TestClumpInvariants:
    @given(stream=accesses)
    @settings(max_examples=50, deadline=None)
    def test_counters_account_for_every_reference(self, stream):
        spec = PlatformSpec(
            name="p", n=2, N=2, cache_bytes=1 * KB, memory_bytes=256 * KB,
            network=NetworkKind.ETHERNET_100,
        )
        b = ClumpBackend(spec, _home(machines=2))
        _drive(b, stream, 4)
        _check_counters(b, stream)
