"""Tests for the optional shared-L2 extension (model and simulator)."""

import numpy as np
import pytest

from repro.core.execution import evaluate
from repro.core.hierarchy import LevelKind
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec
from repro.sim.backends.smp import SmpBackend
from repro.sim.backends.cow import CowBackend
from repro.sim.latencies import NetworkKind

KB = 1024
LOC = StackDistanceModel(alpha=2.5, beta=5.0)


def _smp_l2(n=2):
    return PlatformSpec(
        name="l2-smp", n=n, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
        l2_bytes=16 * KB,
    )


class TestSpec:
    def test_l2_items(self):
        assert _smp_l2().l2_items == 16 * KB // 64

    def test_l2_must_sit_between_cache_and_memory(self):
        with pytest.raises(ValueError, match="l2_bytes"):
            PlatformSpec(
                name="x", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
                l2_bytes=1 * KB,
            )
        with pytest.raises(ValueError, match="l2_bytes"):
            PlatformSpec(
                name="x", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
                l2_bytes=512 * KB,
            )


class TestModelSide:
    def test_hierarchy_gains_a_level(self):
        without = PlatformSpec(
            name="x", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB
        ).hierarchy()
        with_l2 = _smp_l2().hierarchy()
        assert with_l2.length == without.length + 1
        l2 = [lv for lv in with_l2.levels if lv.kind is LevelKind.L2_CACHE]
        assert len(l2) == 1
        assert l2[0].tau_cycles == 10
        # the memory level's boundary moves out to the L2 capacity
        mem = [lv for lv in with_l2.levels if lv.kind is LevelKind.LOCAL_MEMORY][0]
        assert mem.boundary_items == 16 * KB // 64

    def test_l2_reduces_modeled_time(self):
        base = PlatformSpec(name="x", n=2, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
        t0 = evaluate(base, LOC, gamma=0.3, mode="throttled").e_instr_seconds
        t1 = evaluate(_smp_l2(), LOC, gamma=0.3, mode="throttled").e_instr_seconds
        assert t1 < t0

    def test_cow_and_clump_accept_l2(self):
        cow = PlatformSpec(
            name="c", n=1, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
            l2_bytes=16 * KB, network=NetworkKind.ATM_155,
        )
        clump = PlatformSpec(
            name="k", n=2, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
            l2_bytes=16 * KB, network=NetworkKind.ATM_155,
        )
        for spec in (cow, clump):
            kinds = [lv.kind for lv in spec.hierarchy().levels]
            assert LevelKind.L2_CACHE in kinds


class TestSimulatorSide:
    def test_l2_hit_cheaper_than_memory(self):
        spec = _smp_l2()
        b = SmpBackend(spec, np.zeros(10_000, dtype=np.int64))
        b.memory.access(0)  # pre-fault the page
        t_miss = b.access(0, 8, False, 0.0) - 0.0  # L1+L2 miss -> memory
        # evict line 8 from the single L1 that holds it, keep it in L2
        b.caches[0].invalidate(8)
        t_l2 = b.access(0, 8, False, 10_000.0) - 10_000.0
        assert t_miss == pytest.approx(1 + 50)
        assert t_l2 == pytest.approx(1 + 10)
        assert b.stats.l2_hits == 1

    def test_write_invalidates_l2_copy(self):
        spec = _smp_l2()
        b = SmpBackend(spec, np.zeros(10_000, dtype=np.int64))
        b.memory.access(0)
        b.access(0, 8, False, 0.0)  # fills L1 and L2
        b.access(0, 8, True, 0.0)  # write hit: L2 copy must die
        b.caches[0].invalidate(8)
        t = b.access(0, 8, False, 10_000.0) - 10_000.0
        assert t == pytest.approx(1 + 50)  # memory again, not L2

    def test_cow_l2_serves_local_rereads(self):
        spec = PlatformSpec(
            name="c", n=1, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
            l2_bytes=16 * KB, network=NetworkKind.ATM_155,
        )
        home = np.zeros(10_000, dtype=np.int64)  # everything homed on machine 0
        b = CowBackend(spec, home)
        b.memories[0].access(0)
        b.access(0, 8, False, 0.0)
        b.caches[0].invalidate(8)
        t = b.access(0, 8, False, 10_000.0) - 10_000.0
        assert t == pytest.approx(1 + 10)
        assert b.stats.l2_hits == 1

    def test_simulation_with_l2_is_faster(self, edge_run_4):
        from repro.sim.engine import SimulationEngine

        base = PlatformSpec(name="b", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB)
        l2 = PlatformSpec(
            name="l", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
            l2_bytes=32 * KB,
        )
        t0 = SimulationEngine(base, edge_run_4).execute().total_cycles
        t1 = SimulationEngine(l2, edge_run_4).execute().total_cycles
        assert t1 < t0


class TestModelVsSimWithL2:
    def test_agreement_stays_reasonable(self, edge_run_4):
        """The L2-extended model must track the L2-extended simulator."""
        from repro.sim.engine import SimulationEngine
        from repro.trace.analysis import characterize_run

        spec = PlatformSpec(
            name="l2v", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
            l2_bytes=32 * KB,
        )
        ch = characterize_run(edge_run_4)
        sim = SimulationEngine(spec, edge_run_4).execute()
        est = evaluate(
            spec, ch.params.locality, ch.params.gamma,
            mode="throttled", on_saturation="inf", cache_capacity_factor=0.5,
        )
        ratio = est.e_instr_seconds / sim.e_instr_seconds
        assert 0.3 < ratio < 3.0
