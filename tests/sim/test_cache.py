"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import SetAssociativeCache


class TestBasics:
    def test_miss_then_hit(self):
        c = SetAssociativeCache(capacity_items=8, ways=2)
        assert not c.lookup(5)
        c.fill(5)
        assert c.lookup(5)
        assert c.contains(5)

    def test_lru_eviction_within_set(self):
        c = SetAssociativeCache(capacity_items=8, ways=2)  # 4 sets
        a, b, d = 0, 4, 8  # all map to set 0
        c.fill(a)
        c.fill(b)
        c.lookup(a)  # refresh a; b is now LRU
        evicted = c.fill(d)
        assert evicted == (b, False)
        assert c.contains(a) and c.contains(d) and not c.contains(b)

    def test_dirty_eviction_flag(self):
        c = SetAssociativeCache(capacity_items=4, ways=2)  # 2 sets
        c.fill(0, dirty=True)
        c.fill(2)
        evicted = c.fill(4)  # set 0 again: evicts 0 (LRU), dirty
        assert evicted == (0, True)

    def test_refill_refreshes_without_eviction(self):
        c = SetAssociativeCache(capacity_items=4, ways=2)
        c.fill(0)
        c.fill(2)
        assert c.fill(0) is None  # already resident
        assert c.resident_lines == 2

    def test_invalidate(self):
        c = SetAssociativeCache(capacity_items=8, ways=2)
        c.fill(3, dirty=True)
        assert c.invalidate(3) is True  # was dirty
        assert not c.contains(3)
        assert c.invalidate(3) is False  # absent now

    def test_mark_dirty(self):
        c = SetAssociativeCache(capacity_items=8, ways=2)
        c.fill(1)
        assert not c.is_dirty(1)
        c.mark_dirty(1)
        assert c.is_dirty(1)
        c.mark_dirty(99)  # absent: no-op
        assert not c.is_dirty(99)

    def test_clear(self):
        c = SetAssociativeCache(capacity_items=8)
        c.fill(1, dirty=True)
        c.clear()
        assert c.resident_lines == 0 and not c.is_dirty(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0)
        with pytest.raises(ValueError):
            SetAssociativeCache(8, ways=0)

    def test_tiny_cache_clamps_ways(self):
        c = SetAssociativeCache(capacity_items=1, ways=2)
        assert c.capacity_items == 1
        c.fill(0)
        assert c.fill(1) == (0, False)


class TestAgainstFullyAssociativeReference:
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
        capacity=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_set_equals_lru_list(self, stream, capacity):
        """ways == capacity -> one fully-associative set; compare with an
        explicit LRU list."""
        c = SetAssociativeCache(capacity_items=capacity, ways=capacity)
        lru: list[int] = []
        for line in stream:
            expected_hit = line in lru
            got_hit = c.lookup(line)
            if not got_hit:
                c.fill(line)
            assert got_hit == expected_hit
            if line in lru:
                lru.remove(line)
            lru.insert(0, line)
            del lru[capacity:]

    def test_capacity_never_exceeded(self):
        c = SetAssociativeCache(capacity_items=16, ways=2)
        rng = np.random.default_rng(0)
        for line in rng.integers(0, 1000, size=5000):
            if not c.lookup(int(line)):
                c.fill(int(line))
        assert c.resident_lines <= 16
