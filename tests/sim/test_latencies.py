"""Tests for the Section 5.1 constants and latency-table derivation."""

import pytest

from repro.sim.latencies import (
    CACHE_LINE_BYTES,
    CPU_HZ,
    DIRECTORY_BLOCK_BYTES,
    ITEM_BYTES,
    NETWORK_LATENCIES,
    NetworkKind,
    PAPER_LATENCIES,
)


class TestConstants:
    def test_paper_units(self):
        """The paper's Section 5.1 architecture, verbatim."""
        assert ITEM_BYTES == CACHE_LINE_BYTES == 64
        assert DIRECTORY_BLOCK_BYTES == 256
        assert CPU_HZ == 200_000_000

    def test_base_costs(self):
        assert PAPER_LATENCIES.instruction == 1
        assert PAPER_LATENCIES.cache_hit == 1
        assert PAPER_LATENCIES.cache_to_memory == 50
        assert PAPER_LATENCIES.memory_to_disk == 2000
        assert PAPER_LATENCIES.remote_cache_smp == 15

    def test_cow_network_rows(self):
        """Cache miss to a remote node / to remotely cached data."""
        assert NETWORK_LATENCIES[NetworkKind.ETHERNET_10] == (45_075, 90_150)
        assert NETWORK_LATENCIES[NetworkKind.ETHERNET_100] == (4_575, 9_150)
        assert NETWORK_LATENCIES[NetworkKind.ATM_155] == (3_275, 6_550)


class TestNetworkKind:
    def test_topology_flags(self):
        assert NetworkKind.ETHERNET_10.is_bus and not NetworkKind.ETHERNET_10.is_switch
        assert NetworkKind.ETHERNET_100.is_bus
        assert NetworkKind.ATM_155.is_switch and not NetworkKind.ATM_155.is_bus

    def test_bandwidths(self):
        assert NetworkKind.ETHERNET_10.bandwidth_mbps == 10
        assert NetworkKind.ETHERNET_100.bandwidth_mbps == 100
        assert NetworkKind.ATM_155.bandwidth_mbps == 155


class TestWithNetwork:
    def test_cow_rows(self):
        lat = PAPER_LATENCIES.with_network(NetworkKind.ETHERNET_100)
        assert lat.remote_node == 4_575
        assert lat.remote_cached == 9_150
        assert lat.remote_disk_extra == 4_575
        # base rows untouched
        assert lat.cache_to_memory == 50

    def test_clump_rows_are_three_cycles_dearer(self):
        """The paper's CLUMP table: 45078/4578/3278 and 90153/9153/6553."""
        for net, (node, cached) in NETWORK_LATENCIES.items():
            lat = PAPER_LATENCIES.with_network(net, clump=True)
            assert lat.remote_node == node + 3
            assert lat.remote_cached == cached + 3

    def test_original_table_not_mutated(self):
        PAPER_LATENCIES.with_network(NetworkKind.ATM_155)
        assert PAPER_LATENCIES.remote_node == 0
