"""The vectorized engine fast path must be bit-identical to scalar.

Property tests: for every backend family (SMP snooping bus, COW on the
Ethernet bus, COW on the ATM switch, CLUMP) and a spread of random
seeds and horizons, the batched engine's :class:`SimulationResult` --
total cycles, per-process clocks, barrier waits, and every stats
counter -- equals the scalar engine's exactly.  Not approximately:
``==`` on floats.  The fast path only reorders exact float64 additions
of quarter-cycle quanta, so any drift is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.core.platform import PlatformSpec
from repro.sim.backends import ClumpBackend, CowBackend, SmpBackend
from repro.sim.engine import SimulationEngine
from repro.sim.latencies import NetworkKind
from repro.trace.events import Trace

KB = 1024

#: One spec per backend family, small caches so misses and coherence
#: traffic are frequent (the fast path must cut correctly, not just
#: stream hits).  The L2 variant exercises the stricter write gate.
SPECS = [
    PlatformSpec(name="eq-smp", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB),
    PlatformSpec(
        name="eq-smp-l2", n=4, N=1, cache_bytes=2 * KB, memory_bytes=256 * KB,
        l2_bytes=8 * KB,
    ),
    PlatformSpec(
        name="eq-cow-bus", n=1, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ETHERNET_100,
    ),
    PlatformSpec(
        name="eq-cow-switch", n=1, N=4, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    ),
    PlatformSpec(
        name="eq-clump", n=2, N=2, cache_bytes=2 * KB, memory_bytes=256 * KB,
        network=NetworkKind.ATM_155,
    ),
]

_SPEC_IDS = [s.name for s in SPECS]


def _random_run(procs: int, seed: int, refs: int = 800) -> ApplicationRun:
    """A synthetic SPMD run with enough locality to engage the fast path
    and enough sharing to force scalar fallbacks."""
    rng = np.random.default_rng(seed)
    space = AddressSpace(procs)
    space.alloc("data", (100_000,), element_bytes=64)
    n_barriers = int(rng.integers(1, 4))
    traces = []
    for p in range(procs):
        # runs of repeated lines (hits) over a private stripe, salted
        # with shared lines every process touches (coherence traffic)
        blocks = rng.integers(p * 128, p * 128 + 96, size=refs // 4 + 1)
        addrs = np.repeat(blocks, 4)[:refs].copy()
        shared = rng.random(refs) < 0.08
        addrs[shared] = rng.integers(0, 64, size=int(shared.sum()))
        barriers = np.sort(
            rng.choice(np.arange(1, refs), size=n_barriers, replace=False)
        )
        traces.append(
            Trace(
                addresses=addrs.astype(np.int64),
                is_write=rng.random(refs) < 0.3,
                work=rng.integers(0, 4, size=refs).astype(np.int64),
                barriers=barriers.astype(np.int64),
                tail_work=int(rng.integers(0, 50)),
            )
        )
    return ApplicationRun(
        name="random", problem_size=f"seed={seed}", num_procs=procs,
        traces=tuple(traces), address_space=space, verified=True,
    )


def _assert_identical(scalar, batched) -> None:
    assert batched.total_cycles == scalar.total_cycles
    assert batched.per_process_cycles == scalar.per_process_cycles
    assert batched.barrier_wait_cycles == scalar.barrier_wait_cycles
    assert batched.stats.as_dict() == scalar.stats.as_dict()


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("horizon", [0.0, 200.0])
def test_random_traces_identical(spec, seed, horizon):
    run = _random_run(spec.total_processors, seed)
    scalar = SimulationEngine(spec, run, horizon=horizon, fastpath=False).execute()
    batched = SimulationEngine(spec, run, horizon=horizon, fastpath=True).execute()
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("horizon", [200.0, 5000.0])
def test_fft_identical(spec, horizon, fft_run_4):
    scalar = SimulationEngine(spec, fft_run_4, horizon=horizon, fastpath=False).execute()
    batched = SimulationEngine(spec, fft_run_4, horizon=horizon, fastpath=True).execute()
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
def test_lu_identical(spec, lu_run_4):
    scalar = SimulationEngine(spec, lu_run_4, fastpath=False).execute()
    batched = SimulationEngine(spec, lu_run_4, fastpath=True).execute()
    _assert_identical(scalar, batched)


def _legacy_backend(spec, run):
    """The bespoke pre-topology back-end for ``spec`` (the bit-identity
    reference the composed back-end is checked against)."""
    home_proc = run.address_space.home_map()
    home = (home_proc // spec.n).astype(np.int64)
    cls = SmpBackend if spec.N == 1 else (CowBackend if spec.n == 1 else ClumpBackend)
    return cls(spec, home)


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("fastpath", [False, True], ids=["scalar", "batched"])
def test_composed_matches_legacy_backends(spec, seed, fastpath):
    """The topology-driven ComposedBackend is bit-identical to the
    bespoke SMP/COW/CLUMP back-ends it replaced -- results, stats, and
    per-resource accounting -- in both engine lanes."""
    run = _random_run(spec.total_processors, seed)
    legacy_engine = SimulationEngine(
        spec, run, backend=_legacy_backend(spec, run), fastpath=fastpath
    )
    composed_engine = SimulationEngine(spec, run, fastpath=fastpath)
    legacy = legacy_engine.execute()
    composed = composed_engine.execute()
    _assert_identical(legacy, composed)
    assert (
        composed_engine.backend.resource_busy_cycles()
        == legacy_engine.backend.resource_busy_cycles()
    )
    assert (
        composed_engine.backend.resource_requests()
        == legacy_engine.backend.resource_requests()
    )


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
def test_composed_matches_legacy_on_fft(spec, fft_run_4):
    legacy = SimulationEngine(
        spec, fft_run_4, backend=_legacy_backend(spec, fft_run_4)
    ).execute()
    composed = SimulationEngine(spec, fft_run_4).execute()
    _assert_identical(legacy, composed)


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_three_lane_identity(spec, seed):
    """The two-lane invariant extended to three: the stacked tensor
    lane (grouped, padded, batch-scheduled) returns the same bits as
    the scalar and vectorized lanes for every backend family."""
    from repro.sim.stacked import StackedCell, simulate_grid

    run = _random_run(spec.total_processors, seed)
    scalar = SimulationEngine(spec, run, fastpath=False).execute()
    batched = SimulationEngine(spec, run, fastpath=True).execute()
    (stacked,) = simulate_grid(
        [StackedCell.make("random", spec, seed=seed)],
        run_provider=lambda name, procs, s, kw: _random_run(procs, s),
    )
    _assert_identical(scalar, batched)
    _assert_identical(scalar, stacked)


def test_three_lane_identity_on_mixed_grid():
    """One grid spanning every spec family at once still slices back
    per-cell bit-identical results."""
    from repro.sim.stacked import StackedCell, simulate_grid

    cells = [StackedCell.make("random", spec, seed=0) for spec in SPECS]
    results = simulate_grid(
        cells, run_provider=lambda name, procs, s, kw: _random_run(procs, s)
    )
    for cell, got in zip(cells, results):
        run = _random_run(cell.procs, cell.seed)
        scalar = SimulationEngine(cell.spec, run, fastpath=False).execute()
        _assert_identical(scalar, got)


@pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
def test_fast_path_actually_engages(spec, fft_run_4):
    """Guard against silent fallback: every backend family advertises a
    batch kernel, and disabling ``fastpath`` really disables it."""
    on = SimulationEngine(spec, fft_run_4, fastpath=True)
    off = SimulationEngine(spec, fft_run_4, fastpath=False)
    assert on._batch_ready
    assert not off._batch_ready
