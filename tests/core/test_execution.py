"""Tests for the execution-time model (Eqs. 3-4) and the evaluate API."""

import math

import pytest

from repro.core.execution import (
    e_app_seconds,
    e_instr_cycles,
    e_instr_seconds,
    evaluate,
)
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec
from repro.sim.latencies import CPU_HZ, NetworkKind

KB, MB = 1024, 1024 * 1024
LOC = StackDistanceModel(alpha=2.5, beta=5.0)


class TestFormulas:
    def test_eq4(self):
        # E(Instr) = (1/S + gamma T) / (n N), in cycles with S = 1
        assert e_instr_cycles(4, 0.25, 10.0) == pytest.approx((1 + 0.25 * 10) / 4)

    def test_eq4_seconds(self):
        cycles = e_instr_cycles(2, 0.5, 7.0)
        assert e_instr_seconds(2, 0.5, 7.0, CPU_HZ) == pytest.approx(cycles / CPU_HZ)

    def test_eq3(self):
        per = e_instr_seconds(2, 0.5, 7.0, CPU_HZ)
        assert e_app_seconds(1_000_000, 2, 0.5, 7.0, CPU_HZ) == pytest.approx(1e6 * per)

    def test_more_processors_divide_time(self):
        assert e_instr_cycles(8, 0.3, 5.0) == pytest.approx(e_instr_cycles(1, 0.3, 5.0) / 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            e_instr_cycles(0, 0.3, 5.0)
        with pytest.raises(ValueError):
            e_instr_cycles(2, 0.0, 5.0)
        with pytest.raises(ValueError):
            e_instr_cycles(2, 0.3, -1.0)
        with pytest.raises(ValueError):
            e_instr_seconds(2, 0.3, 5.0, 0.0)
        with pytest.raises(ValueError):
            e_app_seconds(-1, 2, 0.3, 5.0, CPU_HZ)


class TestEvaluate:
    def test_wires_amat_into_eq4(self, smp_spec):
        est = evaluate(smp_spec, LOC, gamma=0.3)
        expected = (1.0 + 0.3 * est.amat.total_cycles) / smp_spec.total_processors
        assert est.e_instr_cycles == pytest.approx(expected)
        assert est.e_instr_seconds == pytest.approx(expected / smp_spec.cpu_hz)
        assert est.feasible

    def test_e_app(self, smp_spec):
        est = evaluate(smp_spec, LOC, gamma=0.3)
        assert est.e_app_seconds(10_000) == pytest.approx(1e4 * est.e_instr_seconds)

    def test_speedup_over(self, smp_spec, smp4_spec):
        a = evaluate(smp_spec, LOC, gamma=0.3)
        b = evaluate(smp4_spec, LOC, gamma=0.3)
        assert b.speedup_over(a) == pytest.approx(a.e_instr_seconds / b.e_instr_seconds)

    def test_saturated_estimate_infeasible(self):
        heavy = StackDistanceModel(alpha=1.2, beta=500.0)
        cow = PlatformSpec(
            name="sat", n=1, N=4, cache_bytes=4 * KB, memory_bytes=256 * KB,
            network=NetworkKind.ETHERNET_10,
        )
        est = evaluate(cow, heavy, gamma=0.4, on_saturation="inf")
        assert not est.feasible
        assert math.isinf(est.e_instr_seconds)

    def test_platform_name_carried(self, cow_spec):
        est = evaluate(cow_spec, LOC, gamma=0.3, mode="throttled", on_saturation="inf")
        assert est.platform_name == cow_spec.name
