"""Tests for the remote-rate adjustment and its calibration routine."""

import numpy as np
import pytest

from repro.core.adjustment import (
    PAPER_REMOTE_RATE_ADJUSTMENT,
    adjust_remote_rate,
    calibrate_remote_adjustment,
)


class TestAdjust:
    def test_paper_constant(self):
        assert PAPER_REMOTE_RATE_ADJUSTMENT == pytest.approx(0.124)

    def test_scaling(self):
        assert adjust_remote_rate(100.0) == pytest.approx(112.4)
        assert adjust_remote_rate(100.0, 0.5) == pytest.approx(150.0)
        assert adjust_remote_rate(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            adjust_remote_rate(-1.0)
        with pytest.raises(ValueError):
            adjust_remote_rate(1.0, -0.1)


class TestCalibrate:
    def test_recovers_planted_factor(self):
        """If simulation = model(0.2), calibration must find ~0.2."""
        base = np.array([1.0, 2.0, 3.5, 0.7])

        def model(factor):
            return base * (1.0 + factor)

        simulated = base * 1.2
        factor, err = calibrate_remote_adjustment(model, simulated)
        assert factor == pytest.approx(0.2, abs=0.002)
        assert err < 0.01

    def test_zero_when_model_already_right(self):
        base = np.array([1.0, 5.0])
        factor, err = calibrate_remote_adjustment(lambda f: base * (1 + f), base)
        assert factor == 0.0
        assert err == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_remote_adjustment(lambda f: [1.0], [])
        with pytest.raises(ValueError):
            calibrate_remote_adjustment(lambda f: [1.0], [-1.0])
        with pytest.raises(ValueError):
            calibrate_remote_adjustment(lambda f: [1.0, 2.0], [1.0])
