"""Cross-cutting monotonicity properties of the full model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import evaluate
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024

workloads = st.builds(
    StackDistanceModel,
    alpha=st.floats(min_value=1.3, max_value=4.0),
    beta=st.floats(min_value=1.0, max_value=1e4),
)
gammas = st.floats(min_value=0.05, max_value=0.8)


def _cow(net: NetworkKind, N: int = 4) -> PlatformSpec:
    return PlatformSpec(
        name=f"pm-{net.name}-{N}", n=1, N=N,
        cache_bytes=4 * KB, memory_bytes=1 * MB, network=net,
    )


def _eval(spec, loc, gamma, **kw):
    return evaluate(
        spec, loc, gamma, mode="throttled", on_saturation="inf", **kw
    ).e_instr_seconds


class TestNetworkMonotonicity:
    @given(loc=workloads, gamma=gammas, sharing=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_faster_network_never_slower(self, loc, gamma, sharing):
        """E(Instr) ordering must follow the network latency ordering."""
        kw = dict(sharing_fraction=sharing, remote_rate_adjustment=0.124)
        t10 = _eval(_cow(NetworkKind.ETHERNET_10), loc, gamma, **kw)
        t100 = _eval(_cow(NetworkKind.ETHERNET_100), loc, gamma, **kw)
        assert t100 <= t10 * (1 + 1e-9)

    @given(loc=workloads, gamma=gammas)
    @settings(max_examples=60, deadline=None)
    def test_always_finite_in_throttled_mode(self, loc, gamma):
        for net in NetworkKind:
            assert math.isfinite(_eval(_cow(net), loc, gamma, sharing_fraction=0.3))


class TestParameterMonotonicity:
    @given(loc=workloads, gamma=gammas)
    @settings(max_examples=60, deadline=None)
    def test_adjustment_never_speeds_things_up(self, loc, gamma):
        spec = _cow(NetworkKind.ETHERNET_100)
        base = _eval(spec, loc, gamma, sharing_fraction=0.2)
        adj = _eval(spec, loc, gamma, sharing_fraction=0.2, remote_rate_adjustment=0.5)
        assert adj >= base * (1 - 1e-9)

    @given(loc=workloads, gamma=gammas, s1=st.floats(0, 0.4), s2=st.floats(0, 0.4))
    @settings(max_examples=60, deadline=None)
    def test_more_sharing_never_faster(self, loc, gamma, s1, s2):
        spec = _cow(NetworkKind.ATM_155)
        lo, hi = sorted([s1, s2])
        assert _eval(spec, loc, gamma, sharing_fraction=lo) <= _eval(
            spec, loc, gamma, sharing_fraction=hi
        ) * (1 + 1e-9)

    @given(loc=workloads, gamma=gammas)
    @settings(max_examples=40, deadline=None)
    def test_worse_locality_never_faster_on_smp(self, loc, gamma):
        spec = PlatformSpec(name="pm-smp", n=4, N=1, cache_bytes=4 * KB, memory_bytes=1 * MB)
        worse = StackDistanceModel(alpha=loc.alpha, beta=loc.beta * 4)
        assert _eval(spec, loc, gamma) <= _eval(spec, worse, gamma) * (1 + 1e-9)

    @given(loc=workloads, gamma=gammas)
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_slower(self, loc, gamma):
        """Cutting the tail at a footprint can only remove traffic."""
        spec = PlatformSpec(name="pm-smp", n=2, N=1, cache_bytes=4 * KB, memory_bytes=1 * MB)
        truncated = StackDistanceModel(alpha=loc.alpha, beta=loc.beta, max_distance=5000.0)
        assert _eval(spec, truncated, gamma) <= _eval(spec, loc, gamma) * (1 + 1e-9)
