"""Unit and property tests for the stack-distance locality model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locality import StackDistanceModel

alphas = st.floats(min_value=1.01, max_value=10.0, allow_nan=False)
betas = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)
xs = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


class TestValidation:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError, match="alpha"):
            StackDistanceModel(alpha=1.0, beta=10.0)
        with pytest.raises(ValueError, match="alpha"):
            StackDistanceModel(alpha=0.5, beta=10.0)

    def test_beta_must_be_positive(self):
        with pytest.raises(ValueError, match="beta"):
            StackDistanceModel(alpha=2.0, beta=0.0)
        with pytest.raises(ValueError, match="beta"):
            StackDistanceModel(alpha=2.0, beta=-3.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            StackDistanceModel(alpha=math.inf, beta=10.0)
        with pytest.raises(ValueError):
            StackDistanceModel(alpha=2.0, beta=math.nan)

    def test_max_distance_must_be_positive(self):
        with pytest.raises(ValueError, match="max_distance"):
            StackDistanceModel(alpha=2.0, beta=10.0, max_distance=0.0)


class TestDistribution:
    def test_cdf_at_zero_is_zero(self):
        m = StackDistanceModel(alpha=1.5, beta=50.0)
        assert m.cdf(0.0) == pytest.approx(0.0)

    def test_cdf_closed_form(self):
        m = StackDistanceModel(alpha=2.0, beta=100.0)
        # P(x) = 1 - (x/100 + 1)^-1 at x=100 -> 1 - 1/2
        assert m.cdf(100.0) == pytest.approx(0.5)

    def test_tail_complements_cdf(self):
        m = StackDistanceModel(alpha=1.7, beta=33.0)
        x = np.array([0.0, 1.0, 10.0, 1e4])
        np.testing.assert_allclose(m.tail(x), 1.0 - m.cdf(x), rtol=1e-12)

    def test_negative_x_clamped(self):
        m = StackDistanceModel(alpha=1.5, beta=10.0)
        assert m.cdf(-5.0) == pytest.approx(0.0)
        assert m.pdf(-5.0) == 0.0
        assert m.tail(-5.0) == pytest.approx(1.0)

    def test_pdf_integrates_to_cdf(self):
        m = StackDistanceModel(alpha=1.8, beta=40.0)
        xs_grid = np.linspace(0.0, 500.0, 20001)
        numeric = np.trapezoid(m.pdf(xs_grid), xs_grid)
        assert numeric == pytest.approx(m.cdf(500.0), rel=1e-4)

    def test_mean_finite_only_above_two(self):
        assert StackDistanceModel(alpha=1.9, beta=10.0).mean() == math.inf
        assert StackDistanceModel(alpha=3.0, beta=10.0).mean() == pytest.approx(10.0)

    @given(alpha=alphas, beta=betas, x=xs)
    @settings(max_examples=200)
    def test_cdf_in_unit_interval(self, alpha, beta, x):
        m = StackDistanceModel(alpha=alpha, beta=beta)
        assert 0.0 <= m.cdf(x) <= 1.0

    @given(alpha=alphas, beta=betas, x1=xs, x2=xs)
    @settings(max_examples=200)
    def test_cdf_monotone(self, alpha, beta, x1, x2):
        m = StackDistanceModel(alpha=alpha, beta=beta)
        lo, hi = min(x1, x2), max(x1, x2)
        assert m.cdf(lo) <= m.cdf(hi) + 1e-12

    @given(alpha=alphas, beta=betas, q=st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=200)
    def test_quantile_inverts_cdf(self, alpha, beta, q):
        m = StackDistanceModel(alpha=alpha, beta=beta)
        assert m.cdf(m.quantile(q)) == pytest.approx(q, abs=1e-7)

    def test_quantile_rejects_bad_q(self):
        m = StackDistanceModel(alpha=2.0, beta=10.0)
        with pytest.raises(ValueError):
            m.quantile(1.0)
        with pytest.raises(ValueError):
            m.quantile(-0.1)


class TestRescaling:
    @given(alpha=alphas, beta=betas, x=xs, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200)
    def test_rescaled_matches_paper_formula(self, alpha, beta, x, n):
        """P_n(x) = 1 - (n x / beta + 1)^(1-alpha)."""
        m = StackDistanceModel(alpha=alpha, beta=beta)
        expected = 1.0 - (n * x / beta + 1.0) ** (1.0 - alpha)
        assert m.rescaled(n).cdf(x) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_rescaled_one_is_identity(self):
        m = StackDistanceModel(alpha=1.4, beta=9.0)
        assert m.rescaled(1) is m

    def test_rescaled_rejects_bad_n(self):
        m = StackDistanceModel(alpha=1.4, beta=9.0)
        with pytest.raises(ValueError):
            m.rescaled(0)

    def test_rescaled_shrinks_max_distance(self):
        m = StackDistanceModel(alpha=1.4, beta=9.0, max_distance=1000.0)
        assert m.rescaled(4).max_distance == pytest.approx(250.0)

    @given(alpha=alphas, beta=betas, x=xs, n=st.integers(min_value=2, max_value=32))
    @settings(max_examples=100)
    def test_rescaling_improves_per_process_locality(self, alpha, beta, x, n):
        m = StackDistanceModel(alpha=alpha, beta=beta)
        assert m.rescaled(n).tail(x) <= m.tail(x) + 1e-12


class TestTruncation:
    def test_tail_zero_beyond_max_distance(self):
        m = StackDistanceModel(alpha=1.3, beta=10.0, max_distance=100.0)
        assert m.tail(99.0) > 0.0
        assert m.tail(100.0) == 0.0
        assert m.tail(1e6) == 0.0
        assert m.cdf(100.0) == 1.0

    def test_untruncated_tail_never_zero(self):
        m = StackDistanceModel(alpha=1.3, beta=10.0)
        assert m.tail(1e12) > 0.0

    def test_truncation_array_path(self):
        m = StackDistanceModel(alpha=1.3, beta=10.0, max_distance=50.0)
        out = m.tail(np.array([10.0, 49.0, 50.0, 1000.0]))
        assert out[0] > 0 and out[1] > 0
        assert out[2] == 0.0 and out[3] == 0.0


class TestSampling:
    def test_sample_matches_cdf(self):
        m = StackDistanceModel(alpha=1.6, beta=30.0)
        rng = np.random.default_rng(0)
        s = m.sample(200_000, rng)
        for x in (10.0, 100.0, 1000.0):
            assert np.mean(s <= x) == pytest.approx(m.cdf(x), abs=5e-3)

    def test_sample_negative_size_rejected(self):
        m = StackDistanceModel(alpha=1.6, beta=30.0)
        with pytest.raises(ValueError):
            m.sample(-1, np.random.default_rng(0))
