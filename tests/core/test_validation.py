"""Tests for the model-vs-simulation comparison utilities."""

import pytest

from repro.core.validation import (
    ComparisonRow,
    compare,
    format_table,
    max_relative_error,
    mean_relative_error,
    relative_error,
)


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_relative_error_needs_positive_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_max_and_mean(self):
        m = [1.0, 2.2]
        s = [1.0, 2.0]
        assert max_relative_error(m, s) == pytest.approx(0.1)
        assert mean_relative_error(m, s) == pytest.approx(0.05)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_relative_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_relative_error([], [])


class TestRows:
    def test_row_error(self):
        row = ComparisonRow("FFT", "C1", modeled=1.05e-8, simulated=1.0e-8)
        assert row.error == pytest.approx(0.05)

    def test_compare_builds_grid(self):
        modeled = {("FFT", "C1"): 1.0, ("FFT", "C2"): 2.0}
        simulated = {("FFT", "C1"): 1.1, ("FFT", "C2"): 2.1}
        rows = compare(["FFT"], ["C1", "C2"], modeled, simulated)
        assert len(rows) == 2
        assert rows[0].configuration == "C1"

    def test_compare_missing_cell_raises(self):
        with pytest.raises(KeyError):
            compare(["FFT"], ["C1"], {}, {("FFT", "C1"): 1.0})

    def test_format_table(self):
        rows = [
            ComparisonRow("FFT", "C1", 1.0e-8, 1.1e-8),
            ComparisonRow("LU", "C1", 3.0e-8, 2.9e-8),
        ]
        text = format_table(rows)
        assert "FFT" in text and "LU" in text
        assert "worst-case difference" in text

    def test_format_empty(self):
        assert "no rows" in format_table([])
