"""Tests for the M/D/1 and barrier order-statistics contention models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contention import (
    QueueSaturationError,
    barrier_cycle_time,
    barrier_term,
    barrier_wait_time,
    harmonic_number,
    is_math_stable,
    mg1_response_time,
    mg1_utilization,
    mg1_waiting_time,
    queued_contribution,
    saturating_population,
)


class TestHarmonic:
    def test_known_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1.0 + 0.5 + 1 / 3 + 0.25)

    def test_vectorized(self):
        out = harmonic_number(np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(out, [0.0, 1.0, 1.5, 1.5 + 1 / 3])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)
        with pytest.raises(ValueError):
            harmonic_number(np.array([1, -2]))


class TestMD1:
    def test_no_contention_at_population_one(self):
        assert mg1_response_time(0.5, 100.0, 1) == pytest.approx(100.0)
        assert mg1_waiting_time(0.5, 100.0, 1) == 0.0

    def test_paper_closed_form(self):
        """t(o) = (2 tau - (c-1) lam tau^2) / (2 (1 - (c-1) lam tau))."""
        lam, tau, c = 0.004, 50.0, 4
        other = (c - 1) * lam
        expected = (2 * tau - other * tau**2) / (2 * (1 - other * tau))
        assert mg1_response_time(lam, tau, c) == pytest.approx(expected)

    def test_uniprocessor_limit_matches_jacob(self):
        """n = 1 must reduce to the plain access time (the paper's check)."""
        for tau in (1.0, 50.0, 2000.0):
            assert mg1_response_time(0.9, tau, 1) == tau

    def test_saturation_raises(self):
        with pytest.raises(QueueSaturationError) as exc:
            mg1_response_time(0.5, 10.0, 3)  # rho = 2*0.5*10 = 10
        assert exc.value.rho == pytest.approx(10.0)

    def test_exact_saturation_boundary(self):
        with pytest.raises(QueueSaturationError):
            mg1_waiting_time(0.5, 1.0, 3)  # rho = 1 exactly

    def test_utilization(self):
        assert mg1_utilization(0.01, 50.0, 3) == pytest.approx(1.0)
        assert mg1_utilization(0.0, 50.0, 8) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mg1_utilization(-0.1, 1.0, 2)
        with pytest.raises(ValueError):
            mg1_utilization(0.1, -1.0, 2)
        with pytest.raises(ValueError):
            mg1_utilization(0.1, 1.0, 0)

    @given(
        lam=st.floats(min_value=0.0, max_value=0.01),
        tau=st.floats(min_value=0.1, max_value=50.0),
        c=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200)
    def test_response_at_least_service(self, lam, tau, c):
        if mg1_utilization(lam, tau, c) < 1.0:
            assert mg1_response_time(lam, tau, c) >= tau

    @given(
        tau=st.floats(min_value=0.1, max_value=50.0),
        c=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100)
    def test_waiting_increases_with_rate(self, tau, c):
        lam_lo, lam_hi = 0.001, 0.002
        if mg1_utilization(lam_hi, tau, c) < 1.0:
            assert mg1_waiting_time(lam_lo, tau, c) <= mg1_waiting_time(lam_hi, tau, c)

    def test_queued_contribution_is_rate_weighted(self):
        lam, tau, c = 0.003, 40.0, 4
        assert queued_contribution(lam, tau, c) == pytest.approx(
            lam * mg1_response_time(lam, tau, c)
        )

    def test_stability_helpers(self):
        assert is_math_stable(0.001, 50.0, 2)
        assert not is_math_stable(0.5, 50.0, 2)
        assert saturating_population(0.0, 50.0) == math.inf
        # lam*tau = 0.1 -> c < 11 -> largest stable population is 10
        assert saturating_population(0.002, 50.0) == 10


class TestBarrier:
    def test_cycle_time(self):
        assert barrier_cycle_time(0.5, 1) == pytest.approx(2.0)
        assert barrier_cycle_time(0.5, 2) == pytest.approx(3.0)  # H_2/0.5

    def test_wait_time_zero_for_one_process(self):
        assert barrier_wait_time(0.5, 1) == 0.0

    def test_wait_time_matches_harmonic(self):
        lam = 0.25
        for c in (2, 3, 8):
            expected = (harmonic_number(c) - 1.0) / lam
            assert barrier_wait_time(lam, c) == pytest.approx(expected)

    def test_barrier_term(self):
        assert barrier_term(1) == 0.0
        assert barrier_term(2) == pytest.approx(0.5)
        assert barrier_term(4) == pytest.approx(0.5 + 1 / 3 + 0.25)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            barrier_cycle_time(0.0, 2)
        with pytest.raises(ValueError):
            barrier_cycle_time(0.5, 0)
        with pytest.raises(ValueError):
            barrier_term(0)

    @given(c=st.integers(min_value=2, max_value=64))
    def test_wait_grows_with_population(self, c):
        assert barrier_wait_time(1.0, c + 1) > barrier_wait_time(1.0, c)


class TestExpectedMaxExponential:
    """The generalized barrier order statistic (heterogeneous barriers)."""

    @given(lam=st.floats(min_value=1e-6, max_value=1e6),
           pop=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_equal_rates_bit_identical_to_paper_form(self, lam, pop):
        from repro.core.contention import expected_max_exponential

        # Bitwise: the homogeneous path must dispatch, not approximate.
        assert expected_max_exponential([lam] * pop) == barrier_cycle_time(lam, pop)
        assert expected_max_exponential([lam], counts=[pop]) == barrier_cycle_time(
            lam, pop
        )

    def test_two_rates_match_hand_inclusion_exclusion(self):
        from repro.core.contention import expected_max_exponential

        a, b = 1.0, 3.0
        # E[max(Exp(a), Exp(b))] = 1/a + 1/b - 1/(a+b).
        expect = 1 / a + 1 / b - 1 / (a + b)
        assert expected_max_exponential([a, b]) == pytest.approx(expect, rel=1e-12)

    def test_simpson_path_agrees_with_exact(self):
        from fractions import Fraction
        from itertools import product

        from repro.core.contention import _EXACT_MAX_TERMS, expected_max_exponential

        # 71 x 71 inclusion-exclusion terms blow the exact budget and
        # force the quadrature path; re-derive the exact alternating
        # sum here in Fraction arithmetic as the reference.
        rates, counts = [1.0, 2.0], [70, 70]
        assert (counts[0] + 1) * (counts[1] + 1) > _EXACT_MAX_TERMS
        frs = [Fraction(r) for r in rates]
        acc = Fraction(0)
        for combo in product(*(range(m + 1) for m in counts)):
            j = sum(combo)
            if j == 0:
                continue
            coeff = 1
            for m, k in zip(counts, combo):
                coeff *= math.comb(m, k)
            term = Fraction(coeff) / sum(f * k for f, k in zip(frs, combo))
            acc += term if j % 2 else -term
        simpson = expected_max_exponential(rates, counts)
        assert simpson == pytest.approx(float(acc), rel=1e-12)

    @given(rs=st.lists(st.sampled_from([0.5, 1.0, 2.0, 5.0]), min_size=1,
                       max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_at_least_the_slowest_mean(self, rs):
        from repro.core.contention import expected_max_exponential

        # E[max] >= max of the individual means = 1/min(rates).
        assert expected_max_exponential(rs) >= 1.0 / min(rs) - 1e-12

    def test_adding_a_variable_never_decreases_the_max(self):
        from repro.core.contention import expected_max_exponential

        base = expected_max_exponential([1.0, 2.0])
        assert expected_max_exponential([1.0, 2.0, 4.0]) > base

    def test_rejects_bad_rates(self):
        from repro.core.contention import expected_max_exponential

        with pytest.raises(ValueError, match="positive"):
            expected_max_exponential([1.0, 0.0])
        with pytest.raises(ValueError, match="align"):
            expected_max_exponential([1.0], counts=[1, 2])
        with pytest.raises(ValueError, match="at least one"):
            expected_max_exponential([])


class TestGeneralizedBarrierTerms:
    @given(lam=st.floats(min_value=1e-3, max_value=1e3),
           pop=st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_equal_rates_collapse_to_barrier_term(self, lam, pop):
        from repro.core.contention import generalized_barrier_terms

        out = generalized_barrier_terms([lam], counts=[pop])
        assert out == (barrier_term(pop),)

    @given(rs=st.lists(st.sampled_from([0.25, 1.0, 3.0, 8.0]), min_size=2,
                       max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_nonnegative_and_faster_groups_wait_more(self, rs):
        from repro.core.contention import generalized_barrier_terms

        terms = generalized_barrier_terms(rs)
        assert all(b >= 0.0 for b in terms)
        # b_g = lam_g E[max] - 1 is monotone in lam_g: a faster group
        # (higher barrier-arrival rate) strictly waits longer.
        for (ra, ba), (rb, bb) in zip(zip(rs, terms), zip(rs[1:], terms[1:])):
            if ra < rb:
                assert ba <= bb
            elif ra > rb:
                assert ba >= bb
            else:
                assert ba == bb
