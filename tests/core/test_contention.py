"""Tests for the M/D/1 and barrier order-statistics contention models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contention import (
    QueueSaturationError,
    barrier_cycle_time,
    barrier_term,
    barrier_wait_time,
    harmonic_number,
    is_math_stable,
    mg1_response_time,
    mg1_utilization,
    mg1_waiting_time,
    queued_contribution,
    saturating_population,
)


class TestHarmonic:
    def test_known_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1.0 + 0.5 + 1 / 3 + 0.25)

    def test_vectorized(self):
        out = harmonic_number(np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(out, [0.0, 1.0, 1.5, 1.5 + 1 / 3])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)
        with pytest.raises(ValueError):
            harmonic_number(np.array([1, -2]))


class TestMD1:
    def test_no_contention_at_population_one(self):
        assert mg1_response_time(0.5, 100.0, 1) == pytest.approx(100.0)
        assert mg1_waiting_time(0.5, 100.0, 1) == 0.0

    def test_paper_closed_form(self):
        """t(o) = (2 tau - (c-1) lam tau^2) / (2 (1 - (c-1) lam tau))."""
        lam, tau, c = 0.004, 50.0, 4
        other = (c - 1) * lam
        expected = (2 * tau - other * tau**2) / (2 * (1 - other * tau))
        assert mg1_response_time(lam, tau, c) == pytest.approx(expected)

    def test_uniprocessor_limit_matches_jacob(self):
        """n = 1 must reduce to the plain access time (the paper's check)."""
        for tau in (1.0, 50.0, 2000.0):
            assert mg1_response_time(0.9, tau, 1) == tau

    def test_saturation_raises(self):
        with pytest.raises(QueueSaturationError) as exc:
            mg1_response_time(0.5, 10.0, 3)  # rho = 2*0.5*10 = 10
        assert exc.value.rho == pytest.approx(10.0)

    def test_exact_saturation_boundary(self):
        with pytest.raises(QueueSaturationError):
            mg1_waiting_time(0.5, 1.0, 3)  # rho = 1 exactly

    def test_utilization(self):
        assert mg1_utilization(0.01, 50.0, 3) == pytest.approx(1.0)
        assert mg1_utilization(0.0, 50.0, 8) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mg1_utilization(-0.1, 1.0, 2)
        with pytest.raises(ValueError):
            mg1_utilization(0.1, -1.0, 2)
        with pytest.raises(ValueError):
            mg1_utilization(0.1, 1.0, 0)

    @given(
        lam=st.floats(min_value=0.0, max_value=0.01),
        tau=st.floats(min_value=0.1, max_value=50.0),
        c=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200)
    def test_response_at_least_service(self, lam, tau, c):
        if mg1_utilization(lam, tau, c) < 1.0:
            assert mg1_response_time(lam, tau, c) >= tau

    @given(
        tau=st.floats(min_value=0.1, max_value=50.0),
        c=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100)
    def test_waiting_increases_with_rate(self, tau, c):
        lam_lo, lam_hi = 0.001, 0.002
        if mg1_utilization(lam_hi, tau, c) < 1.0:
            assert mg1_waiting_time(lam_lo, tau, c) <= mg1_waiting_time(lam_hi, tau, c)

    def test_queued_contribution_is_rate_weighted(self):
        lam, tau, c = 0.003, 40.0, 4
        assert queued_contribution(lam, tau, c) == pytest.approx(
            lam * mg1_response_time(lam, tau, c)
        )

    def test_stability_helpers(self):
        assert is_math_stable(0.001, 50.0, 2)
        assert not is_math_stable(0.5, 50.0, 2)
        assert saturating_population(0.0, 50.0) == math.inf
        # lam*tau = 0.1 -> c < 11 -> largest stable population is 10
        assert saturating_population(0.002, 50.0) == 10


class TestBarrier:
    def test_cycle_time(self):
        assert barrier_cycle_time(0.5, 1) == pytest.approx(2.0)
        assert barrier_cycle_time(0.5, 2) == pytest.approx(3.0)  # H_2/0.5

    def test_wait_time_zero_for_one_process(self):
        assert barrier_wait_time(0.5, 1) == 0.0

    def test_wait_time_matches_harmonic(self):
        lam = 0.25
        for c in (2, 3, 8):
            expected = (harmonic_number(c) - 1.0) / lam
            assert barrier_wait_time(lam, c) == pytest.approx(expected)

    def test_barrier_term(self):
        assert barrier_term(1) == 0.0
        assert barrier_term(2) == pytest.approx(0.5)
        assert barrier_term(4) == pytest.approx(0.5 + 1 / 3 + 0.25)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            barrier_cycle_time(0.0, 2)
        with pytest.raises(ValueError):
            barrier_cycle_time(0.5, 0)
        with pytest.raises(ValueError):
            barrier_term(0)

    @given(c=st.integers(min_value=2, max_value=64))
    def test_wait_grows_with_population(self, c):
        assert barrier_wait_time(1.0, c + 1) > barrier_wait_time(1.0, c)
