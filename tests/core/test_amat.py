"""Tests for the average-memory-access-time model (Eq. 7/11 + modes)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amat import average_memory_access_time
from repro.core.contention import QueueSaturationError, barrier_term, mg1_response_time
from repro.core.hierarchy import smp_hierarchy, cow_hierarchy
from repro.core.locality import StackDistanceModel
from repro.sim.latencies import NetworkKind, PAPER_LATENCIES


def _smp(n=1, cache=64, memory=4096):
    return smp_hierarchy(n=n, cache_items=cache, memory_items=memory, latencies=PAPER_LATENCIES)


def _cow(N=4, net=NetworkKind.ETHERNET_100, cache=64, memory=4096):
    return cow_hierarchy(
        N=N, cache_items=cache, memory_items=memory, network=net, latencies=PAPER_LATENCIES
    )


LOC = StackDistanceModel(alpha=2.5, beta=5.0)


class TestUniprocessorLimit:
    def test_reduces_to_jacob_closed_form(self):
        """n = 1: T = tau1 + tail(s1)*tau2 + tail(s2)*tau3, no contention,
        no barrier -- the paper's consistency check against [6]."""
        h = _smp(n=1)
        out = average_memory_access_time(h, LOC, gamma=0.3)
        expected = 1.0 + LOC.tail(64) * 50.0 + LOC.tail(4096) * 2000.0
        assert out.total_cycles == pytest.approx(expected)
        assert out.barrier_cycles == 0.0

    def test_contention_raises_t_for_multiprocessor(self):
        t1 = average_memory_access_time(_smp(n=1), LOC, gamma=0.3).total_cycles
        out2 = average_memory_access_time(_smp(n=2), LOC, gamma=0.3, barrier_scale=0.0)
        # rescaling shrinks per-process tails, so compare the memory level
        # directly: response time must exceed the uncontended service.
        mem = out2.levels[0]
        assert mem.response_cycles > 50.0
        assert t1 > 0


class TestSmpFormula:
    def test_matches_manual_expansion(self):
        """Hand-expand Eq. 11 for n = 2 and compare term by term."""
        gamma, n = 0.25, 2
        h = _smp(n=n)
        dist = LOC.rescaled(n)
        lam2 = gamma * dist.tail(64)
        lam3 = gamma * dist.tail(4096)
        t2 = mg1_response_time(lam2, 50.0, n)
        t3 = mg1_response_time(lam3, 2000.0, n)
        expected = (
            1.0
            + dist.tail(64) * t2
            + dist.tail(4096) * t3
            + barrier_term(n) / gamma
        )
        out = average_memory_access_time(h, LOC, gamma=gamma)
        assert out.total_cycles == pytest.approx(expected)

    def test_barrier_scale(self):
        h = _smp(n=4)
        full = average_memory_access_time(h, LOC, gamma=0.3, barrier_scale=1.0)
        none = average_memory_access_time(h, LOC, gamma=0.3, barrier_scale=0.0)
        assert none.barrier_cycles == 0.0
        assert full.total_cycles - none.total_cycles == pytest.approx(
            barrier_term(4) / 0.3
        )

    def test_level_diagnostics_present(self):
        out = average_memory_access_time(_smp(n=2), LOC, gamma=0.3)
        assert len(out.levels) == 2
        assert all(lv.tail_probability >= 0 for lv in out.levels)
        assert "T =" in out.describe()


class TestSaturation:
    def _saturating(self):
        # 10Mb Ethernet with a fat remote tail saturates the open model.
        heavy = StackDistanceModel(alpha=1.2, beta=500.0)
        return _cow(N=4, net=NetworkKind.ETHERNET_10), heavy

    def test_open_mode_raises(self):
        h, heavy = self._saturating()
        with pytest.raises(QueueSaturationError):
            average_memory_access_time(h, heavy, gamma=0.3, on_saturation="raise")

    def test_open_mode_inf(self):
        h, heavy = self._saturating()
        out = average_memory_access_time(h, heavy, gamma=0.3, on_saturation="inf")
        assert out.saturated
        assert math.isinf(out.total_cycles)
        assert any(lv.saturated for lv in out.levels)

    def test_throttled_mode_always_finite(self):
        h, heavy = self._saturating()
        out = average_memory_access_time(
            h, heavy, gamma=0.3, mode="throttled", on_saturation="inf"
        )
        assert math.isfinite(out.total_cycles)
        assert all(lv.utilization < 1.0 for lv in out.levels)

    def test_throttled_fixed_point_self_consistent(self):
        h, heavy = self._saturating()
        gamma = 0.3
        out = average_memory_access_time(
            h, heavy, gamma=gamma, mode="throttled", on_saturation="inf"
        )
        # The realized issue scale equals 1/(1 + gamma T): check via the
        # memory level whose lam = gamma * tail * scale.
        scale = out.levels[0].request_rate / (gamma * out.levels[0].tail_probability)
        assert scale == pytest.approx(1.0 / (1.0 + gamma * out.total_cycles), rel=1e-3)

    def test_throttled_equals_open_when_uncontended(self):
        h = _smp(n=1)
        a = average_memory_access_time(h, LOC, gamma=0.3, mode="open")
        b = average_memory_access_time(h, LOC, gamma=0.3, mode="throttled")
        assert b.total_cycles == pytest.approx(a.total_cycles, rel=1e-6)


class TestExtensions:
    def test_remote_rate_adjustment_increases_remote_rate(self):
        h = _cow()
        base = average_memory_access_time(h, LOC, gamma=0.3)
        adj = average_memory_access_time(h, LOC, gamma=0.3, remote_rate_adjustment=0.124)
        remote_base = [lv for lv in base.levels if "remote memory" in lv.name][0]
        remote_adj = [lv for lv in adj.levels if "remote memory" in lv.name][0]
        assert remote_adj.request_rate == pytest.approx(1.124 * remote_base.request_rate)
        assert adj.total_cycles >= base.total_cycles

    def test_adjustment_does_not_touch_local_levels(self):
        h = _cow()
        base = average_memory_access_time(h, LOC, gamma=0.3)
        adj = average_memory_access_time(h, LOC, gamma=0.3, remote_rate_adjustment=0.5)
        assert adj.levels[0].request_rate == pytest.approx(base.levels[0].request_rate)

    def test_sharing_fraction_adds_remote_traffic(self):
        trunc = StackDistanceModel(alpha=2.5, beta=5.0, max_distance=2000.0)
        h = _cow(memory=4096)  # footprint < memory -> zero capacity tail
        base = average_memory_access_time(h, trunc, gamma=0.3, on_saturation="inf")
        shared = average_memory_access_time(
            h, trunc, gamma=0.3, sharing_fraction=0.2, sharing_fresh_fraction=1.0,
            on_saturation="inf",
        )
        rb = [lv for lv in base.levels if "remote memory" in lv.name][0]
        rs = [lv for lv in shared.levels if "remote memory" in lv.name][0]
        assert rb.tail_probability == 0.0
        assert rs.tail_probability == pytest.approx(0.2)

    def test_sharing_fresh_blend(self):
        h = _cow()
        lo = average_memory_access_time(
            h, LOC, gamma=0.3, sharing_fraction=0.2, sharing_fresh_fraction=0.0,
            mode="throttled", on_saturation="inf",
        )
        hi = average_memory_access_time(
            h, LOC, gamma=0.3, sharing_fraction=0.2, sharing_fresh_fraction=1.0,
            mode="throttled", on_saturation="inf",
        )
        assert hi.total_cycles > lo.total_cycles

    def test_contention_boost_only_raises_queueing(self):
        h = _smp(n=4)
        base = average_memory_access_time(h, LOC, gamma=0.3)
        boosted = average_memory_access_time(h, LOC, gamma=0.3, contention_boost=4.0)
        b0, b4 = base.levels[0], boosted.levels[0]
        assert b4.tail_probability == pytest.approx(b0.tail_probability)
        assert b4.response_cycles > b0.response_cycles
        assert boosted.total_cycles > base.total_cycles

    def test_contention_boost_validation(self):
        with pytest.raises(ValueError):
            average_memory_access_time(_smp(), LOC, gamma=0.3, contention_boost=0.5)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            average_memory_access_time(_smp(), LOC, gamma=0.0)
        with pytest.raises(ValueError):
            average_memory_access_time(_smp(), LOC, gamma=1.5)


class TestProperties:
    @given(
        alpha=st.floats(min_value=1.3, max_value=4.0),
        beta=st.floats(min_value=1.0, max_value=1e4),
        gamma=st.floats(min_value=0.05, max_value=0.9),
        n=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_throttled_t_at_least_base(self, alpha, beta, gamma, n):
        loc = StackDistanceModel(alpha=alpha, beta=beta)
        out = average_memory_access_time(
            _smp(n=n), loc, gamma=gamma, mode="throttled", on_saturation="inf"
        )
        assert out.total_cycles >= 1.0

    @given(
        cache=st.sampled_from([16, 64, 256, 1024]),
        gamma=st.floats(min_value=0.1, max_value=0.6),
    )
    @settings(max_examples=40, deadline=None)
    def test_bigger_cache_never_slower(self, cache, gamma):
        a = average_memory_access_time(_smp(n=2, cache=cache), LOC, gamma=gamma, mode="throttled")
        b = average_memory_access_time(_smp(n=2, cache=2 * cache), LOC, gamma=gamma, mode="throttled")
        assert b.total_cycles <= a.total_cycles + 1e-9
