"""Tests for the exact MVA solver and its AMAT adapter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import cow_hierarchy, smp_hierarchy
from repro.core.locality import StackDistanceModel
from repro.core.mva import MvaCenter, mva_smp_amat, solve_mva
from repro.sim.latencies import NetworkKind, PAPER_LATENCIES

LOC = StackDistanceModel(alpha=2.5, beta=5.0)


class TestSolver:
    def test_single_customer_no_queueing(self):
        """With one customer, response equals bare service."""
        centers = [MvaCenter("m", service=50.0, visit_ratio=0.1)]
        sol = solve_mva(centers, population=1, think_time=10.0)
        assert sol.response_times[0] == pytest.approx(50.0)
        assert sol.throughput == pytest.approx(1.0 / (10.0 + 0.1 * 50.0))

    def test_interactive_response_time_law(self):
        """X * (Z + sum v R) == k exactly (the MVA identity)."""
        centers = [
            MvaCenter("bus", service=50.0, visit_ratio=0.08),
            MvaCenter("disk", service=2000.0, visit_ratio=0.001),
        ]
        for k in (1, 2, 4, 8):
            sol = solve_mva(centers, population=k, think_time=5.0)
            cycle = sol.think_time + sum(
                c.visit_ratio * r for c, r in zip(sol.centers, sol.response_times)
            )
            assert sol.throughput * cycle == pytest.approx(k)

    def test_littles_law_at_each_center(self):
        centers = [MvaCenter("bus", service=50.0, visit_ratio=0.08)]
        sol = solve_mva(centers, population=4, think_time=5.0)
        assert sol.queue_lengths[0] == pytest.approx(
            sol.throughput * centers[0].visit_ratio * sol.response_times[0]
        )

    def test_utilization_never_exceeds_one(self):
        centers = [MvaCenter("bus", service=50.0, visit_ratio=0.5)]
        for k in (1, 2, 8, 32):
            sol = solve_mva(centers, population=k, think_time=1.0)
            assert sol.utilization(0) <= 1.0 + 1e-9

    def test_throughput_saturates_at_bottleneck(self):
        """X -> 1 / (v * s) of the bottleneck as population grows."""
        centers = [MvaCenter("bus", service=50.0, visit_ratio=0.2)]
        sol = solve_mva(centers, population=64, think_time=1.0)
        assert sol.throughput == pytest.approx(1.0 / (0.2 * 50.0), rel=0.02)

    @given(
        k=st.integers(min_value=1, max_value=16),
        s=st.floats(min_value=1.0, max_value=500.0),
        v=st.floats(min_value=0.001, max_value=0.5),
        z=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_population(self, k, s, v, z):
        """More customers: higher throughput, never lower."""
        centers = [MvaCenter("c", service=s, visit_ratio=v)]
        a = solve_mva(centers, k, z).throughput
        b = solve_mva(centers, k + 1, z).throughput
        assert b >= a - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_mva([MvaCenter("c", 1.0, 0.1)], population=0, think_time=1.0)
        with pytest.raises(ValueError):
            solve_mva([MvaCenter("c", 1.0, 0.1)], population=1, think_time=-1.0)
        with pytest.raises(ValueError):
            MvaCenter("c", -1.0, 0.1)


class TestSmpAmat:
    def _h(self, n=2):
        return smp_hierarchy(n=n, cache_items=64, memory_items=4096, latencies=PAPER_LATENCIES)

    def test_single_processor_matches_open_model(self):
        """At n = 1 both treatments are contention-free and equal."""
        from repro.core.amat import average_memory_access_time

        h = self._h(n=1)
        open_t = average_memory_access_time(h, LOC, gamma=0.3).total_cycles
        mva_t = mva_smp_amat(h, LOC, gamma=0.3)
        assert mva_t == pytest.approx(open_t, rel=1e-9)

    def test_contention_grows_with_processors(self):
        t2 = mva_smp_amat(self._h(n=2), LOC, gamma=0.3, barrier_scale=0.0)
        t8 = mva_smp_amat(self._h(n=8), LOC, gamma=0.3, barrier_scale=0.0)
        # per-process tails shrink with rescaling, but bus queueing grows;
        # compare against the contention-free baseline instead
        from repro.core.amat import average_memory_access_time

        free8 = average_memory_access_time(
            self._h(n=8), LOC, gamma=0.3, barrier_scale=0.0, contention_boost=1.0
        )
        assert t8 >= free8.base_cycles

    def test_mva_finite_where_open_saturates(self):
        """The closed network cannot saturate -- its population is finite."""
        heavy = StackDistanceModel(alpha=1.2, beta=500.0)
        h = self._h(n=4)
        from repro.core.amat import average_memory_access_time
        from repro.core.contention import QueueSaturationError

        with pytest.raises(QueueSaturationError):
            average_memory_access_time(h, heavy, gamma=0.5, on_saturation="raise")
        assert mva_smp_amat(h, heavy, gamma=0.5) < float("inf")

    def test_mva_between_free_and_open(self):
        """Closed-network response sits above the contention-free time."""
        h = self._h(n=4)
        free = 1.0 + sum(
            float(LOC.rescaled(4).tail(lv.boundary_items)) * lv.tau_cycles
            for lv in h.levels
        )
        t = mva_smp_amat(h, LOC, gamma=0.3, barrier_scale=0.0)
        assert t >= free - 1e-9

    def test_rejects_clusters(self):
        h = cow_hierarchy(
            N=4, cache_items=64, memory_items=4096,
            network=NetworkKind.ATM_155, latencies=PAPER_LATENCIES,
        )
        with pytest.raises(ValueError, match="machine-local"):
            mva_smp_amat(h, LOC, gamma=0.3)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            mva_smp_amat(self._h(), LOC, gamma=0.0)


class TestEvaluateMvaMode:
    def test_smp_uses_exact_mva(self):
        from repro.core.execution import evaluate
        from repro.core.platform import PlatformSpec

        spec = PlatformSpec(name="m", n=2, N=1, cache_bytes=4 * 1024, memory_bytes=256 * 1024)
        est = evaluate(spec, LOC, gamma=0.3, mode="mva")
        expected = mva_smp_amat(spec.hierarchy(), LOC, gamma=0.3)
        assert est.amat.total_cycles == pytest.approx(expected)
        assert est.feasible
        assert est.amat.levels == ()  # aggregate-only breakdown

    def test_cluster_falls_back_to_throttled(self):
        from repro.core.execution import evaluate
        from repro.core.platform import PlatformSpec

        spec = PlatformSpec(
            name="m", n=1, N=4, cache_bytes=4 * 1024, memory_bytes=256 * 1024,
            network=NetworkKind.ATM_155,
        )
        a = evaluate(spec, LOC, gamma=0.3, mode="mva", on_saturation="inf")
        b = evaluate(spec, LOC, gamma=0.3, mode="throttled", on_saturation="inf")
        assert a.e_instr_seconds == pytest.approx(b.e_instr_seconds)

    def test_cache_capacity_factor_applies_to_mva(self):
        from repro.core.execution import evaluate
        from repro.core.platform import PlatformSpec

        spec = PlatformSpec(name="m", n=2, N=1, cache_bytes=4 * 1024, memory_bytes=256 * 1024)
        full = evaluate(spec, LOC, gamma=0.3, mode="mva")
        half = evaluate(spec, LOC, gamma=0.3, mode="mva", cache_capacity_factor=0.5)
        assert half.e_instr_seconds > full.e_instr_seconds
