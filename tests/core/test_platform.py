"""Tests for PlatformSpec validation and derived properties."""

import pytest

from repro.core.hierarchy import PlatformKind
from repro.core.platform import NetworkSpec, NetworkTopology, PlatformSpec
from repro.sim.latencies import CPU_HZ, ITEM_BYTES, NetworkKind

KB = 1024
MB = 1024 * 1024


def _spec(**kw):
    base = dict(name="t", n=2, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB)
    base.update(kw)
    return PlatformSpec(**base)


class TestValidation:
    def test_uniprocessor_rejected(self):
        with pytest.raises(ValueError, match="uniprocessor"):
            _spec(n=1, N=1)

    def test_cluster_requires_network(self):
        with pytest.raises(ValueError, match="network"):
            _spec(n=1, N=4, network=None)

    def test_single_smp_rejects_network(self):
        with pytest.raises(ValueError, match="network"):
            _spec(n=2, N=1, network=NetworkKind.ATM_155)

    def test_memory_must_exceed_cache(self):
        with pytest.raises(ValueError):
            _spec(cache_bytes=1 * MB, memory_bytes=1 * MB)

    def test_cache_holds_at_least_one_line(self):
        with pytest.raises(ValueError):
            _spec(cache_bytes=32)

    def test_positive_clock(self):
        with pytest.raises(ValueError):
            _spec(cpu_hz=0)


class TestClassification:
    def test_smp(self):
        assert _spec(n=4, N=1).kind is PlatformKind.SMP

    def test_cow(self):
        s = _spec(n=1, N=4, network=NetworkKind.ETHERNET_10)
        assert s.kind is PlatformKind.COW

    def test_clump(self):
        s = _spec(n=2, N=2, network=NetworkKind.ATM_155)
        assert s.kind is PlatformKind.CLUMP


class TestDerived:
    def test_items(self):
        s = _spec(cache_bytes=256 * KB, memory_bytes=64 * MB)
        assert s.cache_items == 256 * KB // ITEM_BYTES == 4096
        assert s.memory_items == 64 * MB // ITEM_BYTES

    def test_total_processors(self):
        s = _spec(n=2, N=3, network=NetworkKind.ATM_155)
        assert s.total_processors == 6

    def test_cycle_seconds(self):
        assert _spec().cycle_seconds == pytest.approx(1.0 / CPU_HZ)

    def test_describe(self):
        s = _spec(n=1, N=4, network=NetworkKind.ETHERNET_100)
        text = s.describe()
        assert "n=1" in text and "N=4" in text and "100Mb" in text


class TestScaling:
    def test_scaled_divides_sizes(self):
        s = _spec(cache_bytes=256 * KB, memory_bytes=64 * MB)
        t = s.scaled(64)
        assert t.cache_bytes == 4 * KB
        assert t.memory_bytes == 1 * MB
        assert t.name == "t/64"
        assert t.n == s.n and t.N == s.N

    def test_scale_one_is_identity_name(self):
        s = _spec()
        assert s.scaled(1).name == "t"

    def test_scaled_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            _spec().scaled(0)

    def test_scaled_preserves_ratio(self):
        s = _spec(cache_bytes=512 * KB, memory_bytes=128 * MB)
        t = s.scaled(16)
        assert s.memory_bytes / s.cache_bytes == t.memory_bytes / t.cache_bytes


class TestNetworkSpec:
    def test_topology(self):
        assert NetworkSpec(NetworkKind.ETHERNET_10).topology is NetworkTopology.BUS
        assert NetworkSpec(NetworkKind.ETHERNET_100).topology is NetworkTopology.BUS
        assert NetworkSpec(NetworkKind.ATM_155).topology is NetworkTopology.SWITCH

    def test_bandwidth(self):
        assert NetworkSpec(NetworkKind.ATM_155).bandwidth_mbps == 155
        assert NetworkSpec(NetworkKind.ETHERNET_10).bandwidth_mbps == 10


class TestCustomLatencies:
    def test_model_uses_overridden_latencies(self):
        from repro.core.execution import evaluate
        from repro.core.locality import StackDistanceModel
        from repro.sim.latencies import LatencyTable

        loc = StackDistanceModel(alpha=2.5, beta=5.0)
        slow_memory = LatencyTable(cache_to_memory=500)
        base = _spec(cache_bytes=4 * KB, memory_bytes=1 * MB)
        slow = _spec(cache_bytes=4 * KB, memory_bytes=1 * MB, latencies=slow_memory)
        t_base = evaluate(base, loc, gamma=0.3, mode="throttled").e_instr_seconds
        t_slow = evaluate(slow, loc, gamma=0.3, mode="throttled").e_instr_seconds
        assert t_slow > t_base

    def test_simulator_uses_overridden_latencies(self):
        import numpy as np

        from repro.sim.backends.smp import SmpBackend
        from repro.sim.latencies import LatencyTable

        spec = _spec(
            cache_bytes=4 * KB, memory_bytes=1 * MB,
            latencies=LatencyTable(cache_to_memory=500),
        )
        b = SmpBackend(spec, np.zeros(1000, dtype=np.int64))
        b.memory.access(0)
        assert b.access(0, 8, False, 0.0) == pytest.approx(1.0 + 500.0)
