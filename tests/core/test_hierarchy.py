"""Tests for the memory-hierarchy abstraction and platform builders."""

import pytest

from repro.core.hierarchy import (
    LevelKind,
    MemoryHierarchy,
    MemoryLevel,
    PlatformKind,
    additional_levels,
    clump_hierarchy,
    cow_hierarchy,
    smp_hierarchy,
)
from repro.sim.latencies import NetworkKind, PAPER_LATENCIES


class TestTable1:
    def test_classification(self):
        """Paper Table 1: gray blocks added by each platform class."""
        assert additional_levels(PlatformKind.SMP) == ("A",)
        assert additional_levels(PlatformKind.COW) == ("B", "C")
        assert additional_levels(PlatformKind.CLUMP) == ("A", "B", "C")


class TestMemoryLevel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel("x", LevelKind.CACHE, -1.0, 1.0, 1)
        with pytest.raises(ValueError):
            MemoryLevel("x", LevelKind.CACHE, 1.0, -1.0, 1)
        with pytest.raises(ValueError):
            MemoryLevel("x", LevelKind.CACHE, 1.0, 1.0, 0)
        with pytest.raises(ValueError):
            MemoryLevel("x", LevelKind.CACHE, 1.0, 1.0, 1, rate_fraction=1.5)


class TestSmpHierarchy:
    def test_structure(self):
        h = smp_hierarchy(n=2, cache_items=64, memory_items=1024, latencies=PAPER_LATENCIES)
        assert h.platform is PlatformKind.SMP
        assert h.length == 3  # cache, memory, disk
        assert h.base_cycles == 1
        mem, disk = h.levels
        assert mem.kind is LevelKind.LOCAL_MEMORY
        assert mem.boundary_items == 64 and mem.tau_cycles == 50 and mem.population == 2
        assert disk.kind is LevelKind.LOCAL_DISK
        assert disk.boundary_items == 1024 and disk.tau_cycles == 2000
        assert h.barrier_population == 2 and h.total_processes == 2

    def test_peer_cache_level(self):
        h = smp_hierarchy(
            n=4, cache_items=64, memory_items=1024,
            latencies=PAPER_LATENCIES, include_peer_cache=True,
        )
        assert h.length == 4
        peer = h.levels[0]
        assert peer.kind is LevelKind.PEER_CACHE and peer.tau_cycles == 15
        # memory boundary moves out to the aggregate cache capacity
        assert h.levels[1].boundary_items == 4 * 64

    def test_peer_cache_skipped_for_uniprocessor(self):
        h = smp_hierarchy(
            n=1, cache_items=64, memory_items=1024,
            latencies=PAPER_LATENCIES, include_peer_cache=True,
        )
        assert all(lv.kind is not LevelKind.PEER_CACHE for lv in h.levels)

    def test_cache_capacity_factor(self):
        h = smp_hierarchy(
            n=2, cache_items=64, memory_items=1024,
            latencies=PAPER_LATENCIES, cache_capacity_factor=0.5,
        )
        assert h.levels[0].boundary_items == 32

    def test_cache_capacity_factor_validation(self):
        with pytest.raises(ValueError):
            smp_hierarchy(2, 64, 1024, PAPER_LATENCIES, cache_capacity_factor=0.0)
        with pytest.raises(ValueError):
            smp_hierarchy(2, 64, 1024, PAPER_LATENCIES, cache_capacity_factor=1.5)

    def test_memory_must_exceed_cache(self):
        with pytest.raises(ValueError):
            smp_hierarchy(2, 64, 64, PAPER_LATENCIES)


class TestCowHierarchy:
    def test_structure(self):
        h = cow_hierarchy(
            N=4, cache_items=64, memory_items=1024,
            network=NetworkKind.ETHERNET_100, latencies=PAPER_LATENCIES,
        )
        assert h.platform is PlatformKind.COW
        kinds = [lv.kind for lv in h.levels]
        assert kinds == [
            LevelKind.LOCAL_MEMORY,
            LevelKind.REMOTE_MEMORY,
            LevelKind.LOCAL_DISK,
            LevelKind.REMOTE_DISK,
        ]
        local, remote, ldisk, rdisk = h.levels
        assert local.population == 1  # own memory, uncontended
        assert remote.tau_cycles == 4575 and remote.population == 4  # shared bus
        assert ldisk.boundary_items == 4 * 1024  # aggregate memory
        assert ldisk.rate_fraction == pytest.approx(0.25)
        assert rdisk.rate_fraction == pytest.approx(0.75)
        assert h.barrier_population == 4

    def test_switch_population(self):
        h = cow_hierarchy(
            N=8, cache_items=64, memory_items=1024,
            network=NetworkKind.ATM_155, latencies=PAPER_LATENCIES,
        )
        remote = h.levels[1]
        assert remote.tau_cycles == 3275
        assert remote.population == 2  # queueing at the destination only

    def test_remote_cached_split(self):
        h = cow_hierarchy(
            N=4, cache_items=64, memory_items=1024,
            network=NetworkKind.ETHERNET_10, latencies=PAPER_LATENCIES,
            remote_cached_fraction=0.3,
        )
        remotes = [lv for lv in h.levels if lv.kind is LevelKind.REMOTE_MEMORY]
        assert len(remotes) == 2
        assert remotes[0].rate_fraction == pytest.approx(0.7)
        assert remotes[1].rate_fraction == pytest.approx(0.3)
        assert remotes[1].tau_cycles == 90150

    def test_requires_two_machines(self):
        with pytest.raises(ValueError):
            cow_hierarchy(1, 64, 1024, NetworkKind.ATM_155, PAPER_LATENCIES)


class TestClumpHierarchy:
    def test_structure(self):
        h = clump_hierarchy(
            n=2, N=2, cache_items=64, memory_items=1024,
            network=NetworkKind.ETHERNET_10, latencies=PAPER_LATENCIES,
        )
        assert h.platform is PlatformKind.CLUMP
        assert h.total_processes == 4 and h.barrier_population == 4
        mem = h.levels[0]
        assert mem.kind is LevelKind.LOCAL_MEMORY and mem.population == 2
        remote = h.levels[1]
        assert remote.tau_cycles == 45078  # the paper's CLUMP row: +3 cycles
        assert remote.population == 4  # bus shared by all n*N processors

    def test_switch_population_is_node_plus_one(self):
        h = clump_hierarchy(
            n=4, N=2, cache_items=64, memory_items=1024,
            network=NetworkKind.ATM_155, latencies=PAPER_LATENCIES,
        )
        remote = [lv for lv in h.levels if lv.kind is LevelKind.REMOTE_MEMORY][0]
        assert remote.tau_cycles == 3278
        assert remote.population == 5

    def test_requires_smp_nodes(self):
        with pytest.raises(ValueError):
            clump_hierarchy(1, 2, 64, 1024, NetworkKind.ATM_155, PAPER_LATENCIES)


class TestMemoryHierarchy:
    def test_boundaries_must_be_sorted(self):
        levels = (
            MemoryLevel("a", LevelKind.LOCAL_MEMORY, 100.0, 50.0, 1),
            MemoryLevel("b", LevelKind.LOCAL_DISK, 50.0, 2000.0, 1),
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            MemoryHierarchy(
                platform=PlatformKind.SMP, base_cycles=1.0, levels=levels,
                barrier_population=1, total_processes=1,
            )

    def test_describe_mentions_every_level(self, smp_spec):
        text = smp_spec.hierarchy().describe()
        assert "cache hit" in text
        assert "memory bus" in text
        assert "disk" in text
        assert "barriers" in text
