"""Tests for the scalability-analysis module."""

import pytest

from repro.core.platform import PlatformSpec
from repro.core.scalability import speedup_curve
from repro.sim.latencies import NetworkKind
from repro.workloads.params import PAPER_EDGE, PAPER_FFT, PAPER_LU

KB, MB = 1024, 1024 * 1024

COW_BASE = PlatformSpec(
    name="sc-cow", n=1, N=2, cache_bytes=256 * KB, memory_bytes=64 * MB,
    network=NetworkKind.ATM_155,
)
SMP_BASE = PlatformSpec(name="sc-smp", n=2, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB)


class TestSpeedupCurve:
    def test_base_point_normalized(self):
        res = speedup_curve(PAPER_LU, COW_BASE, [2, 4, 8])
        assert res.points[0].speedup == pytest.approx(1.0)
        assert res.points[0].efficiency == pytest.approx(1.0)

    def test_counts_sorted_and_deduplicated(self):
        res = speedup_curve(PAPER_LU, COW_BASE, [8, 2, 4, 4])
        assert [p.processors for p in res.points] == [2, 4, 8]

    def test_machine_axis_grows_N(self):
        res = speedup_curve(PAPER_LU, COW_BASE, [2, 4])
        assert res.points[1].spec.N == 4 and res.points[1].spec.n == 1

    def test_processor_axis_grows_n(self):
        res = speedup_curve(PAPER_LU, SMP_BASE, [2, 4], scale_axis="processors")
        assert res.points[1].spec.n == 4 and res.points[1].spec.N == 1

    def test_smp_scaling_beats_ethernet_cow_scaling_for_radix_like(self):
        """Bus SMPs scale the memory-bound Radix better than Ethernet COWs
        (the Section 6 story, seen as a curve)."""
        from repro.workloads.params import PAPER_RADIX

        eth = PlatformSpec(
            name="sc-eth", n=1, N=2, cache_bytes=256 * KB, memory_bytes=64 * MB,
            network=NetworkKind.ETHERNET_100,
        )
        smp = speedup_curve(PAPER_RADIX, SMP_BASE, [2, 4], scale_axis="processors")
        cow = speedup_curve(PAPER_RADIX, eth, [2, 4])
        assert smp.points[-1].speedup > cow.points[-1].speedup

    def test_network_gates_scaling(self):
        """FFT scales visibly worse on Ethernet than on ATM (Section 6)."""
        eth = PlatformSpec(
            name="sc-eth", n=1, N=2, cache_bytes=256 * KB, memory_bytes=64 * MB,
            network=NetworkKind.ETHERNET_10,
        )
        atm = speedup_curve(PAPER_FFT, COW_BASE, [2, 4, 8])
        slow = speedup_curve(PAPER_FFT, eth, [2, 4, 8])
        # absolute times: ATM strictly dominates at every size
        for a, e in zip(atm.points, slow.points):
            assert a.e_instr_seconds < e.e_instr_seconds

    def test_knee_and_peak_defined(self):
        res = speedup_curve(PAPER_EDGE, COW_BASE, [2, 4, 8, 16])
        assert res.knee in res.points
        assert res.peak in res.points
        assert res.peak.speedup == max(p.speedup for p in res.points)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_curve(PAPER_LU, COW_BASE, [])
        with pytest.raises(ValueError):
            speedup_curve(PAPER_LU, COW_BASE, [0, 2])
        with pytest.raises(ValueError):
            speedup_curve(PAPER_LU, COW_BASE, [2], scale_axis="nope")

    def test_describe(self):
        res = speedup_curve(PAPER_LU, COW_BASE, [2, 4])
        text = res.describe()
        assert "speedup" in text and "knee" in text
