"""Cross-cutting tests every benchmark application must satisfy."""

import numpy as np
import pytest

from repro.apps.registry import APPLICATIONS, TABLE2_NAMES, default_applications, make_application
from tests.conftest import SMALL_APP_KWARGS

ALL_NAMES = tuple(APPLICATIONS)


class TestRegistry:
    def test_table2_names(self):
        assert TABLE2_NAMES == ("FFT", "LU", "Radix", "EDGE")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown application"):
            make_application("nope")

    def test_default_applications(self):
        apps = default_applications(num_procs=2)
        assert [a.name for a in apps] == list(TABLE2_NAMES)

    def test_invalid_proc_count(self):
        with pytest.raises(ValueError):
            make_application("FFT", num_procs=0)


@pytest.fixture
def run_by_name(all_runs_4, tpcc_run_4, cg_run_4):
    def get(name):
        if name == "TPC-C":
            return tpcc_run_4
        if name == "CG":
            return cg_run_4
        return all_runs_4[name]

    return get


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryApplication:
    def test_run_verifies_and_traces(self, name, run_by_name):
        run = run_by_name(name)
        assert run.verified, f"{name} failed its numeric oracle"
        assert run.num_procs == 4
        assert run.total_references > 1000
        # Equal barrier counts across processes (enforced + sanity).
        counts = {int(t.barriers.size) for t in run.traces}
        assert len(counts) == 1

    def test_addresses_inside_the_shared_space(self, name, run_by_name):
        run = run_by_name(name)
        total = run.address_space.total_items
        for t in run.traces:
            assert t.addresses.min() >= 0
            assert t.addresses.max() < total

    def test_gamma_in_plausible_range(self, name, run_by_name):
        run = run_by_name(name)
        assert 0.1 < run.gamma < 0.7

    def test_every_process_contributes(self, name, run_by_name):
        run = run_by_name(name)
        for t in run.traces:
            assert t.memory_instructions > 0

    def test_deterministic_for_fixed_seed(self, name):
        kw = SMALL_APP_KWARGS[name]
        a = make_application(name, num_procs=2, seed=3, **kw).run()
        b = make_application(name, num_procs=2, seed=3, **kw).run()
        np.testing.assert_array_equal(a.traces[0].addresses, b.traces[0].addresses)
        assert a.total_instructions == b.total_instructions


class TestGammaOrdering:
    def test_matches_paper_table2_ordering(self, all_runs_4):
        """gamma: FFT < LU <= Radix < EDGE, as in the paper's Table 2."""
        g = {name: run.gamma for name, run in all_runs_4.items()}
        assert g["FFT"] < g["LU"] <= g["Radix"] < g["EDGE"]


class TestSharingStructure:
    def test_fft_transpose_shares_heavily(self, fft_run_4, edge_run_4):
        """All-to-all FFT must share far more than nearest-neighbour EDGE."""
        from repro.trace.analysis import measure_sharing_fraction

        assert measure_sharing_fraction(fft_run_4) > 3 * measure_sharing_fraction(edge_run_4)

    def test_single_process_never_shares(self):
        from repro.trace.analysis import measure_sharing_fraction

        run = make_application("EDGE", num_procs=1, **SMALL_APP_KWARGS["EDGE"]).run()
        assert measure_sharing_fraction(run) == 0.0
