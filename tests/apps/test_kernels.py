"""Per-kernel tests: numeric oracles and app-specific structure."""

import numpy as np
import pytest

from repro.apps.edge import EdgeApplication, edge_detect_reference
from repro.apps.fft import FftApplication, _bit_reverse_permutation, _fft_rows_inplace
from repro.apps.lu import LuApplication, _grid_shape
from repro.apps.radix import RadixApplication
from repro.apps.tpcc import TpccApplication, _zipf_choice


class TestFft:
    def test_row_fft_matches_numpy(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        expected = np.fft.fft(m, axis=1)
        work = m.copy()
        _fft_rows_inplace(work)
        np.testing.assert_allclose(work, expected, atol=1e-10)

    def test_bit_reverse_is_involution(self):
        for r in (8, 64, 256):
            rev = _bit_reverse_permutation(r)
            np.testing.assert_array_equal(rev[rev], np.arange(r))

    def test_six_step_verifies(self):
        run = FftApplication(points=1024, num_procs=2, seed=1).run()
        assert run.verified

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            FftApplication(points=1000)  # not r*r
        with pytest.raises(ValueError):
            FftApplication(points=1024, num_procs=3)  # 32 rows % 3

    def test_row_padding_present(self):
        """SPLASH-2-style padding: row stride exceeds the logical row."""
        run = FftApplication(points=1024, num_procs=1).run()
        data = [a for a in run.address_space.arrays if a.name == "data"][0]
        assert data.shape[1] > 32  # r + pad columns


class TestLu:
    def test_factorization_verifies(self):
        run = LuApplication(order=64, block=16, num_procs=4, seed=2).run()
        assert run.verified

    def test_grid_shape(self):
        assert _grid_shape(1) == (1, 1)
        assert _grid_shape(4) == (2, 2)
        assert _grid_shape(8) == (2, 4)
        assert _grid_shape(6) == (2, 3)

    def test_rejects_bad_blocking(self):
        with pytest.raises(ValueError):
            LuApplication(order=100, block=16)
        with pytest.raises(ValueError):
            LuApplication(order=64, block=6)

    def test_scatter_homes_follow_grid(self):
        run = LuApplication(order=64, block=16, num_procs=4).run()
        mat = run.address_space.arrays[0]
        home = mat.home_of_items()
        # block (0,0) -> proc 0; block (0,1) -> proc 1 (grid 2x2)
        items_per_block = 16 * 16 * 8 // 64
        assert home[0] == 0
        assert home[items_per_block] == 1

    def test_barriers_three_per_step(self):
        run = LuApplication(order=64, block=16, num_procs=2).run()
        assert run.traces[0].barriers.size == 3 * (64 // 16)


class TestRadix:
    def test_sorts(self):
        run = RadixApplication(num_keys=2048, num_procs=4, seed=3).run()
        assert run.verified

    def test_pass_count(self):
        app = RadixApplication(num_keys=1024, digit_bits=8, key_bits=32)
        assert app.passes == 4
        app16 = RadixApplication(num_keys=1024, digit_bits=4, key_bits=16)
        assert app16.passes == 4 and app16.radix == 16

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            RadixApplication(num_keys=1000, num_procs=3)
        with pytest.raises(ValueError):
            RadixApplication(num_keys=1024, digit_bits=7)

    def test_barriers_three_per_pass(self):
        run = RadixApplication(num_keys=1024, num_procs=2).run()
        assert run.traces[0].barriers.size == 3 * run.extras["passes"]


class TestEdge:
    def test_matches_reference(self):
        run = EdgeApplication(height=32, width=32, iterations=3, num_procs=4).run()
        assert run.verified

    def test_reference_oracle_finds_edges(self):
        img = np.zeros((32, 32))
        img[8:24, 8:24] = 200.0
        edges = edge_detect_reference(img, iterations=2, threshold=5.0)
        assert edges.any()
        assert not edges.all()

    def test_rejects_bad_partition(self):
        with pytest.raises(ValueError):
            EdgeApplication(height=30, width=30, num_procs=4)
        with pytest.raises(ValueError):
            EdgeApplication(height=2, width=2)

    def test_early_halt_recorded(self):
        run = EdgeApplication(
            height=32, width=32, iterations=50, threshold=1e9, num_procs=1
        ).run()
        # an absurd threshold stabilizes (no edges) after one iteration
        assert run.extras["iterations_performed"] < 50


class TestTpcc:
    def test_balances_reconcile(self):
        run = TpccApplication(
            transactions=1000, items=512, customers_per_warehouse=200, num_procs=2
        ).run()
        assert run.verified
        assert run.extras["orders"] > 0

    def test_zipf_skews_to_low_ranks(self):
        rng = np.random.default_rng(0)
        picks = _zipf_choice(rng, 1000, 20_000)
        top_decile = np.mean(picks < 100)
        assert top_decile > 0.3  # heavy head

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            TpccApplication(warehouses=3, num_procs=2)
        with pytest.raises(ValueError):
            TpccApplication(transactions=1001, num_procs=2)


class TestCg:
    def test_converges(self):
        from repro.apps.cg import CgApplication

        run = CgApplication(grid=24, iterations=20, num_procs=4).run()
        assert run.verified
        assert run.extras["relative_residual"] < 0.5

    def test_more_iterations_reduce_residual(self):
        from repro.apps.cg import CgApplication

        short = CgApplication(grid=24, iterations=5, num_procs=1).run()
        long = CgApplication(grid=24, iterations=40, num_procs=1).run()
        assert long.extras["relative_residual"] < short.extras["relative_residual"]

    def test_three_barriers_per_iteration(self):
        from repro.apps.cg import CgApplication

        run = CgApplication(grid=16, iterations=4, num_procs=2).run()
        assert run.traces[0].barriers.size == 3 * 4

    def test_rejects_bad_partition(self):
        from repro.apps.cg import CgApplication

        with pytest.raises(ValueError):
            CgApplication(grid=30, num_procs=4)
        with pytest.raises(ValueError):
            CgApplication(grid=16, iterations=0)

    def test_sharing_profile_nearest_neighbour_not_all_to_all(self):
        """Halo + reductions: real but modest sharing, far below FFT's
        all-to-all transposes (the axpy/dot volume dilutes the halos)."""
        from repro.apps.registry import make_application
        from repro.trace.analysis import measure_sharing_fraction

        cg = measure_sharing_fraction(make_application("CG", num_procs=4, grid=32).run())
        fft = measure_sharing_fraction(
            make_application("FFT", num_procs=4, points=1024).run()
        )
        assert 0.0 < cg < fft / 3
