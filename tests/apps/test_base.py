"""Tests for the shared address space and the application-run container."""

import numpy as np
import pytest

from repro.apps.base import AddressSpace, ApplicationRun
from repro.sim.latencies import ITEM_BYTES
from repro.trace.events import Trace


class TestAddressSpace:
    def test_regions_never_overlap(self):
        space = AddressSpace(2)
        a = space.alloc("a", (10,), element_bytes=8)
        b = space.alloc("b", (10,), element_bytes=8)
        assert b.base_item >= a.base_item + a.items
        assert space.total_items == a.items + b.items

    def test_addr_row_major(self):
        space = AddressSpace(1)
        arr = space.alloc("m", (4, 8), element_bytes=8)  # 8 elems per item
        # element (1, 0) is flat index 8 -> exactly one item past the base
        assert arr.addr(np.array([1]), np.array([0]))[0] == arr.base_item + 1
        assert arr.addr(np.array([0]), np.array([7]))[0] == arr.base_item

    def test_addr_flat_bounds(self):
        space = AddressSpace(1)
        arr = space.alloc("v", (16,), element_bytes=8)
        with pytest.raises(IndexError):
            arr.addr_flat(np.array([16]))

    def test_addr_wrong_rank(self):
        space = AddressSpace(1)
        arr = space.alloc("m", (4, 4))
        with pytest.raises(ValueError):
            arr.addr(np.array([0]))

    def test_item_rounding_up(self):
        space = AddressSpace(1)
        arr = space.alloc("odd", (3,), element_bytes=24)  # 72 bytes -> 2 items
        assert arr.items == 2

    def test_row_range_partition(self):
        space = AddressSpace(4)
        arr = space.alloc("m", (10, 3))
        ranges = [arr.row_range(p) for p in range(4)]
        # contiguous cover of all rows
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressSpace(0)
        space = AddressSpace(2)
        with pytest.raises(ValueError):
            space.alloc("bad", (0,))
        with pytest.raises(ValueError):
            space.alloc("bad", (4,), element_bytes=0)


class TestHomeMaps:
    def test_block_distribution(self):
        space = AddressSpace(2)
        arr = space.alloc("m", (4, 8), element_bytes=8)  # 4 items, 1 per row
        home = arr.home_of_items()
        np.testing.assert_array_equal(home, [0, 0, 1, 1])

    def test_replicated_homed_on_zero(self):
        space = AddressSpace(4)
        arr = space.alloc("t", (32,), element_bytes=8, distribution="replicated")
        assert np.all(arr.home_of_items() == 0)

    def test_custom_home_fn(self):
        space = AddressSpace(2)
        arr = space.alloc(
            "c", (4, 8), element_bytes=8, distribution="custom",
            home_fn=lambda flat: (flat // 8) % 2,  # alternate rows
        )
        np.testing.assert_array_equal(arr.home_of_items(), [0, 1, 0, 1])

    def test_custom_requires_home_fn(self):
        space = AddressSpace(2)
        with pytest.raises(ValueError):
            space.alloc("c", (4,), distribution="custom")
        with pytest.raises(ValueError):
            space.alloc("c", (4,), home_fn=lambda f: f)

    def test_space_home_map_covers_everything(self):
        space = AddressSpace(2)
        space.alloc("a", (100,), element_bytes=ITEM_BYTES)
        space.alloc("b", (50,), element_bytes=ITEM_BYTES, distribution="replicated")
        home = space.home_map()
        assert home.size == space.total_items
        assert set(np.unique(home)) <= {0, 1}


def _trace(addrs, barriers=()):
    addrs = np.asarray(addrs, dtype=np.int64)
    return Trace(
        addresses=addrs,
        is_write=np.zeros(addrs.size, dtype=bool),
        work=np.zeros(addrs.size, dtype=np.int64),
        barriers=np.asarray(barriers, dtype=np.int64),
    )


class TestApplicationRun:
    def test_barrier_counts_must_match(self):
        space = AddressSpace(2)
        space.alloc("a", (10,))
        with pytest.raises(ValueError, match="barrier"):
            ApplicationRun(
                name="x", problem_size="", num_procs=2,
                traces=(_trace([1], barriers=[0]), _trace([1])),
                address_space=space, verified=True,
            )

    def test_one_trace_per_process(self):
        space = AddressSpace(2)
        space.alloc("a", (10,))
        with pytest.raises(ValueError):
            ApplicationRun(
                name="x", problem_size="", num_procs=2,
                traces=(_trace([1]),), address_space=space, verified=True,
            )

    def test_aggregates(self):
        space = AddressSpace(2)
        space.alloc("a", (10,))
        run = ApplicationRun(
            name="x", problem_size="", num_procs=2,
            traces=(_trace([1, 2]), _trace([3])),
            address_space=space, verified=True,
        )
        assert run.total_references == 3
        assert run.gamma == pytest.approx(1.0)
