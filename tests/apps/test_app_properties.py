"""Property-based tests of the benchmark kernels' numeric oracles.

The applications are the trace generators behind every validation
figure; if one silently produced wrong numerics, its address stream
could drift too.  These tests hammer the oracles over randomized shapes
and seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cg import CgApplication
from repro.apps.edge import EdgeApplication
from repro.apps.fft import FftApplication
from repro.apps.lu import LuApplication
from repro.apps.radix import RadixApplication


class TestFftProperty:
    @given(
        r_exp=st.integers(min_value=2, max_value=5),  # 16..1024 points
        procs=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_matches_numpy_fft(self, r_exp, procs, seed):
        r = 2**r_exp
        if r % procs:
            procs = 1
        run = FftApplication(points=r * r, num_procs=procs, seed=seed).run()
        assert run.verified


class TestLuProperty:
    @given(
        blocks=st.integers(min_value=2, max_value=4),
        procs=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_factorization_always_reconstructs(self, blocks, procs, seed):
        run = LuApplication(order=16 * blocks, block=16, num_procs=procs, seed=seed).run()
        assert run.verified


class TestRadixProperty:
    @given(
        keys_exp=st.integers(min_value=9, max_value=12),  # 512..4096 keys
        digit_bits=st.sampled_from([4, 8, 16]),
        procs=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_sorted(self, keys_exp, digit_bits, procs, seed):
        run = RadixApplication(
            num_keys=2**keys_exp, digit_bits=digit_bits, num_procs=procs, seed=seed
        ).run()
        assert run.verified


class TestEdgeProperty:
    @given(
        size=st.sampled_from([16, 32]),
        iterations=st.integers(min_value=1, max_value=5),
        threshold=st.floats(min_value=1.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_matches_reference(self, size, iterations, threshold, seed):
        run = EdgeApplication(
            height=size, width=size, iterations=iterations,
            threshold=threshold, num_procs=2, seed=seed,
        ).run()
        assert run.verified


class TestCgProperty:
    @given(
        grid=st.sampled_from([12, 16, 24]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_residual_always_drops(self, grid, seed):
        run = CgApplication(grid=grid, iterations=15, num_procs=2, seed=seed).run()
        assert run.verified
        assert run.extras["relative_residual"] < 1.0


class TestTraceStability:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_gamma_stable_across_seeds(self, seed):
        """gamma is an algorithmic property: it must not drift with the
        random input data."""
        run = RadixApplication(num_keys=2048, num_procs=2, seed=seed).run()
        assert run.gamma == pytest.approx(1.0 / 3.0, abs=0.02)
