"""Smoke tests: every example script must run to completion.

Examples are the library's contract with new users; a broken one is a
release bug.  Each script runs in-process with stdout captured and its
headline output asserted.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def _run_example(path: str, capsys, argv: list[str] | None = None) -> str:
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example(f"{EXAMPLES}/quickstart.py", capsys)
        assert "best platform for FFT" in out
        assert "E(Instr)" in out

    def test_workload_characterization(self, capsys):
        out = _run_example(f"{EXAMPLES}/workload_characterization.py", capsys)
        assert "verified=True" in out
        assert "alpha=" in out
        assert "traffic profile" in out

    def test_design_a_cluster(self, capsys):
        out = _run_example(f"{EXAMPLES}/design_a_cluster.py", capsys, argv=["6000"])
        assert "optimal platform" in out
        assert "Section 6 rule" in out

    def test_upgrade_cluster(self, capsys):
        out = _run_example(f"{EXAMPLES}/upgrade_cluster.py", capsys)
        assert "upgrading for FFT" in out
        assert "slowdown" in out

    def test_workload_mix(self, capsys):
        out = _run_example(f"{EXAMPLES}/workload_mix.py", capsys)
        assert "science-mix" in out
        assert "shared L2" in out

    def test_scalability_study(self, capsys):
        out = _run_example(f"{EXAMPLES}/scalability_study.py", capsys)
        assert "speedup" in out
        assert "most sensitive" in out

    def test_model_vs_simulation(self, capsys):
        out = _run_example(f"{EXAMPLES}/model_vs_simulation.py", capsys)
        assert "simulated E(Instr)" in out
        assert "model decomposition" in out
