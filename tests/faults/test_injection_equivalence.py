"""Fault injection preserves the engine's two-lane bit-identity.

The fastpath contract extends to faulted runs: under any
:class:`FaultPlan` -- every event kind alone, mixed seeded plans, any
horizon -- the vectorized lane must return the same
:class:`SimulationResult` as the scalar lane, float-``==``, and the
same per-window timeline.  A batch is cut at the next pending trigger,
so both lanes reach every trigger with identical clocks; these tests
are the property suite enforcing that.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    FaultPlan,
    NetworkSpike,
    NodeSlowdown,
    NodeStall,
    OneOffDelay,
)
from repro.sim.engine import SimulationEngine

from tests.sim.test_fastpath_equivalence import (
    SPECS,
    _assert_identical,
    _random_run,
)

_SPEC_IDS = [s.name for s in SPECS]

#: One plan per event kind, plus a slowdown that spans most of the run
#: (forcing long no-batch stretches) and an early-heavy mixture.
KIND_PLANS = {
    "delay": FaultPlan((OneOffDelay(proc=0, at=500.0, cycles=250.0),)),
    "stall": FaultPlan((NodeStall(proc=1, at=800.0, cycles=400.0),)),
    "slow": FaultPlan((NodeSlowdown(proc=0, start=200.0, end=5000.0, factor=2.5),)),
    "netspike": FaultPlan((NetworkSpike(start=0.0, end=100_000.0, extra_cycles=25.0),)),
    "mixed": FaultPlan(
        (
            OneOffDelay(proc=0, at=100.0, cycles=75.0),
            OneOffDelay(proc=1, at=100.0, cycles=50.0),
            NodeStall(proc=0, at=1500.0, cycles=600.0),
            NodeSlowdown(proc=1, start=50.0, end=900.0, factor=3.0),
            NetworkSpike(start=0.0, end=2000.0, extra_cycles=10.0),
        )
    ),
}


def _both_lanes(spec, run, plan, horizon=200.0, sample_every=None):
    scalar = SimulationEngine(
        spec, run, horizon=horizon, fastpath=False,
        fault_plan=plan, sample_every=sample_every,
    ).execute()
    batched = SimulationEngine(
        spec, run, horizon=horizon, fastpath=True,
        fault_plan=plan, sample_every=sample_every,
    ).execute()
    return scalar, batched


class TestLaneIdentity:
    @pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
    @pytest.mark.parametrize("kind", sorted(KIND_PLANS))
    def test_every_event_kind_bit_identical(self, spec, kind):
        run = _random_run(spec.total_processors, seed=11)
        scalar, batched = _both_lanes(spec, run, KIND_PLANS[kind])
        _assert_identical(scalar, batched)
        assert batched.fault_cycles == scalar.fault_cycles
        assert batched.fault_events == scalar.fault_events

    @pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("horizon", [0.0, 200.0])
    def test_generated_plans_bit_identical(self, spec, seed, horizon):
        run = _random_run(spec.total_processors, seed=seed)
        clean = SimulationEngine(spec, run, fastpath=False).execute()
        plan = FaultPlan.generate(
            seed=seed,
            num_procs=spec.total_processors,
            span=clean.total_cycles,
            delays=2, stalls=2, slowdowns=2, spikes=2,
        )
        scalar, batched = _both_lanes(spec, run, plan, horizon=horizon)
        _assert_identical(scalar, batched)
        assert batched.fault_cycles == scalar.fault_cycles
        assert batched.fault_events == scalar.fault_events

    @pytest.mark.parametrize("spec", SPECS, ids=_SPEC_IDS)
    @pytest.mark.parametrize("kind", sorted(KIND_PLANS))
    def test_timelines_identical_and_sum_to_fault_cycles(self, spec, kind):
        run = _random_run(spec.total_processors, seed=7)
        scalar, batched = _both_lanes(
            spec, run, KIND_PLANS[kind], sample_every=1000.0
        )
        _assert_identical(scalar, batched)
        assert batched.timeline.to_obj() == scalar.timeline.to_obj()
        totals = scalar.timeline.totals()
        assert totals.get("fault_stall_cycles", 0.0) == scalar.fault_cycles


class TestFaultSemantics:
    def test_no_plan_means_no_fault_accounting(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=0)
        result = SimulationEngine(spec, run).execute()
        assert result.fault_cycles == 0.0 and result.fault_events == 0

    def test_empty_plan_equals_no_plan(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=0)
        clean = SimulationEngine(spec, run).execute()
        empty = SimulationEngine(spec, run, fault_plan=FaultPlan()).execute()
        _assert_identical(clean, empty)

    def test_delay_slows_the_run_and_charges_exactly(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=1)
        clean = SimulationEngine(spec, run).execute()
        plan = FaultPlan((OneOffDelay(proc=0, at=100.0, cycles=10_000.0),))
        faulted = SimulationEngine(spec, run, fault_plan=plan).execute()
        assert faulted.fault_events == 1
        assert faulted.fault_cycles == 10_000.0
        assert faulted.total_cycles > clean.total_cycles

    def test_stall_is_absorptive_never_charges_past_resume(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=1)
        plan = FaultPlan((NodeStall(proc=0, at=100.0, cycles=5_000.0),))
        faulted = SimulationEngine(spec, run, fault_plan=plan).execute()
        assert faulted.fault_events == 1
        # The charge is at most the stall length (slack absorbs the rest)
        # and the victim cannot resume before the stall's resume time.
        assert 0.0 <= faulted.fault_cycles <= 5_000.0

    def test_slowdown_stretches_compute(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=2)
        clean = SimulationEngine(spec, run).execute()
        plan = FaultPlan(
            tuple(
                NodeSlowdown(proc=p, start=0.0, end=clean.total_cycles * 2, factor=4.0)
                for p in range(spec.total_processors)
            )
        )
        slowed = SimulationEngine(spec, run, fault_plan=plan).execute()
        assert slowed.total_cycles > clean.total_cycles
        # Slowdowns reshape time, they do not charge stall cycles.
        assert slowed.fault_cycles == 0.0

    def test_netspike_is_inert_on_smp(self):
        spec = SPECS[0]  # n=4, N=1: no cluster network
        run = _random_run(spec.total_processors, seed=3)
        clean = SimulationEngine(spec, run).execute()
        plan = FaultPlan((NetworkSpike(start=0.0, end=1e9, extra_cycles=1e4),))
        spiked = SimulationEngine(spec, run, fault_plan=plan).execute()
        _assert_identical(clean, spiked)

    def test_netspike_slows_the_cluster(self):
        spec = SPECS[2]  # eq-cow-bus
        run = _random_run(spec.total_processors, seed=3)
        clean = SimulationEngine(spec, run).execute()
        plan = FaultPlan((NetworkSpike(start=0.0, end=1e9, extra_cycles=1000.0),))
        spiked = SimulationEngine(spec, run, fault_plan=plan).execute()
        assert spiked.total_cycles > clean.total_cycles

    def test_mismatched_proc_raises_at_construction(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=0)
        plan = FaultPlan((OneOffDelay(proc=99, at=1.0, cycles=1.0),))
        with pytest.raises(ValueError):
            SimulationEngine(spec, run, fault_plan=plan)

    def test_describe_reports_faults(self):
        spec = SPECS[0]
        run = _random_run(spec.total_processors, seed=0)
        plan = FaultPlan((OneOffDelay(proc=0, at=100.0, cycles=500.0),))
        text = SimulationEngine(spec, run, fault_plan=plan).execute().describe()
        assert "faults 1" in text

    def test_same_plan_is_deterministic_across_engines(self):
        spec = SPECS[4]  # eq-clump
        run = _random_run(spec.total_processors, seed=5)
        plan = FaultPlan.generate(seed=5, num_procs=spec.total_processors, span=50_000.0)
        a = SimulationEngine(spec, run, fault_plan=plan).execute()
        b = SimulationEngine(spec, run, fault_plan=plan).execute()
        _assert_identical(a, b)
        assert a.fault_cycles == b.fault_cycles
