"""FaultPlan construction, validation, parsing and generation."""

from __future__ import annotations

import pickle

import pytest

from repro.faults.inject import F_DELAY, F_NORMAL, F_SLOW, F_STALL, compile_triggers
from repro.faults.plan import (
    FaultPlan,
    NetworkSpike,
    NodeSlowdown,
    NodeStall,
    OneOffDelay,
    parse_inject_spec,
    plan_from_specs,
)


class TestEventValidation:
    def test_delay_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError):
            OneOffDelay(proc=0, at=10.0, cycles=0.0)
        with pytest.raises(ValueError):
            OneOffDelay(proc=0, at=10.0, cycles=-5.0)

    def test_delay_rejects_negative_proc_and_time(self):
        with pytest.raises(ValueError):
            OneOffDelay(proc=-1, at=10.0, cycles=1.0)
        with pytest.raises(ValueError):
            OneOffDelay(proc=0, at=-1.0, cycles=1.0)

    def test_stall_resume_at(self):
        assert NodeStall(proc=1, at=100.0, cycles=50.0).resume_at == 150.0

    def test_slowdown_rejects_bad_window(self):
        with pytest.raises(ValueError):
            NodeSlowdown(proc=0, start=10.0, end=10.0, factor=2.0)
        with pytest.raises(ValueError):
            NodeSlowdown(proc=0, start=10.0, end=5.0, factor=2.0)
        with pytest.raises(ValueError):
            NodeSlowdown(proc=0, start=0.0, end=10.0, factor=0.0)

    def test_netspike_rejects_bad_window(self):
        with pytest.raises(ValueError):
            NetworkSpike(start=5.0, end=5.0, extra_cycles=10.0)
        with pytest.raises(ValueError):
            NetworkSpike(start=0.0, end=5.0, extra_cycles=-1.0)


class TestPlan:
    def test_bool_and_counts(self):
        assert not FaultPlan()
        plan = FaultPlan(
            (
                OneOffDelay(proc=0, at=1.0, cycles=1.0),
                NodeStall(proc=0, at=2.0, cycles=1.0),
                NetworkSpike(start=0.0, end=1.0, extra_cycles=1.0),
            )
        )
        assert plan
        assert plan.counts() == {"delay": 1, "stall": 1, "netspike": 1}

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan(("not an event",))

    def test_rejects_overlapping_slowdowns_same_proc(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                (
                    NodeSlowdown(proc=0, start=0.0, end=10.0, factor=2.0),
                    NodeSlowdown(proc=0, start=5.0, end=15.0, factor=3.0),
                )
            )

    def test_allows_overlapping_slowdowns_on_different_procs(self):
        FaultPlan(
            (
                NodeSlowdown(proc=0, start=0.0, end=10.0, factor=2.0),
                NodeSlowdown(proc=1, start=5.0, end=15.0, factor=3.0),
            )
        )

    def test_validate_for_rejects_out_of_range_proc(self):
        plan = FaultPlan((OneOffDelay(proc=4, at=1.0, cycles=1.0),))
        with pytest.raises(ValueError, match="proc 4"):
            plan.validate_for(4)
        plan.validate_for(5)

    def test_cache_key_is_order_independent(self):
        a = OneOffDelay(proc=0, at=1.0, cycles=1.0)
        b = NodeStall(proc=1, at=2.0, cycles=3.0)
        assert FaultPlan((a, b)).cache_key() == FaultPlan((b, a)).cache_key()
        assert FaultPlan((a,)).cache_key() != FaultPlan((b,)).cache_key()

    def test_plan_is_picklable(self):
        plan = FaultPlan.generate(seed=1, num_procs=4, span=1000.0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_network_extra_sums_overlaps(self):
        plan = FaultPlan(
            (
                NetworkSpike(start=0.0, end=10.0, extra_cycles=5.0),
                NetworkSpike(start=5.0, end=15.0, extra_cycles=7.0),
            )
        )
        extra = plan.network_extra
        assert extra(2.0) == 5.0
        assert extra(7.0) == 12.0
        assert extra(12.0) == 7.0
        assert extra(20.0) == 0.0

    def test_network_extra_none_without_spikes(self):
        assert FaultPlan((OneOffDelay(proc=0, at=1.0, cycles=1.0),)).network_extra is None

    def test_describe_mentions_every_kind(self):
        text = FaultPlan.generate(seed=3, num_procs=2, span=1000.0).describe()
        for word in ("delay", "stall", "slow", "netspike"):
            assert word in text


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(seed=9, num_procs=4, span=50_000.0)
        b = FaultPlan.generate(seed=9, num_procs=4, span=50_000.0)
        assert a == b and a.cache_key() == b.cache_key()

    def test_different_seed_different_plan(self):
        a = FaultPlan.generate(seed=1, num_procs=4, span=50_000.0)
        b = FaultPlan.generate(seed=2, num_procs=4, span=50_000.0)
        assert a != b

    def test_counts_match_request(self):
        plan = FaultPlan.generate(
            seed=0, num_procs=4, span=1000.0, delays=3, stalls=2, slowdowns=2, spikes=1
        )
        assert plan.counts() == {"delay": 3, "stall": 2, "slow": 2, "netspike": 1}

    def test_magnitudes_are_quarter_cycle_quantized(self):
        plan = FaultPlan.generate(seed=5, num_procs=2, span=12345.0)
        for ev in plan.events:
            for field in ("at", "cycles", "start", "end", "factor", "extra_cycles"):
                v = getattr(ev, field, None)
                if v is not None:
                    assert (4.0 * v) == int(4.0 * v)

    def test_generate_validates_inputs(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(seed=0, num_procs=0, span=100.0)
        with pytest.raises(ValueError):
            FaultPlan.generate(seed=0, num_procs=2, span=0.0)


class TestCompile:
    def test_spike_only_plan_compiles_to_none(self):
        plan = FaultPlan((NetworkSpike(start=0.0, end=1.0, extra_cycles=1.0),))
        assert compile_triggers(plan, 2) is None
        assert compile_triggers(FaultPlan(), 2) is None

    def test_slowdown_compiles_to_paired_triggers(self):
        plan = FaultPlan((NodeSlowdown(proc=1, start=10.0, end=20.0, factor=2.0),))
        trigs = compile_triggers(plan, 2)
        assert trigs[0] == []
        assert trigs[1] == [(10.0, F_SLOW, 2.0), (20.0, F_NORMAL, 1.0)]

    def test_triggers_sorted_and_stall_holds_resume_time(self):
        plan = FaultPlan(
            (
                NodeStall(proc=0, at=30.0, cycles=5.0),
                OneOffDelay(proc=0, at=10.0, cycles=2.0),
            )
        )
        trigs = compile_triggers(plan, 1)
        assert trigs[0] == [(10.0, F_DELAY, 2.0), (30.0, F_STALL, 35.0)]

    def test_compile_rejects_bad_proc(self):
        plan = FaultPlan((OneOffDelay(proc=3, at=1.0, cycles=1.0),))
        with pytest.raises(ValueError):
            compile_triggers(plan, 2)


class TestParseInjectSpec:
    def test_each_kind_round_trips(self):
        assert parse_inject_spec("delay:proc=0,at=100,cycles=50") == OneOffDelay(
            proc=0, at=100.0, cycles=50.0
        )
        assert parse_inject_spec("stall:proc=2,at=1e3,cycles=5e2") == NodeStall(
            proc=2, at=1000.0, cycles=500.0
        )
        assert parse_inject_spec("slow:proc=1,start=0,end=10,factor=2.5") == NodeSlowdown(
            proc=1, start=0.0, end=10.0, factor=2.5
        )
        assert parse_inject_spec("netspike:start=0,end=10,extra=7") == NetworkSpike(
            start=0.0, end=10.0, extra_cycles=7.0
        )

    def test_extra_alias_and_full_name_agree(self):
        assert parse_inject_spec("netspike:start=0,end=1,extra=2") == parse_inject_spec(
            "netspike:start=0,end=1,extra_cycles=2"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "unknown:proc=0",
            "delay",
            "delay:",
            "delay:proc=0",  # missing fields
            "delay:proc=0,at=1,cycles=1,bogus=2",
            "delay:proc=x,at=1,cycles=1",
            "slow:proc=0,start=5,end=1,factor=2",  # event-level validation
        ],
    )
    def test_malformed_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            parse_inject_spec(bad)

    def test_plan_from_specs(self):
        plan = plan_from_specs(
            ["delay:proc=0,at=1,cycles=1", "netspike:start=0,end=9,extra=1"]
        )
        assert plan.counts() == {"delay": 1, "netspike": 1}
