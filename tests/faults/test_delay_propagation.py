"""The delay-propagation experiment: shape, determinism, physics."""

from __future__ import annotations

import pytest

from repro.experiments.faults import run_delay_propagation


@pytest.fixture(scope="module")
def result(small_app_kwargs, smp4_spec):
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(app_kwargs=small_app_kwargs, jobs=1, cache_dir=None)
    return run_delay_propagation(
        runner, name="FFT", spec=smp4_spec, fractions=(0.05, 0.2, 0.5)
    )


class TestDelayPropagation:
    def test_one_point_per_fraction(self, result):
        assert len(result.points) == 3
        assert result.baseline_cycles > 0

    def test_injected_delay_is_charged_exactly(self, result):
        for p in result.points:
            assert p.fault_cycles == p.delay_cycles

    def test_large_delays_propagate(self, result):
        # A delay comparable to the whole run dwarfs any barrier slack:
        # most of it must reach the finish line, and it cannot propagate
        # more than itself (plus scheduling noise well under its size).
        big = result.points[-1]
        assert big.propagation_ratio > 0.3
        assert big.propagated_cycles < 2 * big.delay_cycles

    def test_propagation_grows_with_delay_size(self, result):
        slips = [p.propagated_cycles for p in result.points]
        assert slips[-1] > slips[0]

    def test_describe_is_renderable(self, result):
        text = result.describe()
        assert "delay propagation" in text
        assert "FFT" in text

    def test_victim_bounds_checked(self, small_app_kwargs, smp4_spec):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(app_kwargs=small_app_kwargs, jobs=1, cache_dir=None)
        with pytest.raises(ValueError):
            run_delay_propagation(runner, name="FFT", spec=smp4_spec, victim=99)
