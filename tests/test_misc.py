"""Odds and ends: lazy exports, version metadata, small error paths."""

import pytest


class TestLazyExports:
    def test_sim_lazy_attributes(self):
        import repro.sim as sim

        assert sim.SimulationEngine is not None
        assert sim.make_backend is not None
        with pytest.raises(AttributeError, match="repro.sim"):
            sim.does_not_exist

    def test_trace_lazy_attributes(self):
        import repro.trace as trace

        assert trace.analyze_trace is not None
        assert trace.profile_run is not None
        with pytest.raises(AttributeError, match="repro.trace"):
            trace.does_not_exist


class TestMetadata:
    def test_version_matches_pyproject(self):
        import tomllib

        import repro

        with open("pyproject.toml", "rb") as f:
            meta = tomllib.load(f)
        assert repro.__version__ == meta["project"]["version"]

    def test_main_module_importable(self):
        import importlib

        mod = importlib.import_module("repro.__main__")
        assert hasattr(mod, "main")


class TestDirectMappedCache:
    def test_one_way_evicts_on_any_set_conflict(self):
        from repro.sim.cache import SetAssociativeCache

        c = SetAssociativeCache(capacity_items=4, ways=1)
        c.fill(0)
        assert c.fill(4) == (0, False)  # same set (4 sets), conflict
        assert not c.contains(0) and c.contains(4)

    def test_one_way_distinct_sets_coexist(self):
        from repro.sim.cache import SetAssociativeCache

        c = SetAssociativeCache(capacity_items=4, ways=1)
        for line in (0, 1, 2, 3):
            c.fill(line)
        assert c.resident_lines == 4


class TestDocsPresence:
    @pytest.mark.parametrize(
        "path",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/MODEL.md", "docs/SIMULATOR.md"],
    )
    def test_documentation_files_exist_and_are_substantial(self, path):
        from pathlib import Path

        p = Path(path)
        assert p.exists(), f"{path} missing"
        assert len(p.read_text()) > 2000, f"{path} unexpectedly small"

    def test_design_lists_every_figure_bench(self):
        from pathlib import Path

        design = Path("DESIGN.md").read_text()
        for bench in (
            "bench_table1", "bench_table2", "bench_table3", "bench_table4",
            "bench_table5", "bench_figure2", "bench_figure3", "bench_figure4",
            "bench_case_studies", "bench_sensitivity", "bench_ablations",
            "bench_beta_scaling", "bench_coherence", "bench_model_speed",
        ):
            assert bench in design, f"DESIGN.md does not map {bench}"

    def test_benches_exist_for_every_design_mapping(self):
        from pathlib import Path

        benches = {p.stem for p in Path("benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1", "bench_table2", "bench_table3", "bench_table4",
            "bench_table5", "bench_figure2", "bench_figure3", "bench_figure4",
            "bench_case_studies", "bench_recommendations", "bench_model_speed",
            "bench_sensitivity", "bench_ablations", "bench_beta_scaling",
            "bench_coherence",
        ):
            assert required in benches, f"missing {required}"
