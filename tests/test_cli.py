"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design", "--workload", "FFT"])


class TestDesign:
    def test_named_workload(self, capsys):
        assert main(["design", "--workload", "Radix", "--budget", "20000", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimal platform for Radix" in out
        assert "Section 6 rule" in out

    def test_custom_triple(self, capsys):
        rc = main(
            ["design", "--alpha", "1.5", "--beta", "50", "--gamma", "0.3",
             "--budget", "8000", "--top", "1"]
        )
        assert rc == 0
        assert "custom" in capsys.readouterr().out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["design", "--workload", "nope", "--budget", "5000"])

    def test_missing_workload_spec(self):
        with pytest.raises(SystemExit, match="provide --workload"):
            main(["design", "--budget", "5000"])


class TestPredict:
    def test_cluster(self, capsys):
        assert main(
            ["predict", "--workload", "FFT", "--machines", "4", "--network", "atm"]
        ) == 0
        out = capsys.readouterr().out
        assert "E(Instr)" in out and "cycles/reference" in out

    def test_single_smp(self, capsys):
        assert main(
            ["predict", "--workload", "EDGE", "--machines", "1",
             "--procs-per-machine", "4"]
        ) == 0
        assert "a single SMP" in capsys.readouterr().out


class TestUpgrade:
    def test_upgrade(self, capsys):
        rc = main(
            ["upgrade", "--workload", "EDGE", "--budget-increase", "2000",
             "--machines", "4", "--network", "ethernet100", "--memory-mb", "32"]
        )
        assert rc == 0
        assert "upgrade for EDGE" in capsys.readouterr().out


class TestRecommend:
    def test_recommend(self, capsys):
        assert main(["recommend", "--workload", "TPC-C"]) == 0
        assert "SMP" in capsys.readouterr().out


class TestCharacterize:
    def test_characterize_small_app(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.apps.registry import make_application
        from tests.conftest import SMALL_APP_KWARGS

        # shrink the app so the CLI test stays fast
        import repro.apps.registry as registry

        orig = registry.make_application

        def small(name, num_procs=1, seed=0, **kw):
            kw = {**SMALL_APP_KWARGS[name], **kw}
            return orig(name, num_procs=num_procs, seed=seed, **kw)

        monkeypatch.setattr("repro.apps.registry.make_application", small)
        assert main(["characterize", "--app", "EDGE", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "alpha=" in out and "sharing" in out


class TestPredictModes:
    @pytest.mark.parametrize("mode", ["open", "throttled", "mva"])
    def test_all_contention_modes(self, capsys, mode):
        rc = main(
            ["predict", "--workload", "EDGE", "--machines", "1",
             "--procs-per-machine", "2", "--mode", mode]
        )
        assert rc == 0
        assert "E(Instr)" in capsys.readouterr().out


class TestL2Flag:
    def test_predict_with_l2(self, capsys):
        rc = main(
            ["predict", "--workload", "Radix", "--machines", "1",
             "--procs-per-machine", "4", "--l2-kb", "2048"]
        )
        assert rc == 0
        assert "shared L2 cache" in capsys.readouterr().out

    def test_l2_reduces_predicted_time(self, capsys):
        main(["predict", "--workload", "Radix", "--machines", "1",
              "--procs-per-machine", "4"])
        base = capsys.readouterr().out
        main(["predict", "--workload", "Radix", "--machines", "1",
              "--procs-per-machine", "4", "--l2-kb", "2048"])
        with_l2 = capsys.readouterr().out

        def t(text):
            return float(text.split("E(Instr) = ")[1].split(" ")[0])

        assert t(with_l2) < t(base)


class TestSchedule:
    def test_builtin_mixed_tree(self, capsys):
        assert main(
            ["schedule", "--workload", "LU", "--platform", "mixed-cow"]
        ) == 0
        out = capsys.readouterr().out
        assert "memory-aware" in out and "round-robin" in out
        assert "speedup over round-robin" in out

    def test_policy_subset(self, capsys):
        assert main(
            ["schedule", "--workload", "LU", "--platform", "mixed-cow",
             "--policy", "speed"]
        ) == 0
        out = capsys.readouterr().out
        assert "speed" in out and "memory-aware" not in out

    def test_json_output(self, capsys):
        import json

        assert main(
            ["schedule", "--workload", "LU", "--platform", "mixed-cow",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "memory-aware" in payload

    def test_platform_file(self, capsys, tmp_path):
        import json

        from repro.scheduling import builtin_hetero_platform

        path = tmp_path / "mixed.json"
        path.write_text(json.dumps(builtin_hetero_platform("mixed-cow").to_dict()))
        assert main(
            ["schedule", "--workload", "LU", "--platform", str(path)]
        ) == 0
        assert "heterogeneous" in capsys.readouterr().out

    def test_unknown_platform_lists_builtins(self, capsys):
        # argparse surfaces ArgumentTypeError on stderr and exits 2.
        with pytest.raises(SystemExit):
            main(["schedule", "--workload", "LU", "--platform", "mixed-tower"])
        assert "mixed-clump" in capsys.readouterr().err


class TestPredictPolicy:
    def test_policy_on_homogeneous_cluster(self, capsys):
        assert main(
            ["predict", "--workload", "FFT", "--machines", "4",
             "--network", "atm", "--policy", "memory-aware",
             "--mode", "open"]
        ) == 0
        assert "E(Instr)" in capsys.readouterr().out

    def test_policy_requires_open_mode(self):
        with pytest.raises(SystemExit, match="open"):
            main(
                ["predict", "--workload", "FFT", "--machines", "4",
                 "--network", "atm", "--policy", "speed",
                 "--mode", "throttled"]
            )


class TestDesignMix:
    def test_mix_enumerates_machine_mixes(self, capsys):
        assert main(
            ["design", "--workload", "LU", "--budget", "12000",
             "--mix", "--top", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "mix" in out and "$" in out
