"""Documentation stays linked and truthful.

A docs tree rots in two ways: a document names a file that moved or
never landed (stale cross-link), or code renames something a document
still teaches (stale content).  These tests pin both: every ``*.md``
path mentioned anywhere in the docs must exist, the README must index
every subsystem document, and the metric/constant names the new
COST/ARCHITECTURE pages teach must still exist in the source.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: Every hand-written documentation page (docs/report.md is generated
#: output of the reporting pipeline, not part of the index).
DOC_PAGES = [
    "docs/ARCHITECTURE.md",
    "docs/COST.md",
    "docs/MODEL.md",
    "docs/OBSERVABILITY.md",
    "docs/RESILIENCE.md",
    "docs/SCHEDULING.md",
    "docs/SERVICE.md",
    "docs/SIMULATOR.md",
    "docs/TRACES.md",
]

_MD_LINK = re.compile(r"(?:docs/)?[A-Z][A-Z_]+\.md")


def _md_references(path: Path) -> set[str]:
    """Every README/docs-style markdown path a document mentions."""
    return set(_MD_LINK.findall(path.read_text(encoding="utf-8")))


class TestCrossLinks:
    @pytest.mark.parametrize("page", ["README.md", "DESIGN.md", *DOC_PAGES])
    def test_every_mentioned_document_exists(self, page):
        path = ROOT / page
        for ref in sorted(_md_references(path)):
            target = ROOT / ref
            # Top-level names may be referenced without their docs/ prefix
            # from within docs/ pages (e.g. DESIGN.md).
            if not target.exists() and not ref.startswith("docs/"):
                target = ROOT / "docs" / ref
            assert target.exists(), f"{page} references missing {ref}"

    def test_readme_indexes_every_subsystem_doc(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for page in DOC_PAGES:
            assert page in readme, f"README.md does not link {page}"

    def test_new_pages_link_back_into_the_docs_graph(self):
        # COST.md and ARCHITECTURE.md must be connected, not islands.
        cost_refs = _md_references(ROOT / "docs" / "COST.md")
        assert "docs/MODEL.md" in cost_refs
        assert "docs/RESILIENCE.md" in cost_refs
        arch_refs = _md_references(ROOT / "docs" / "ARCHITECTURE.md")
        assert {"docs/MODEL.md", "docs/SIMULATOR.md", "docs/COST.md",
                "docs/OBSERVABILITY.md", "docs/RESILIENCE.md"} <= arch_refs

    def test_service_doc_is_connected_both_ways(self):
        service_refs = _md_references(ROOT / "docs" / "SERVICE.md")
        assert {"docs/COST.md", "docs/SIMULATOR.md",
                "docs/OBSERVABILITY.md", "docs/RESILIENCE.md"} <= service_refs
        resilience_refs = _md_references(ROOT / "docs" / "RESILIENCE.md")
        assert "docs/SERVICE.md" in resilience_refs


class TestDocsMatchCode:
    def test_cost_doc_metric_names_exist_in_source(self):
        doc = (ROOT / "docs" / "COST.md").read_text(encoding="utf-8")
        search_src = (ROOT / "src/repro/cost/search.py").read_text(encoding="utf-8")
        for metric in (
            "design_candidates_total",
            "design_evaluations_total",
            "design_pruned_total",
            "design_memo_hits_total",
            "repro_cache_lookups_total",
            "repro_cache_corrupt_total",
            "repro_query_retries_total",
            "repro_pool_degradations_total",
        ):
            assert metric in doc, f"COST.md no longer documents {metric}"
            assert metric in search_src, f"search.py no longer registers {metric}"

    def test_architecture_doc_names_real_packages(self):
        doc = (ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for package in ("core", "sim", "apps", "trace", "cost",
                        "experiments", "obs", "faults", "workloads",
                        "topology"):
            assert (ROOT / "src/repro" / package / "__init__.py").exists()
            assert f"{package}/" in doc, f"ARCHITECTURE.md misses {package}/"

    def test_cache_version_constants_match_doc_claims(self):
        from repro.cost.search import DESIGN_CACHE_VERSION
        from repro.experiments.runner import SIM_CACHE_VERSION

        doc = (ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "DESIGN_CACHE_VERSION" in doc and "SIM_CACHE_VERSION" in doc
        # The version table's "current" column tracks the constants.
        assert f"`SIM_CACHE_VERSION` | `experiments/runner.py` | {SIM_CACHE_VERSION} |" in doc
        assert f"`DESIGN_CACHE_VERSION` | `cost/search.py` | {DESIGN_CACHE_VERSION} |" in doc

    def test_observability_doc_covers_every_profile_cause(self):
        from repro.obs.ledger import BENCH_FLOORS, SCHEMA as LEDGER_SCHEMA
        from repro.obs.profile import CAUSES, SCHEMA as PROFILE_SCHEMA

        doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
        for cause in CAUSES:
            assert f"`{cause}`" in doc, (
                f"OBSERVABILITY.md's cause taxonomy misses {cause!r}"
            )
        assert PROFILE_SCHEMA in doc and LEDGER_SCHEMA in doc
        assert "BENCH_FLOORS" in doc
        assert "obs_overhead_pct" in BENCH_FLOORS

    def test_service_doc_pins_endpoints_and_metrics(self):
        doc = (ROOT / "docs" / "SERVICE.md").read_text(encoding="utf-8")
        server_src = (ROOT / "src/repro/service/server.py").read_text(
            encoding="utf-8"
        )
        for route in ("/v1/predict", "/v1/design", "/v1/simulate",
                      "/metrics", "/healthz"):
            assert route in doc, f"SERVICE.md no longer documents {route}"
            assert route in server_src, f"server.py no longer serves {route}"
        for metric in ("service_requests_total", "service_shed_total",
                       "service_latency_seconds", "service_queue_depth",
                       "service_batch_size", "service_retries_total",
                       "service_breaker_state"):
            assert metric in doc, f"SERVICE.md no longer documents {metric}"
            assert metric in server_src, (
                f"server.py no longer registers {metric}"
            )

    def test_service_doc_shed_reasons_match_code(self):
        from repro.service.server import SHED_STATUS

        doc = (ROOT / "docs" / "SERVICE.md").read_text(encoding="utf-8")
        for reason in SHED_STATUS:
            assert f"`{reason}`" in doc, (
                f"SERVICE.md's shed taxonomy misses {reason!r}"
            )

    def test_scheduling_doc_is_connected_both_ways(self):
        refs = _md_references(ROOT / "docs" / "SCHEDULING.md")
        assert {"docs/ARCHITECTURE.md", "docs/MODEL.md", "docs/COST.md",
                "docs/SIMULATOR.md", "docs/TRACES.md",
                "EXPERIMENTS.md"} <= refs
        arch_refs = _md_references(ROOT / "docs" / "ARCHITECTURE.md")
        assert "docs/SCHEDULING.md" in arch_refs
        cost_refs = _md_references(ROOT / "docs" / "COST.md")
        assert "docs/SCHEDULING.md" in cost_refs

    def test_scheduling_doc_policy_names_match_code(self):
        from repro.cli import _POLICY_CHOICES
        from repro.scheduling import POLICIES

        doc = (ROOT / "docs" / "SCHEDULING.md").read_text(encoding="utf-8")
        assert set(_POLICY_CHOICES) == set(POLICIES)
        for policy in POLICIES:
            assert f"`{policy}`" in doc, (
                f"SCHEDULING.md no longer documents policy {policy!r}"
            )
        # The knobs the doc teaches still exist in the source.
        catalog_src = (ROOT / "src/repro/cost/catalog.py").read_text(
            encoding="utf-8"
        )
        assert "speed_premium_per_unit" in catalog_src
        space_src = (ROOT / "src/repro/cost/configspace.py").read_text(
            encoding="utf-8"
        )
        for field in ("machine_speeds", "mix_max_machines"):
            assert field in space_src, f"configspace.py lost {field}"
            assert field in doc, f"SCHEDULING.md no longer documents {field}"

    def test_traces_doc_is_connected_both_ways(self):
        traces_refs = _md_references(ROOT / "docs" / "TRACES.md")
        assert "docs/OBSERVABILITY.md" in traces_refs
        arch_refs = _md_references(ROOT / "docs" / "ARCHITECTURE.md")
        assert "docs/TRACES.md" in arch_refs
        model_refs = _md_references(ROOT / "docs" / "MODEL.md")
        assert "docs/TRACES.md" in model_refs

    def test_traces_doc_pins_container_schema(self):
        from repro.trace.store import (
            FRAME_MAGIC,
            HEADER_BYTES,
            STORE_FORMAT,
            STORE_VERSION,
        )

        doc = (ROOT / "docs" / "TRACES.md").read_text(encoding="utf-8")
        assert STORE_FORMAT == "repro-trace-store/1"
        assert STORE_VERSION == 1
        assert FRAME_MAGIC == b"RTC1"
        assert STORE_FORMAT in doc
        assert f"HEADER_BYTES = {HEADER_BYTES}" in doc
        assert 'b"RTC1"' in doc
        assert '"<4sBIII"' in doc
        # Every documented header field is actually written by the store.
        store_src = (ROOT / "src/repro/trace/store.py").read_text(
            encoding="utf-8"
        )
        for field in ("format", "version", "address_width", "chunk_records",
                      "compression", "records", "max_address", "barriers",
                      "tail_work"):
            assert f"`{field}`" in doc, f"TRACES.md misses header field {field}"
            assert f'"{field}"' in store_src

    def test_traces_doc_metric_names_exist_in_source(self):
        doc = (ROOT / "docs" / "TRACES.md").read_text(encoding="utf-8")
        ingest_src = (ROOT / "src/repro/trace/ingest.py").read_text(
            encoding="utf-8"
        )
        for metric in (
            "trace_ingest_records_total",
            "trace_ingest_chunks_total",
            "trace_ingest_bytes_total",
            "trace_spill_events_total",
            "trace_ingest_records_per_second",
        ):
            assert metric in doc, f"TRACES.md no longer documents {metric}"
            assert metric in ingest_src, (
                f"ingest.py no longer registers {metric}"
            )

    def test_traces_doc_cli_flags_exist_in_cli(self):
        doc = (ROOT / "docs" / "TRACES.md").read_text(encoding="utf-8")
        cli_src = (ROOT / "src/repro/cli.py").read_text(encoding="utf-8")
        for flag in ("--chunk-records", "--max-live-items", "--fit-every",
                     "--tol", "--patience", "--stop-early", "--workload-dir",
                     "--convergence-out", "--gamma", "--compression",
                     "--binary-dtype"):
            assert flag in doc, f"TRACES.md no longer documents {flag}"
            assert f'"{flag}"' in cli_src, f"cli.py no longer accepts {flag}"

    def test_traces_doc_convergence_fields_match_dataclass(self):
        import dataclasses

        from repro.trace.fit import CONVERGENCE_SCHEMA, ConvergenceStep

        doc = (ROOT / "docs" / "TRACES.md").read_text(encoding="utf-8")
        assert CONVERGENCE_SCHEMA in doc
        for field in dataclasses.fields(ConvergenceStep):
            assert f"`{field.name}`" in doc, (
                f"TRACES.md misses ConvergenceStep field {field.name!r}"
            )

    def test_traces_doc_workload_schema_matches_registry(self):
        from repro.workloads.registry import WORKLOAD_SCHEMA

        assert WORKLOAD_SCHEMA == "repro-workload/1"
        doc = (ROOT / "docs" / "TRACES.md").read_text(encoding="utf-8")
        assert ".workload.json" in doc

    def test_cost_doc_examples_name_real_api(self):
        import repro.cost as cost

        doc = (ROOT / "docs" / "COST.md").read_text(encoding="utf-8")
        for name in ("DesignSearch", "DesignQuery", "pareto_frontier",
                     "upgrade_path", "optimize_cluster", "optimize_upgrade",
                     "assert_priceable"):
            assert hasattr(cost, name)
            if name in ("DesignSearch", "DesignQuery"):
                assert name in doc
