"""Profiling overhead: engine throughput with cycle attribution off vs on.

The exact cycle-attribution profiler (``repro.obs.profile``) promises
to be cheap enough to leave on: per simulated reference it adds a few
float accumulations into a plain dict, and the vectorized fast path
folds whole access batches into one accumulation.  This benchmark
holds that promise to a number.  For the FFT workload on the paper's
three platform families it measures references simulated per second
with ``profile=False`` and ``profile=True``, in both the scalar lane
and the vectorized fast path, and gates the worst-cell overhead at
``--max-overhead-pct`` (default imported from
:data:`repro.obs.ledger.BENCH_FLOORS`, the same ceiling the ledger
stamps into every run record).

Every profiled cell is also checked for the profiler's hard invariant
-- attributed cycles sum bit-exactly to ``P * total_cycles`` -- and
for result identity against the unprofiled run, so the benchmark
doubles as an end-to-end smoke test: a profiler that got fast by
getting wrong fails here, not in a report.

Results land in ``BENCH_obs.json`` (or ``--output``).

Run::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

from bench_engine_throughput import KB, MB, _identical, _specs, provenance
from repro.apps.registry import make_application
from repro.obs.ledger import BENCH_FLOORS
from repro.sim.engine import SimulationEngine

#: Acceptance ceiling: profiling may cost at most this percentage of
#: throughput on the *worst* cell.  Shared with the run ledger so every
#: recorded run carries the regime it was gated under.
MAX_OVERHEAD_PCT = BENCH_FLOORS["obs_overhead_pct"]


def _time_once(spec, run, horizon: float, fastpath: bool, profile: bool):
    engine = SimulationEngine(
        spec, run, horizon=horizon, fastpath=fastpath, profile=profile
    )
    t0 = time.perf_counter()
    result = engine.execute()
    return result, time.perf_counter() - t0


def run_benchmark(quick: bool = False, horizon: float = 200.0) -> dict:
    points = 1024 if quick else 4096
    repeats = 2 if quick else 5
    app = make_application("FFT", num_procs=4, seed=0, points=points)
    run = app.run()
    refs = run.total_references

    cells = []
    for label, spec in _specs(256 * KB, 64 * MB):
        for fastpath in (False, True):
            # Interleave off/on and keep each mode's best time, so slow
            # drift on a shared machine penalizes both modes equally.
            off_t = on_t = float("inf")
            for _ in range(repeats):
                off_res, dt = _time_once(spec, run, horizon, fastpath, False)
                off_t = min(off_t, dt)
                on_res, dt = _time_once(spec, run, horizon, fastpath, True)
                on_t = min(on_t, dt)
            if not _identical(off_res, on_res):
                raise AssertionError(
                    f"profiling changed the simulation on {label} "
                    f"fastpath={fastpath}: {off_res.total_cycles} != "
                    f"{on_res.total_cycles}"
                )
            if on_res.profile is None or not on_res.profile.check_exact():
                raise AssertionError(
                    f"profile inexact on {label} fastpath={fastpath}: "
                    f"{on_res.profile}"
                )
            overhead_pct = (on_t / off_t - 1.0) * 100.0
            cells.append(
                {
                    "platform": label,
                    "fastpath": fastpath,
                    "off_seconds": off_t,
                    "on_seconds": on_t,
                    "off_refs_per_second": refs / off_t,
                    "on_refs_per_second": refs / on_t,
                    "overhead_pct": overhead_pct,
                    "exact": True,
                    "identical": True,
                }
            )

    return {
        "benchmark": "obs_overhead",
        "application": "FFT",
        "points": points,
        "total_references": refs,
        "horizon": horizon,
        "quick": quick,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "provenance": provenance(),
        "cells": cells,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="shrink the workload for a sub-minute smoke run")
    ap.add_argument("--horizon", type=float, default=200.0)
    ap.add_argument("--output", default="BENCH_obs.json")
    ap.add_argument("--max-overhead-pct", type=float, default=MAX_OVERHEAD_PCT,
                    help="fail if the worst cell's profiling overhead "
                         "exceeds this percentage (default: %(default)s)")
    args = ap.parse_args(argv)

    payload = run_benchmark(quick=args.quick, horizon=args.horizon)

    from repro.ioutil import atomic_write_json

    atomic_write_json(args.output, payload)

    worst = max(payload["cells"], key=lambda c: c["overhead_pct"])
    for cell in payload["cells"]:
        lane = "fast" if cell["fastpath"] else "scalar"
        print(
            f"{cell['platform']:>10} {lane:>6}: "
            f"off {cell['off_refs_per_second']:>12,.0f} refs/s, "
            f"on {cell['on_refs_per_second']:>12,.0f} refs/s, "
            f"overhead {cell['overhead_pct']:+6.2f}%"
        )
    print(
        f"worst overhead {worst['overhead_pct']:+.2f}% "
        f"({worst['platform']}, fastpath={worst['fastpath']}); "
        f"ceiling {args.max_overhead_pct:.1f}%"
    )
    if worst["overhead_pct"] > args.max_overhead_pct:
        print(
            f"FAIL: profiling overhead {worst['overhead_pct']:.2f}% exceeds "
            f"the {args.max_overhead_pct:.1f}% ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
