"""Figure 3: modeled vs simulated E(Instr) on clusters of workstations.

The paper reaches < 10% after scaling the remote access rate by 12.4%;
our reproduction self-calibrates the analogous global constants (the
achieved adjustment is printed) and reports the error and ordering
agreement.  Benchmarked: the model sweep over all 20 cells.
"""

from conftest import report

from repro.experiments.configs import TABLE4_COWS, scaled
from repro.experiments.figures import run_figure3
from repro.experiments.table2 import TABLE2_APPS


def test_figure3(benchmark, runner):
    result = run_figure3(runner)
    report("Figure 3: modeled vs simulated E(Instr) on clusters of workstations", result.describe())
    assert result.ordering_agreement() >= 0.8

    specs = [scaled(s) for s in TABLE4_COWS]
    cal = result.calibration

    def model_sweep():
        return [runner.model(app, s, cal) for app in TABLE2_APPS for s in specs]

    benchmark(model_sweep)
