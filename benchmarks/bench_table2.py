"""Table 2: characteristics of the four programs.

Reproduces the (alpha, beta, gamma) characterization of FFT, LU, Radix
and EDGE from real traces and benchmarks the trace-analysis tool (the
paper's supporting tool (2)) on one full application trace.
"""

from conftest import report

from repro.experiments.table2 import run_table2
from repro.trace.analysis import analyze_trace


def test_table2(benchmark, runner):
    result = run_table2(runner)
    report("Table 2: program characteristics (paper-vs-measured)", result.describe())
    assert result.gamma_ordering_matches()
    assert result.locality_extremes_match()

    trace = runner.application_run("EDGE", 1).traces[0]
    benchmark(analyze_trace, trace, "EDGE")
