"""Table 3: the selected SMP configurations C1-C6.

Prints the paper's rows and benchmarks one analytical-model evaluation
per configuration (the workload is the measured FFT characterization).
"""

from conftest import report

from repro.experiments.configs import TABLE3_SMPS, scaled
from repro.experiments.runner import Calibration


def test_table3(benchmark, runner):
    lines = [f"{'name':<5s} {'n':>2s} {'cache':>7s} {'memory':>8s}"]
    for s in TABLE3_SMPS:
        lines.append(
            f"{s.name:<5s} {s.n:>2d} {s.cache_bytes // 1024:>6d}K {s.memory_bytes // (1024*1024):>7d}M"
        )
    report("Table 3: selected SMPs (CPU speed 200 MHz)", "\n".join(lines))

    specs = [scaled(s) for s in TABLE3_SMPS]
    cal = Calibration()
    runner.characterization("FFT")  # warm the cache outside the timer

    def model_all():
        return [runner.model("FFT", s, cal) for s in specs]

    estimates = benchmark(model_all)
    assert all(e.feasible for e in estimates)
