"""Section 5.3.1: coherence share of SMP bus traffic.

Prints the measured protocol-traffic share per application next to the
paper's 6.3/4.7/7.2/2.1% and checks the paper's conclusion (small
enough to omit from the model); benchmarks the statistic extraction.
"""

from conftest import report

from repro.experiments.coherence import run_coherence_traffic


def test_coherence_traffic(benchmark, runner):
    result = run_coherence_traffic(runner)
    report("Section 5.3.1: coherence share of SMP bus traffic", result.describe())
    assert result.all_single_digit

    benchmark.pedantic(
        run_coherence_traffic, kwargs={"runner": runner, "applications": ("EDGE",)},
        rounds=1, iterations=1,
    )
