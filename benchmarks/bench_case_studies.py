"""Section 6 case studies: budgets, upgrades and the FFT network claim.

Prints the three case studies' outcomes and the FFT Ethernet-vs-ATM
comparison next to the paper's statements; benchmarks one full budget
optimization (Eq. 6 by exact enumeration), the operation the paper's
whole methodology exists to make cheap.
"""

from conftest import report

from repro.cost.optimizer import optimize_cluster
from repro.experiments.casestudies import run_case_studies
from repro.workloads.params import PAPER_RADIX


def test_case_studies(benchmark):
    result = run_case_studies()
    report("Section 6 case studies", result.describe())
    assert not result.smp_fits_5k  # paper: $5,000 buys workstations only
    assert not result.smp_cluster_fits_5k
    for res in result.budget_5k.values():
        assert res.best.spec.n == 1 and res.best.spec.N >= 2
    assert result.fft_claim.ratio > 2.0  # ATM wins decisively (paper: 4x)

    benchmark(optimize_cluster, PAPER_RADIX, 20_000.0)
