"""Table 4: the selected clusters of workstations C7-C11."""

from conftest import report

from repro.experiments.configs import TABLE4_COWS, scaled
from repro.experiments.runner import Calibration


def test_table4(benchmark, runner):
    lines = [f"{'name':<5s} {'N':>2s} {'cache':>7s} {'memory':>8s} {'network':<14s}"]
    for s in TABLE4_COWS:
        lines.append(
            f"{s.name:<5s} {s.N:>2d} {s.cache_bytes // 1024:>6d}K "
            f"{s.memory_bytes // (1024*1024):>7d}M {s.network.value:<14s}"
        )
    report("Table 4: selected clusters of workstations (CPU speed 200 MHz)", "\n".join(lines))

    specs = [scaled(s) for s in TABLE4_COWS]
    cal = Calibration(remote_rate_adjustment=0.124)
    runner.characterization("FFT")
    for s in specs:
        runner.sharing("FFT", s)  # measured inputs cached outside the timer

    def model_all():
        return [runner.model("FFT", s, cal) for s in specs]

    estimates = benchmark(model_all)
    assert all(e.feasible for e in estimates)
