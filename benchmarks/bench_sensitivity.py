"""The paper's central claim: hierarchy length is the most sensitive factor.

Prints the one-axis-at-a-time sensitivity of E(Instr) for every paper
workload and checks that the hierarchy-length axis dominates the
capacity axes; benchmarks one full sensitivity sweep (pure model, the
kind of what-if scan the closed form makes instantaneous).
"""

from conftest import report

from repro.experiments.sensitivity import run_sensitivity
from repro.workloads.params import PAPER_RADIX


def test_sensitivity(benchmark):
    results = run_sensitivity()
    body = "\n\n".join(r.describe() for r in results)
    report("Central claim: sensitivity of E(Instr) per design axis", body)
    assert all(r.claim_holds for r in results)

    benchmark(run_sensitivity, [PAPER_RADIX])
