"""Table 5: the selected clusters of SMPs C12-C15."""

from conftest import report

from repro.experiments.configs import TABLE5_CLUMPS, scaled
from repro.experiments.runner import Calibration


def test_table5(benchmark, runner):
    lines = [f"{'name':<5s} {'n':>2s} {'N':>2s} {'cache':>7s} {'memory':>8s} {'network':<14s}"]
    for s in TABLE5_CLUMPS:
        lines.append(
            f"{s.name:<5s} {s.n:>2d} {s.N:>2d} {s.cache_bytes // 1024:>6d}K "
            f"{s.memory_bytes // (1024*1024):>7d}M {s.network.value:<14s}"
        )
    report("Table 5: configurations of selected clusters of SMPs (200 MHz)", "\n".join(lines))

    specs = [scaled(s) for s in TABLE5_CLUMPS]
    cal = Calibration(remote_rate_adjustment=0.124)
    runner.characterization("FFT")
    for s in specs:
        runner.sharing("FFT", s)

    def model_all():
        return [runner.model("FFT", s, cal) for s in specs]

    estimates = benchmark(model_all)
    assert all(e.feasible for e in estimates)
