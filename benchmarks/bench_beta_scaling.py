"""Section 5.2's data-set-size claim: locality scale grows with the data.

Prints the fitted (alpha, beta) ladder per application and checks the
operational form of the claim (a fixed cache misses more as the data
set grows); benchmarks one full ladder characterization for FFT.
"""

from conftest import report

from repro.experiments.beta_scaling import run_beta_scaling


def test_beta_scaling(benchmark):
    results = run_beta_scaling()
    body = "\n\n".join(r.describe() for r in results)
    report("Section 5.2: locality scale vs problem size", body)
    assert all(r.scale_grows for r in results)
    assert all(r.footprint_grows for r in results)

    benchmark.pedantic(
        run_beta_scaling, kwargs={"applications": ("EDGE",)}, rounds=1, iterations=1
    )
