"""Ablations of the model's documented design choices (DESIGN.md).

Prints the effect of each choice (footprint truncation, DSM sharing
term, throttled saturation handling, peer-cache level, cache
associativity) on one representative validation cell, and benchmarks the
full ablation sweep's model-side evaluations.
"""

import math

from conftest import report

from repro.experiments.ablations import run_ablations


def test_ablations(benchmark, runner):
    result = run_ablations(runner)
    report("Ablations of documented design choices", result.describe())

    # Each extension must improve (or at least not break) agreement on
    # its target cell.
    trunc = result.of("footprint truncation")
    assert trunc[0].error < trunc[1].error  # truncated beats raw power law

    sharing = result.of("DSM sharing term")
    assert sharing[0].error < sharing[1].error  # sharing on beats off

    saturation = result.of("saturation handling")
    assert math.isfinite(saturation[0].e_instr_seconds)  # throttled finite
    assert not math.isfinite(saturation[1].e_instr_seconds)  # open saturates

    def model_side_only():
        # re-run everything; sims are cached in the shared runner
        return run_ablations(runner)

    benchmark(model_side_only)
