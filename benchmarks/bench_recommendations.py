"""Section 6 principles: workload classification against the paper.

Prints the six principles with each example program's assignment and
benchmarks the classification pipeline.
"""

from conftest import report

from repro.cost.recommend import classify_workload
from repro.experiments.recommendations import run_recommendations
from repro.workloads.params import PAPER_WORKLOADS


def test_recommendations(benchmark):
    result = run_recommendations()
    report("Section 6 principles (rule engine vs the paper's examples)", result.describe())
    assert result.all_match_paper

    benchmark(lambda: [classify_workload(w) for w in PAPER_WORKLOADS])
