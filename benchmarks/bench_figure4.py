"""Figure 4: modeled vs simulated E(Instr) on clusters of SMPs.

The paper reports differences within 8% (with the same 12.4% remote
adjustment); our scaled reproduction prints its achieved bound and
ordering agreement.  Benchmarked: the model sweep over all 16 cells.
"""

from conftest import report

from repro.experiments.configs import TABLE5_CLUMPS, scaled
from repro.experiments.figures import run_figure4
from repro.experiments.table2 import TABLE2_APPS


def test_figure4(benchmark, runner):
    result = run_figure4(runner)
    report("Figure 4: modeled vs simulated E(Instr) on clusters of SMPs", result.describe())
    assert result.ordering_agreement() >= 0.8

    specs = [scaled(s) for s in TABLE5_CLUMPS]
    cal = result.calibration

    def model_sweep():
        return [runner.model(app, s, cal) for app in TABLE2_APPS for s in specs]

    benchmark(model_sweep)
