"""Design-search throughput: pruned branch-and-bound vs exhaustive Eq. 6.

For every paper workload at several budgets over the *default* candidate
space, answers the design question three ways -- exhaustive enumeration,
lower-bound pruned search, and Pareto-front search -- verifies all three
return the identical optimal configuration (same spec, price and
bit-identical E(Instr)), and records how many full model evaluations
each needed.  Results land in ``BENCH_optimizer.json`` next to the
repository root (or ``--output``).

Run::

    PYTHONPATH=src python benchmarks/bench_optimizer.py [--quick]

``--quick`` trims the budget grid for a CI smoke run; the acceptance
floor (``--require-reduction``) asserts the pruned search performs at
least 5x fewer model evaluations than enumeration in aggregate.
"""

from __future__ import annotations

import argparse
import datetime
import platform
import subprocess
import sys
import time

import numpy

from repro.cost.search import DesignQuery, DesignSearch
from repro.obs.metrics import MetricsRegistry
from repro.workloads.params import PAPER_WORKLOADS

#: Acceptance floor: aggregate model evaluations, exhaustive over pruned.
REQUIRED_REDUCTION = 5.0


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def provenance() -> dict:
    """Where and when this benchmark ran, for comparing BENCH files."""
    return {
        "git_rev": _git_rev(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "hostname": platform.node(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def _answer(workload, budget: float, method: str) -> tuple:
    """One fresh-engine query: (best, stats, wall_seconds)."""
    engine = DesignSearch(method=method, metrics=MetricsRegistry())
    t0 = time.perf_counter()
    outcome = engine.search(workload, budget)
    return outcome.best, outcome.stats, time.perf_counter() - t0


def run_benchmark(quick: bool = False) -> dict:
    budgets = [15_000.0, 40_000.0] if quick else [8_000.0, 15_000.0, 40_000.0, 80_000.0]
    cells = []
    totals = {"exhaustive": 0, "pruned": 0, "pareto": 0}
    for workload in PAPER_WORKLOADS:
        for budget in budgets:
            best_ex, stats_ex, t_ex = _answer(workload, budget, "exhaustive")
            cell = {
                "workload": workload.name,
                "budget": budget,
                "candidates": stats_ex.candidates,
                "best": {
                    "name": best_ex.spec.name,
                    "price": best_ex.price,
                    "e_instr_seconds": best_ex.e_instr_seconds,
                },
                "methods": {},
            }
            for method in ("exhaustive", "pruned", "pareto"):
                if method == "exhaustive":
                    best, stats, wall = best_ex, stats_ex, t_ex
                else:
                    best, stats, wall = _answer(workload, budget, method)
                    if (
                        best.spec != best_ex.spec
                        or best.price != best_ex.price
                        or best.e_instr_seconds != best_ex.e_instr_seconds
                    ):
                        raise AssertionError(
                            f"{method} search diverged from enumeration on "
                            f"{workload.name} @ ${budget:,.0f}: "
                            f"{best.spec.name} != {best_ex.spec.name}"
                        )
                totals[method] += stats.evaluated
                cell["methods"][method] = {
                    "evaluated": stats.evaluated,
                    "pruned": stats.pruned,
                    "pruning_ratio": stats.pruning_ratio,
                    "wall_seconds": wall,
                    "identical_best": True,
                }
            cells.append(cell)

    return {
        "benchmark": "optimizer_search",
        "workloads": [w.name for w in PAPER_WORKLOADS],
        "budgets": budgets,
        "quick": quick,
        "provenance": provenance(),
        "cells": cells,
        "totals": {
            "model_evaluations": totals,
            "evaluation_reduction_pruned": (
                totals["exhaustive"] / totals["pruned"] if totals["pruned"] else None
            ),
            "evaluation_reduction_pareto": (
                totals["exhaustive"] / totals["pareto"] if totals["pareto"] else None
            ),
        },
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="trimmed budget grid")
    ap.add_argument("--output", default="BENCH_optimizer.json")
    ap.add_argument(
        "--require-reduction", action="store_true",
        help="exit nonzero unless pruned search does at least "
        f"{REQUIRED_REDUCTION}x fewer model evaluations in aggregate",
    )
    args = ap.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    from repro.ioutil import atomic_write_json

    atomic_write_json(args.output, payload)

    for cell in payload["cells"]:
        m = cell["methods"]
        print(
            f"{cell['workload']:>6s} @ ${cell['budget']:>7,.0f}: "
            f"{cell['candidates']:4d} candidates, evaluated "
            f"exhaustive {m['exhaustive']['evaluated']:4d} / "
            f"pruned {m['pruned']['evaluated']:4d} / "
            f"pareto {m['pareto']['evaluated']:4d}  "
            f"(pruned ratio {100 * m['pruned']['pruning_ratio']:.0f}%), "
            f"best identical"
        )
    reduction = payload["totals"]["evaluation_reduction_pruned"]
    print(
        f"aggregate: {payload['totals']['model_evaluations']['exhaustive']} "
        f"exhaustive vs {payload['totals']['model_evaluations']['pruned']} pruned "
        f"model evaluations -> {reduction:.1f}x reduction"
    )
    print(f"wrote {args.output}")

    if args.require_reduction and reduction < REQUIRED_REDUCTION:
        print(
            f"FAIL: evaluation reduction {reduction:.2f}x < {REQUIRED_REDUCTION}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
