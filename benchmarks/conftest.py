"""Shared benchmark fixtures: one memoizing runner for the whole session.

Application executions and simulations are cached in the session-scoped
:class:`~repro.experiments.runner.ExperimentRunner`, so the expensive
pieces run once no matter how many benches touch them; the ``benchmark``
fixture then times the paper-relevant fast paths (model evaluations,
trace analyses, optimizations).

``report`` prints reproduction tables with pytest's capture suspended,
so the paper-vs-measured rows are visible in a normal ``pytest
benchmarks/ --benchmark-only`` run (and land in any tee'd log).
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments.runner import Calibration, ExperimentRunner

_CAPMAN = None


@pytest.fixture(autouse=True)
def _grab_capture_manager(request):
    """Remember the capture manager so report() can suspend fd capture."""
    global _CAPMAN
    _CAPMAN = request.config.pluginmanager.getplugin("capturemanager")
    yield


def report(title: str, body: str) -> None:
    """Print a reproduction table past pytest's capture."""
    text = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}"
    if _CAPMAN is not None:
        with _CAPMAN.global_and_fixture_disabled():
            print(text, flush=True)
    else:  # plain python execution
        print(text, file=sys.__stdout__, flush=True)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def smp_calibration(runner) -> Calibration:
    """The Figure 2 calibration, shared by the SMP benches."""
    from repro.experiments.configs import TABLE3_SMPS, scaled
    from repro.experiments.table2 import TABLE2_APPS

    cal, _ = runner.calibrate(TABLE2_APPS, [scaled(s) for s in TABLE3_SMPS], adjustments=(0.0,))
    return cal
