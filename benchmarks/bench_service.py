"""Overload bench: the real query service at 1x and 5x capacity.

Boots the real :class:`repro.service.server.QueryService` on an
ephemeral localhost port, fires a seeded Poisson query stream at it at
an estimated-capacity rate (the "1x" phase) and again at five times
that rate (the "5x" phase, optionally with injected service faults such
as a worker kill), and records every request's fate: delivered full-
fidelity, delivered degraded, shed with which reason, at what latency.

The floors are the ISSUE's acceptance criteria, checked under
``--require-floors`` (CI's service-smoke job does):

* p99 latency of *admitted* requests stays under the worst configured
  endpoint deadline in both phases (nothing hangs);
* goodput at 5x holds at >= ``--goodput-floor`` (default 0.70) of the
  1x delivered throughput (overload sheds load, it does not collapse);
* with a worker-kill fault injected, at least one answer is explicitly
  flagged ``degraded`` (the breaker path really ran).

Results land in ``BENCH_service.json`` (or ``--output``).

Run::

    PYTHONPATH=src python benchmarks/bench_service.py --quick \
        --inject workerkill:after=1 --require-floors
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import functools
import sys

from bench_engine_throughput import provenance
from repro.obs.metrics import MetricsRegistry
from repro.service.api import QueryAPI
from repro.service.chaos import service_plan_from_specs
from repro.service.config import ENDPOINTS, ServiceConfig
from repro.service.loadgen import generate_stream, http_request, percentile
from repro.service.server import QueryService

GOODPUT_FLOOR = 0.70


def _classify(status: int, obj: object) -> tuple[str, str | None]:
    """(outcome, shed_reason) for one HTTP response."""
    if isinstance(obj, dict) and obj.get("shed"):
        return "shed", obj.get("reason")
    if status == 200 and isinstance(obj, dict):
        return ("degraded", None) if obj.get("degraded") else ("ok", None)
    return "error", None


async def _run_phase(
    stream, config: ServiceConfig, inject: list[str], seed: int
) -> list[dict]:
    chaos = service_plan_from_specs(inject)
    service = QueryService(
        QueryAPI(cache_dir=None),
        config,
        chaos=chaos,
        metrics=MetricsRegistry(),
    )
    await service.start(port=0)
    loop = asyncio.get_running_loop()
    clients = concurrent.futures.ThreadPoolExecutor(max_workers=64)
    results: list[dict | None] = [None] * len(stream)
    t0 = loop.time()

    async def fire(i, q):
        await asyncio.sleep(max(0.0, t0 + q.t - loop.time()))
        start = loop.time()
        try:
            status, obj = await loop.run_in_executor(
                clients,
                functools.partial(
                    http_request,
                    "127.0.0.1",
                    service.port,
                    "POST",
                    f"/v1/{q.endpoint}",
                    q.body,
                    60.0,
                ),
            )
        except Exception as exc:  # transport failure: count, don't crash
            results[i] = {
                "endpoint": q.endpoint, "outcome": "error", "reason": None,
                "status": 0, "latency_s": loop.time() - start,
                "detail": str(exc),
            }
            return
        outcome, reason = _classify(status, obj)
        results[i] = {
            "endpoint": q.endpoint, "outcome": outcome, "reason": reason,
            "status": status, "latency_s": loop.time() - start,
        }

    try:
        await asyncio.gather(*(fire(i, q) for i, q in enumerate(stream)))
    finally:
        await service.stop()
        clients.shutdown(wait=False)
    return [r for r in results if r is not None]


def _aggregate(label: str, records: list[dict], duration: float) -> dict:
    delivered = [r for r in records if r["outcome"] in ("ok", "degraded")]
    admitted = [
        r for r in records if r["reason"] not in ("rate_limited", "queue_full")
    ]
    sheds: dict[str, int] = {}
    for r in records:
        if r["outcome"] == "shed":
            sheds[r["reason"]] = sheds.get(r["reason"], 0) + 1
    latencies = [r["latency_s"] for r in admitted]
    return {
        "phase": label,
        "duration_s": duration,
        "offered": len(records),
        "delivered": len(delivered),
        "degraded": sum(1 for r in records if r["outcome"] == "degraded"),
        "errors": sum(1 for r in records if r["outcome"] == "error"),
        "goodput_rps": len(delivered) / duration,
        "sheds": sheds,
        "p99_admitted_s": percentile(latencies, 99.0) if latencies else None,
        "max_admitted_s": max(latencies) if latencies else None,
    }


def run_benchmark(
    *,
    quick: bool = False,
    seed: int = 0,
    rate_1x: float | None = None,
    duration: float | None = None,
    inject: list[str] | None = None,
) -> dict:
    duration = duration if duration is not None else (4.0 if quick else 10.0)
    rate_1x = rate_1x if rate_1x is not None else (5.0 if quick else 10.0)
    inject = inject or []
    config = ServiceConfig(jobs=1)

    async def _both():
        phases = []
        for label, rate, faults in (
            ("1x", rate_1x, []),
            ("5x", 5.0 * rate_1x, inject),
        ):
            stream = generate_stream(seed, duration=duration, rate=rate)
            records = await _run_phase(stream, config, faults, seed)
            phases.append(_aggregate(label, records, duration))
        return phases

    phases = asyncio.run(_both())
    deadline_bound = max(config.policy(ep).deadline for ep in ENDPOINTS)
    return {
        "benchmark": "service_overload",
        "seed": seed,
        "quick": quick,
        "duration_s": duration,
        "rate_1x_rps": rate_1x,
        "inject": list(inject),
        "goodput_floor": GOODPUT_FLOOR,
        "deadline_bound_s": deadline_bound,
        "provenance": provenance(),
        "phases": phases,
    }


def check_floors(payload: dict, goodput_floor: float) -> list[str]:
    """Every floor violation, as a human-readable complaint."""
    by_label = {p["phase"]: p for p in payload["phases"]}
    base, over = by_label["1x"], by_label["5x"]
    bound = payload["deadline_bound_s"]
    problems = []
    for phase in (base, over):
        p99 = phase["p99_admitted_s"]
        if p99 is not None and p99 > bound:
            problems.append(
                f"{phase['phase']}: p99 of admitted requests {p99:.3f}s "
                f"exceeds the {bound:.0f}s deadline bound"
            )
    floor = goodput_floor * base["goodput_rps"]
    if over["goodput_rps"] < floor:
        problems.append(
            f"5x goodput {over['goodput_rps']:.2f} rps below "
            f"{goodput_floor:.0%} of 1x ({floor:.2f} rps)"
        )
    if any(s.startswith("workerkill") for s in payload["inject"]):
        if over["degraded"] < 1:
            problems.append(
                "a worker kill was injected but no answer was flagged degraded"
            )
    if base["errors"] or over["errors"]:
        problems.append(
            f"unlabeled errors: 1x={base['errors']} 5x={over['errors']}"
        )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="tiny stream for a sub-minute smoke run")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--duration", type=float, default=None,
                    help="seconds per phase (default 10, or 4 with --quick)")
    ap.add_argument("--rate", type=float, default=None,
                    help="the 1x request rate (default 10 rps, 5 with --quick)")
    ap.add_argument("--inject", action="append", default=[], metavar="SPEC",
                    help="service fault spec for the 5x phase (repeatable), "
                         "e.g. workerkill:after=1")
    ap.add_argument("--goodput-floor", type=float, default=GOODPUT_FLOOR)
    ap.add_argument("--require-floors", action="store_true",
                    help="exit non-zero if any overload floor is violated")
    ap.add_argument("--output", default="BENCH_service.json")
    args = ap.parse_args(argv)

    payload = run_benchmark(
        quick=args.quick, seed=args.seed, rate_1x=args.rate,
        duration=args.duration, inject=args.inject,
    )

    from repro.ioutil import atomic_write_json

    atomic_write_json(args.output, payload)

    for phase in payload["phases"]:
        p99 = phase["p99_admitted_s"]
        p99_text = f"{p99:.3f}s" if p99 is not None else "n/a"
        print(
            f"{phase['phase']:>3}: offered {phase['offered']:>4}, "
            f"delivered {phase['delivered']:>4} "
            f"({phase['degraded']} degraded), "
            f"goodput {phase['goodput_rps']:6.2f} rps, "
            f"p99 {p99_text}, sheds {phase['sheds'] or '{}'}"
        )
    problems = check_floors(payload, args.goodput_floor)
    for problem in problems:
        print(f"FLOOR VIOLATION: {problem}", file=sys.stderr)
    if problems and args.require_floors:
        return 1
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
