"""Streaming ingestion throughput and memory-boundedness, held to floors.

The out-of-core lane (``docs/TRACES.md``) makes two promises: it is
*fast* (hundreds of thousands of records per second end to end,
container decode included) and it is *bounded* (peak memory scales with
the chunk, never the trace).  This benchmark holds both to numbers:

1. generate a power-law address trace with a cheap vectorized
   generator, write it as a zlib ``.rtc`` container;
2. ingest it through the full pipeline (streaming distances,
   incremental fit, workload registration), measuring records/s and
   the resident-set growth across the ingest;
3. optionally (``--memory-cap-mb``) clamp ``RLIMIT_AS`` to the current
   address space plus the cap *for the duration of the ingest* -- an
   ingest that tried to materialize the trace dies with MemoryError
   instead of quietly passing;
4. verify the streamed fit against the in-memory lane
   (``fit_from_distances`` on the whole trace): bit-equal is expected,
   a relative tolerance is enforced (``--fit-tolerance``).

``--require-floors`` gates records/s and RSS growth at the
:data:`repro.obs.ledger.BENCH_FLOORS` values CI enforces.  Results
land in ``BENCH_trace.json`` (or ``--output``).

Run::

    PYTHONPATH=src python benchmarks/bench_trace_ingest.py --quick
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

import numpy as np

from bench_engine_throughput import provenance
from repro.obs.ledger import BENCH_FLOORS
from repro.trace.ingest import ingest
from repro.trace.stackdist import stack_distances
from repro.trace.store import TraceStoreWriter
from repro.workloads.fitting import fit_from_distances

#: CI acceptance floors (shared with the run ledger).
RECORDS_PER_SECOND_FLOOR = BENCH_FLOORS["trace_ingest_records_per_second"]
RSS_GROWTH_CEILING_MB = BENCH_FLOORS["trace_rss_growth_mb"]


def _rss_mb() -> float:
    """Peak resident set of this process so far, in MiB (Linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _address_space_bytes() -> int | None:
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def generate_container(path, records: int, footprint: int, seed: int = 0,
                       chunk_records: int = 65536) -> np.ndarray:
    """Cheap vectorized power-law trace; returns the addresses written.

    (``repro.workloads.synthetic`` draws reference-by-reference from the
    fitted model -- faithful but far too slow to *generate* benchmark
    input; a Zipf draw has the same qualitative locality.)
    """
    rng = np.random.default_rng(seed)
    addrs = (rng.zipf(1.3, size=records) - 1) % footprint
    with TraceStoreWriter(path, chunk_records=chunk_records) as w:
        for start in range(0, records, chunk_records):
            w.append(addrs[start : start + chunk_records], work=2)
    return addrs


def run_benchmark(records: int, footprint: int, chunk_records: int,
                  memory_cap_mb: float | None, verify_fit: bool,
                  workdir) -> dict:
    container = workdir / "bench.rtc"
    t0 = time.perf_counter()
    addrs = generate_container(container, records, footprint,
                               chunk_records=chunk_records)
    gen_seconds = time.perf_counter() - t0

    rss_before = _rss_mb()
    cap_applied = None
    if memory_cap_mb is not None:
        vm = _address_space_bytes()
        if vm is None:
            print("note: /proc/self/status unavailable; memory cap skipped",
                  file=sys.stderr)
        else:
            soft, hard = resource.getrlimit(resource.RLIMIT_AS)
            cap_applied = vm + int(memory_cap_mb * 1024 * 1024)
            resource.setrlimit(resource.RLIMIT_AS, (cap_applied, hard))
    try:
        t0 = time.perf_counter()
        result = ingest(container, name="bench",
                        workload_dir=workdir / "wl",
                        chunk_records=chunk_records)
        ingest_seconds = time.perf_counter() - t0
    finally:
        if cap_applied is not None:
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    rss_after = _rss_mb()

    payload = {
        "benchmark": "trace_ingest",
        "records": records,
        "footprint_items": footprint,
        "chunk_records": chunk_records,
        "generate_seconds": round(gen_seconds, 4),
        "ingest_seconds": round(ingest_seconds, 4),
        "records_per_second": round(records / ingest_seconds, 1),
        "container_bytes": result.bytes_read,
        "rss_before_mb": round(rss_before, 1),
        "rss_after_mb": round(rss_after, 1),
        "rss_growth_mb": round(rss_after - rss_before, 1),
        "memory_cap_mb": memory_cap_mb,
        "peak_live_items": result.stream.peak_live_items,
        "alpha": result.fit.alpha,
        "beta": result.fit.beta,
        "gamma": result.params.gamma,
        "rmse": result.fit.rmse,
        "converged": result.convergence.converged,
        "floors": {
            "records_per_second": RECORDS_PER_SECOND_FLOOR,
            "rss_growth_mb": RSS_GROWTH_CEILING_MB,
        },
        "provenance": provenance(),
    }

    if verify_fit:
        reference = fit_from_distances(stack_distances(addrs))
        payload["fit_reference"] = {
            "alpha": reference.alpha,
            "beta": reference.beta,
            "rmse": reference.rmse,
        }
        payload["fit_rel_error"] = {
            "alpha": abs(result.fit.alpha - reference.alpha)
            / abs(reference.alpha),
            "beta": abs(result.fit.beta - reference.beta)
            / abs(reference.beta),
        }
    return payload


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="200k records instead of 1.2M")
    ap.add_argument("--records", type=int, default=None)
    ap.add_argument("--footprint", type=int, default=50_000)
    ap.add_argument("--chunk-records", type=int, default=65536)
    ap.add_argument("--memory-cap-mb", type=float, default=None,
                    help="clamp RLIMIT_AS to current VmSize + this many "
                         "MiB for the duration of the ingest")
    ap.add_argument("--no-verify-fit", action="store_true",
                    help="skip the in-memory reference fit")
    ap.add_argument("--fit-tolerance", type=float, default=1e-9,
                    help="max relative (alpha, beta) error vs the "
                         "in-memory fit (bit-equal expected)")
    ap.add_argument("--require-floors", action="store_true",
                    help="fail below the CI records/s floor or above "
                         "the RSS-growth ceiling")
    ap.add_argument("--output", default="BENCH_trace.json")
    args = ap.parse_args(argv)

    records = args.records or (200_000 if args.quick else 1_200_000)

    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        payload = run_benchmark(
            records, args.footprint, args.chunk_records,
            args.memory_cap_mb, not args.no_verify_fit, Path(tmp),
        )

    from repro.ioutil import atomic_write_json

    atomic_write_json(args.output, payload)

    print(f"ingested {records:,} records in {payload['ingest_seconds']:.2f}s "
          f"({payload['records_per_second']:,.0f} records/s)")
    print(f"rss {payload['rss_before_mb']:.1f} -> {payload['rss_after_mb']:.1f} MiB "
          f"(growth {payload['rss_growth_mb']:.1f} MiB"
          + (f", hard cap +{args.memory_cap_mb:.0f} MiB held"
             if args.memory_cap_mb is not None else "")
          + ")")
    print(f"fit alpha={payload['alpha']:.4f} beta={payload['beta']:.4f} "
          f"rmse={payload['rmse']:.5f} converged={payload['converged']}")

    failures = []
    if "fit_rel_error" in payload:
        err = max(payload["fit_rel_error"].values())
        print(f"vs in-memory fit: max relative error {err:.2e}")
        if err > args.fit_tolerance:
            failures.append(
                f"streamed fit deviates from the in-memory fit by {err:.2e} "
                f"(> {args.fit_tolerance:.0e})"
            )
    if args.require_floors:
        if payload["records_per_second"] < RECORDS_PER_SECOND_FLOOR:
            failures.append(
                f"{payload['records_per_second']:,.0f} records/s is below "
                f"the {RECORDS_PER_SECOND_FLOOR:,.0f} floor"
            )
        if payload["rss_growth_mb"] > RSS_GROWTH_CEILING_MB:
            failures.append(
                f"RSS grew {payload['rss_growth_mb']:.1f} MiB, above the "
                f"{RSS_GROWTH_CEILING_MB:.0f} MiB ceiling"
            )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
