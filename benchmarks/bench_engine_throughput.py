"""Engine throughput: scalar lane vs vectorized fast path.

Measures references simulated per second for the FFT workload on the
paper's three platform families, with ``fastpath`` off and on, and
verifies on every cell that the two lanes return bit-identical
:class:`SimulationResult`s.  Results land in ``BENCH_engine.json``
next to the repository root (or ``--output``).

Run::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick]

``--quick`` shrinks the workload for a sub-minute smoke run (used by
CI); the default size matches the paper-scale platform parameters
(256 KB caches, 64 MB memories).
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time

import numpy

from repro.apps.registry import make_application
from repro.core.platform import PlatformSpec
from repro.sim.engine import SimulationEngine
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024

#: Acceptance floor: the batched lane must beat the scalar lane by this
#: factor on at least the SMP cell (the paper's primary platform).
REQUIRED_SPEEDUP = 3.0


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def provenance() -> dict:
    """Where and when this benchmark ran, for comparing BENCH files."""
    return {
        "git_rev": _git_rev(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "hostname": platform.node(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def _specs(cache_bytes: int, memory_bytes: int) -> list[tuple[str, PlatformSpec]]:
    return [
        (
            "smp",
            PlatformSpec(
                name="bench-smp", n=4, N=1,
                cache_bytes=cache_bytes, memory_bytes=memory_bytes,
            ),
        ),
        (
            "cow-atm",
            PlatformSpec(
                name="bench-cow", n=1, N=4,
                cache_bytes=cache_bytes, memory_bytes=memory_bytes,
                network=NetworkKind.ATM_155,
            ),
        ),
        (
            "clump-atm",
            PlatformSpec(
                name="bench-clump", n=2, N=2,
                cache_bytes=cache_bytes, memory_bytes=memory_bytes,
                network=NetworkKind.ATM_155,
            ),
        ),
    ]


def _time_once(spec: PlatformSpec, run, horizon: float, fastpath: bool):
    engine = SimulationEngine(spec, run, horizon=horizon, fastpath=fastpath)
    t0 = time.perf_counter()
    result = engine.execute()
    return result, time.perf_counter() - t0


def _identical(a, b) -> bool:
    return (
        a.total_cycles == b.total_cycles
        and a.per_process_cycles == b.per_process_cycles
        and a.barrier_wait_cycles == b.barrier_wait_cycles
        and a.stats.as_dict() == b.stats.as_dict()
    )


def run_benchmark(quick: bool = False, horizon: float = 200.0) -> dict:
    points = 1024 if quick else 4096
    repeats = 2 if quick else 5
    app = make_application("FFT", num_procs=4, seed=0, points=points)
    run = app.run()
    refs = run.total_references

    cells = []
    for label, spec in _specs(256 * KB, 64 * MB):
        # Interleave the lanes and keep each lane's best time, so slow
        # drift on a shared machine penalizes both lanes equally.
        scalar_t = batched_t = float("inf")
        for _ in range(repeats):
            scalar_res, dt = _time_once(spec, run, horizon, False)
            scalar_t = min(scalar_t, dt)
            batched_res, dt = _time_once(spec, run, horizon, True)
            batched_t = min(batched_t, dt)
        if not _identical(scalar_res, batched_res):
            raise AssertionError(
                f"fast path diverged from scalar on {label}: "
                f"{scalar_res.total_cycles} != {batched_res.total_cycles}"
            )
        cells.append(
            {
                "platform": label,
                "scalar_seconds": scalar_t,
                "batched_seconds": batched_t,
                "scalar_refs_per_second": refs / scalar_t,
                "batched_refs_per_second": refs / batched_t,
                "speedup": scalar_t / batched_t,
                "identical": True,
            }
        )

    return {
        "benchmark": "engine_throughput",
        "application": "FFT",
        "points": points,
        "total_references": refs,
        "horizon": horizon,
        "quick": quick,
        "provenance": provenance(),
        "cells": cells,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="small FFT, one repeat")
    ap.add_argument("--horizon", type=float, default=200.0)
    ap.add_argument("--output", default="BENCH_engine.json")
    ap.add_argument(
        "--require-speedup", action="store_true",
        help=f"exit nonzero unless the SMP cell reaches {REQUIRED_SPEEDUP}x",
    )
    args = ap.parse_args(argv)

    payload = run_benchmark(quick=args.quick, horizon=args.horizon)
    from repro.ioutil import atomic_write_json

    atomic_write_json(args.output, payload)

    for cell in payload["cells"]:
        print(
            f"{cell['platform']:10s} scalar {cell['scalar_refs_per_second']:>10,.0f} refs/s"
            f"  batched {cell['batched_refs_per_second']:>10,.0f} refs/s"
            f"  speedup {cell['speedup']:.2f}x  identical={cell['identical']}"
        )
    print(f"wrote {args.output}")

    if args.require_speedup:
        smp = next(c for c in payload["cells"] if c["platform"] == "smp")
        if smp["speedup"] < REQUIRED_SPEEDUP:
            print(
                f"FAIL: SMP speedup {smp['speedup']:.2f}x < {REQUIRED_SPEEDUP}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
