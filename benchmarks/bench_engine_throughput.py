"""Engine throughput: scalar lane vs vectorized fast path, plus grids.

Measures references simulated per second for the FFT workload on the
paper's three platform families, with ``fastpath`` off and on, and
verifies on every cell that the two lanes return bit-identical
:class:`SimulationResult`s.  Results land in ``BENCH_engine.json``
next to the repository root (or ``--output``).

``--grid`` adds the grid-throughput comparison (cells per second for
the process-pool lane vs the stacked tensor lane) in two sections:

* ``sim_grid`` -- a quick-scale experiment grid run end-to-end through
  :class:`~repro.experiments.runner.ExperimentRunner` under
  ``lane="pool"`` and ``lane="tensor"``, with cross-lane result
  identity verified cell by cell.
* ``design_wave`` -- a workloads x budgets design-search wave through
  :class:`~repro.cost.search.DesignSearch` under both lanes at matched
  ``jobs=1`` (core-count independent), with answer identity verified.

Honest numbers, honestly framed: simulation compute is *lane-invariant
by construction* (the three-lane bit-identity guarantee means the
tensor lane runs the same per-cell coherence simulation), so the
tensor lane's win is everything *around* the sims -- process-pool
spawn, per-cell trace regeneration in workers, and result pickling.
At quick scale that overhead is most of the pool lane's cost and the
tensor lane wins by ~3-5x on a single-core host (more when the pool is
cold, less when cells are simulation-heavy).  The ``--require-grid-
speedup`` floor is set at a level every supported host clears with
margin; per-host peaks belong in the JSON, not in the gate.

Run::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick] [--grid]

``--quick`` shrinks the workload for a sub-minute smoke run (used by
CI); the default size matches the paper-scale platform parameters
(256 KB caches, 64 MB memories).
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time

import numpy

from repro.apps.registry import make_application
from repro.core.platform import PlatformSpec
from repro.sim.engine import SimulationEngine
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024

#: Acceptance floor: the batched lane must beat the scalar lane by this
#: factor on at least the SMP cell (the paper's primary platform).
REQUIRED_SPEEDUP = 3.0

#: Acceptance floor for ``--require-grid-speedup``: the tensor lane
#: must beat the process pool by this factor on the quick-scale
#: ``sim_grid`` section.  Single-core hosts measure ~3-5x (the pool's
#: spawn + per-cell regeneration + IPC are pure overhead there); the
#: floor sits well below the typical measurement so the CI gate fails
#: on regressions, not on scheduler noise or extra cores speeding the
#: pool up.
GRID_REQUIRED_SPEEDUP = 2.0

#: The full-scale floor is lower by design, not by accident: big cells
#: are simulation-bound, simulation compute is lane-invariant (the
#: bit-identity guarantee), and the tensor lane can only remove the
#: orchestration overhead around it.  Measured ~1.8x on a single-core
#: host; the gate catches lane regressions without pretending the
#: sims themselves got faster.
FULL_GRID_REQUIRED_SPEEDUP = 1.3

#: Same idea for the ``design_wave`` section: the tensor lane shares
#: per-budget enumeration and the evaluation memo across a wave's
#: queries, which the pool's per-query workers cannot.  Measured ~2x
#: on quick waves (growing with budgets per workload); gated at a
#: conservative floor.
WAVE_REQUIRED_SPEEDUP = 1.3


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def provenance() -> dict:
    """Where and when this benchmark ran, for comparing BENCH files."""
    return {
        "git_rev": _git_rev(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "hostname": platform.node(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def _specs(cache_bytes: int, memory_bytes: int) -> list[tuple[str, PlatformSpec]]:
    return [
        (
            "smp",
            PlatformSpec(
                name="bench-smp", n=4, N=1,
                cache_bytes=cache_bytes, memory_bytes=memory_bytes,
            ),
        ),
        (
            "cow-atm",
            PlatformSpec(
                name="bench-cow", n=1, N=4,
                cache_bytes=cache_bytes, memory_bytes=memory_bytes,
                network=NetworkKind.ATM_155,
            ),
        ),
        (
            "clump-atm",
            PlatformSpec(
                name="bench-clump", n=2, N=2,
                cache_bytes=cache_bytes, memory_bytes=memory_bytes,
                network=NetworkKind.ATM_155,
            ),
        ),
    ]


def _time_once(spec: PlatformSpec, run, horizon: float, fastpath: bool):
    engine = SimulationEngine(spec, run, horizon=horizon, fastpath=fastpath)
    t0 = time.perf_counter()
    result = engine.execute()
    return result, time.perf_counter() - t0


def _identical(a, b) -> bool:
    return (
        a.total_cycles == b.total_cycles
        and a.per_process_cycles == b.per_process_cycles
        and a.barrier_wait_cycles == b.barrier_wait_cycles
        and a.stats.as_dict() == b.stats.as_dict()
    )


def run_benchmark(quick: bool = False, horizon: float = 200.0) -> dict:
    points = 1024 if quick else 4096
    repeats = 2 if quick else 5
    app = make_application("FFT", num_procs=4, seed=0, points=points)
    run = app.run()
    refs = run.total_references

    cells = []
    for label, spec in _specs(256 * KB, 64 * MB):
        # Interleave the lanes and keep each lane's best time, so slow
        # drift on a shared machine penalizes both lanes equally.
        scalar_t = batched_t = float("inf")
        for _ in range(repeats):
            scalar_res, dt = _time_once(spec, run, horizon, False)
            scalar_t = min(scalar_t, dt)
            batched_res, dt = _time_once(spec, run, horizon, True)
            batched_t = min(batched_t, dt)
        if not _identical(scalar_res, batched_res):
            raise AssertionError(
                f"fast path diverged from scalar on {label}: "
                f"{scalar_res.total_cycles} != {batched_res.total_cycles}"
            )
        cells.append(
            {
                "platform": label,
                "scalar_seconds": scalar_t,
                "batched_seconds": batched_t,
                "scalar_refs_per_second": refs / scalar_t,
                "batched_refs_per_second": refs / batched_t,
                "speedup": scalar_t / batched_t,
                "identical": True,
            }
        )

    return {
        "benchmark": "engine_throughput",
        "application": "FFT",
        "points": points,
        "total_references": refs,
        "horizon": horizon,
        "quick": quick,
        "provenance": provenance(),
        "cells": cells,
    }


def _grid_specs(quick: bool) -> list[PlatformSpec]:
    """The sim-grid's platform sweep: small caches-and-cells so the
    grid is orchestration-bound (the regime the tensor lane targets)."""
    cache, mem = 256 * KB, 8 * MB
    specs = [
        PlatformSpec(name="grid-smp2", n=2, N=1, cache_bytes=cache, memory_bytes=mem),
        PlatformSpec(
            name="grid-smp2-l2", n=2, N=1, cache_bytes=cache, memory_bytes=mem,
            l2_bytes=1024 * KB,
        ),
        PlatformSpec(
            name="grid-cow2", n=1, N=2, cache_bytes=cache, memory_bytes=mem,
            network=NetworkKind.ATM_155,
        ),
        PlatformSpec(name="grid-smp4", n=4, N=1, cache_bytes=cache, memory_bytes=mem),
        PlatformSpec(
            name="grid-cow4", n=1, N=4, cache_bytes=cache, memory_bytes=mem,
            network=NetworkKind.ATM_155,
        ),
        PlatformSpec(
            name="grid-clump2x2", n=2, N=2, cache_bytes=cache, memory_bytes=mem,
            network=NetworkKind.ATM_155,
        ),
        PlatformSpec(
            name="grid-cow4-eth", n=1, N=4, cache_bytes=cache, memory_bytes=mem,
            network=NetworkKind.ETHERNET_100,
        ),
        PlatformSpec(
            name="grid-smp4-big", n=4, N=1, cache_bytes=2 * cache, memory_bytes=2 * mem,
        ),
    ]
    return specs[:4] if quick else specs


def _run_sim_grid(lane: str, jobs: int, cells, app_kwargs, repeats: int):
    """Best-of-``repeats`` wall time for one lane over the grid, plus
    the per-cell results for cross-lane identity checking.

    Each repeat uses a fresh runner (no disk cache), so the pool lane
    pays exactly what a user-invoked grid pays: worker spawn, per-cell
    trace regeneration in the workers, and result pickling.  Keeping
    the best time per lane is conservative for the tensor lane's
    claimed speedup (it forgives the pool its slowest spawn).
    """
    from repro.experiments.runner import ExperimentRunner
    from repro.obs.metrics import MetricsRegistry

    best = float("inf")
    rows = None
    for _ in range(repeats):
        runner = ExperimentRunner(
            app_kwargs=app_kwargs, lane=lane, jobs=jobs,
            metrics=MetricsRegistry(), cache_dir=None,
        )
        t0 = time.perf_counter()
        runner.prefetch_simulations(cells)
        # The serial lane defers compute to simulate(); include it so
        # every lane's clock covers the full grid.
        results = [runner.simulate(name, spec) for name, spec in cells]
        best = min(best, time.perf_counter() - t0)
        rows = results
    return best, rows


def run_grid_benchmark(quick: bool = False) -> dict:
    """Grid throughput, pool vs tensor: sim grids and design waves."""
    from repro.cost import CandidateSpace
    from repro.cost.search import DesignQuery, DesignSearch
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads.params import PAPER_WORKLOADS

    # --- sim grid -----------------------------------------------------
    app_kwargs = {"FFT": {"points": 16 if quick else 64}}
    cells = [("FFT", spec) for spec in _grid_specs(quick)]
    repeats = 2 if quick else 3
    jobs = 4  # what a multicore user would configure; pool spawns this many

    pool_t, pool_rows = _run_sim_grid("pool", jobs, cells, app_kwargs, repeats)
    tensor_t, tensor_rows = _run_sim_grid("tensor", 1, cells, app_kwargs, repeats)
    serial_t, serial_rows = _run_sim_grid("serial", 1, cells, app_kwargs, repeats)

    def _same(a, b) -> bool:
        return all(_identical(x, y) for x, y in zip(a, b))

    sim_identical = _same(pool_rows, tensor_rows) and _same(serial_rows, tensor_rows)
    if not sim_identical:
        raise AssertionError("sim-grid lanes diverged: pool/tensor/serial results differ")

    sim_grid = {
        "cells": len(cells),
        "application": "FFT",
        "app_kwargs": app_kwargs["FFT"],
        "pool_jobs": jobs,
        "pool_seconds": pool_t,
        "tensor_seconds": tensor_t,
        "serial_seconds": serial_t,
        "pool_cells_per_second": len(cells) / pool_t,
        "tensor_cells_per_second": len(cells) / tensor_t,
        "serial_cells_per_second": len(cells) / serial_t,
        "tensor_vs_pool_speedup": pool_t / tensor_t,
        "tensor_vs_serial_speedup": serial_t / tensor_t,
        "identical": True,
    }

    # --- design wave --------------------------------------------------
    budgets = [6000.0 + 1500.0 * k for k in range(10 if quick else 40)]
    space = CandidateSpace(
        max_machines=6, memory_mb_options=(32, 64), cache_kb_options=(256,)
    )
    queries = [DesignQuery(w, b) for w in PAPER_WORKLOADS for b in budgets]

    def _run_wave(lane: str):
        engine = DesignSearch(
            space=space, jobs=1, lane=lane, metrics=MetricsRegistry()
        )
        t0 = time.perf_counter()
        outcomes = engine.run(queries)
        return time.perf_counter() - t0, outcomes

    wave_pool_t, wave_pool = _run_wave("pool")
    wave_tensor_t, wave_tensor = _run_wave("tensor")
    wave_identical = all(
        a.best.spec == b.best.spec
        and a.best.e_instr_seconds == b.best.e_instr_seconds
        for a, b in zip(wave_pool, wave_tensor)
    )
    if not wave_identical:
        raise AssertionError("design-wave lanes diverged: pool vs tensor answers differ")

    design_wave = {
        "queries": len(queries),
        "workloads": len(PAPER_WORKLOADS),
        "budgets": len(budgets),
        "pool_seconds": wave_pool_t,
        "tensor_seconds": wave_tensor_t,
        "pool_queries_per_second": len(queries) / wave_pool_t,
        "tensor_queries_per_second": len(queries) / wave_tensor_t,
        "tensor_vs_pool_speedup": wave_pool_t / wave_tensor_t,
        "identical": True,
    }

    return {
        "required_speedup": (
            GRID_REQUIRED_SPEEDUP if quick else FULL_GRID_REQUIRED_SPEEDUP
        ),
        "wave_required_speedup": WAVE_REQUIRED_SPEEDUP,
        "quick": quick,
        "sim_grid": sim_grid,
        "design_wave": design_wave,
    }


#: Prior-run summaries kept in the output JSON's ``history`` list.
HISTORY_LIMIT = 20


def _history_entry(payload: dict) -> dict:
    """The compact per-run record appended to the output's history."""
    entry = {
        "provenance": payload.get("provenance", {}),
        "quick": payload.get("quick"),
        "cells": [
            {"platform": c["platform"], "speedup": c["speedup"]}
            for c in payload.get("cells", [])
        ],
    }
    grid = payload.get("grid")
    if grid:
        entry["grid"] = {
            "sim_grid_speedup": grid["sim_grid"]["tensor_vs_pool_speedup"],
            "design_wave_speedup": grid["design_wave"]["tensor_vs_pool_speedup"],
        }
    return entry


def _attach_history(payload: dict, output: str, limit: int = HISTORY_LIMIT) -> None:
    """Carry forward the previous output's run history, bounded.

    Each benchmark run *appends* a provenance-stamped summary instead of
    overwriting the file's past, so ``BENCH_engine.json`` accumulates a
    comparable trajectory across commits.  A missing, corrupt, or
    pre-history output simply starts a fresh list.
    """
    history: list = []
    try:
        with open(output, encoding="utf-8") as fh:
            prev = json.load(fh)
        history = list(prev.get("history", []))
    except (OSError, ValueError):
        pass
    history.append(_history_entry(payload))
    payload["history"] = history[-limit:]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="small FFT, one repeat")
    ap.add_argument("--horizon", type=float, default=200.0)
    ap.add_argument("--output", default="BENCH_engine.json")
    ap.add_argument(
        "--require-speedup", action="store_true",
        help=f"exit nonzero unless the SMP cell reaches {REQUIRED_SPEEDUP}x",
    )
    ap.add_argument(
        "--grid", action="store_true",
        help="also run the grid-throughput comparison (pool vs tensor lane)",
    )
    ap.add_argument(
        "--require-grid-speedup", action="store_true",
        help=(
            "exit nonzero unless the tensor lane beats the pool by "
            f"{GRID_REQUIRED_SPEEDUP}x on the sim grid and "
            f"{WAVE_REQUIRED_SPEEDUP}x on the design wave (implies --grid)"
        ),
    )
    args = ap.parse_args(argv)

    payload = run_benchmark(quick=args.quick, horizon=args.horizon)
    if args.grid or args.require_grid_speedup:
        payload["grid"] = run_grid_benchmark(quick=args.quick)
    from repro.ioutil import atomic_write_json

    _attach_history(payload, args.output)
    atomic_write_json(args.output, payload)

    for cell in payload["cells"]:
        print(
            f"{cell['platform']:10s} scalar {cell['scalar_refs_per_second']:>10,.0f} refs/s"
            f"  batched {cell['batched_refs_per_second']:>10,.0f} refs/s"
            f"  speedup {cell['speedup']:.2f}x  identical={cell['identical']}"
        )
    if "grid" in payload:
        sg, dw = payload["grid"]["sim_grid"], payload["grid"]["design_wave"]
        print(
            f"sim grid   pool {sg['pool_cells_per_second']:>8.1f} cells/s"
            f"  tensor {sg['tensor_cells_per_second']:>8.1f} cells/s"
            f"  speedup {sg['tensor_vs_pool_speedup']:.2f}x"
            f"  identical={sg['identical']}"
        )
        print(
            f"design wave pool {dw['pool_queries_per_second']:>7.1f} q/s"
            f"  tensor {dw['tensor_queries_per_second']:>8.1f} q/s"
            f"  speedup {dw['tensor_vs_pool_speedup']:.2f}x"
            f"  identical={dw['identical']}"
        )
    print(f"wrote {args.output}")

    failed = False
    if args.require_speedup:
        smp = next(c for c in payload["cells"] if c["platform"] == "smp")
        if smp["speedup"] < REQUIRED_SPEEDUP:
            print(
                f"FAIL: SMP speedup {smp['speedup']:.2f}x < {REQUIRED_SPEEDUP}x",
                file=sys.stderr,
            )
            failed = True
    if args.require_grid_speedup:
        sg, dw = payload["grid"]["sim_grid"], payload["grid"]["design_wave"]
        floor = payload["grid"]["required_speedup"]
        if sg["tensor_vs_pool_speedup"] < floor:
            print(
                f"FAIL: sim-grid tensor speedup {sg['tensor_vs_pool_speedup']:.2f}x"
                f" < {floor}x",
                file=sys.stderr,
            )
            failed = True
        if dw["tensor_vs_pool_speedup"] < WAVE_REQUIRED_SPEEDUP:
            print(
                f"FAIL: design-wave tensor speedup {dw['tensor_vs_pool_speedup']:.2f}x"
                f" < {WAVE_REQUIRED_SPEEDUP}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
