"""Table 1: classifying the three parallel systems by memory hierarchy.

Reproduces the paper's classification (which gray blocks of Figure 1
each platform adds) from the hierarchy builders, and benchmarks hierarchy
construction -- the operation the optimizer performs for every candidate.
"""

from conftest import report

from repro.core.hierarchy import PlatformKind, additional_levels
from repro.core.platform import PlatformSpec
from repro.sim.latencies import NetworkKind

KB, MB = 1024, 1024 * 1024

SPECS = {
    PlatformKind.SMP: PlatformSpec(
        name="an SMP", n=4, N=1, cache_bytes=256 * KB, memory_bytes=64 * MB
    ),
    PlatformKind.COW: PlatformSpec(
        name="a COW", n=1, N=4, cache_bytes=256 * KB, memory_bytes=64 * MB,
        network=NetworkKind.ETHERNET_100,
    ),
    PlatformKind.CLUMP: PlatformSpec(
        name="a CLUMP", n=2, N=2, cache_bytes=256 * KB, memory_bytes=64 * MB,
        network=NetworkKind.ATM_155,
    ),
}

#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    PlatformKind.SMP: ("A",),
    PlatformKind.COW: ("B", "C"),
    PlatformKind.CLUMP: ("A", "B", "C"),
}


def test_table1(benchmark):
    rows = []
    for kind, spec in SPECS.items():
        blocks = additional_levels(spec.kind)
        assert blocks == PAPER_TABLE1[kind]
        rows.append(f"{kind.value:<28s} gray blocks {' + '.join(blocks)}")
        rows.append(spec.hierarchy().describe())
        rows.append("")
    report("Table 1: platform classification by cluster memory hierarchy", "\n".join(rows))

    clump = SPECS[PlatformKind.CLUMP]
    benchmark(clump.hierarchy)
