"""Figure 2: modeled vs simulated E(Instr) on the SMPs C1-C6.

The paper reports modeled-vs-simulated differences below 5% at full
scale; our 1/64-scale reproduction prints its achieved bound and the
configuration-ordering agreement next to it.  The benchmarked quantity
is the complete 4-application x 6-configuration model sweep -- the work
a designer repeats per candidate platform (simulations execute once in
the shared session runner).
"""

from conftest import report

from repro.experiments.configs import TABLE3_SMPS, scaled
from repro.experiments.figures import run_figure2
from repro.experiments.table2 import TABLE2_APPS


def test_figure2(benchmark, runner, smp_calibration):
    result = run_figure2(runner, calibration=smp_calibration)
    report("Figure 2: modeled vs simulated E(Instr) on SMPs", result.describe())
    assert result.ordering_agreement() >= 0.8
    assert result.worst_error < 0.6

    specs = [scaled(s) for s in TABLE3_SMPS]

    def model_sweep():
        return [
            runner.model(app, s, smp_calibration) for app in TABLE2_APPS for s in specs
        ]

    benchmark(model_sweep)
