"""Section 5.3's cost claim: modeling vs simulating one configuration.

The paper: model 0.5-1 s and ~100 bytes vs > 20 minutes per simulation.
Benchmarks the model evaluation directly (pytest-benchmark statistics)
and prints the measured model-vs-simulation wall-clock ratio.
"""

from conftest import report

from repro.experiments.runner import Calibration
from repro.experiments.speed import run_speed_comparison


def test_model_speed(benchmark, runner):
    result = run_speed_comparison(runner, app="FFT")
    report("Section 5.3: model vs simulation cost", result.describe())
    assert result.speedup > 100  # paper: three to four orders of magnitude

    from repro.experiments.configs import TABLE3_SMPS, scaled

    spec = scaled(TABLE3_SMPS[0])
    cal = Calibration()
    benchmark(runner.model, "FFT", spec, cal)
