"""Synthetic circa-1999 price catalog (DESIGN.md substitution 4).

The paper's case studies assume "current market prices" it never
tabulates.  This catalog encodes plausible early-1999 street prices,
chosen so the paper's qualitative outcomes are expressible:

* a $5,000 budget "can only financially cover a cluster of workstations
  rather than SMPs" -- so a 2-way SMP node lands above $5,000;
* ATM adapters+ports are drastically dearer than Ethernet, yet a
  3-node ATM cluster must fit where a 4-node Ethernet cluster fits
  (the FFT case: 4 x (200 MHz, 64 MB) Ethernet ~= 3 x (200 MHz, 32 MB)
  ATM in price);
* memory is roughly $1/MB and dominates generously-sized nodes.

Everything here is data: pass your own :class:`PriceCatalog` to the
optimizer to model a different market or era.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.latencies import NetworkKind

__all__ = ["PriceCatalog", "DEFAULT_CATALOG"]


@dataclass(frozen=True)
class PriceCatalog:
    """Component prices in dollars."""

    #: Uniprocessor workstation base (200 MHz CPU, chassis, disk, no RAM).
    workstation_base: float = 1_000.0
    #: Extra per additional CPU in an SMP node (CPU + board share).
    smp_cpu: float = 1_500.0
    #: SMP chassis premium over a workstation (multiprocessor board,
    #: bus, bigger PSU) -- grows with socket count.  Sized so a 2-way
    #: SMP node (~$5,900) sits above the paper's $5,000 Case-1 budget.
    smp_chassis_per_socket: float = 1_600.0
    #: Main memory, per megabyte.
    memory_per_mb: float = 1.0
    #: Premium per processor per +1.0 of relative CPU speed (a
    #: ``speed=2.0`` part costs one premium more than the baseline CPU
    #: it replaces).  Only heterogeneous machine mixes pay this; the
    #: homogeneous Eq. 5 paths never read it.
    speed_premium_per_unit: float = 900.0
    #: Cache options: per-processor price by cache size in KB.
    cache_prices: dict = field(
        default_factory=lambda: {256: 80.0, 512: 200.0}
    )
    #: Optional per-machine shared-L2 modules: price by size in KB
    #: (1999-era SRAM COAST modules; the hierarchy-length extension).
    l2_prices: dict = field(
        default_factory=lambda: {1024: 180.0, 2048: 340.0}
    )
    #: Per-machine network cost (adapter + hub/switch-port share).
    network_prices: dict = field(
        default_factory=lambda: {
            NetworkKind.ETHERNET_10: 45.0,
            NetworkKind.ETHERNET_100: 140.0,
            NetworkKind.ATM_155: 475.0,
        }
    )

    def cache_price(self, cache_kb: int) -> float:
        """Price of one processor's cache module."""
        try:
            return self.cache_prices[cache_kb]
        except KeyError:
            raise KeyError(
                f"no cache option of {cache_kb}KB in the catalog; "
                f"available: {sorted(self.cache_prices)}"
            ) from None

    def l2_price(self, l2_kb: int | None) -> float:
        """Price of a shared-L2 module; zero when the platform has none."""
        if l2_kb is None:
            return 0.0
        try:
            return self.l2_prices[l2_kb]
        except KeyError:
            raise KeyError(
                f"no L2 option of {l2_kb}KB in the catalog; "
                f"available: {sorted(self.l2_prices)}"
            ) from None

    def network_price(self, network: NetworkKind) -> float:
        """Per-machine price of connecting to the given network."""
        try:
            return self.network_prices[network]
        except KeyError:
            raise KeyError(f"no price for network {network!r}") from None

    @property
    def cache_options_kb(self) -> tuple[int, ...]:
        return tuple(sorted(self.cache_prices))

    @property
    def network_options(self) -> tuple[NetworkKind, ...]:
        return tuple(self.network_prices)


#: The library's default 1999 market.
DEFAULT_CATALOG = PriceCatalog()
