"""Rule engine for the paper's Section 6 design principles.

The paper distills its case studies into six rules keyed on two workload
properties -- memory-boundedness (gamma) and program locality (beta) --
plus an upgrade heuristic.  :func:`classify_workload` applies the
paper's thresholds (gamma large/small around its examples, beta 100 for
locality, very large beta for I/O-heavy commercial loads) and
:func:`recommend` returns the corresponding platform guidance, quoting
the paper's own example program for each class.

Example -- Radix (gamma 0.37, beta 121) is memory bound with poor
locality, so the paper's Section 6 table sends it to an SMP:

>>> from repro.workloads.params import PAPER_RADIX
>>> classify_workload(PAPER_RADIX).value
'memory bound, poor locality'
>>> recommend(PAPER_RADIX).platform
'an SMP (even though the number of processors could be limited)'
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.workloads.params import WorkloadParams

__all__ = ["WorkloadClass", "Recommendation", "classify_workload", "recommend", "upgrade_advice"]


class WorkloadClass(str, Enum):
    """The five workload classes of the paper's Section 6."""

    CPU_BOUND_GOOD_LOCALITY = "CPU bound, good locality"
    CPU_BOUND_POOR_LOCALITY = "CPU bound, poor locality"
    MEMORY_BOUND_GOOD_LOCALITY = "memory bound, good locality"
    MEMORY_BOUND_POOR_LOCALITY = "memory bound, poor locality"
    MEMORY_AND_IO_BOUND = "memory and I/O bound"


@dataclass(frozen=True)
class Recommendation:
    """One Section 6 principle."""

    workload_class: WorkloadClass
    platform: str
    rationale: str
    paper_example: str

    def describe(self) -> str:
        return (
            f"{self.workload_class.value}: {self.platform}\n"
            f"  because {self.rationale}\n"
            f"  (the paper's example: {self.paper_example})"
        )


_RULES: dict[WorkloadClass, Recommendation] = {
    WorkloadClass.CPU_BOUND_GOOD_LOCALITY: Recommendation(
        workload_class=WorkloadClass.CPU_BOUND_GOOD_LOCALITY,
        platform="a slow network of a large number of high-speed workstations",
        rationale="data accesses to higher levels of the memory hierarchy will be rare",
        paper_example="LU",
    ),
    WorkloadClass.CPU_BOUND_POOR_LOCALITY: Recommendation(
        workload_class=WorkloadClass.CPU_BOUND_POOR_LOCALITY,
        platform="a fast network of a small number of high-speed workstations",
        rationale="data accesses using the network will be frequent in a network of workstations",
        paper_example="FFT",
    ),
    WorkloadClass.MEMORY_BOUND_GOOD_LOCALITY: Recommendation(
        workload_class=WorkloadClass.MEMORY_BOUND_GOOD_LOCALITY,
        platform="a slow network of workstations with a large capacity of memories",
        rationale=(
            "data accesses are likely kept within a computing node, exploiting parallel "
            "computing among CPUs and parallel data accesses among memory modules"
        ),
        paper_example="EDGE",
    ),
    WorkloadClass.MEMORY_BOUND_POOR_LOCALITY: Recommendation(
        workload_class=WorkloadClass.MEMORY_BOUND_POOR_LOCALITY,
        platform="an SMP (even though the number of processors could be limited)",
        rationale="data accesses to higher levels of the memory hierarchy will be frequent",
        paper_example="Radix",
    ),
    WorkloadClass.MEMORY_AND_IO_BOUND: Recommendation(
        workload_class=WorkloadClass.MEMORY_AND_IO_BOUND,
        platform="an SMP or a fast cluster of SMPs",
        rationale="the computation mainly depends on the performance of data transfer through a network",
        paper_example="commercial workload TPC-C",
    ),
}


def classify_workload(
    params: WorkloadParams,
    gamma_threshold: float = 1.0 / 3.0,
    beta_threshold: float = 100.0,
    io_beta_threshold: float = 1000.0,
) -> WorkloadClass:
    """Apply the paper's (gamma, beta) thresholds.

    Defaults split exactly where the paper's examples fall: FFT (0.20)
    and LU (0.31) are CPU bound, Radix (0.37) / EDGE (0.45) / TPC-C
    (0.36) memory bound; beta > 100 is "relatively poor locality"
    (FFT 103, Radix 121 vs LU 90, EDGE 85); TPC-C's beta of 1222 is
    "very large" (I/O bound).
    """
    if params.beta > io_beta_threshold and params.gamma > gamma_threshold:
        return WorkloadClass.MEMORY_AND_IO_BOUND
    memory_bound = params.gamma > gamma_threshold
    poor_locality = params.beta > beta_threshold
    if memory_bound:
        return (
            WorkloadClass.MEMORY_BOUND_POOR_LOCALITY
            if poor_locality
            else WorkloadClass.MEMORY_BOUND_GOOD_LOCALITY
        )
    return (
        WorkloadClass.CPU_BOUND_POOR_LOCALITY
        if poor_locality
        else WorkloadClass.CPU_BOUND_GOOD_LOCALITY
    )


def recommend(params: WorkloadParams, **thresholds) -> Recommendation:
    """The Section 6 principle that applies to this workload."""
    return _RULES[classify_workload(params, **thresholds)]


def upgrade_advice(network_bound: bool) -> str:
    """The paper's upgrade heuristic (Section 6, last principle)."""
    if network_bound:
        return (
            "network activities are largely independent of cache/memory capacity: "
            "upgrading the cluster network bandwidth should be the first priority"
        )
    return (
        "spend first on increasing cache/memory capacity to reduce the network usage"
    )
