"""Configuration-space generation (the paper's supporting tool (3)).

"A tool to support the generation of all possible cluster
configurations meeting the budget requirements."  The space is the
cross product of machine counts, processors per machine, cache options,
memory sizes and networks; the paper notes the integer domain is small
in practice (n <= 4, modest N), so plain enumeration is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.platform import PlatformSpec
from repro.cost.catalog import PriceCatalog
from repro.cost.model import assert_priceable, cluster_cost
from repro.sim.latencies import CPU_HZ, NetworkKind
from repro.topology.canned import deepen_spec

__all__ = ["CandidateSpace", "enumerate_configurations"]


@dataclass(frozen=True)
class CandidateSpace:
    """Bounds of the enumeration (defaults follow the paper's market)."""

    max_machines: int = 16
    processor_counts: tuple[int, ...] = (1, 2, 4)
    cache_kb_options: tuple[int, ...] = (256, 512)
    memory_mb_options: tuple[int, ...] = (32, 64, 128)
    networks: tuple[NetworkKind, ...] = (
        NetworkKind.ETHERNET_10,
        NetworkKind.ETHERNET_100,
        NetworkKind.ATM_155,
    )
    #: Shared-L2 options in KB; ``None`` entries mean "no L2".  Empty
    #: default keeps the paper's 1999 space (no L2 hardware).
    l2_kb_options: tuple = (None,)
    cpu_hz: float = CPU_HZ
    #: Divide cache/memory capacities by this when building the specs --
    #: lets the cost study run against scaled-down workloads (prices are
    #: still quoted for the full-size parts).
    size_scale: int = 1
    #: Topology mutations: for every flat cluster of N >= 4 machines,
    #: additionally offer it re-wired as racks of each of these sizes
    #: (an intra-rack network level is inserted; the flat network moves
    #: to the inter-rack level).  Empty default keeps the paper's flat
    #: space.
    rack_sizes: tuple[int, ...] = ()
    #: Intra-rack networks tried for each rack size.
    rack_networks: tuple[NetworkKind, ...] = (NetworkKind.ATM_155,)
    #: Hand-picked platforms (e.g. a topology file or a built-in deep
    #: platform) competing alongside the enumerated grid.  They must be
    #: priceable by the catalog.
    extra_platforms: tuple[PlatformSpec, ...] = ()
    #: Relative CPU speed grades offered by the market.  More than one
    #: grade turns on *machine-mix* enumeration: ``repro design --mix``
    #: (:func:`repro.scheduling.mix.enumerate_mixed_configurations`)
    #: combines unlike machines -- per-variant cache/memory/speed -- in
    #: one cluster and prices the faster CPUs via the catalog's
    #: ``speed_premium_per_unit``.
    machine_speeds: tuple[float, ...] = (1.0, 2.0)
    #: Machine-count ceiling for mixed clusters (the mix space is the
    #: cross product of two variants' counts, so it gets its own bound).
    mix_max_machines: int = 6

    def __post_init__(self) -> None:
        if self.max_machines < 1:
            raise ValueError("max_machines must be >= 1")
        if not self.processor_counts or min(self.processor_counts) < 1:
            raise ValueError("processor_counts must be positive")
        if self.size_scale < 1:
            raise ValueError("size_scale must be >= 1")
        if self.rack_sizes and min(self.rack_sizes) < 2:
            raise ValueError("rack sizes must be >= 2 machines")
        if not self.machine_speeds or min(self.machine_speeds) <= 0:
            raise ValueError("machine_speeds must be positive")
        if self.mix_max_machines < 2:
            raise ValueError("mix_max_machines must be >= 2")


def enumerate_configurations(
    budget: float,
    catalog: PriceCatalog | None = None,
    space: CandidateSpace | None = None,
) -> Iterator[tuple[PlatformSpec, float]]:
    """Yield every (platform, price) with price <= budget.

    Machine counts are pruned as soon as the cheapest machine variant no
    longer fits; parallel platforms only (n*N >= 2), matching the
    paper's setting.
    """
    from repro.cost.catalog import DEFAULT_CATALOG

    catalog = catalog or DEFAULT_CATALOG
    space = space or CandidateSpace()
    if budget <= 0:
        raise ValueError("budget must be positive")

    for n in space.processor_counts:
        for cache_kb in space.cache_kb_options:
            for memory_mb in space.memory_mb_options:
                for l2_kb in space.l2_kb_options:
                    for N in range(1, space.max_machines + 1):
                        if n * N < 2:
                            continue
                        networks: tuple[NetworkKind | None, ...]
                        networks = (None,) if N == 1 else space.networks
                        for net in networks:
                            spec = PlatformSpec(
                                name=_config_name(n, N, cache_kb, memory_mb, net, l2_kb),
                                n=n,
                                N=N,
                                cache_bytes=cache_kb * 1024 // space.size_scale,
                                memory_bytes=memory_mb * 1024 * 1024 // space.size_scale,
                                network=net,
                                cpu_hz=space.cpu_hz,
                                l2_bytes=(
                                    l2_kb * 1024 // space.size_scale
                                    if l2_kb is not None
                                    else None
                                ),
                            )
                            # Price the full-size parts regardless of scaling.
                            full = PlatformSpec(
                                name=spec.name,
                                n=n,
                                N=N,
                                cache_bytes=cache_kb * 1024,
                                memory_bytes=memory_mb * 1024 * 1024,
                                network=net,
                                cpu_hz=space.cpu_hz,
                                l2_bytes=l2_kb * 1024 if l2_kb is not None else None,
                            )
                            price = cluster_cost(catalog, full)
                            if price <= budget:
                                yield spec, price
                            if net is None:
                                continue
                            yield from _deepened(budget, catalog, space, spec, full)
    for extra in space.extra_platforms:
        assert_priceable(catalog, extra)
        price = cluster_cost(catalog, extra)
        if price <= budget:
            candidate = (
                extra.scaled(space.size_scale) if space.size_scale > 1 else extra
            )
            yield candidate, price


def _deepened(
    budget: float,
    catalog: PriceCatalog,
    space: CandidateSpace,
    spec: PlatformSpec,
    full: PlatformSpec,
) -> Iterator[tuple[PlatformSpec, float]]:
    """The "deepen the tree" mutations of one flat cluster candidate.

    Each valid rack size re-wires the N machines into switched racks
    behind the candidate's network; the price re-derives from the
    deepened full-size spec (per-level attachments), so a deep variant
    within budget competes on exactly the same footing.
    """
    for rack_size in space.rack_sizes:
        if spec.N < 4 or rack_size < 2 or spec.N % rack_size or spec.N // rack_size < 2:
            continue
        for rack_net in space.rack_networks:
            deep = deepen_spec(spec, rack_size, intra_network=rack_net)
            deep_price = cluster_cost(
                catalog, deepen_spec(full, rack_size, intra_network=rack_net)
            )
            if deep_price <= budget:
                yield deep, deep_price


def _config_name(
    n: int, N: int, cache_kb: int, memory_mb: int, net: NetworkKind | None, l2_kb=None
) -> str:
    netpart = f", {net.value}" if net else ""
    l2part = f"+{l2_kb}KB L2" if l2_kb is not None else ""
    return f"{N}x(n={n}, {cache_kb}KB{l2part}, {memory_mb}MB{netpart})"
