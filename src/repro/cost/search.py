"""Pruned, parallel, batched design-space search (the Eq. 6 engine at scale).

The paper solves  minimize E(Instr) s.t. C_cluster <= B  by enumerating
every candidate and evaluating the analytical model on each.  That is
exact but wasteful: most candidates are provably worse than the best one
found early.  This module keeps the *answers* bit-for-bit identical to
exhaustive enumeration while doing far less work, with three stacked
mechanisms:

1. **Batched evaluation** — candidates are evaluated through
   :func:`repro.core.batch.e_instr_seconds_batch` (bit-identical to
   scalar :func:`~repro.core.execution.evaluate`) in chunks, and a
   per-engine memo keyed on ``(workload locality/gamma, spec, sharing,
   fresh, rra)`` reuses evaluations across queries (many budgets of one
   workload share most candidates).
2. **Branch-and-bound pruning** — candidates are visited in ascending
   order of the admissible zero-contention lower bound
   (:func:`repro.core.batch.e_instr_lower_bounds`); a candidate whose
   bound exceeds the incumbent's exact time can never win *or tie*, so
   it is skipped without a model evaluation.  With ``method="pareto"``
   the incumbent is the running price/time Pareto front and a candidate
   is pruned only when an already-evaluated configuration at equal or
   lower price is strictly faster than the candidate's bound — which
   provably preserves the exact frontier (see ``docs/COST.md``).
3. **Parallel drivers** — a single query can shard its candidate space
   over the PR-3 :class:`repro.pool.FaultTolerantPool` (a serial probe
   of the lowest-bound candidates seeds every shard's incumbent — the
   "incumbent exchange" — and each shard prunes independently; worker
   crashes retry and degrade to serial), and a *batch* of queries fans
   out one query per worker.  Results land in the ``.repro_cache/``
   disk cache keyed on (workload, catalog, space, options, budget,
   method), with the corrupt-entry quarantine the simulation cache uses.

Observability: ``design_candidates_total``, ``design_evaluations_total``,
``design_pruned_total``, ``design_memo_hits_total`` and
``repro_cache_lookups_total{kind="design"}`` count the work; the bench
harness (``benchmarks/bench_optimizer.py``) records the pruning ratio.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.batch import BatchCase, e_instr_lower_bounds, e_instr_seconds_batch
from repro.core.platform import PlatformSpec
from repro.cost.catalog import DEFAULT_CATALOG, PriceCatalog
from repro.cost.configspace import CandidateSpace, enumerate_configurations
from repro.cost.optimizer import (
    DesignResult,
    ModelOptions,
    RankedConfiguration,
    _is_upgrade_of,
)
from repro.ioutil import atomic_write_bytes
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.pool import FaultTolerantPool
from repro.workloads.params import WorkloadParams

__all__ = [
    "DESIGN_CACHE_VERSION",
    "DesignQuery",
    "DesignSearch",
    "SearchStats",
    "SearchOutcome",
    "pareto_frontier",
    "upgrade_path",
]

_log = get_logger("repro.cost.search")

#: Bump when the pickled :class:`SearchOutcome` layout or anything that
#: determines a search answer changes shape without changing the key.
#: 2: candidate spaces can enumerate topology mutations (rack_sizes /
#:    extra_platforms) and specs may carry a declarative topology tree.
#: 3: candidate spaces grew machine-mix axes (machine_speeds,
#:    mix_max_machines) and catalogs a speed premium, so a space or
#:    catalog with non-default values no longer collides with an old
#:    entry keyed before those fields existed.
DESIGN_CACHE_VERSION = 3

#: Lowest-bound candidates evaluated serially to seed shard incumbents.
_PROBE = 32
#: Top size of a vectorized evaluation chunk.  Pruning walks ramp up to
#: it geometrically from ``_FIRST_CHUNK`` so the incumbent is set after
#: a handful of lowest-bound evaluations, while large spaces still
#: amortize NumPy over full-size batches.
_CHUNK = 64
_FIRST_CHUNK = 8
#: Below this many candidates a single query is not worth sharding.
_MIN_SHARD_WORK = 128

_METHODS = ("pruned", "pareto", "exhaustive")
#: How :meth:`DesignSearch.run` executes an evaluation wave: ``tensor``
#: answers every query in-process through one shared-memo batched
#: evaluation pass; ``pool`` fans one query per worker; ``auto`` picks
#: ``tensor`` for ``jobs <= 1`` and ``pool`` otherwise.
_LANES = ("auto", "tensor", "pool")


# ----------------------------------------------------------------------
# Public result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchStats:
    """Work accounting of one design query."""

    candidates: int  #: priced candidates within budget
    evaluated: int  #: full model evaluations actually performed
    pruned: int  #: candidates skipped via the lower bound
    memo_hits: int = 0  #: evaluations served from the in-memory memo
    from_cache: bool = False  #: whole answer served from the disk cache

    @property
    def pruning_ratio(self) -> float:
        """Fraction of candidates never evaluated (0 = exhaustive)."""
        return self.pruned / self.candidates if self.candidates else 0.0


@dataclass(frozen=True)
class SearchOutcome:
    """A design query's answer plus its work accounting."""

    result: DesignResult
    stats: SearchStats
    #: Price/time Pareto frontier over the evaluated candidates, cheapest
    #: first.  Exact for ``method="pareto"`` and ``"exhaustive"``; under
    #: ``"pruned"`` it is a subset (pruning keeps only the optimum exact).
    frontier: tuple[RankedConfiguration, ...] = field(repr=False, default=())

    @property
    def best(self) -> RankedConfiguration:
        return self.result.best


@dataclass(frozen=True)
class DesignQuery:
    """One (workload, budget) question for the batch driver."""

    workload: WorkloadParams
    budget: float
    method: str | None = None  #: override the engine's default method


def pareto_frontier(
    ranking: Iterable[RankedConfiguration],
) -> tuple[RankedConfiguration, ...]:
    """Non-dominated (price, E(Instr)) configurations, cheapest first.

    A configuration is kept iff no other is simultaneously no more
    expensive and no slower (with one of the two strict).  Ties on both
    coordinates keep the first configuration in ranking order.
    """
    points = sorted(
        (r for r in ranking if math.isfinite(r.e_instr_seconds)),
        key=lambda r: (r.price, r.e_instr_seconds),
    )
    front: list[RankedConfiguration] = []
    for r in points:
        if front and front[-1].e_instr_seconds <= r.e_instr_seconds:
            continue  # something no dearer is already at least as fast
        front.append(r)
    return tuple(front)


def upgrade_path(
    frontier: Sequence[RankedConfiguration],
) -> tuple[RankedConfiguration, ...]:
    """A purchase trajectory along the frontier: each step *grows* the last.

    Starting from the cheapest frontier configuration, greedily append
    the next-cheapest frontier entry that structurally contains the
    current one (same or larger n, N, cache, memory — the
    ``optimize_upgrade`` notion of an upgrade), yielding the sequence of
    machines an owner could buy incrementally without ever discarding
    capacity.  Frontier entries that would require shrinking are skipped.
    """
    path: list[RankedConfiguration] = []
    for r in frontier:
        if not path or _is_upgrade_of(r.spec, path[-1].spec):
            path.append(r)
    return tuple(path)


# ----------------------------------------------------------------------
# Model plumbing shared by the serial core and the pool workers
# ----------------------------------------------------------------------
def _case_for(
    spec: PlatformSpec, workload: WorkloadParams, options: ModelOptions
) -> BatchCase:
    """Mirror ``optimizer._predict``'s per-candidate model knobs."""
    return BatchCase(
        spec,
        sharing_fraction=(
            workload.sharing_at(spec.N) if options.use_sharing else 0.0
        ),
        sharing_fresh_fraction=workload.sharing_fresh_fraction,
        remote_rate_adjustment=(
            options.remote_rate_adjustment if spec.N > 1 else 0.0
        ),
    )


def _batch_kwargs(options: ModelOptions) -> dict:
    return dict(
        mode=options.mode,
        on_saturation="inf",
        barrier_scale=options.barrier_scale,
        cache_capacity_factor=options.cache_capacity_factor,
        contention_boost=options.contention_boost,
    )


def _bound_kwargs(options: ModelOptions) -> dict:
    # The zero-contention bound has no queueing, so contention_boost
    # (which only inflates queueing rates) cannot tighten it: the bound
    # stays admissible for every boost >= 1.
    return dict(
        barrier_scale=options.barrier_scale,
        cache_capacity_factor=options.cache_capacity_factor,
    )


class _ParetoFront:
    """Running lower envelope of evaluated (price, seconds) points.

    Supports the pruning query "what is the best exact time achieved at
    price <= p so far?" in O(log k).  Prices are kept ascending with
    strictly descending times, so the answer is the rightmost point at
    or below ``p``.
    """

    def __init__(self, seed: Iterable[tuple[float, float]] = ()) -> None:
        self._prices: list[float] = []
        self._seconds: list[float] = []
        for price, seconds in seed:
            self.add(price, seconds)

    def min_seconds_at(self, price: float) -> float:
        i = bisect_right(self._prices, price) - 1
        return self._seconds[i] if i >= 0 else math.inf

    def add(self, price: float, seconds: float) -> None:
        if not math.isfinite(seconds):
            return
        i = bisect_right(self._prices, price)
        if i > 0 and self._seconds[i - 1] <= seconds:
            return  # dominated by something no dearer
        self._prices.insert(i, price)
        self._seconds.insert(i, seconds)
        j = i + 1
        while j < len(self._prices) and self._seconds[j] >= seconds:
            del self._prices[j]
            del self._seconds[j]

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self._prices, self._seconds))


def _search_core(
    workload: WorkloadParams,
    candidates: Sequence[tuple[int, PlatformSpec, float]],
    options: ModelOptions,
    method: str,
    seed_points: Sequence[tuple[float, float]] = (),
    memo: dict | None = None,
    chunk: int = _CHUNK,
) -> tuple[list[tuple[int, float, float]], int, int]:
    """Prune-and-evaluate one candidate set; the engine's exact core.

    ``candidates`` is ``(enumeration_index, spec, price)`` triples;
    ``seed_points`` are (price, seconds) of configurations some other
    shard already evaluated (the incumbent exchange).  Returns
    ``(feasible, evaluated, memo_hits)`` where ``feasible`` holds
    ``(enumeration_index, price, e_instr_seconds)`` of every candidate
    whose model was computed and came back finite.

    Why the answers stay exact (docs/COST.md has the full argument): a
    candidate is pruned only when its admissible lower bound *strictly*
    exceeds an incumbent's exact time (at no higher price, for
    ``"pareto"``), so any candidate tying the optimum — bound <= its own
    exact time <= incumbent — is always evaluated.
    """
    locality, gamma = workload.locality, workload.gamma
    # The memo must key on the *workload* too, not just the candidate:
    # two workloads can share a spec and all sharing parameters while
    # differing in locality (alpha/beta/max_distance) or gamma, and the
    # memo outlives a single query.
    wkey = (locality, gamma)
    cases = [_case_for(spec, workload, options) for _, spec, _ in candidates]
    feasible: list[tuple[int, float, float]] = []
    evaluated = 0
    memo_hits = 0

    def eval_positions(positions: list[int]) -> list[float]:
        nonlocal evaluated, memo_hits
        seconds: dict[int, float] = {}
        misses: list[int] = []
        for p in positions:
            case = cases[p]
            key = (
                wkey,
                case.spec,
                case.sharing_fraction,
                case.sharing_fresh_fraction,
                case.remote_rate_adjustment,
            )
            if memo is not None and key in memo:
                seconds[p] = memo[key]
                memo_hits += 1
            else:
                misses.append(p)
        if misses:
            values = e_instr_seconds_batch(
                [cases[p] for p in misses], locality, gamma,
                **_batch_kwargs(options),
            )
            evaluated += len(misses)
            for p, value in zip(misses, values):
                value = float(value)
                seconds[p] = value
                if memo is not None:
                    case = cases[p]
                    memo[(
                        wkey,
                        case.spec,
                        case.sharing_fraction,
                        case.sharing_fresh_fraction,
                        case.remote_rate_adjustment,
                    )] = value
        return [seconds[p] for p in positions]

    def commit(positions: list[int], seconds: list[float]) -> None:
        for p, value in zip(positions, seconds):
            if math.isfinite(value):
                index, _, price = candidates[p]
                feasible.append((index, price, value))

    if method == "exhaustive":
        positions = list(range(len(candidates)))
        commit(positions, eval_positions(positions))
        return feasible, evaluated, memo_hits

    bounds = e_instr_lower_bounds(
        cases, locality, gamma, **_bound_kwargs(options)
    )
    order = np.argsort(bounds, kind="stable")  # (bound, enumeration) asc

    if method == "pruned":
        incumbent = min((s for _, s in seed_points), default=math.inf)
        cursor = 0
        step = min(_FIRST_CHUNK, chunk)
        while cursor < len(order):
            take = [
                int(p)
                for p in order[cursor:cursor + step]
                if bounds[p] <= incumbent
            ]
            if not take:
                break  # bounds ascend: everything left is prunable
            seconds = eval_positions(take)
            commit(take, seconds)
            finite = [s for s in seconds if math.isfinite(s)]
            if finite:
                incumbent = min(incumbent, min(finite))
            cursor += step
            step = min(chunk, step * 2)
        return feasible, evaluated, memo_hits

    if method != "pareto":
        raise ValueError(f"unknown search method {method!r}; use one of {_METHODS}")
    front = _ParetoFront(seed_points)
    pending: list[int] = []
    step = min(_FIRST_CHUNK, chunk)

    def flush() -> None:
        seconds = eval_positions(pending)
        commit(pending, seconds)
        for p, value in zip(pending, seconds):
            front.add(candidates[p][2], value)
        pending.clear()

    for p in order:
        p = int(p)
        if front.min_seconds_at(candidates[p][2]) < bounds[p]:
            continue  # strictly dominated even in the best case
        pending.append(p)
        if len(pending) >= step:
            flush()
            step = min(chunk, step * 2)
    if pending:
        flush()
    return feasible, evaluated, memo_hits


# ----------------------------------------------------------------------
# Pool workers (module-level: must be picklable)
# ----------------------------------------------------------------------
def _materialize(
    budget: float, catalog: PriceCatalog, space: CandidateSpace | None
) -> list[tuple[int, PlatformSpec, float]]:
    return [
        (i, spec, price)
        for i, (spec, price) in enumerate(
            enumerate_configurations(budget, catalog=catalog, space=space)
        )
    ]


def _solve_shard(args) -> tuple[list[tuple[int, float, float]], int, int, int]:
    """One shard of a single query: re-enumerate, keep my indices, search."""
    (workload, budget, catalog, space, options, method,
     shard, nshards, skip, seed_points, chunk) = args
    mine = [
        c for c in _materialize(budget, catalog, space)
        if c[0] not in skip and c[0] % nshards == shard
    ]
    feasible, evaluated, memo_hits = _search_core(
        workload, mine, options, method, seed_points=seed_points, chunk=chunk
    )
    return feasible, evaluated, memo_hits, len(mine)


def _solve_query(args):
    """One whole query of a batch: solved serially inside a worker."""
    workload, budget, catalog, space, options, method, chunk = args
    candidates = _materialize(budget, catalog, space)
    feasible, evaluated, memo_hits = _search_core(
        workload, candidates, options, method, chunk=chunk
    )
    return feasible, evaluated, memo_hits, len(candidates)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class DesignSearch:
    """A reusable design-query engine over one catalog and candidate space.

    Construct once, then answer any number of single
    (:meth:`search`, :meth:`search_upgrade`) or batched (:meth:`run`)
    queries; the evaluation memo, the worker pool and the disk cache
    persist across queries.

    Parameters mirror :func:`repro.cost.optimizer.optimize_cluster` plus:

    ``method``
        ``"pruned"`` (default) guarantees only the optimal configuration
        (and its full tie set) is exact; ``"pareto"`` additionally keeps
        the exact price/time frontier; ``"exhaustive"`` evaluates every
        candidate (still batched, still memoized).
    ``jobs``
        Worker processes.  ``1`` (default) stays in-process; more shards
        single queries and fans out batch queries via
        :class:`repro.pool.FaultTolerantPool` (retry / degrade-to-serial
        semantics included).
    ``lane``
        How :meth:`run` executes an evaluation wave: ``"tensor"``
        answers every query in one in-process batched pass sharing the
        evaluation memo and per-budget enumeration across queries,
        ``"pool"`` fans one query per worker, and ``"auto"`` (default)
        picks ``tensor`` when ``jobs <= 1`` and ``pool`` otherwise.
        Answers are identical across lanes; the choice is counted in
        ``design_wave_lane_total{lane}``.
    ``cache_dir``
        Optional ``.repro_cache`` root; answers are pickled under
        ``design/<sha256>.pkl`` keyed on everything that determines them.
    """

    def __init__(
        self,
        catalog: PriceCatalog | None = None,
        space: CandidateSpace | None = None,
        options: ModelOptions | None = None,
        *,
        method: str = "pruned",
        jobs: int = 1,
        lane: str = "auto",
        cache_dir: str | os.PathLike | None = None,
        chunk: int = _CHUNK,
        metrics: obs_metrics.MetricsRegistry | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
        query_timeout: float | None = None,
    ) -> None:
        if method not in _METHODS:
            raise ValueError(f"unknown search method {method!r}; use one of {_METHODS}")
        if lane not in _LANES:
            raise ValueError(f"unknown lane {lane!r}; use one of {_LANES}")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.lane = lane
        self.catalog = catalog or DEFAULT_CATALOG
        self.space = space
        self.options = options or ModelOptions()
        self.method = method
        self.chunk = chunk
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.metrics = metrics if metrics is not None else obs_metrics.REGISTRY
        self._candidates_total = self.metrics.counter(
            "design_candidates_total",
            "Design-space candidates priced within budget, across queries",
        )
        self._evaluations_total = self.metrics.counter(
            "design_evaluations_total",
            "Full analytical-model evaluations performed by the design search",
        )
        self._pruned_total = self.metrics.counter(
            "design_pruned_total",
            "Design candidates skipped via the admissible lower bound",
        )
        self._memo_hits_total = self.metrics.counter(
            "design_memo_hits_total",
            "Design evaluations served from the in-memory memo",
        )
        self._cache_lookups = self.metrics.counter(
            "repro_cache_lookups_total",
            ".repro_cache disk lookups by kind (sim/char/sharing) and outcome",
            labelnames=("kind", "outcome"),
        )
        self._cache_corrupt = self.metrics.counter(
            "repro_cache_corrupt_total",
            "Corrupt .repro_cache entries quarantined and recomputed, by kind",
            labelnames=("kind",),
        )
        self._pool = FaultTolerantPool(
            jobs,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            task_timeout=query_timeout,
            retries=self.metrics.counter(
                "repro_query_retries_total",
                "Design-query attempts retried after a failure",
            ),
            degradations=self.metrics.counter(
                "repro_pool_degradations_total",
                "Times a broken or timed-out process pool fell back to serial",
            ),
            kind="query",
            # Design queries carry no user seed; any fixed seed makes the
            # retry schedule reproducible while still decorrelated per task.
            jitter_seed=0,
        )
        self._wave_lane_total = self.metrics.counter(
            "design_wave_lane_total",
            "Design evaluation waves executed, by chosen lane",
            labelnames=("lane",),
        )
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Disk cache
    # ------------------------------------------------------------------
    def _cache_path(
        self, workload: WorkloadParams, budget: float, method: str
    ) -> Path | None:
        if self.cache_dir is None:
            return None
        payload = repr((
            DESIGN_CACHE_VERSION, workload, self.catalog, self.space,
            self.options, float(budget), method,
        ))
        digest = hashlib.sha256(payload.encode()).hexdigest()
        return self.cache_dir / "design" / f"{digest}.pkl"

    def _cache_load(self, path: Path | None) -> SearchOutcome | None:
        if path is None:
            return None
        try:
            with open(path, "rb") as f:
                outcome = pickle.load(f)
        except FileNotFoundError:
            outcome = None
        except Exception as exc:  # quarantine garbage, never crash
            self._cache_corrupt.labels(kind="design").inc()
            qdir = self.cache_dir / "quarantine"
            try:
                qdir.mkdir(parents=True, exist_ok=True)
                os.replace(path, qdir / f"design-{path.name}")
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
            _log.warning(
                "quarantined corrupt design-cache entry",
                path=str(path), error=f"{type(exc).__name__}: {exc}",
            )
            outcome = None
        hit = isinstance(outcome, SearchOutcome)
        self._cache_lookups.labels(
            kind="design", outcome="hit" if hit else "miss"
        ).inc()
        return outcome if hit else None

    def _cache_store(self, path: Path | None, outcome: SearchOutcome) -> None:
        if path is None:
            return
        try:
            atomic_write_bytes(path, pickle.dumps(outcome))
        except OSError:
            pass  # a cold cache is only a slowdown

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(
        self,
        workload: WorkloadParams,
        budget: float,
        method: str | None = None,
    ) -> SearchOutcome:
        """Answer one (workload, budget) design question.

        With ``jobs > 1`` the candidate space is sharded over the pool:
        a serial probe of the lowest-bound candidates seeds every
        shard's incumbent, shards prune independently, and the parent
        merges their evaluated sets.  Raises ``ValueError`` when no
        feasible parallel platform fits the budget (matching
        :func:`~repro.cost.optimizer.optimize_cluster`).
        """
        method = self._check_method(method)
        path = self._cache_path(workload, budget, method)
        cached = self._cache_load(path)
        if cached is not None:
            return replace(cached, stats=replace(cached.stats, from_cache=True))

        candidates = _materialize(budget, self.catalog, self.space)
        jobs = self._pool.jobs
        if jobs <= 1 or len(candidates) < max(_MIN_SHARD_WORK, 2 * _PROBE):
            feasible, evaluated, memo_hits = _search_core(
                workload, candidates, self.options, method,
                memo=self._memo, chunk=self.chunk,
            )
        else:
            feasible, evaluated, memo_hits = self._search_sharded(
                workload, budget, candidates, method, jobs
            )
        outcome = self._finish(
            workload, budget, candidates, feasible, evaluated, memo_hits
        )
        self._cache_store(path, outcome)
        return outcome

    def search_upgrade(
        self,
        workload: WorkloadParams,
        current: PlatformSpec,
        budget_increase: float,
        method: str | None = None,
    ) -> SearchOutcome:
        """The upgrade question through the pruned engine.

        Candidates are restricted to structural upgrades of ``current``
        (the :func:`~repro.cost.optimizer.optimize_upgrade` rule) under
        the current price plus ``budget_increase``; the current platform
        itself is always part of the candidate set, so the answer never
        regresses below the machine the owner already has.
        """
        from repro.cost.model import assert_priceable, cluster_cost

        method = self._check_method(method)
        if budget_increase < 0:
            raise ValueError("budget increase must be non-negative")
        assert_priceable(self.catalog, current)
        current_price = cluster_cost(self.catalog, current)
        budget = current_price + budget_increase
        candidates = [
            c for c in _materialize(budget, self.catalog, self.space)
            if _is_upgrade_of(c[1], current)
        ]
        # The owner's machine competes too (and guarantees feasibility);
        # give it an index past every enumerated one.
        next_index = max((i for i, _, _ in candidates), default=-1) + 1
        candidates.append((next_index, current, current_price))
        feasible, evaluated, memo_hits = _search_core(
            workload, candidates, self.options, method,
            memo=self._memo, chunk=self.chunk,
        )
        return self._finish(
            workload, budget, candidates, feasible, evaluated, memo_hits
        )

    def run(self, queries: Sequence[DesignQuery]) -> list[SearchOutcome]:
        """Answer a batch of queries through the configured lane.

        The tensor lane solves every uncached query in-process as one
        batched evaluation wave: the candidate enumeration is shared
        per budget and the evaluation memo is shared across queries
        (same-workload queries at different budgets overlap almost
        completely), so a wave costs roughly one query's evaluations
        instead of Q.  The pool lane fans one query per worker --
        workers solve serially (sharding and fan-out don't compose)
        and cannot share the memo across processes.  Answers are
        identical either way (the memo only replays exact floats);
        cached answers never hit either lane.  Results align with
        ``queries`` by position.
        """
        results: dict[int, SearchOutcome] = {}
        tasks: list[tuple[str, object]] = []
        task_meta: list[tuple[int, DesignQuery, Path | None]] = []
        for i, q in enumerate(queries):
            method = self._check_method(q.method)
            path = self._cache_path(q.workload, q.budget, method)
            cached = self._cache_load(path)
            if cached is not None:
                results[i] = replace(
                    cached, stats=replace(cached.stats, from_cache=True)
                )
                continue
            tasks.append((
                f"{q.workload.name}@${q.budget:,.0f}",
                (q.workload, q.budget, self.catalog, self.space,
                 self.options, method, self.chunk),
            ))
            task_meta.append((i, q, path))

        if tasks:
            lane = (
                "tensor"
                if self.lane == "tensor"
                or (self.lane == "auto" and self._pool.jobs <= 1)
                else "pool"
            )
            self._wave_lane_total.labels(lane=lane).inc()
            if lane == "tensor":
                enum_memo: dict[float, list] = {}
                for (_desc, args), (i, q, path) in zip(tasks, task_meta):
                    workload, budget, _catalog, _space, options, method, chunk = args
                    key = float(budget)
                    if key not in enum_memo:
                        enum_memo[key] = _materialize(
                            budget, self.catalog, self.space
                        )
                    candidates = enum_memo[key]
                    feasible, evaluated, memo_hits = _search_core(
                        workload, candidates, options, method,
                        memo=self._memo, chunk=chunk,
                    )
                    outcome = self._finish(
                        q.workload, q.budget, candidates, feasible,
                        evaluated, memo_hits,
                    )
                    self._cache_store(path, outcome)
                    results[i] = outcome
                return [results[i] for i in range(len(queries))]

        def collect(t: int, value) -> None:
            i, q, path = task_meta[t]
            feasible, evaluated, memo_hits, total = value
            candidates = _materialize(q.budget, self.catalog, self.space)
            outcome = self._finish(
                q.workload, q.budget, candidates, feasible, evaluated,
                memo_hits,
            )
            self._cache_store(path, outcome)
            results[i] = outcome

        self._pool.run(_solve_query, tasks, collect)
        return [results[i] for i in range(len(queries))]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_method(self, method: str | None) -> str:
        method = method or self.method
        if method not in _METHODS:
            raise ValueError(f"unknown search method {method!r}; use one of {_METHODS}")
        return method

    def _search_sharded(
        self,
        workload: WorkloadParams,
        budget: float,
        candidates: list[tuple[int, PlatformSpec, float]],
        method: str,
        jobs: int,
    ) -> tuple[list[tuple[int, float, float]], int, int]:
        """Partitioned single-query search with seeded incumbents."""
        cases = [_case_for(spec, workload, self.options) for _, spec, _ in candidates]
        bounds = e_instr_lower_bounds(
            cases, workload.locality, workload.gamma,
            **_bound_kwargs(self.options),
        )
        probe_positions = [int(p) for p in np.argsort(bounds, kind="stable")[:_PROBE]]
        probe = [candidates[p] for p in probe_positions]
        feasible, evaluated, memo_hits = _search_core(
            workload, probe, self.options,
            "exhaustive",  # the probe is tiny; evaluate it all
            memo=self._memo, chunk=self.chunk,
        )
        seed_points = tuple((price, seconds) for _, price, seconds in feasible)
        skip = frozenset(index for index, _, _ in probe)
        nshards = min(jobs, max(1, (len(candidates) - len(probe)) // self.chunk))
        tasks = [
            (
                f"{workload.name}@${budget:,.0f}#{shard}",
                (workload, budget, self.catalog, self.space, self.options,
                 method, shard, nshards, skip, seed_points, self.chunk),
            )
            for shard in range(nshards)
        ]
        merged = list(feasible)
        totals = [evaluated, memo_hits]

        def collect(_t: int, value) -> None:
            shard_feasible, shard_evaluated, shard_memo_hits, _size = value
            merged.extend(shard_feasible)
            totals[0] += shard_evaluated
            totals[1] += shard_memo_hits

        self._pool.run(_solve_shard, tasks, collect)
        return merged, totals[0], totals[1]

    def _finish(
        self,
        workload: WorkloadParams,
        budget: float,
        candidates: Sequence[tuple[int, PlatformSpec, float]],
        feasible: Sequence[tuple[int, float, float]],
        evaluated: int,
        memo_hits: int,
    ) -> SearchOutcome:
        specs = {index: spec for index, spec, _ in candidates}
        ranked = [
            RankedConfiguration(
                spec=specs[index], price=price, e_instr_seconds=seconds,
                estimate=None,
            )
            for index, price, seconds in sorted(feasible)  # enumeration order
        ]
        ranked.sort(key=lambda r: (r.e_instr_seconds, r.price))  # stable
        stats = SearchStats(
            candidates=len(candidates),
            evaluated=evaluated,
            pruned=len(candidates) - evaluated - memo_hits,
            memo_hits=memo_hits,
        )
        self._candidates_total.inc(stats.candidates)
        self._evaluations_total.inc(stats.evaluated)
        self._pruned_total.inc(stats.pruned)
        self._memo_hits_total.inc(stats.memo_hits)
        if not ranked:
            raise ValueError(
                f"no feasible parallel platform fits ${budget:,.0f} "
                f"(evaluated {evaluated} candidates)"
            )
        result = DesignResult(
            workload=workload,
            budget=budget,
            best=ranked[0],
            ranking=tuple(ranked),
            evaluated=evaluated,
        )
        return SearchOutcome(
            result=result, stats=stats, frontier=pareto_frontier(ranked)
        )
