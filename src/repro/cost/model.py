"""Cluster cost model (paper Eq. 5).

``C_cluster = N * C_machine(n) + N * C_net``: the price of N identical
machines plus N network attachments.  A single SMP pays no network cost
(its memory bus is part of the chassis premium).
"""

from __future__ import annotations

from repro.core.platform import PlatformSpec
from repro.cost.catalog import PriceCatalog

__all__ = [
    "machine_cost",
    "network_cost",
    "cluster_cost",
    "hetero_cluster_cost",
    "assert_priceable",
]


def machine_cost(
    catalog: PriceCatalog, n: int, cache_kb: int, memory_mb: int, l2_kb: int | None = None
) -> float:
    """C_machine(n): one node with n processors, caches, L2 and memory."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if memory_mb < 1:
        raise ValueError("memory_mb must be >= 1")
    base = catalog.workstation_base
    if n > 1:
        base += n * catalog.smp_chassis_per_socket + (n - 1) * catalog.smp_cpu
    return (
        base
        + n * catalog.cache_price(cache_kb)
        + catalog.l2_price(l2_kb)
        + memory_mb * catalog.memory_per_mb
    )


def network_cost(catalog: PriceCatalog, spec: PlatformSpec) -> float:
    """C_net per machine; zero for a single SMP (no cluster network)."""
    if spec.network is None:
        return 0.0
    return catalog.network_price(spec.network)


def _topology_network_cost(catalog: PriceCatalog, spec: PlatformSpec) -> float:
    """Total network price of a topology-defined platform.

    Each interconnect level charges one attachment per subtree it joins:
    the innermost level needs an adapter per machine, an inter-rack
    level one uplink per rack, and so on up the tree.  For a flat
    one-level cluster this reduces exactly to Eq. 5's ``N * C_net``.
    """
    total = spec.topology.total_machines
    cost = 0.0
    subtree = 1  # machines under one unit joined at the current level
    for level, under in spec.topology.interconnects:
        cost += (total // subtree) * catalog.network_price(level.network)
        subtree = under
    return cost


def cluster_cost(catalog: PriceCatalog, spec: PlatformSpec) -> float:
    """Eq. 5: total platform price (per-level for deep topologies)."""
    per_machine = machine_cost(
        catalog,
        n=spec.n,
        cache_kb=spec.cache_bytes // 1024,
        memory_mb=max(1, spec.memory_bytes // (1024 * 1024)),
        l2_kb=spec.l2_bytes // 1024 if spec.l2_bytes is not None else None,
    )
    if spec.topology is not None:
        return spec.N * per_machine + _topology_network_cost(catalog, spec)
    return spec.N * (per_machine + network_cost(catalog, spec))


def _leaf_cost(catalog: PriceCatalog, leaf) -> float:
    """Price one (possibly non-baseline-speed) machine leaf."""
    from repro.sim.latencies import ITEM_BYTES

    cache_kb = int(leaf.cache.capacity_items * ITEM_BYTES) // 1024
    memory_mb = max(1, int(leaf.memory.capacity_items * ITEM_BYTES) // (1024 * 1024))
    l2_kb = (
        int(leaf.l2.capacity_items * ITEM_BYTES) // 1024 if leaf.l2 is not None else None
    )
    base = machine_cost(catalog, n=leaf.processors, cache_kb=cache_kb, memory_mb=memory_mb, l2_kb=l2_kb)
    return base + leaf.processors * (leaf.speed - 1.0) * catalog.speed_premium_per_unit


def hetero_cluster_cost(catalog: PriceCatalog, topology) -> float:
    """Eq. 5 generalized to a (possibly mixed) topology tree.

    Machines are priced leaf by leaf -- so unlike subtrees simply sum --
    and every cluster node charges one network attachment per subtree it
    joins, which reduces to ``N * C_net`` on a flat homogeneous cluster.
    Faster-than-baseline CPUs pay the catalog's speed premium.
    """
    from repro.topology.ir import MachineNode

    if isinstance(topology, MachineNode):
        return _leaf_cost(catalog, topology)
    attach = len(topology.subtrees) * catalog.network_price(topology.interconnect.network)
    return attach + sum(hetero_cluster_cost(catalog, sub) for sub in topology.subtrees)


def assert_priceable(catalog: PriceCatalog, spec: PlatformSpec) -> None:
    """Fail fast, with the component named, when a catalog can't price a spec.

    The optimizer's entry points call this on user-supplied platforms
    (e.g. ``optimize_upgrade``'s current cluster) so a cache size or
    network missing from the catalog surfaces as a clear ``ValueError``
    up front instead of a ``KeyError`` deep inside enumeration.
    """
    try:
        cluster_cost(catalog, spec)
    except KeyError as exc:
        raise ValueError(
            f"platform '{spec.name}' cannot be priced by this catalog: "
            f"{exc.args[0]}"
        ) from None
