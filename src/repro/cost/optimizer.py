"""Budget-constrained cluster design and upgrade (paper Eq. 6, Section 6).

``optimize_cluster`` solves  minimize E(Instr) s.t. C_cluster <= B  by
exact enumeration (the paper: "we can determine these integer variables
and solve the optimization problem by enumerating solutions").
``optimize_upgrade`` solves the paper's second question -- given an
existing cluster and a budget increase B', choose the best upgraded
configuration, constrained to *grow* the current one (same or larger
n, N, cache, memory; network may be replaced), so the answer is an
upgrade path rather than a forklift replacement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.execution import ExecutionEstimate, evaluate
from repro.core.platform import PlatformSpec
from repro.cost.catalog import DEFAULT_CATALOG, PriceCatalog
from repro.cost.configspace import CandidateSpace, enumerate_configurations
from repro.cost.model import cluster_cost
from repro.workloads.params import WorkloadParams

__all__ = [
    "ModelOptions",
    "RankedConfiguration",
    "DesignResult",
    "UpgradeResult",
    "optimize_cluster",
    "optimize_upgrade",
]


@dataclass(frozen=True)
class ModelOptions:
    """How the optimizer invokes the performance model."""

    mode: str = "throttled"
    remote_rate_adjustment: float = 0.124
    barrier_scale: float = 1.0
    cache_capacity_factor: float = 1.0
    contention_boost: float = 1.0
    use_sharing: bool = True  #: apply the workload's measured sharing term


def _predict(
    spec: PlatformSpec, workload: WorkloadParams, options: ModelOptions
) -> ExecutionEstimate:
    sharing = workload.sharing_at(spec.N) if options.use_sharing else 0.0
    return evaluate(
        spec,
        workload.locality,
        workload.gamma,
        remote_rate_adjustment=options.remote_rate_adjustment if spec.N > 1 else 0.0,
        barrier_scale=options.barrier_scale,
        on_saturation="inf",
        mode=options.mode,  # type: ignore[arg-type]
        sharing_fraction=sharing,
        sharing_fresh_fraction=workload.sharing_fresh_fraction,
        cache_capacity_factor=options.cache_capacity_factor,
        contention_boost=options.contention_boost,
    )


@dataclass(frozen=True)
class RankedConfiguration:
    """One feasible configuration with its price and predicted time."""

    spec: PlatformSpec
    price: float
    e_instr_seconds: float
    estimate: ExecutionEstimate

    @property
    def cost_performance(self) -> float:
        """Price-time product: lower is more cost-effective."""
        return self.price * self.e_instr_seconds


@dataclass(frozen=True)
class DesignResult:
    """Outcome of a budget optimization."""

    workload: WorkloadParams
    budget: float
    best: RankedConfiguration
    ranking: tuple[RankedConfiguration, ...] = field(repr=False)
    evaluated: int = 0

    def describe(self, top: int = 5) -> str:
        lines = [
            f"optimal platform for {self.workload.name} under ${self.budget:,.0f} "
            f"({self.evaluated} candidates):"
        ]
        for i, r in enumerate(self.ranking[:top], start=1):
            mark = " <== best" if r is self.best else ""
            lines.append(
                f"  {i}. {r.spec.name:<44s} ${r.price:>8,.0f}  "
                f"E(Instr)={r.e_instr_seconds:.3e}s{mark}"
            )
        return "\n".join(lines)


def optimize_cluster(
    workload: WorkloadParams,
    budget: float,
    catalog: PriceCatalog | None = None,
    space: CandidateSpace | None = None,
    options: ModelOptions | None = None,
) -> DesignResult:
    """Paper Eq. 6: the cheapest-to-run platform a budget can buy.

    Raises ``ValueError`` when no parallel platform fits the budget.
    """
    catalog = catalog or DEFAULT_CATALOG
    options = options or ModelOptions()
    ranked: list[RankedConfiguration] = []
    evaluated = 0
    for spec, price in enumerate_configurations(budget, catalog=catalog, space=space):
        evaluated += 1
        est = _predict(spec, workload, options)
        if not math.isfinite(est.e_instr_seconds):
            continue  # saturated => infeasible
        ranked.append(
            RankedConfiguration(
                spec=spec, price=price, e_instr_seconds=est.e_instr_seconds, estimate=est
            )
        )
    if not ranked:
        raise ValueError(
            f"no feasible parallel platform fits ${budget:,.0f} "
            f"(evaluated {evaluated} candidates)"
        )
    ranked.sort(key=lambda r: (r.e_instr_seconds, r.price))
    return DesignResult(
        workload=workload,
        budget=budget,
        best=ranked[0],
        ranking=tuple(ranked),
        evaluated=evaluated,
    )


@dataclass(frozen=True)
class UpgradeResult:
    """Outcome of an upgrade optimization."""

    workload: WorkloadParams
    current: RankedConfiguration
    best: RankedConfiguration
    budget_increase: float
    ranking: tuple[RankedConfiguration, ...] = field(repr=False)

    @property
    def speedup(self) -> float:
        return self.current.e_instr_seconds / self.best.e_instr_seconds

    def describe(self, top: int = 5) -> str:
        lines = [
            f"upgrade for {self.workload.name}, +${self.budget_increase:,.0f} over "
            f"'{self.current.spec.name}' (E(Instr)={self.current.e_instr_seconds:.3e}s):"
        ]
        for i, r in enumerate(self.ranking[:top], start=1):
            gain = self.current.e_instr_seconds / r.e_instr_seconds
            lines.append(
                f"  {i}. {r.spec.name:<44s} +${r.price - self.current.price:>7,.0f}  "
                f"E(Instr)={r.e_instr_seconds:.3e}s  ({gain:.2f}x)"
            )
        return "\n".join(lines)


def _is_upgrade_of(candidate: PlatformSpec, current: PlatformSpec) -> bool:
    """Candidate keeps (or grows) everything the owner already has."""
    return (
        candidate.n >= current.n
        and candidate.N >= current.N
        and candidate.cache_bytes >= current.cache_bytes
        and candidate.memory_bytes >= current.memory_bytes
    )


def optimize_upgrade(
    workload: WorkloadParams,
    current: PlatformSpec,
    budget_increase: float,
    catalog: PriceCatalog | None = None,
    space: CandidateSpace | None = None,
    options: ModelOptions | None = None,
) -> UpgradeResult:
    """The paper's second question: the best way to spend B' more.

    The candidate set is restricted to configurations that structurally
    contain the current cluster; the spend limit is the current
    platform's price plus ``budget_increase``.
    """
    catalog = catalog or DEFAULT_CATALOG
    options = options or ModelOptions()
    if budget_increase < 0:
        raise ValueError("budget increase must be non-negative")
    current_price = cluster_cost(catalog, current)
    current_est = _predict(current, workload, options)
    current_ranked = RankedConfiguration(
        spec=current,
        price=current_price,
        e_instr_seconds=current_est.e_instr_seconds,
        estimate=current_est,
    )
    total_budget = current_price + budget_increase
    ranked: list[RankedConfiguration] = []
    for spec, price in enumerate_configurations(total_budget, catalog=catalog, space=space):
        if not _is_upgrade_of(spec, current):
            continue
        est = _predict(spec, workload, options)
        if not math.isfinite(est.e_instr_seconds):
            continue
        ranked.append(
            RankedConfiguration(
                spec=spec, price=price, e_instr_seconds=est.e_instr_seconds, estimate=est
            )
        )
    if not ranked:
        ranked = [current_ranked]
    ranked.sort(key=lambda r: (r.e_instr_seconds, r.price))
    return UpgradeResult(
        workload=workload,
        current=current_ranked,
        best=ranked[0],
        budget_increase=budget_increase,
        ranking=tuple(ranked),
    )
