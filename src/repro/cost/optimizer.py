"""Budget-constrained cluster design and upgrade (paper Eq. 6, Section 6).

``optimize_cluster`` solves  minimize E(Instr) s.t. C_cluster <= B  by
exact enumeration (the paper: "we can determine these integer variables
and solve the optimization problem by enumerating solutions"), with the
per-candidate model calls batched through the vectorized evaluator
(:mod:`repro.core.batch`) so answers are bit-identical to the scalar
model but arrive far faster.  ``optimize_upgrade`` solves the paper's
second question -- given an existing cluster and a budget increase B',
choose the best upgraded configuration, constrained to *grow* the
current one (same or larger n, N, cache, memory; network may be
replaced), so the answer is an upgrade path rather than a forklift
replacement.  For pruned search, Pareto frontiers, disk caching and
parallel batch queries, use :class:`repro.cost.search.DesignSearch`,
which shares these result types.

Example -- the paper's Case 1 question ("what is the best platform this
budget can buy for this program?") on a small candidate space:

>>> from repro.cost.configspace import CandidateSpace
>>> from repro.workloads.params import PAPER_LU
>>> space = CandidateSpace(max_machines=4, memory_mb_options=(32,),
...                        cache_kb_options=(256,))
>>> result = optimize_cluster(PAPER_LU, budget=8_000.0, space=space)
>>> result.best.price <= 8_000.0 and result.best.spec.total_processors >= 2
True
>>> result.best.e_instr_seconds == min(r.e_instr_seconds for r in result.ranking)
True

and the upgrade question ("how should I spend $2,000 more on the
cluster I own?"), whose answer may only *grow* the current machine:

>>> from repro.core.platform import PlatformSpec
>>> from repro.sim.latencies import NetworkKind
>>> owned = PlatformSpec("owned", n=1, N=2, cache_bytes=256 * 1024,
...                      memory_bytes=32 * 1024**2,
...                      network=NetworkKind.ETHERNET_10)
>>> up = optimize_upgrade(PAPER_LU, owned, budget_increase=2_000.0, space=space)
>>> up.best.spec.N >= owned.N and up.speedup >= 1.0
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.batch import BatchCase
from repro.core.execution import ExecutionEstimate, evaluate, evaluate_batch
from repro.core.platform import PlatformSpec
from repro.cost.catalog import DEFAULT_CATALOG, PriceCatalog
from repro.cost.configspace import CandidateSpace, enumerate_configurations
from repro.cost.model import assert_priceable, cluster_cost
from repro.workloads.params import WorkloadParams

__all__ = [
    "ModelOptions",
    "RankedConfiguration",
    "DesignResult",
    "UpgradeResult",
    "optimize_cluster",
    "optimize_upgrade",
]


@dataclass(frozen=True)
class ModelOptions:
    """How the optimizer invokes the performance model."""

    mode: str = "throttled"
    remote_rate_adjustment: float = 0.124
    barrier_scale: float = 1.0
    cache_capacity_factor: float = 1.0
    contention_boost: float = 1.0
    use_sharing: bool = True  #: apply the workload's measured sharing term


def _predict(
    spec: PlatformSpec, workload: WorkloadParams, options: ModelOptions
) -> ExecutionEstimate:
    sharing = workload.sharing_at(spec.N) if options.use_sharing else 0.0
    return evaluate(
        spec,
        workload.locality,
        workload.gamma,
        remote_rate_adjustment=options.remote_rate_adjustment if spec.N > 1 else 0.0,
        barrier_scale=options.barrier_scale,
        on_saturation="inf",
        mode=options.mode,  # type: ignore[arg-type]
        sharing_fraction=sharing,
        sharing_fresh_fraction=workload.sharing_fresh_fraction,
        cache_capacity_factor=options.cache_capacity_factor,
        contention_boost=options.contention_boost,
    )


def _batch_case(
    spec: PlatformSpec, workload: WorkloadParams, options: ModelOptions
) -> BatchCase:
    """The vectorized-lane mirror of :func:`_predict`'s per-spec knobs."""
    return BatchCase(
        spec,
        sharing_fraction=(
            workload.sharing_at(spec.N) if options.use_sharing else 0.0
        ),
        sharing_fresh_fraction=workload.sharing_fresh_fraction,
        remote_rate_adjustment=(
            options.remote_rate_adjustment if spec.N > 1 else 0.0
        ),
    )


def _predict_batch(
    specs: Sequence[PlatformSpec], workload: WorkloadParams, options: ModelOptions
):
    """E(Instr) seconds for many specs, bit-identical to :func:`_predict`."""
    return evaluate_batch(
        [_batch_case(spec, workload, options) for spec in specs],
        workload.locality,
        workload.gamma,
        mode=options.mode,  # type: ignore[arg-type]
        on_saturation="inf",
        barrier_scale=options.barrier_scale,
        cache_capacity_factor=options.cache_capacity_factor,
        contention_boost=options.contention_boost,
    )


@dataclass(frozen=True)
class RankedConfiguration:
    """One feasible configuration with its price and predicted time.

    ``estimate`` carries the full per-level model breakdown when the
    configuration came through the scalar lane (e.g. the current machine
    in an upgrade query); batched search paths leave it ``None`` -- call
    :func:`_predict` on the spec to reconstruct it on demand.
    """

    spec: PlatformSpec
    price: float
    e_instr_seconds: float
    estimate: ExecutionEstimate | None = None

    @property
    def cost_performance(self) -> float:
        """Price-time product: lower is more cost-effective."""
        return self.price * self.e_instr_seconds


@dataclass(frozen=True)
class DesignResult:
    """Outcome of a budget optimization."""

    workload: WorkloadParams
    budget: float
    best: RankedConfiguration
    ranking: tuple[RankedConfiguration, ...] = field(repr=False)
    evaluated: int = 0

    def describe(self, top: int = 5) -> str:
        lines = [
            f"optimal platform for {self.workload.name} under ${self.budget:,.0f} "
            f"({self.evaluated} candidates):"
        ]
        for i, r in enumerate(self.ranking[:top], start=1):
            mark = " <== best" if r is self.best else ""
            lines.append(
                f"  {i}. {r.spec.name:<44s} ${r.price:>8,.0f}  "
                f"E(Instr)={r.e_instr_seconds:.3e}s{mark}"
            )
        return "\n".join(lines)


def optimize_cluster(
    workload: WorkloadParams,
    budget: float,
    catalog: PriceCatalog | None = None,
    space: CandidateSpace | None = None,
    options: ModelOptions | None = None,
    method: str = "exhaustive",
) -> DesignResult:
    """Paper Eq. 6: the cheapest-to-run platform a budget can buy.

    ``method="exhaustive"`` (default) evaluates every candidate in one
    vectorized batch, so ``ranking`` is the *complete* feasible set.
    ``method="pruned"`` routes through the branch-and-bound engine
    (:class:`repro.cost.search.DesignSearch`): ``best`` is guaranteed
    identical, but ``ranking`` only holds the candidates whose lower
    bound forced an evaluation.  Raises ``ValueError`` when no parallel
    platform fits the budget.
    """
    catalog = catalog or DEFAULT_CATALOG
    options = options or ModelOptions()
    if method != "exhaustive":
        from repro.cost.search import DesignSearch  # circular at import time

        return DesignSearch(catalog, space, options, method=method).search(
            workload, budget
        ).result
    pairs = list(enumerate_configurations(budget, catalog=catalog, space=space))
    seconds = _predict_batch([spec for spec, _ in pairs], workload, options)
    ranked = [
        RankedConfiguration(spec=spec, price=price, e_instr_seconds=float(s))
        for (spec, price), s in zip(pairs, seconds)
        if math.isfinite(s)  # saturated => infeasible
    ]
    if not ranked:
        raise ValueError(
            f"no feasible parallel platform fits ${budget:,.0f} "
            f"(evaluated {len(pairs)} candidates)"
        )
    ranked.sort(key=lambda r: (r.e_instr_seconds, r.price))
    return DesignResult(
        workload=workload,
        budget=budget,
        best=ranked[0],
        ranking=tuple(ranked),
        evaluated=len(pairs),
    )


@dataclass(frozen=True)
class UpgradeResult:
    """Outcome of an upgrade optimization."""

    workload: WorkloadParams
    current: RankedConfiguration
    best: RankedConfiguration
    budget_increase: float
    ranking: tuple[RankedConfiguration, ...] = field(repr=False)

    @property
    def speedup(self) -> float:
        return self.current.e_instr_seconds / self.best.e_instr_seconds

    def describe(self, top: int = 5) -> str:
        lines = [
            f"upgrade for {self.workload.name}, +${self.budget_increase:,.0f} over "
            f"'{self.current.spec.name}' (E(Instr)={self.current.e_instr_seconds:.3e}s):"
        ]
        for i, r in enumerate(self.ranking[:top], start=1):
            gain = self.current.e_instr_seconds / r.e_instr_seconds
            lines.append(
                f"  {i}. {r.spec.name:<44s} +${r.price - self.current.price:>7,.0f}  "
                f"E(Instr)={r.e_instr_seconds:.3e}s  ({gain:.2f}x)"
            )
        return "\n".join(lines)


def _is_upgrade_of(candidate: PlatformSpec, current: PlatformSpec) -> bool:
    """Candidate keeps (or grows) everything the owner already has."""
    return (
        candidate.n >= current.n
        and candidate.N >= current.N
        and candidate.cache_bytes >= current.cache_bytes
        and candidate.memory_bytes >= current.memory_bytes
    )


def optimize_upgrade(
    workload: WorkloadParams,
    current: PlatformSpec,
    budget_increase: float,
    catalog: PriceCatalog | None = None,
    space: CandidateSpace | None = None,
    options: ModelOptions | None = None,
) -> UpgradeResult:
    """The paper's second question: the best way to spend B' more.

    The candidate set is restricted to configurations that structurally
    contain the current cluster; the spend limit is the current
    platform's price plus ``budget_increase``.
    """
    catalog = catalog or DEFAULT_CATALOG
    options = options or ModelOptions()
    if budget_increase < 0:
        raise ValueError("budget increase must be non-negative")
    assert_priceable(catalog, current)
    current_price = cluster_cost(catalog, current)
    current_est = _predict(current, workload, options)
    current_ranked = RankedConfiguration(
        spec=current,
        price=current_price,
        e_instr_seconds=current_est.e_instr_seconds,
        estimate=current_est,
    )
    total_budget = current_price + budget_increase
    pairs = [
        (spec, price)
        for spec, price in enumerate_configurations(
            total_budget, catalog=catalog, space=space
        )
        if _is_upgrade_of(spec, current)
    ]
    seconds = _predict_batch([spec for spec, _ in pairs], workload, options)
    ranked = [
        RankedConfiguration(spec=spec, price=price, e_instr_seconds=float(s))
        for (spec, price), s in zip(pairs, seconds)
        if math.isfinite(s)
    ]
    if not ranked:
        ranked = [current_ranked]
    ranked.sort(key=lambda r: (r.e_instr_seconds, r.price))
    return UpgradeResult(
        workload=workload,
        current=current_ranked,
        best=ranked[0],
        budget_increase=budget_increase,
        ranking=tuple(ranked),
    )
