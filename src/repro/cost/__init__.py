"""Cost model and cluster-design optimization (paper Eqs. 5-6, Section 6).

Turns the performance model into the paper's two design tools: pick the
cluster configuration minimizing E(Instr) under a budget, and pick the
best way to spend a budget *increase* on an existing cluster.  Prices
come from a synthetic 1999 catalog (the paper never prints its price
table -- DESIGN.md substitution 4); every price is plain data the user
can override.
"""

from repro.cost.catalog import PriceCatalog, DEFAULT_CATALOG
from repro.cost.model import assert_priceable, cluster_cost, machine_cost, network_cost
from repro.cost.configspace import CandidateSpace, enumerate_configurations
from repro.cost.optimizer import (
    DesignResult,
    ModelOptions,
    RankedConfiguration,
    UpgradeResult,
    optimize_cluster,
    optimize_upgrade,
)
from repro.cost.recommend import Recommendation, WorkloadClass, classify_workload, recommend
from repro.cost.search import (
    DesignQuery,
    DesignSearch,
    SearchOutcome,
    SearchStats,
    pareto_frontier,
    upgrade_path,
)

__all__ = [
    "CandidateSpace",
    "DEFAULT_CATALOG",
    "DesignQuery",
    "DesignResult",
    "DesignSearch",
    "ModelOptions",
    "PriceCatalog",
    "RankedConfiguration",
    "Recommendation",
    "SearchOutcome",
    "SearchStats",
    "UpgradeResult",
    "WorkloadClass",
    "assert_priceable",
    "classify_workload",
    "cluster_cost",
    "enumerate_configurations",
    "machine_cost",
    "network_cost",
    "optimize_cluster",
    "optimize_upgrade",
    "pareto_frontier",
    "recommend",
    "upgrade_path",
]
