"""Reusable fault-tolerant process pool (the PR-3 harness, generalized).

The experiment runner's pool machinery — retry with exponential backoff,
per-task wall-clock deadlines, degrade-to-serial on a broken or
deadline-blown pool, prompt worker cleanup on interrupt — is useful to
any fan-out of independent, picklable tasks.  :class:`FaultTolerantPool`
packages it; :class:`repro.experiments.runner.ExperimentRunner` drives
simulation grids through it and :mod:`repro.cost.search` drives design
queries through it.

The execution contract:

* ``fn(args)`` must be a module-level (picklable) function of one
  argument; tasks are independent, so any completion order yields the
  same results.
* A task attempt that raises is retried (on the pool when the pool is
  healthy, in-process otherwise) up to ``max_retries`` times with
  exponential backoff; a task still failing becomes a ``RuntimeError``
  naming the task.
* A worker death (:class:`BrokenProcessPool`) or a task exceeding
  ``task_timeout`` abandons the pool — terminating leftover workers —
  and runs every unfinished task serially instead of failing the batch.
* ``KeyboardInterrupt`` kills the pool and propagates, so callers keep
  whatever checkpoints ``on_result`` already wrote.

Metrics are injected, not global: pass obs counters as ``retries`` and
``degradations`` and the pool increments them at the same points the
experiment harness always has (``repro_cell_retries_total``,
``repro_pool_degradations_total``).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.backoff import backoff_delay
from repro.obs.log import get_logger

__all__ = ["FaultTolerantPool"]

_log = get_logger("repro.pool")


class _NullCounter:
    """Metrics sink used when no obs counter is injected."""

    def inc(self, amount: float = 1.0) -> None:  # pragma: no cover - trivial
        pass


class FaultTolerantPool:
    """Run independent picklable tasks with retries and serial fallback."""

    def __init__(
        self,
        jobs: int,
        *,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
        task_timeout: float | None = None,
        retries=None,
        degradations=None,
        kind: str = "cell",
        jitter_seed: int | None = None,
    ) -> None:
        """``jobs`` bounds the worker processes (1 = always in-process).

        ``task_timeout`` (wall seconds, ``None`` = unlimited) bounds each
        pooled task attempt; a blown deadline degrades the whole batch to
        serial execution.  ``retries`` / ``degradations`` are optional
        obs counters; ``kind`` names the task unit in error messages
        (``"cell"`` for simulation grids, ``"query"`` for design search).
        ``jitter_seed`` enables seeded full-jitter backoff (see
        :func:`repro.backoff.backoff_delay`): retry sleeps decorrelate
        across tasks yet replay bit-identically for a given seed.
        ``None`` keeps the legacy unjittered exponential schedule.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None for no limit)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.jobs = jobs
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.task_timeout = task_timeout
        self.kind = kind
        self.jitter_seed = jitter_seed
        self._retries = retries if retries is not None else _NullCounter()
        self._degradations = degradations if degradations is not None else _NullCounter()
        #: Worker pools actually created over this object's lifetime.
        #: Stays 0 for every in-process run (``jobs=1``, single task,
        #: or a caller routing around the pool), which is how the lane
        #: tests assert "a jobs=1 grid never spawns a pool".
        self.pools_spawned = 0

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable,
        tasks: Sequence[tuple[str, object]],
        on_result: Callable[[int, object], None],
    ) -> None:
        """Execute ``fn(args)`` for every ``(description, args)`` task.

        ``on_result(index, value)`` fires once per task, as soon as that
        task finishes (checkpoint-friendly); indices refer to ``tasks``.
        With one worker or one task everything runs in-process with the
        same retry policy and no pool is spawned.
        """
        if not tasks:
            return
        if self.jobs <= 1 or len(tasks) <= 1:
            for i, (desc, args) in enumerate(tasks):
                on_result(i, self._attempt_serial(fn, desc, args))
            return
        remaining = self._run_pooled(fn, tasks, on_result)
        if remaining:
            self._degradations.inc()
            _log.warning(
                "process pool degraded; running remaining tasks serially",
                kind=self.kind, remaining=len(remaining),
            )
            for i in remaining:
                desc, args = tasks[i]
                on_result(i, self._attempt_serial(fn, desc, args))

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int, desc: str = "") -> None:
        self._retries.inc()
        delay = self.backoff_delay(attempt, desc)
        if delay > 0:
            time.sleep(delay)

    def backoff_delay(self, attempt: int, desc: str = "") -> float:
        """The (deterministic) sleep before retry ``attempt`` of ``desc``."""
        return backoff_delay(
            self.retry_backoff,
            attempt,
            seed=self.jitter_seed,
            tokens=(self.kind, desc),
        )

    def _attempt_serial(self, fn: Callable, desc: str, args):
        """Run one task in-process, with the same retry policy as the pool."""
        attempt = 0
        while True:
            try:
                return fn(args)
            except Exception as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise RuntimeError(
                        f"{self.kind} {desc} failed after "
                        f"{attempt} attempt(s): {exc}"
                    ) from exc
                _log.warning(
                    "task failed; retrying serially",
                    kind=self.kind, task=desc, attempt=attempt, error=str(exc),
                )
                self._backoff(attempt, desc)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Abandon a pool without waiting on wedged workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass

    def _run_pooled(
        self,
        fn: Callable,
        tasks: Sequence[tuple[str, object]],
        on_result: Callable[[int, object], None],
    ) -> list[int]:
        """Run tasks on a process pool; return indices left for serial.

        Collection is as-completed so finished tasks reach ``on_result``
        while slower ones still run.  A worker exception retries the task
        on the pool (with backoff) up to ``max_retries`` times, then
        raises.  A broken pool (worker killed mid-task) or a task
        exceeding ``task_timeout`` abandons the pool — killing any
        leftover workers — and hands every unfinished task back to the
        caller.  ``KeyboardInterrupt`` cleans the pool up and propagates.
        """
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks)))
        self.pools_spawned += 1
        pending: dict = {}  # future -> task index
        attempts: dict[int, int] = {}
        deadlines: dict = {}  # future -> monotonic deadline
        try:
            for i, (_desc, args) in enumerate(tasks):
                fut = pool.submit(fn, args)
                pending[fut] = i
                if self.task_timeout is not None:
                    deadlines[fut] = time.monotonic() + self.task_timeout
            while pending:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - time.monotonic())
                done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
                if not done:  # a task blew its deadline: degrade
                    stalled = [pending[f] for f in sorted(deadlines, key=deadlines.get)]
                    _log.warning(
                        "task exceeded its deadline; abandoning the pool",
                        kind=self.kind, task=tasks[stalled[0]][0],
                        timeout_s=self.task_timeout,
                    )
                    self._kill_pool(pool)
                    return list(pending.values())
                for fut in done:
                    i = pending.pop(fut)
                    deadlines.pop(fut, None)
                    desc, args = tasks[i]
                    try:
                        value = fut.result()
                    except BrokenProcessPool:
                        # One dead worker poisons every in-flight future;
                        # hand all unfinished tasks (this one included)
                        # to the serial fallback.
                        self._kill_pool(pool)
                        return [i, *pending.values()]
                    except Exception as exc:
                        attempt = attempts.get(i, 0) + 1
                        attempts[i] = attempt
                        if attempt > self.max_retries:
                            raise RuntimeError(
                                f"{self.kind} {desc} failed after "
                                f"{attempt} attempt(s): {exc}"
                            ) from exc
                        _log.warning(
                            "task failed; retrying on the pool",
                            kind=self.kind, task=desc, attempt=attempt,
                            error=str(exc),
                        )
                        self._backoff(attempt, desc)
                        try:
                            retry = pool.submit(fn, args)
                        except RuntimeError:  # pool broke underneath us
                            self._kill_pool(pool)
                            return [i, *pending.values()]
                        pending[retry] = i
                        if self.task_timeout is not None:
                            deadlines[retry] = time.monotonic() + self.task_timeout
                    else:
                        on_result(i, value)
            pool.shutdown()
            return []
        except BaseException:
            # KeyboardInterrupt or a permanent task failure: never leak
            # worker processes, keep every checkpoint written so far.
            self._kill_pool(pool)
            raise
