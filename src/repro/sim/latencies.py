"""The paper's Section 5.1 architecture constants, in CPU cycles.

All timings below are quoted verbatim from the paper (consistent, per the
authors, with the Stanford FLASH numbers and Hennessy & Patterson).  The
CPU executes one instruction per cycle at 200 MHz, so a cycle is 5 ns.

Stack distances and cache capacities are measured in *items* of one
64-byte cache line throughout the library; the directory protocol used on
clusters manages 256-byte blocks (4 lines), also per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

__all__ = [
    "ITEM_BYTES",
    "CACHE_LINE_BYTES",
    "DIRECTORY_BLOCK_BYTES",
    "CPU_HZ",
    "NetworkKind",
    "LatencyTable",
    "PAPER_LATENCIES",
    "NETWORK_LATENCIES",
    "REMOTE_CACHED_LATENCIES",
]

#: Granularity of one stack-distance "item": a 64-byte cache line.
ITEM_BYTES = 64

#: SMP / workstation cache line size (bytes), paper Section 5.1.
CACHE_LINE_BYTES = 64

#: Directory-protocol block size on clusters (bytes), paper Section 5.1.
DIRECTORY_BLOCK_BYTES = 256

#: Paper's CPU clock: 200 MHz, one instruction per cycle.
CPU_HZ = 200_000_000


class NetworkKind(str, Enum):
    """The cluster interconnects evaluated by the paper."""

    ETHERNET_10 = "10Mb bus"
    ETHERNET_100 = "100Mb bus"
    ATM_155 = "155Mb switch"

    @property
    def is_bus(self) -> bool:
        """True for shared-medium (Ethernet) networks."""
        return self in (NetworkKind.ETHERNET_10, NetworkKind.ETHERNET_100)

    @property
    def is_switch(self) -> bool:
        """True for switched point-to-point (ATM) networks."""
        return self is NetworkKind.ATM_155

    @property
    def bandwidth_mbps(self) -> int:
        return {"10Mb bus": 10, "100Mb bus": 100, "155Mb switch": 155}[self.value]


@dataclass(frozen=True)
class LatencyTable:
    """Uncontended access costs (cycles) of every memory-hierarchy edge.

    Field names follow the paper's wording; each value is the *additional*
    cost an access pays on top of the faster levels it already traversed,
    which is exactly how the additive AMAT model (Eq. 7/11) and the
    simulators consume them.
    """

    instruction: int = 1  #: one instruction execution
    cache_hit: int = 1  #: access satisfied by the local cache
    l2_hit: int = 10  #: L1 miss served by a shared L2 (extension; the
    #: paper's 1999 platforms have no L2 -- used only when a platform
    #: declares one)
    cache_to_memory: int = 50  #: cache miss served by local / SMP memory
    memory_to_disk: int = 2000  #: memory miss served by the local disk
    remote_cache_smp: int = 15  #: miss served by a peer cache inside an SMP
    remote_node: int = 0  #: miss served by another node's memory, via the network
    remote_cached: int = 0  #: miss served by data cached on a remote node
    remote_disk_extra: int = 0  #: surcharge of a remote over a local disk access

    def with_network(self, network: "NetworkKind", clump: bool = False) -> "LatencyTable":
        """Return a copy with the paper's network-dependent costs filled in.

        ``clump=True`` selects the cluster-of-SMPs rows (3 cycles higher,
        reflecting the extra intra-SMP bus hop the paper charges).
        """
        remote_node, remote_cached = NETWORK_LATENCIES[network]
        if clump:
            remote_node += 3
            remote_cached += 3
        return replace(
            self,
            remote_node=remote_node,
            remote_cached=remote_cached,
            remote_disk_extra=remote_node,
        )


#: (cache miss to a remote node, cache miss to remotely cached data) in
#: cycles, for a cluster of workstations -- paper Section 5.1.
NETWORK_LATENCIES: dict[NetworkKind, tuple[int, int]] = {
    NetworkKind.ETHERNET_10: (45_075, 90_150),
    NetworkKind.ETHERNET_100: (4_575, 9_150),
    NetworkKind.ATM_155: (3_275, 6_550),
}

#: Convenience view of just the remotely-cached column.
REMOTE_CACHED_LATENCIES: dict[NetworkKind, int] = {
    k: v[1] for k, v in NETWORK_LATENCIES.items()
}

#: The paper's base table (network-independent rows).
PAPER_LATENCIES = LatencyTable()
