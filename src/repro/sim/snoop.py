"""Snooping write-invalidate protocol (the paper's SMP coherence).

Per the paper's Section 5.1: 64-byte lines, two-way set-associative LRU
caches, write-invalidate on a snooping bus.  Because every cache on an
SMP bus observes every transaction, the protocol can answer "is this
line in a peer cache?" by direct inspection of the peer caches, and a
write to a line held elsewhere broadcasts one invalidation.

The class operates on a *group* of caches (the processors of one SMP)
and returns structural outcomes -- where a miss was served from, who
was invalidated -- leaving cycle accounting to the platform back-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.sim.cache import SetAssociativeCache

__all__ = ["SnoopSource", "SnoopOutcome", "SnoopingBus"]


class SnoopSource(str, Enum):
    """Where an SMP access was satisfied."""

    OWN_CACHE = "own cache"
    PEER_CACHE = "peer cache"
    MEMORY = "memory"


@dataclass(frozen=True)
class SnoopOutcome:
    source: SnoopSource
    invalidated: tuple[int, ...]  #: local processor ids whose copy died
    writeback: bool  #: a dirty eviction occurred while filling
    #: The line the fill evicted from the issuing cache, as
    #: ``(line, was_dirty)`` -- None on a hit or an eviction-free fill.
    #: Back-ends that track per-line ownership elsewhere (the cluster
    #: directory) need the identity, not just the ``writeback`` bit.
    evicted: tuple[int, bool] | None = None


class SnoopingBus:
    """Coherence logic for the ``caches`` of one SMP node."""

    def __init__(self, caches: Sequence[SetAssociativeCache]) -> None:
        if not caches:
            raise ValueError("an SMP has at least one cache")
        self.caches = list(caches)
        self.invalidations = 0
        self.cache_to_cache = 0

    # ------------------------------------------------------------------
    def access(self, proc: int, line: int, is_write: bool) -> SnoopOutcome:
        """Perform one access by local processor ``proc``.

        Updates cache and sharing state; the returned outcome tells the
        back-end which latency class applies.
        """
        own = self.caches[proc]
        invalidated: list[int] = []
        writeback = False

        if own.lookup(line):
            if is_write:
                # Upgrade: kill any other copies, then write locally.
                for q, cache in enumerate(self.caches):
                    if q != proc and cache.contains(line):
                        cache.invalidate(line)
                        invalidated.append(q)
                self.invalidations += len(invalidated)
                own.mark_dirty(line)
            return SnoopOutcome(SnoopSource.OWN_CACHE, tuple(invalidated), False)

        # Miss: snoop the peers.
        peer_has = any(
            q != proc and cache.contains(line) for q, cache in enumerate(self.caches)
        )
        if is_write:
            for q, cache in enumerate(self.caches):
                if q != proc and cache.contains(line):
                    cache.invalidate(line)
                    invalidated.append(q)
            if invalidated:
                self.invalidations += len(invalidated)
        elif peer_has:
            # A read of a modified peer copy downgrades it M -> S: the
            # owner writes back and both end up with clean copies.
            for q, cache in enumerate(self.caches):
                if q != proc and cache.clean(line):
                    writeback = True
        evicted = own.fill(line, dirty=is_write)
        if evicted is not None and evicted[1]:
            writeback = True
        if peer_has:
            self.cache_to_cache += 1
            return SnoopOutcome(SnoopSource.PEER_CACHE, tuple(invalidated), writeback, evicted)
        return SnoopOutcome(SnoopSource.MEMORY, tuple(invalidated), writeback, evicted)

    # ------------------------------------------------------------------
    def holds(self, line: int) -> bool:
        """True if any cache of this SMP holds the line."""
        return any(c.contains(line) for c in self.caches)

    def holds_dirty(self, line: int) -> bool:
        return any(c.is_dirty(line) for c in self.caches)

    def invalidate_line(self, line: int) -> bool:
        """External (directory-initiated) invalidation of every local copy.

        Returns True when any evicted copy was dirty (writeback needed).
        """
        dirty = False
        for c in self.caches:
            if c.invalidate(line):
                dirty = True
        return dirty
