"""Topology-driven back-end: one cycle-accounting engine for any tree.

:class:`ComposedBackend` instantiates a platform's memory system from
its declarative topology (:mod:`repro.topology`) instead of picking one
of three bespoke classes.  The shape of the tree selects the coherence
machinery -- a snooping bus inside each multi-processor machine, a
home-based directory across machines, both for SMP nodes (the paper's
hybrid protocol) -- and a :class:`Fabric` routes every inter-machine
message through the interconnect level that is the lowest common
ancestor of source and destination.

For the paper's three shapes (one machine; flat cluster of
uniprocessors; flat cluster of SMPs) the composed back-end is
bit-identical to the legacy ``SmpBackend``/``CowBackend``/
``ClumpBackend`` in both execution lanes -- same ``SimulationResult``,
same statistics, same resource counters (property-tested in
``tests/sim/test_fastpath_equivalence.py``).  Deeper trees -- e.g. a
CLUMP of SMPs with an intra-rack switch and an inter-rack bus -- are
expressible only here.
"""

from __future__ import annotations

import numpy as np

from repro.core.platform import PlatformSpec
from repro.sim.backends.base import (
    MemoryBackend,
    SMP_INVALIDATE_CYCLES,
    _acc,
    eligible_prefix,
    timed_request,
)
from repro.sim.cache import SetAssociativeCache
from repro.sim.directory import LINES_PER_BLOCK, block_of, first_unowned_write
from repro.sim.hybrid import HybridProtocol, HybridServe
from repro.sim.memory import PagedMemory, Server, page_of
from repro.sim.network import BusNetwork, SwitchNetwork
from repro.sim.snoop import SnoopSource, SnoopingBus
from repro.topology.canned import topology_for_spec
from repro.topology.ir import ClusterNode, Contention, Topology

__all__ = ["ComposedBackend", "Fabric"]


class Fabric:
    """The interconnect levels of a topology tree, with LCA routing.

    Level ``j`` (innermost first) joins groups of ``child_size[j]``
    machines into clusters of ``under[j]``; the whole platform holds
    ``total // under[j]`` independent instances of that level.  A
    message between machines ``a`` and ``b`` crosses exactly one level:
    the innermost one whose instance contains both -- and is queued on
    that instance's bus (one server) or destination switch port,
    charged that level's remote cost.  For a flat cluster (depth 1)
    this reduces exactly to the legacy single ``make_network`` model.
    """

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, ClusterNode):
            raise ValueError("a Fabric needs at least one interconnect level")
        total = topology.total_machines
        self.total_machines = total
        self._under: list[int] = []
        self._child_size: list[int] = []
        self._count: list[int] = []
        self._instances: list[list] = []
        self.t_remote: list[float] = []
        self.t_remote_dirty: list[float] = []
        self.labels: list[str] = []
        child_size = 1
        for ic, under in topology.interconnects:
            count = under // child_size
            net_cls = BusNetwork if ic.contention is Contention.BUS else SwitchNetwork
            self._under.append(under)
            self._child_size.append(child_size)
            self._count.append(count)
            self._instances.append(
                [net_cls(ic.network, count) for _ in range(total // under)]
            )
            self.t_remote.append(ic.remote_node_cycles)
            self.t_remote_dirty.append(ic.remote_cached_cycles)
            self.labels.append(ic.label)
            child_size = under
        #: Cycle-attribution sink (shared with the owning back-end).
        self.profiler: dict | None = None
        #: Profile node id per level.  A flat cluster keeps the legacy
        #: ``"network"`` name (so legacy-vs-composed profiles compare
        #: equal); deeper trees name each level by its IR label, which
        #: is how a CLUMP-of-SMPs profile shows the intra-rack switch
        #: separately from the inter-rack bus.
        if len(self._under) == 1:
            self.node_names = ["network"]
        else:
            self.node_names = [f"network[{label}]" for label in self.labels]

    @property
    def depth(self) -> int:
        return len(self._under)

    def _route(self, a: int, b: int):
        """(level, instance, src port, dst port) for a cross-machine pair."""
        for j, under in enumerate(self._under):
            if a // under == b // under:
                child = self._child_size[j]
                count = self._count[j]
                return (
                    j,
                    self._instances[j][a // under],
                    (a // child) % count,
                    (b // child) % count,
                )
        raise AssertionError("machines share the tree root by construction")

    # -- message interface (mirrors ClusterNetwork) ---------------------
    def transfer(
        self, now: float, src: int, dst: int, dirty: bool = False,
        cause: str | None = None,
    ) -> float:
        """Move one block from machine src to dst; return the finish time.

        With a profiler installed and a ``cause`` given, the message's
        service (including any injected spike extra) lands in the
        routing level's ``(node, cause)`` bucket and its queueing wait
        in ``(node, "contention")``.  Background traffic (capacity
        write-backs that never advance a process clock) passes no
        cause and is not attributed -- its queueing effect shows up as
        later foreground contention, which is where the waiting
        actually happens.
        """
        j, net, sp, dp = self._route(src, dst)
        cycles = self.t_remote_dirty[j] if dirty else self.t_remote[j]
        prof = self.profiler
        if prof is None or cause is None:
            return net.transfer(now, sp, dp, cycles)
        service = net.service_of(now, cycles)
        finish = net.transfer(now, sp, dp, cycles)
        node = self.node_names[j]
        _acc(prof, node, cause, service)
        _acc(prof, node, "contention", finish - now - service)
        return finish

    def control(self, now: float, src: int, dst: int) -> float:
        """Send a short address-only message (invalidate / ack)."""
        j, net, sp, dp = self._route(src, dst)
        return net.control(now, sp, dp, self.t_remote[j])

    def node_of(self, a: int, b: int) -> str:
        """Profile node id of the level a ``(a, b)`` message crosses."""
        return self.node_names[self._route(a, b)[0]]

    # -- aggregate bookkeeping ------------------------------------------
    def install_latency_extra(self, extra_of_time) -> None:
        for nets in self._instances:
            for net in nets:
                net.latency_extra = extra_of_time

    @property
    def busy_cycles(self) -> float:
        return sum(net.busy_cycles for nets in self._instances for net in nets)

    @property
    def messages(self) -> int:
        return sum(net.messages for nets in self._instances for net in nets)

    @property
    def control_messages(self) -> int:
        return sum(net.control_messages for nets in self._instances for net in nets)

    def level_busy_cycles(self, j: int) -> float:
        return sum(net.busy_cycles for net in self._instances[j])

    def level_requests(self, j: int) -> int:
        return sum(net.messages + net.control_messages for net in self._instances[j])

    @property
    def outer_t_remote(self) -> float:
        """Uncontended block cost of the outermost (root) level."""
        return self.t_remote[-1]


class ComposedBackend(MemoryBackend):
    """Cycle accounting for any declarative topology tree.

    One class, three access shapes picked by the tree, not by a kind
    enum: a lone machine uses the snooping bus alone; a cluster of
    uniprocessor machines uses the directory through the same hybrid
    protocol (each node's "snoop group" is a single cache); a cluster
    of SMP machines uses both layers.  All cross-machine timing flows
    through the :class:`Fabric`, which works at any depth.
    """

    def __init__(self, spec: PlatformSpec, home_machine_of_line: np.ndarray) -> None:
        super().__init__(spec, home_machine_of_line)
        topo = topology_for_spec(spec)
        self.topology = topo
        machine = topo.machine
        n = machine.processors
        N = topo.total_machines
        self.t_hit = float(machine.cache.tau_cycles)
        self.t_peer = float(machine.cache.peer_tau_cycles)
        self.t_mem = float(machine.memory.tau_cycles)
        self.t_disk = float(machine.disk.tau_cycles)
        self.t_l2 = (
            float(machine.l2.tau_cycles)
            if machine.l2 is not None
            else float(spec.latencies.l2_hit)
        )

        if N == 1:
            # -- one machine: snooping bus, shared memory, shared disk --
            self.caches = [
                SetAssociativeCache(spec.cache_items, ways=spec.cache_ways)
                for _ in range(n)
            ]
            self.snoop = SnoopingBus(self.caches)
            self.l2 = (
                SetAssociativeCache(spec.l2_items, ways=8)
                if spec.l2_items is not None
                else None
            )
            self.bus = Server()
            self.memory = PagedMemory(spec.memory_items)
            self.disk = Server()
            self.fabric = None
            self._access_impl = self._access_smp
            self._batch_impl = self._batch_smp
            return

        # -- multi-machine: hybrid protocol over a routed fabric --------
        self.fabric = Fabric(topo)
        self.t_remote = self.fabric.outer_t_remote
        self.l2s = (
            [SetAssociativeCache(spec.l2_items, ways=8) for _ in range(N)]
            if spec.l2_items is not None
            else None
        )
        self.memories = [PagedMemory(spec.memory_items) for _ in range(N)]
        self.disks = [Server() for _ in range(N)]
        if n == 1:
            self.caches = [
                SetAssociativeCache(spec.cache_items, ways=spec.cache_ways)
                for _ in range(N)
            ]
            snoops = [SnoopingBus([c]) for c in self.caches]
            self._access_impl = self._access_cow
            self._batch_impl = self._batch_cow
        else:
            self.caches = [
                [
                    SetAssociativeCache(spec.cache_items, ways=spec.cache_ways)
                    for _ in range(n)
                ]
                for _ in range(N)
            ]
            snoops = [SnoopingBus(self.caches[m]) for m in range(N)]
            self.buses = [Server() for _ in range(N)]  # per-SMP memory bus
            self._access_impl = self._access_clump
            self._batch_impl = self._batch_clump
        self.protocol = HybridProtocol(snoops, self.home_of_line_block, N)

    def home_of_line_block(self, block: int) -> int:
        return self.home_of_line(block * LINES_PER_BLOCK)

    def install_profiler(self, sink: dict | None) -> None:
        super().install_profiler(sink)
        if self.fabric is not None:
            self.fabric.profiler = sink

    # ------------------------------------------------------------------
    def access(self, proc: int, line: int, is_write: bool, now: float) -> float:
        return self._access_impl(proc, line, is_write, now)

    def access_batch(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        """Vectorized run of pure-local hits (see the base-class contract)."""
        return self._batch_impl(proc, lines, writes, now)

    # ------------------------------------------------------------------
    # one machine (the legacy SMP shape)
    # ------------------------------------------------------------------
    def _access_smp(self, proc: int, line: int, is_write: bool, now: float) -> float:
        st = self.stats
        st.references += 1
        t = now + self.t_hit
        outcome = self.snoop.access(proc, line, is_write)
        if is_write and self.l2 is not None:
            # a store makes any L2 copy stale; the dirty line lives in L1
            self.l2.invalidate(line)
        if outcome.invalidated:
            st.invalidations += len(outcome.invalidated)
        if outcome.writeback:
            st.writebacks += 1
            self.bus.request(t, self.t_mem)  # background write-back traffic

        prof = self.profiler
        if outcome.source is SnoopSource.OWN_CACHE:
            st.cache_hits += 1
            if is_write and outcome.invalidated:
                t = timed_request(
                    prof, self.bus, t, SMP_INVALIDATE_CYCLES,
                    "memory bus", "coherence",
                )
            return t
        if outcome.source is SnoopSource.PEER_CACHE:
            st.peer_cache += 1
            return timed_request(
                prof, self.bus, t, self.t_peer, "cache", "peer_cache", "memory bus"
            )

        # Served past the L1s: the shared L2 (if any) filters, then the
        # page capacity decides memory vs disk.
        if self.l2 is not None and not is_write:
            if self.l2.lookup(line):
                st.l2_hits += 1
                return timed_request(
                    prof, self.bus, t, self.t_l2, "l2", "l2", "memory bus"
                )
            self.l2.fill(line)
        st.local_memory += 1
        if self.memory.access(page_of(line)):
            return timed_request(
                prof, self.bus, t, self.t_mem, "memory", "local_memory", "memory bus"
            )
        st.disk += 1  # sub-stage: the access also visited memory
        t = timed_request(
            prof, self.bus, t, self.t_mem, "memory", "local_memory", "memory bus"
        )
        return timed_request(prof, self.disk, t, self.t_disk, "disk", "disk")

    def _batch_smp(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        # Eligible: own-cache read hits, plus (no shared L2) write hits
        # to lines no peer holds -- already-dirty lines wholesale, clean
        # upgrades peer-checked individually (see SmpBackend history).
        cache = self.caches[proc]
        ok, slots = cache.residency(lines)
        k, skip = eligible_prefix(ok)
        if k == 0:
            return 0, skip
        dirty_marks = None
        if self.l2 is not None:
            bad = writes[:k]
            if bad.any():
                k = int(bad.argmax())
                if k == 0:
                    return 0, 1
        else:
            bad = writes[:k] & ~cache.dirty_at(slots[:k])
            if bad.any():
                first_bad = -1
                caches = self.caches
                for j in np.flatnonzero(bad).tolist():
                    line = int(lines[j])
                    if any(
                        c.contains(line) for q, c in enumerate(caches) if q != proc
                    ):
                        k = j  # held elsewhere: invalidate needed, go scalar
                        break
                    if first_bad < 0:
                        first_bad = j
                if k == 0:
                    return 0, 1
                if 0 <= first_bad < k:
                    # consumed clean-line upgrades: set their dirty bits
                    dirty_marks = writes[:k]
        cache.touch_positions(slots[:k], dirty=dirty_marks)
        st = self.stats
        st.references += k
        st.cache_hits += k
        return k, k + 1 if k < lines.size else k

    # ------------------------------------------------------------------
    # cluster of uniprocessor machines (the legacy COW shape)
    # ------------------------------------------------------------------
    def _invalidate_l2_block(self, machine: int, block: int) -> None:
        l2 = self.l2s[machine]
        base = block * LINES_PER_BLOCK
        for l in range(base, base + LINES_PER_BLOCK):
            l2.invalidate(l)

    def _home_memory_time(self, t: float, home: int, line: int) -> float:
        """Charge the home machine's memory (and disk on a page fault)."""
        if self.memories[home].access(page_of(line)):
            return t
        self.stats.disk += 1
        return timed_request(
            self.profiler, self.disks[home], t, self.t_disk, "disk", "disk"
        )

    def _access_cow(self, proc: int, line: int, is_write: bool, now: float) -> float:
        st = self.stats
        st.references += 1
        machine = proc  # one process per machine
        t = now + self.t_hit
        block = block_of(line)
        out = self.protocol.access(machine, 0, line, is_write)

        if out.serve is HybridServe.OWN_CACHE:
            st.cache_hits += 1
            if is_write:
                if self.l2s is not None:
                    self.l2s[machine].invalidate(line)
                if out.invalidated_machines or out.data_source is not None:
                    st.invalidations += len(out.invalidated_machines)
                    if self.l2s is not None:
                        for m in out.invalidated_machines:
                            self._invalidate_l2_block(m, block)
                    if out.data_source is not None:
                        st.writebacks += 1
                        if self.l2s is not None:
                            self._invalidate_l2_block(out.data_source, block)
                        t = self.fabric.transfer(
                            t, out.data_source, machine, dirty=True,
                            cause="coherence",
                        )
                    else:
                        # Invalidation round trips; the writer waits for
                        # the last acknowledgement.  The whole elapsed
                        # wait is attributed to the level that carried
                        # the last-finishing ack -- same server call
                        # order with or without a profiler.
                        last, slowest = t, None
                        for m in out.invalidated_machines:
                            fin = self.fabric.control(t, machine, m)
                            if fin > last:
                                last, slowest = fin, m
                        prof = self.profiler
                        if prof is not None and slowest is not None:
                            _acc(
                                prof, self.fabric.node_of(machine, slowest),
                                "coherence", last - t,
                            )
                        t = last
            return t

        # Cache miss: the protocol already ran the directory transition
        # and the L1 invalidations; mirror them in the L2s and settle the
        # eviction the fill may have caused.
        st.invalidations += len(out.invalidated_machines)
        if self.l2s is not None:
            for m in out.invalidated_machines:
                self._invalidate_l2_block(m, block)
        if out.evicted is not None and out.evicted[1]:
            st.writebacks += 1
            ev_home = self.home_of_line(out.evicted[0])
            if ev_home != machine:
                # Background write-back over the network.
                self.fabric.transfer(t, machine, ev_home)
            self.protocol.directory.drop_owner(block_of(out.evicted[0]), machine)

        prof = self.profiler
        if out.serve is HybridServe.REMOTE_DIRTY:
            st.remote_dirty += 1
            if is_write and self.l2s is not None:
                self._invalidate_l2_block(out.data_source, block)
            return self.fabric.transfer(
                t, out.data_source, machine, dirty=True, cause="remote_dirty"
            )
        if out.serve is HybridServe.LOCAL_MEMORY:
            if self.l2s is not None and not is_write:
                if self.l2s[machine].lookup(line):
                    st.l2_hits += 1
                    if prof is not None:
                        _acc(prof, "l2", "l2", self.t_l2)
                    return t + self.t_l2
                self.l2s[machine].fill(line)
            st.local_memory += 1
            if prof is not None:
                _acc(prof, "memory", "local_memory", self.t_mem)
            t += self.t_mem
            return self._home_memory_time(t, machine, line)
        st.remote_clean += 1
        t = self.fabric.transfer(t, machine, out.home, cause="remote_clean")
        return self._home_memory_time(t, out.home, line)

    def _batch_cow(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        # Eligible: read hits, plus write hits to directory-exclusive
        # blocks (silent upgrade) when there is no L2.  The L1 dirty bit
        # is not a valid shortcut: a remote read drops exclusivity
        # without clearing the reader-side flag.
        machine = proc  # one process per machine
        cache = self.caches[machine]
        ok, slots = cache.residency(lines)
        k, skip = eligible_prefix(ok)
        if k == 0:
            return 0, skip
        wr = writes[:k]
        if wr.any():
            if self.l2s is not None:
                k = int(wr.argmax())  # first write cuts the run
            else:
                k = first_unowned_write(
                    self.protocol.directory.exclusive_owner, machine, lines, wr, k
                )
            if k == 0:
                return 0, 1
            wr = writes[:k]
        cache.touch_positions(slots[:k], dirty=wr if wr.any() else None)
        st = self.stats
        st.references += k
        st.cache_hits += k
        return k, k + 1 if k < lines.size else k

    # ------------------------------------------------------------------
    # cluster of SMP machines (the legacy CLUMP shape, any depth)
    # ------------------------------------------------------------------
    def _access_clump(self, proc: int, line: int, is_write: bool, now: float) -> float:
        st = self.stats
        st.references += 1
        machine = proc // self.spec.n
        local_proc = proc % self.spec.n
        bus = self.buses[machine]
        t = now + self.t_hit

        out = self.protocol.access(machine, local_proc, line, is_write)
        if self.l2s is not None and is_write:
            self.l2s[machine].invalidate(line)
            base = (line // LINES_PER_BLOCK) * LINES_PER_BLOCK
            for m in out.invalidated_machines:
                for l in range(base, base + LINES_PER_BLOCK):
                    self.l2s[m].invalidate(l)
        st.invalidations += len(out.invalidated_machines) + out.local_invalidations
        if out.writeback:
            st.writebacks += 1
            bus.request(t, self.t_mem)  # background write-back on the SMP bus

        prof = self.profiler
        if out.serve is HybridServe.OWN_CACHE:
            st.cache_hits += 1
            if is_write and out.local_invalidations:
                t = timed_request(
                    prof, bus, t, SMP_INVALIDATE_CYCLES, "memory bus", "coherence"
                )
            if is_write and out.invalidated_machines:
                last, slowest = t, None
                for m in out.invalidated_machines:
                    fin = self.fabric.control(t, machine, m)
                    if fin > last:
                        last, slowest = fin, m
                if prof is not None and slowest is not None:
                    _acc(
                        prof, self.fabric.node_of(machine, slowest),
                        "coherence", last - t,
                    )
                t = last
            return t
        if out.serve is HybridServe.PEER_CACHE:
            st.peer_cache += 1
            return timed_request(
                prof, bus, t, self.t_peer, "cache", "peer_cache", "memory bus"
            )
        if out.serve is HybridServe.LOCAL_MEMORY:
            if self.l2s is not None and not is_write:
                if self.l2s[machine].lookup(line):
                    st.l2_hits += 1
                    return timed_request(
                        prof, bus, t, self.t_l2, "l2", "l2", "memory bus"
                    )
                self.l2s[machine].fill(line)
            st.local_memory += 1
            t = timed_request(
                prof, bus, t, self.t_mem, "memory", "local_memory", "memory bus"
            )
            return self._home_memory_time(t, machine, line)
        if out.serve is HybridServe.REMOTE_DIRTY:
            st.remote_dirty += 1
            assert out.data_source is not None
            return self.fabric.transfer(
                t, out.data_source, machine, dirty=True, cause="remote_dirty"
            )
        st.remote_clean += 1
        t = self.fabric.transfer(t, machine, out.home, cause="remote_clean")
        return self._home_memory_time(t, out.home, line)

    def _batch_clump(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        # Both coherence layers must be quiet: read hits always are; a
        # write hit needs the line dirty in the issuing cache (no snoop
        # broadcast) AND the node directory-exclusive (silent upgrade),
        # with no L2 to invalidate.
        n = self.spec.n
        machine = proc // n
        cache = self.caches[machine][proc % n]
        ok, slots = cache.residency(lines)
        k, skip = eligible_prefix(ok)
        if k == 0:
            return 0, skip
        w = writes[:k]
        if w.any():
            if self.l2s is not None:
                k = int(w.argmax())  # first write cuts the run
            else:
                bad = w & ~cache.dirty_at(slots[:k])
                if bad.any():
                    k = int(bad.argmax())
                if k:
                    k = first_unowned_write(
                        self.protocol.directory.exclusive_owner,
                        machine,
                        lines,
                        writes,
                        k,
                    )
            if k == 0:
                return 0, 1
        cache.touch_positions(slots[:k])
        st = self.stats
        st.references += k
        st.cache_hits += k
        return k, k + 1 if k < lines.size else k

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def install_network_spikes(self, extra_of_time) -> None:
        if self.fabric is not None:
            self.fabric.install_latency_extra(extra_of_time)

    def barrier_overhead(self) -> float:
        """Barrier exit cost: the release round trip of the outermost
        shared medium (plus the SMP bus release inside SMP nodes)."""
        self.stats.barrier_count += 1
        if self.fabric is None:
            return 2.0 * self.t_mem
        network_part = 2.0 * self.fabric.outer_t_remote * 0.25  # address-only
        if self.spec.n == 1:
            return network_part
        return network_part + 2.0 * self.t_mem

    def resource_busy_cycles(self) -> dict[str, float]:
        if self.fabric is None:
            return {"memory bus": self.bus.busy_cycles, "disk": self.disk.busy_cycles}
        out = {"network": self.fabric.busy_cycles}
        if self.spec.n > 1:
            out["memory buses"] = sum(b.busy_cycles for b in self.buses)
        out["disks"] = sum(d.busy_cycles for d in self.disks)
        if self.fabric.depth > 1:
            for j, label in enumerate(self.fabric.labels):
                out[f"network[{label}]"] = self.fabric.level_busy_cycles(j)
        return out

    def resource_requests(self) -> dict[str, int]:
        if self.fabric is None:
            return {"memory bus": self.bus.requests, "disk": self.disk.requests}
        out = {"network": self.fabric.messages + self.fabric.control_messages}
        if self.spec.n > 1:
            out["memory buses"] = sum(b.requests for b in self.buses)
        out["disks"] = sum(d.requests for d in self.disks)
        if self.fabric.depth > 1:
            for j, label in enumerate(self.fabric.labels):
                out[f"network[{label}]"] = self.fabric.level_requests(j)
        return out

    # ------------------------------------------------------------------
    def bus_utilization(self, total_cycles: float) -> float:
        """Fraction of simulated time the (single machine's) memory bus
        was busy."""
        if self.fabric is not None or total_cycles <= 0:
            return 0.0
        return self.bus.busy_cycles / total_cycles

    def network_utilization(self, total_cycles: float) -> float:
        if self.fabric is None or total_cycles <= 0:
            return 0.0
        return self.fabric.busy_cycles / total_cycles

    def coherence_traffic_fraction(self) -> float:
        """Share of bus transactions that are protocol-induced
        (invalidate broadcasts + cache-to-cache transfers); capacity
        write-backs excluded.  Meaningful for the one-machine shape."""
        st = self.stats
        coherent = st.invalidations + st.peer_cache
        total = coherent + st.local_memory + st.writebacks
        return coherent / total if total else 0.0
