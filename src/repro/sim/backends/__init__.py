"""Memory-system back-ends of the paper's Section 5.1.

The production back-end is the topology-driven
:class:`~repro.sim.backends.composed.ComposedBackend`, instantiated
from a platform's declarative tree (:mod:`repro.topology`); it covers
the paper's five simulators -- SMP (snooping bus), cluster of
workstations and cluster of SMPs (each over a bus-based Ethernet or a
switched ATM) -- and deeper multi-level fabrics the legacy classes
cannot express.  ``SmpBackend``/``CowBackend``/``ClumpBackend`` are
kept as the bespoke reference implementations the composed back-end is
property-tested against for bit-identity.
"""

from repro.sim.backends.base import BackendStats, MemoryBackend, make_backend
from repro.sim.backends.smp import SmpBackend
from repro.sim.backends.cow import CowBackend
from repro.sim.backends.clump import ClumpBackend
from repro.sim.backends.composed import ComposedBackend, Fabric

__all__ = [
    "BackendStats",
    "ClumpBackend",
    "ComposedBackend",
    "CowBackend",
    "Fabric",
    "MemoryBackend",
    "SmpBackend",
    "make_backend",
]
