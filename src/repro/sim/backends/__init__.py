"""The five memory-system back-ends of the paper's Section 5.1.

One back-end per platform/network family: SMP (snooping bus), cluster
of workstations and cluster of SMPs (each over a bus-based Ethernet or
a switched ATM -- the network object, not the class, selects the
topology, giving the paper's five simulators).
"""

from repro.sim.backends.base import BackendStats, MemoryBackend, make_backend
from repro.sim.backends.smp import SmpBackend
from repro.sim.backends.cow import CowBackend
from repro.sim.backends.clump import ClumpBackend

__all__ = [
    "BackendStats",
    "ClumpBackend",
    "CowBackend",
    "MemoryBackend",
    "SmpBackend",
    "make_backend",
]
