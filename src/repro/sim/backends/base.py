"""Back-end protocol and shared bookkeeping.

A back-end owns all timing-relevant state of one platform -- caches,
coherence structures, buses, memories, disks, the cluster network --
and exposes a single hot method, :meth:`MemoryBackend.access`, that the
execution engine calls once per memory reference.  ``access`` returns
the completion time of the reference; every queueing effect is realized
through the FCFS :class:`~repro.sim.memory.Server` objects the back-end
routes the request through.

Back-ends may additionally implement :meth:`MemoryBackend.access_batch`,
the engine's vectorized fast lane: a run of consecutive references that
provably cannot interact with any other process (own-cache hits that
touch no shared server and mutate no coherence state) is consumed as one
array operation instead of N ``access`` calls.  The contract is strict:
the cache state, statistics and completion times after a batched run
must be bit-identical to the scalar path, so a back-end only consumes a
prefix it can prove is pure-local and leaves everything else to
``access``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.platform import PlatformSpec
from repro.core.hierarchy import PlatformKind

__all__ = [
    "BackendStats",
    "MemoryBackend",
    "make_backend",
    "eligible_prefix",
    "BATCH_CHUNK",
    "_acc",
    "timed_request",
]

#: Bus occupancy (cycles) of an address-only invalidate on an SMP bus.
SMP_INVALIDATE_CYCLES = 2.0

#: One ``access_batch`` call evaluates at most this many references.
BATCH_CHUNK = 4096


def _acc(prof: dict, node: str, cause: str, cycles: float) -> None:
    """Attribute ``cycles`` to one ``(node, cause)`` profile bucket.

    The sink is a plain dict so the hot path stays a hash update; zero
    amounts (e.g. a contention-free server request) are skipped so
    profiles only carry buckets that actually happened.
    """
    if cycles != 0.0:
        key = (node, cause)
        prof[key] = prof.get(key, 0.0) + cycles


def timed_request(prof, server, t: float, service: float, node: str, cause: str,
                  wait_node: str | None = None) -> float:
    """A profiled FCFS server request: attribute service and wait.

    Splits the request's elapsed time into its service (to ``(node,
    cause)``) and its queueing wait (to ``(wait_node or node,
    "contention")``).  ``finish - t - service`` is exact on the 2^-6
    cycle grid, so the two buckets reassemble the elapsed time
    bit-exactly.  With ``prof is None`` this is just ``server.request``.
    """
    finish = server.request(t, service)
    if prof is not None:
        _acc(prof, node, cause, service)
        _acc(prof, wait_node or node, "contention", finish - t - service)
    return finish


def eligible_prefix(ok: np.ndarray) -> tuple[int, int]:
    """``(consumed, skip)`` for an eligibility mask.

    ``consumed`` is the length of the leading all-True run; when it is
    zero, ``skip`` counts the leading ineligible references (at least 1)
    so the engine knows how far to carry on scalar before retrying.
    Allocation-free: two argmin/argmax scans instead of index vectors.
    """
    k = int(ok.argmin())  # first False, or 0 when there is none
    if k > 0:
        return k, k
    if ok.size and ok[0]:
        return ok.size, ok.size  # no False at all
    skip = int(ok.argmax())  # first True, or 0 when all False
    if skip == 0:
        skip = ok.size
    return 0, max(skip, 1)


@dataclass
class BackendStats:
    """Access-class counters every back-end maintains."""

    references: int = 0
    cache_hits: int = 0
    l2_hits: int = 0  #: served by a shared L2 (only when the platform has one)
    peer_cache: int = 0  #: served cache-to-cache inside an SMP
    local_memory: int = 0
    remote_clean: int = 0  #: served by a remote node's memory
    remote_dirty: int = 0  #: served by a remote node's cache (dirty)
    disk: int = 0  #: page faults (sub-stage of memory-served accesses)
    invalidations: int = 0
    writebacks: int = 0
    barrier_count: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.cache_hits / self.references if self.references else 0.0

    @property
    def remote_ratio(self) -> float:
        if not self.references:
            return 0.0
        return (self.remote_clean + self.remote_dirty) / self.references

    def as_dict(self) -> dict:
        d = {
            k: getattr(self, k)
            for k in (
                "references",
                "cache_hits",
                "l2_hits",
                "peer_cache",
                "local_memory",
                "remote_clean",
                "remote_dirty",
                "disk",
                "invalidations",
                "writebacks",
                "barrier_count",
            )
        }
        d.update(self.extra)
        return d


class MemoryBackend(ABC):
    """One platform's cycle-accounting memory system."""

    #: Cycle-attribution sink: ``None`` (the default, zero hot-path
    #: cost) or a ``dict`` mapping ``(node, cause)`` to cycles that
    #: every timed path feeds via :func:`_acc`.  Class attribute so
    #: unprofiled back-ends pay only an attribute read per miss.
    profiler: dict | None = None

    def __init__(self, spec: PlatformSpec, home_machine_of_line: np.ndarray) -> None:
        self.spec = spec
        self.home_machine = home_machine_of_line
        self.stats = BackendStats()

    def install_profiler(self, sink: dict | None) -> None:
        """Start attributing cycles into ``sink`` (``None`` detaches).

        Sub-backends with owned timing components (e.g. the composed
        back-end's fabric) override to forward the sink.
        """
        self.profiler = sink

    @abstractmethod
    def access(self, proc: int, line: int, is_write: bool, now: float) -> float:
        """Process one reference issued at ``now``; return completion time."""

    def access_batch(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        """Consume a prefix of pure-local references in one vectorized step.

        Every consumed reference must be a pure-local cache hit -- one
        that touches no shared server and mutates no state outside
        ``proc``'s own cache -- applied exactly as the scalar path
        would have (statistics, LRU stamps, dirty marks).  Timing stays
        with the engine: each consumed hit costs the back-end's
        ``t_hit``, which the engine folds into its precomputed issue
        schedule, so the back-end neither reads nor returns clocks
        (``now`` is informational).

        Returns ``(consumed, skip)`` with ``skip >= max(consumed, 1)``:
        the length of the leading pure-local run, and how far from the
        window start the engine should advance (scalar-stepping past
        ``consumed``) before re-attempting a batch.  A run cut short at
        ``consumed < lines.size`` reports ``skip = consumed + 1`` --
        the cutting reference is known-ineligible right now, so the
        engine takes it scalar instead of burning a guaranteed-empty
        batch call on it; a fully consumed window reports
        ``skip = consumed``.

        The default declines every batch; back-ends opt in by overriding.
        """
        return 0, max(lines.size, 1)

    @abstractmethod
    def barrier_overhead(self) -> float:
        """Fixed cycles added when a barrier releases (sync transactions)."""

    def install_network_spikes(self, extra_of_time) -> None:
        """Install the fault-injection network-latency hook.

        ``extra_of_time(now) -> cycles`` is added to the service time of
        every inter-node message issued at ``now`` (see
        :class:`~repro.faults.plan.NetworkSpike`).  Back-ends with a
        cluster network forward the hook to it; the default is a no-op
        because an SMP has no inter-node network to perturb.  Batched
        references are always pure-local cache hits, so the hook can
        never affect the vectorized lane -- both lanes stay
        bit-identical under any spike schedule.
        """

    def resource_busy_cycles(self) -> dict[str, float]:
        """Busy cycles per serialized resource (bus, network, disks...).

        Divided by the simulated span this is each resource's
        utilization -- the designer's bottleneck question.  Subclasses
        override; the default reports nothing.
        """
        return {}

    def resource_requests(self) -> dict[str, int]:
        """Cumulative request counts per serialized resource.

        Same keys as :meth:`resource_busy_cycles`; the interval sampler
        diffs both so a timeline shows traffic (requests per window)
        alongside occupancy.  Subclasses override together with
        :meth:`resource_busy_cycles`; the default reports nothing.
        """
        return {}

    def machine_of_proc(self, proc: int) -> int:
        return proc // self.spec.n

    def home_of_line(self, line: int) -> int:
        """Home machine of a line; data beyond the mapped space is
        distributed round-robin by directory block."""
        if line < self.home_machine.size:
            return int(self.home_machine[line])
        return (line >> 2) % self.spec.N


def make_backend(spec: PlatformSpec, home_machine_of_line: np.ndarray) -> MemoryBackend:
    """Instantiate the back-end for a platform spec.

    Every platform -- the paper's three flat shapes and any deeper
    declarative topology -- is served by the one topology-driven
    :class:`~repro.sim.backends.composed.ComposedBackend`; the legacy
    ``SmpBackend``/``CowBackend``/``ClumpBackend`` classes remain as
    the bit-identity reference implementations.  An unrecognized
    classification raises a :class:`ValueError` naming the platform and
    its kind instead of silently falling through to a wrong model.
    """
    from repro.sim.backends.composed import ComposedBackend

    kind = spec.kind
    if kind not in (PlatformKind.SMP, PlatformKind.COW, PlatformKind.CLUMP):
        raise ValueError(
            f"no simulator back-end for platform {spec.name!r}: "
            f"unsupported platform kind {kind!r} (supported: "
            f"{', '.join(k.name for k in PlatformKind)})"
        )
    return ComposedBackend(spec, home_machine_of_line)
