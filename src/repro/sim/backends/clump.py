"""Cluster-of-SMPs back-end: hybrid coherence over SMP nodes.

Combines the SMP back-end's intra-node structure (per-processor caches,
snooping memory bus, shared disk) with the COW back-end's inter-node
structure (home-based directory, cluster network).  Latencies use the
paper's CLUMP rows: the remote-node and remotely-cached costs are three
cycles above the COW values (the extra intra-SMP bus hop).
"""

from __future__ import annotations

import numpy as np

from repro.core.platform import PlatformSpec
from repro.sim.backends.base import (
    MemoryBackend,
    SMP_INVALIDATE_CYCLES,
    _acc,
    eligible_prefix,
    timed_request,
)
from repro.sim.cache import SetAssociativeCache
from repro.sim.directory import LINES_PER_BLOCK, first_unowned_write
from repro.sim.hybrid import HybridProtocol, HybridServe
from repro.sim.memory import PagedMemory, Server, page_of
from repro.sim.network import make_network
from repro.sim.snoop import SnoopingBus

__all__ = ["ClumpBackend"]


class ClumpBackend(MemoryBackend):
    """N SMP nodes of n processors each, on a bus or switch network."""

    def __init__(self, spec: PlatformSpec, home_machine_of_line: np.ndarray) -> None:
        if spec.n < 2 or spec.N < 2 or spec.network is None:
            raise ValueError("ClumpBackend needs n >= 2, N >= 2 and a network")
        super().__init__(spec, home_machine_of_line)
        lat = spec.latencies.with_network(spec.network, clump=True)
        self.t_hit = float(lat.cache_hit)
        self.t_peer = float(lat.remote_cache_smp)
        self.t_mem = float(lat.cache_to_memory)
        self.t_disk = float(lat.memory_to_disk)
        self.t_remote = float(lat.remote_node)
        self.t_remote_dirty = float(lat.remote_cached)

        n, N = spec.n, spec.N
        self.caches = [
            [SetAssociativeCache(spec.cache_items, ways=spec.cache_ways) for _ in range(n)] for _ in range(N)
        ]
        snoops = [SnoopingBus(self.caches[m]) for m in range(N)]
        self.t_l2 = float(lat.l2_hit)
        self.l2s = (
            [SetAssociativeCache(spec.l2_items, ways=8) for _ in range(N)]
            if spec.l2_items is not None
            else None
        )
        self.buses = [Server() for _ in range(N)]  # per-SMP memory bus
        self.memories = [PagedMemory(spec.memory_items) for _ in range(N)]
        self.disks = [Server() for _ in range(N)]
        self.network = make_network(spec.network, N)
        self.protocol = HybridProtocol(snoops, self.home_of_line_block, N)

    def home_of_line_block(self, block: int) -> int:
        return self.home_of_line(block * LINES_PER_BLOCK)

    # ------------------------------------------------------------------
    def _home_memory_time(self, t: float, home: int, line: int) -> float:
        if self.memories[home].access(page_of(line)):
            return t
        self.stats.disk += 1
        return timed_request(
            self.profiler, self.disks[home], t, self.t_disk, "disk", "disk"
        )

    def _net_transfer(
        self, t: float, src: int, dst: int, cycles: float, cause: str
    ) -> float:
        """A profiled foreground network transfer (service + wait split)."""
        prof = self.profiler
        if prof is None:
            return self.network.transfer(t, src, dst, cycles)
        service = self.network.service_of(t, cycles)
        finish = self.network.transfer(t, src, dst, cycles)
        _acc(prof, "network", cause, service)
        _acc(prof, "network", "contention", finish - t - service)
        return finish

    def access(self, proc: int, line: int, is_write: bool, now: float) -> float:
        st = self.stats
        st.references += 1
        machine = proc // self.spec.n
        local_proc = proc % self.spec.n
        bus = self.buses[machine]
        t = now + self.t_hit

        out = self.protocol.access(machine, local_proc, line, is_write)
        if self.l2s is not None and is_write:
            self.l2s[machine].invalidate(line)
            base = (line // LINES_PER_BLOCK) * LINES_PER_BLOCK
            for m in out.invalidated_machines:
                for l in range(base, base + LINES_PER_BLOCK):
                    self.l2s[m].invalidate(l)
        st.invalidations += len(out.invalidated_machines) + out.local_invalidations
        if out.writeback:
            st.writebacks += 1
            bus.request(t, self.t_mem)  # background write-back on the SMP bus

        prof = self.profiler
        if out.serve is HybridServe.OWN_CACHE:
            st.cache_hits += 1
            if is_write and out.local_invalidations:
                t = timed_request(
                    prof, bus, t, SMP_INVALIDATE_CYCLES, "memory bus", "coherence"
                )
            if is_write and out.invalidated_machines:
                last = t
                for m in out.invalidated_machines:
                    fin = self.network.control(t, machine, m, self.t_remote)
                    if fin > last:
                        last = fin
                if prof is not None:
                    _acc(prof, "network", "coherence", last - t)
                t = last
            return t
        if out.serve is HybridServe.PEER_CACHE:
            st.peer_cache += 1
            return timed_request(
                prof, bus, t, self.t_peer, "cache", "peer_cache", "memory bus"
            )
        if out.serve is HybridServe.LOCAL_MEMORY:
            if self.l2s is not None and not is_write:
                if self.l2s[machine].lookup(line):
                    st.l2_hits += 1
                    return timed_request(
                        prof, bus, t, self.t_l2, "l2", "l2", "memory bus"
                    )
                self.l2s[machine].fill(line)
            st.local_memory += 1
            t = timed_request(
                prof, bus, t, self.t_mem, "memory", "local_memory", "memory bus"
            )
            return self._home_memory_time(t, machine, line)
        if out.serve is HybridServe.REMOTE_DIRTY:
            st.remote_dirty += 1
            assert out.data_source is not None
            return self._net_transfer(
                t, out.data_source, machine, self.t_remote_dirty, "remote_dirty"
            )
        st.remote_clean += 1
        t = self._net_transfer(t, machine, out.home, self.t_remote, "remote_clean")
        return self._home_memory_time(t, out.home, line)

    def access_batch(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        """Vectorized run of pure-local hits (see the base-class contract).

        Both coherence layers must be quiet: a read hit always is; a
        write hit qualifies only when the line is already dirty in the
        issuing cache (within a snoop group, dirty implies no peer copy,
        so no invalidate broadcast and no bus) *and* the node already
        owns the directory block exclusively (silent upgrade), with no
        L2.  The local dirty bit cannot stand in for the directory
        check: a remote read drops exclusivity without touching the
        owner node's L1 flags.
        """
        n = self.spec.n
        machine = proc // n
        cache = self.caches[machine][proc % n]
        ok, slots = cache.residency(lines)
        k, skip = eligible_prefix(ok)
        if k == 0:
            return 0, skip
        w = writes[:k]
        if w.any():
            if self.l2s is not None:
                k = int(w.argmax())  # first write cuts the run
            else:
                bad = w & ~cache.dirty_at(slots[:k])
                if bad.any():
                    k = int(bad.argmax())
                if k:
                    k = first_unowned_write(
                        self.protocol.directory.exclusive_owner,
                        machine,
                        lines,
                        writes,
                        k,
                    )
            if k == 0:
                return 0, 1
        cache.touch_positions(slots[:k])
        st = self.stats
        st.references += k
        st.cache_hits += k
        return k, k + 1 if k < lines.size else k

    def install_network_spikes(self, extra_of_time) -> None:
        self.network.latency_extra = extra_of_time

    def barrier_overhead(self) -> float:
        """Barrier exit: network control round trip + SMP bus release."""
        self.stats.barrier_count += 1
        return 2.0 * self.t_remote * 0.25 + 2.0 * self.t_mem

    def resource_busy_cycles(self) -> dict[str, float]:
        return {
            "network": self.network.busy_cycles,
            "memory buses": sum(b.busy_cycles for b in self.buses),
            "disks": sum(d.busy_cycles for d in self.disks),
        }

    def resource_requests(self) -> dict[str, int]:
        return {
            "network": self.network.messages + self.network.control_messages,
            "memory buses": sum(b.requests for b in self.buses),
            "disks": sum(d.requests for d in self.disks),
        }

    # ------------------------------------------------------------------
    def network_utilization(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return self.network.busy_cycles / total_cycles
