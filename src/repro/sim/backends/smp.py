"""SMP back-end: snooping bus, shared memory, shared disk (paper 5.1).

Latency classes (cycles, from the paper):
  cache hit 1 | cache miss to remote cache 15 | cache miss to local
  memory 50 | memory miss to local disk 2000.

The memory bus is one FCFS server shared by the n processors (the M/D/1
resource of the analytical model); cache-to-cache transfers and memory
fills occupy it for their full latency, dirty-eviction write-backs
occupy it without stalling the evicting processor, and write upgrades
post a short address-only invalidate.  The disk sits behind its own
I/O-bus server.
"""

from __future__ import annotations

import numpy as np

from repro.core.platform import PlatformSpec
from repro.sim.backends.base import (
    BackendStats,
    MemoryBackend,
    SMP_INVALIDATE_CYCLES,
    eligible_prefix,
    timed_request,
)
from repro.sim.cache import SetAssociativeCache
from repro.sim.memory import PagedMemory, Server, page_of
from repro.sim.snoop import SnoopSource, SnoopingBus

__all__ = ["SmpBackend"]


class SmpBackend(MemoryBackend):
    """A single bus-based SMP with ``spec.n`` processors."""

    def __init__(self, spec: PlatformSpec, home_machine_of_line: np.ndarray) -> None:
        if spec.N != 1:
            raise ValueError("SmpBackend models a single machine")
        super().__init__(spec, home_machine_of_line)
        lat = spec.latencies
        self.t_hit = float(lat.cache_hit)
        self.t_peer = float(lat.remote_cache_smp)
        self.t_mem = float(lat.cache_to_memory)
        self.t_disk = float(lat.memory_to_disk)
        self.t_l2 = float(lat.l2_hit)
        self.caches = [SetAssociativeCache(spec.cache_items, ways=spec.cache_ways) for _ in range(spec.n)]
        self.snoop = SnoopingBus(self.caches)
        self.l2 = (
            SetAssociativeCache(spec.l2_items, ways=8) if spec.l2_items is not None else None
        )
        self.bus = Server()
        self.memory = PagedMemory(spec.memory_items)
        self.disk = Server()

    # ------------------------------------------------------------------
    def access(self, proc: int, line: int, is_write: bool, now: float) -> float:
        st = self.stats
        st.references += 1
        t = now + self.t_hit
        outcome = self.snoop.access(proc, line, is_write)
        if is_write and self.l2 is not None:
            # a store makes any L2 copy stale; the dirty line lives in L1
            self.l2.invalidate(line)
        if outcome.invalidated:
            st.invalidations += len(outcome.invalidated)
        if outcome.writeback:
            st.writebacks += 1
            self.bus.request(t, self.t_mem)  # background write-back traffic

        prof = self.profiler
        if outcome.source is SnoopSource.OWN_CACHE:
            st.cache_hits += 1
            if is_write and outcome.invalidated:
                t = timed_request(
                    prof, self.bus, t, SMP_INVALIDATE_CYCLES,
                    "memory bus", "coherence",
                )
            return t
        if outcome.source is SnoopSource.PEER_CACHE:
            st.peer_cache += 1
            return timed_request(
                prof, self.bus, t, self.t_peer, "cache", "peer_cache", "memory bus"
            )

        # Served past the L1s: the shared L2 (if any) filters, then the
        # page capacity decides memory vs disk.
        if self.l2 is not None and not is_write:
            if self.l2.lookup(line):
                st.l2_hits += 1
                return timed_request(
                    prof, self.bus, t, self.t_l2, "l2", "l2", "memory bus"
                )
            self.l2.fill(line)
        st.local_memory += 1
        if self.memory.access(page_of(line)):
            return timed_request(
                prof, self.bus, t, self.t_mem, "memory", "local_memory", "memory bus"
            )
        st.disk += 1  # sub-stage: the access also visited memory
        t = timed_request(
            prof, self.bus, t, self.t_mem, "memory", "local_memory", "memory bus"
        )
        return timed_request(prof, self.disk, t, self.t_disk, "disk", "disk")

    def access_batch(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        """Vectorized run of pure-local hits (see the base-class contract).

        Eligible references are own-cache read hits, plus -- when there
        is no shared L2 (a store must invalidate its L2 copy, which the
        scalar path handles) -- write hits to lines no peer holds.
        Lines already *dirty* in the issuing cache qualify wholesale:
        write-invalidate keeps dirty lines exclusive (a peer read
        downgrades M->S, a peer write invalidates).  The few write hits
        to *clean* lines per window (typically right after a fill) are
        checked against the peers individually; a peer-free one is a
        silent upgrade and marks the line dirty, exactly as the scalar
        path would.
        """
        cache = self.caches[proc]
        ok, slots = cache.residency(lines)
        k, skip = eligible_prefix(ok)
        if k == 0:
            return 0, skip
        # Write-gate only the resident prefix -- the part that can
        # actually be consumed -- not the whole window.
        dirty_marks = None
        if self.l2 is not None:
            bad = writes[:k]
            if bad.any():
                k = int(bad.argmax())
                if k == 0:
                    return 0, 1
        else:
            bad = writes[:k] & ~cache.dirty_at(slots[:k])
            if bad.any():
                first_bad = -1
                caches = self.caches
                for j in np.flatnonzero(bad).tolist():
                    line = int(lines[j])
                    if any(
                        c.contains(line) for q, c in enumerate(caches) if q != proc
                    ):
                        k = j  # held elsewhere: invalidate needed, go scalar
                        break
                    if first_bad < 0:
                        first_bad = j
                if k == 0:
                    return 0, 1
                if 0 <= first_bad < k:
                    # consumed clean-line upgrades: set their dirty bits
                    dirty_marks = writes[:k]
        cache.touch_positions(slots[:k], dirty=dirty_marks)
        st = self.stats
        st.references += k
        st.cache_hits += k
        return k, k + 1 if k < lines.size else k

    def barrier_overhead(self) -> float:
        """Barrier exit: one shared-variable round trip over the bus."""
        self.stats.barrier_count += 1
        return 2.0 * self.t_mem

    def resource_busy_cycles(self) -> dict[str, float]:
        return {"memory bus": self.bus.busy_cycles, "disk": self.disk.busy_cycles}

    def resource_requests(self) -> dict[str, int]:
        return {"memory bus": self.bus.requests, "disk": self.disk.requests}

    # ------------------------------------------------------------------
    def bus_utilization(self, total_cycles: float) -> float:
        """Fraction of simulated time the memory bus was busy."""
        return self.bus.busy_cycles / total_cycles if total_cycles else 0.0

    def coherence_traffic_fraction(self) -> float:
        """Share of bus transactions that are protocol-induced
        (invalidate broadcasts + cache-to-cache transfers) -- the
        quantity the paper reports as 2.1%-7.2% for its applications.
        Capacity write-backs are excluded: they occur on a uniprocessor
        too and are not coherence traffic."""
        st = self.stats
        coherent = st.invalidations + st.peer_cache
        total = coherent + st.local_memory + st.writebacks
        return coherent / total if total else 0.0
