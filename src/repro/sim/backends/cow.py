"""Cluster-of-workstations back-end: home-based DSM over a cluster network.

Each of the ``N`` machines runs one process and contributes its memory
to a software shared-memory image (the paper's Section 5.3.2 setting).
A directory over 256-byte blocks lives with each block's home machine;
caches are per-machine with 64-byte lines.

Latency classes (cycles, paper Section 5.1): cache hit 1; miss served by
the *local* memory 50; miss served by a remote node 45075 / 4575 / 3275
(10 Mb, 100 Mb Ethernet, 155 Mb ATM); miss served by remotely *cached*
(dirty) data costs the doubled constants; memory miss to disk 2000.
Ethernet serializes every message on one shared medium, ATM queues only
at the destination port (:mod:`repro.sim.network`).
"""

from __future__ import annotations

import numpy as np

from repro.core.platform import PlatformSpec
from repro.sim.backends.base import (
    MemoryBackend,
    _acc,
    eligible_prefix,
    timed_request,
)
from repro.sim.cache import SetAssociativeCache
from repro.sim.directory import (
    Directory,
    LINES_PER_BLOCK,
    block_of,
    first_unowned_write,
)
from repro.sim.memory import PagedMemory, Server, page_of
from repro.sim.network import make_network

__all__ = ["CowBackend"]


class CowBackend(MemoryBackend):
    """N uniprocessor workstations on a bus or switch network."""

    def __init__(self, spec: PlatformSpec, home_machine_of_line: np.ndarray) -> None:
        if spec.n != 1:
            raise ValueError("CowBackend models uniprocessor nodes; use ClumpBackend for SMP nodes")
        if spec.N < 2 or spec.network is None:
            raise ValueError("CowBackend needs N >= 2 machines and a network")
        super().__init__(spec, home_machine_of_line)
        lat = spec.latencies.with_network(spec.network, clump=False)
        self.t_hit = float(lat.cache_hit)
        self.t_mem = float(lat.cache_to_memory)
        self.t_disk = float(lat.memory_to_disk)
        self.t_remote = float(lat.remote_node)
        self.t_remote_dirty = float(lat.remote_cached)
        self.t_l2 = float(lat.l2_hit)
        self.caches = [SetAssociativeCache(spec.cache_items, ways=spec.cache_ways) for _ in range(spec.N)]
        self.l2s = (
            [SetAssociativeCache(spec.l2_items, ways=8) for _ in range(spec.N)]
            if spec.l2_items is not None
            else None
        )
        self.memories = [PagedMemory(spec.memory_items) for _ in range(spec.N)]
        self.disks = [Server() for _ in range(spec.N)]
        self.network = make_network(spec.network, spec.N)
        self.directory = Directory(self.home_of_line_block, spec.N)

    def home_of_line_block(self, block: int) -> int:
        return self.home_of_line(block * LINES_PER_BLOCK)

    # ------------------------------------------------------------------
    def _invalidate_block_at(self, machine: int, block: int) -> None:
        """Drop every line of ``block`` from ``machine``'s caches."""
        cache = self.caches[machine]
        base = block * LINES_PER_BLOCK
        for l in range(base, base + LINES_PER_BLOCK):
            cache.invalidate(l)
            if self.l2s is not None:
                self.l2s[machine].invalidate(l)

    def _home_memory_time(self, t: float, home: int, line: int) -> float:
        """Charge the home machine's memory (and disk on a page fault)."""
        if self.memories[home].access(page_of(line)):
            return t
        self.stats.disk += 1
        return timed_request(
            self.profiler, self.disks[home], t, self.t_disk, "disk", "disk"
        )

    def _net_transfer(
        self, t: float, src: int, dst: int, cycles: float, cause: str
    ) -> float:
        """A profiled foreground network transfer (service + wait split)."""
        prof = self.profiler
        if prof is None:
            return self.network.transfer(t, src, dst, cycles)
        service = self.network.service_of(t, cycles)
        finish = self.network.transfer(t, src, dst, cycles)
        _acc(prof, "network", cause, service)
        _acc(prof, "network", "contention", finish - t - service)
        return finish

    def access(self, proc: int, line: int, is_write: bool, now: float) -> float:
        st = self.stats
        st.references += 1
        machine = proc  # one process per machine
        cache = self.caches[machine]
        t = now + self.t_hit
        block = block_of(line)
        hit = cache.lookup(line)

        if hit and not is_write:
            st.cache_hits += 1
            return t
        if hit and is_write:
            st.cache_hits += 1
            out = self.directory.write(machine, line, hit_own_cache=True)
            cache.mark_dirty(line)
            if self.l2s is not None:
                self.l2s[machine].invalidate(line)
            if out.invalidated or out.dirty_owner is not None:
                st.invalidations += len(out.invalidated)
                for m in out.invalidated:
                    self._invalidate_block_at(m, block)
                if out.dirty_owner is not None:
                    st.writebacks += 1
                    self._invalidate_block_at(out.dirty_owner, block)
                    t = self._net_transfer(
                        t, out.dirty_owner, machine, self.t_remote_dirty,
                        "coherence",
                    )
                else:
                    # Invalidation round trips; the writer waits for the
                    # last acknowledgement.  The elapsed wait is profiled
                    # as coherence in one piece (same server call order
                    # with or without a profiler).
                    last = t
                    for m in out.invalidated:
                        fin = self.network.control(t, machine, m, self.t_remote)
                        if fin > last:
                            last = fin
                    prof = self.profiler
                    if prof is not None:
                        _acc(prof, "network", "coherence", last - t)
                    t = last
            return t

        # Cache miss.
        out = (
            self.directory.write(machine, line, hit_own_cache=False)
            if is_write
            else self.directory.read(machine, line)
        )
        st.invalidations += len(out.invalidated)
        for m in out.invalidated:
            self._invalidate_block_at(m, block)
        evicted = cache.fill(line, dirty=is_write)
        if evicted is not None and evicted[1]:
            st.writebacks += 1
            ev_home = self.home_of_line(evicted[0])
            if ev_home != machine:
                # Background write-back over the network.
                self.network.transfer(t, machine, ev_home, self.t_remote)
            self.directory.drop_owner(block_of(evicted[0]), machine)

        prof = self.profiler
        if out.dirty_owner is not None:
            st.remote_dirty += 1
            if is_write:
                self._invalidate_block_at(out.dirty_owner, block)
            return self._net_transfer(
                t, out.dirty_owner, machine, self.t_remote_dirty, "remote_dirty"
            )
        if out.home == machine:
            if self.l2s is not None and not is_write:
                if self.l2s[machine].lookup(line):
                    st.l2_hits += 1
                    if prof is not None:
                        _acc(prof, "l2", "l2", self.t_l2)
                    return t + self.t_l2
                self.l2s[machine].fill(line)
            st.local_memory += 1
            if prof is not None:
                _acc(prof, "memory", "local_memory", self.t_mem)
            t += self.t_mem
            return self._home_memory_time(t, machine, line)
        st.remote_clean += 1
        t = self._net_transfer(t, machine, out.home, self.t_remote, "remote_clean")
        return self._home_memory_time(t, out.home, line)

    def access_batch(
        self, proc: int, lines: np.ndarray, writes: np.ndarray, now: float
    ) -> tuple[int, int]:
        """Vectorized run of pure-local hits (see the base-class contract).

        Eligible references are own-cache read hits, plus write hits to
        blocks this machine already owns exclusively in the directory
        (a silent upgrade: no invalidations, no data movement) when
        there is no L2 to invalidate.  Private, write-back-owned pages
        -- the bulk of an SPMD process's traffic -- ride this path.
        The cache's own dirty bit is *not* a valid shortcut here: a
        remote read drops directory exclusivity without clearing the
        reader-side L1 flag, so the directory must be consulted.
        """
        machine = proc  # one process per machine
        cache = self.caches[machine]
        ok, slots = cache.residency(lines)
        k, skip = eligible_prefix(ok)
        if k == 0:
            return 0, skip
        wr = writes[:k]
        if wr.any():
            if self.l2s is not None:
                k = int(wr.argmax())  # first write cuts the run
            else:
                k = first_unowned_write(
                    self.directory.exclusive_owner, machine, lines, wr, k
                )
            if k == 0:
                return 0, 1
            wr = writes[:k]
        cache.touch_positions(slots[:k], dirty=wr if wr.any() else None)
        st = self.stats
        st.references += k
        st.cache_hits += k
        return k, k + 1 if k < lines.size else k

    def install_network_spikes(self, extra_of_time) -> None:
        self.network.latency_extra = extra_of_time

    def barrier_overhead(self) -> float:
        """Barrier exit: one control round trip across the network."""
        self.stats.barrier_count += 1
        return 2.0 * self.t_remote * 0.25  # address-only messages

    def resource_busy_cycles(self) -> dict[str, float]:
        out = {"network": self.network.busy_cycles}
        out["disks"] = sum(d.busy_cycles for d in self.disks)
        return out

    def resource_requests(self) -> dict[str, int]:
        return {
            "network": self.network.messages + self.network.control_messages,
            "disks": sum(d.requests for d in self.disks),
        }

    # ------------------------------------------------------------------
    def network_utilization(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return self.network.busy_cycles / total_cycles
