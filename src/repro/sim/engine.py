"""SPMD execution engine: interleaves per-process traces over a back-end.

This is the substitute for the paper's MINT front-end.  Each process
replays its recorded reference stream against the platform back-end;
a priority queue keeps global time roughly causal so that contention on
shared servers (buses, network segments, disks) is realized in the
order requests would actually arrive.  Barriers synchronize all
processes to the latest arrival plus the back-end's barrier overhead --
the waiting the analytical model captures with order statistics.

The ``horizon`` parameter trades strict causality for speed: a process
may run up to ``horizon`` cycles past the globally earliest process
before being rescheduled.  Zero gives exact earliest-first interleaving;
the default (200 cycles, a few memory accesses) is indistinguishable in
aggregate statistics and several times faster.

Two execution lanes produce bit-identical results.  The scalar lane
dispatches one ``backend.access`` per reference.  The vectorized lane
(``fastpath=True``, the default) asks the back-end to consume whole runs
of references via ``access_batch`` -- maximal stretches of pure-local
cache hits between barriers and the causality horizon, which cannot
touch a shared server or another process's coherence state -- in single
array operations, falling back to scalar for anything that could queue,
invalidate, or miss.  Per-trace arrays (addresses, issue costs, barrier
indices) are hoisted once at construction and reused across ``execute``
calls rather than rebuilt per invocation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.base import ApplicationRun
from repro.core.platform import PlatformSpec
from repro.faults.inject import F_DELAY, F_STALL, F_SLOW, compile_triggers
from repro.faults.plan import FaultPlan
from repro.obs.profile import CycleProfile
from repro.obs.timeline import Timeline, TimelineRecorder
from repro.sim.backends.base import (
    BATCH_CHUNK,
    BackendStats,
    MemoryBackend,
    _acc,
    make_backend,
)

__all__ = ["SimulationEngine", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one application run on one platform."""

    platform_name: str
    application: str
    total_cycles: float  #: wall clock of the parallel execution
    total_instructions: int  #: m + M summed over all processes
    total_references: int  #: M summed over all processes
    e_instr_seconds: float  #: simulated E(Instr), the paper's metric
    e_instr_cycles: float
    barrier_wait_cycles: float  #: total cycles processes spent waiting
    stats: BackendStats
    per_process_cycles: tuple[float, ...] = field(default=())
    #: Injected fault bookkeeping (zero without a ``FaultPlan``):
    #: ``fault_cycles`` is the stall time actually charged (a stall
    #: absorbed by barrier waiting charges less than its length),
    #: ``fault_events`` counts triggers that fired before the run ended.
    fault_cycles: float = 0.0
    fault_events: int = 0
    #: Per-window counter history when the engine ran with
    #: ``sample_every``; ``None`` otherwise (sampling is opt-in).
    timeline: Timeline | None = field(default=None, repr=False)
    #: Exact cycle attribution when the engine ran with ``profile=True``;
    #: ``None`` otherwise (profiling is opt-in).  Per-(topology node,
    #: cause) buckets that sum bit-exactly to ``P * total_cycles``.
    profile: CycleProfile | None = field(default=None, repr=False)

    @property
    def e_app_seconds(self) -> float:
        """Simulated wall time of the whole run."""
        return self.e_instr_seconds * self.total_instructions

    @property
    def utilizations(self) -> dict[str, float]:
        """Per-resource utilization (busy / span) measured by the back-end."""
        prefix = "utilization:"
        return {
            k[len(prefix):]: v
            for k, v in self.stats.extra.items()
            if k.startswith(prefix)
        }

    @property
    def bottleneck(self) -> str | None:
        """The busiest serialized resource, if any was exercised."""
        u = self.utilizations
        return max(u, key=u.get) if u else None

    def describe(self) -> str:
        util = ", ".join(f"{k} {100 * v:.0f}%" for k, v in self.utilizations.items())
        faults = (
            f", faults {self.fault_events} (+{self.fault_cycles:,.0f} cycles)"
            if self.fault_events
            else ""
        )
        return (
            f"{self.application} on {self.platform_name}: "
            f"{self.total_cycles:,.0f} cycles, E(Instr)={self.e_instr_seconds:.3e}s "
            f"(miss {100 * self.stats.miss_ratio:.2f}%, "
            f"remote {100 * self.stats.remote_ratio:.3f}%, "
            f"barrier wait {self.barrier_wait_cycles:,.0f}"
            + faults
            + (f"; util: {util}" if util else "")
            + ")"
        )


class SimulationEngine:
    """Replays an :class:`ApplicationRun` on a platform back-end."""

    #: Slices shorter than this go straight to the scalar lane; a batch
    #: evaluation costs a fixed handful of array operations, which only
    #: pays for itself over longer runs.
    MIN_BATCH = 8
    #: Skip batching when fewer than this many cycles remain before the
    #: causality limit -- the window cannot fit a worthwhile run (every
    #: reference costs at least two cycles).  With ``horizon=0`` this
    #: disables batching entirely instead of regressing.
    MIN_WINDOW = 2.0 * MIN_BATCH

    def __init__(
        self,
        spec: PlatformSpec,
        run: ApplicationRun,
        backend: MemoryBackend | None = None,
        horizon: float = 200.0,
        fastpath: bool = True,
        sample_every: float | None = None,
        fault_plan: FaultPlan | None = None,
        scheds: "Sequence[np.ndarray] | None" = None,
        profile: bool = False,
        compute_scales: "Sequence[float] | None" = None,
    ) -> None:
        """``sample_every`` (simulated cycles) turns on interval sampling:
        the result carries a :class:`~repro.obs.timeline.Timeline` whose
        per-window counters sum exactly to the end-of-run stats.  The
        default ``None`` records nothing and adds no per-reference cost.

        ``fault_plan`` injects deterministic misbehavior (delays,
        stalls, slowdowns, network spikes -- see :mod:`repro.faults`).
        Engine-side events trigger when a process's clock first reaches
        the trigger time at a reference boundary; the vectorized lane
        cuts every batch at the next pending trigger so both lanes stay
        bit-identical under any plan.  The default ``None`` adds no
        per-step cost.

        ``scheds`` optionally supplies the per-trace all-hit clock
        schedules -- each must equal ``(trace.work + 1.0 +
        backend.t_hit).cumsum()`` exactly.  The stacked tensor lane
        (:mod:`repro.sim.stacked`) computes them for a whole grid in
        one batched prefix-sum pass and hands each cell views, so the
        engine skips the per-cell cumsum; results are bit-identical
        because the arrays are.  Ignored when the fast path is off.

        ``profile=True`` turns on exact cycle attribution: the result
        carries a :class:`~repro.obs.profile.CycleProfile` whose
        per-(topology node, cause) buckets sum bit-exactly to
        ``P * total_cycles`` in every lane (see docs/OBSERVABILITY.md).
        The default ``False`` records nothing and adds no per-miss cost.

        ``compute_scales`` gives each process a relative CPU speed (the
        scheduling layer's per-machine ``speed``): process ``p``'s
        compute portion -- issue cycle plus padding work -- is divided
        by ``compute_scales[p]``, while memory latencies, already
        stated in machine cycles, are untouched.  ``None`` (or all
        ``1.0``) keeps the exact legacy arithmetic, so homogeneous runs
        stay bit-identical across all three lanes.  Scaled steps are
        quantized to the 2^-6-cycle grid (``np.round(((work + 1.0) /
        scale) * 64) / 64``) so float sums stay exact and the scalar
        and vectorized lanes agree bitwise even at speeds like 2.5.
        When ``scheds`` is also supplied, each schedule must be
        ``(quantized_step + t_hit).cumsum()`` over exactly those values
        (:func:`repro.sim.stacked.stacked_schedules` with ``scales``).
        """
        if run.num_procs != spec.total_processors:
            raise ValueError(
                f"application ran with {run.num_procs} processes but the platform "
                f"has {spec.total_processors} processors"
            )
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if sample_every is not None and sample_every <= 0:
            raise ValueError("sample_every must be positive (or None to disable)")
        self.spec = spec
        self.run = run
        self.horizon = horizon
        self.fastpath = fastpath
        self.sample_every = sample_every
        self.fault_plan = fault_plan
        self.profile = profile
        if compute_scales is not None:
            if len(compute_scales) != run.num_procs:
                raise ValueError(
                    f"compute_scales must carry one speed per process: "
                    f"{len(compute_scales)} != {run.num_procs}"
                )
            scales = [float(s) for s in compute_scales]
            for s in scales:
                if not (s > 0.0 and s != float("inf")):
                    raise ValueError(f"compute scales must be positive and finite, got {s!r}")
            # All-unity collapses to the unscaled path so the legacy
            # float expressions (and their bit patterns) are untouched.
            self._speeds = scales if any(s != 1.0 for s in scales) else None
        else:
            self._speeds = None
        # Scaled per-reference compute steps, quantized to the engine's
        # 2^-6-cycle grid: arbitrary speeds (2.5x, ...) would otherwise
        # produce non-dyadic step costs, breaking the exact-float-sum
        # invariant that keeps the lanes bit-identical and the profiler
        # exact.  Precomputed with NumPy so the scalar lane and the
        # schedule prefix sums consume literally the same values.
        if self._speeds is not None:
            self._scaled_steps = [
                None
                if s == 1.0
                else np.round(((t.work + 1.0) / s) * 64.0) / 64.0
                for t, s in zip(run.traces, self._speeds)
            ]
        else:
            self._scaled_steps = None
        # Compiled per-process trigger schedules (None when the plan has
        # no engine-side events); network spikes go to the back-end hook.
        self._fault_triggers = (
            compile_triggers(fault_plan, run.num_procs)
            if fault_plan is not None and fault_plan
            else None
        )
        if backend is None:
            home_proc = run.address_space.home_map()
            backend = make_backend(spec, (home_proc // spec.n).astype(np.int64))
        self.backend = backend
        if fault_plan is not None and fault_plan:
            spikes = fault_plan.network_extra
            if spikes is not None:
                backend.install_network_spikes(spikes)
        # Hoisted per-trace arrays, built once and shared by every
        # execute() call: the hot loop must not re-read trace attributes
        # or rebuild barrier lists per invocation.
        self._addresses = [t.addresses for t in run.traces]
        self._writes = [t.is_write for t in run.traces]
        self._works = [t.work for t in run.traces]
        self._barrier_lists = [t.barriers.tolist() for t in run.traces]
        self._lengths = [t.memory_instructions for t in run.traces]
        self._tail_works = [t.tail_work for t in run.traces]
        # The vectorized lane needs two things from the back-end: an
        # access_batch override and a fixed hit latency.  Timing then
        # lives entirely in the engine as per-trace prefix sums of the
        # all-hit step cost (compute padding + 1-cycle issue + t_hit):
        # an eligible run of k references starting at index i advances
        # the clock by sched[i+k-1] - sched[i-1], and the causality cut
        # is a single searchsorted.  Work and latencies are small
        # multiples of 0.25 cycles, far below 2**53, so these float64
        # sums are exact and bit-identical to scalar stepping.
        self._batch_ready = (
            fastpath
            and type(self.backend).access_batch is not MemoryBackend.access_batch
            and hasattr(self.backend, "t_hit")
        )
        if self._batch_ready:
            if scheds is not None:
                if len(scheds) != run.num_procs:
                    raise ValueError(
                        f"scheds must carry one array per process: "
                        f"{len(scheds)} != {run.num_procs}"
                    )
                self._scheds = list(scheds)
            elif self._speeds is None:
                step = 1.0 + float(self.backend.t_hit)
                self._scheds = [(t.work + step).cumsum() for t in run.traces]
            else:
                step = 1.0 + float(self.backend.t_hit)
                t_hit = float(self.backend.t_hit)
                self._scheds = [
                    (t.work + step).cumsum()
                    if qs is None
                    else (qs + t_hit).cumsum()
                    for t, qs in zip(run.traces, self._scaled_steps)
                ]
        else:
            self._scheds = None

    # ------------------------------------------------------------------
    def execute(self) -> SimulationResult:
        run, backend = self.run, self.backend
        P = run.num_procs
        addresses = self._addresses
        writes = self._writes
        works = self._works
        scheds = self._scheds
        barrier_lists = self._barrier_lists
        lengths = self._lengths
        tail_works = self._tail_works
        use_batch = self._batch_ready
        min_batch = self.MIN_BATCH
        min_window = self.MIN_WINDOW
        # Interval sampling: rec stays None on the default path, so the
        # hot loop pays only a local is-None test per step when off.
        rec = (
            TimelineRecorder(self.sample_every, backend)
            if self.sample_every is not None
            else None
        )
        # Cycle attribution: the back-end feeds (node, cause) buckets of
        # the sink dict on every miss path; the engine accounts for the
        # remaining advances itself -- compute, cache-hit time (folded
        # once at the end as references * t_hit), fault stalls, barrier
        # and finish waiting.  All quantities are multiples of 2^-6
        # cycles, so every accumulation below is exact and the buckets
        # reassemble P * total_cycles bit-exactly in every lane.
        profiling = self.profile
        if profiling:
            sink: dict = {}
            backend.install_profiler(sink)
            refs_before = backend.stats.references
        compute_cycles = 0.0  #: issue + padding work attributed to "cpu"
        slow_extra = 0.0  #: extra compute charged by F_SLOW windows
        t_hit_f = float(getattr(backend, "t_hit", 0.0))

        speeds = self._speeds  # None on the (bit-exact) unscaled path
        scaled_steps = self._scaled_steps
        clock = [0.0] * P
        index = [0] * P
        next_barrier = [0] * P
        retry_at = [0] * P  #: batch re-attempt hints from access_batch
        # Fault-injection state: per-process trigger cursor and current
        # compute-slowdown factor.  ``ftrigs is None`` on the default
        # path, costing one comparison per scheduling round.
        ftrigs = self._fault_triggers
        fidx = [0] * P
        fslow = [1.0] * P
        fault_cycles = 0.0
        fault_events = 0
        INF = float("inf")
        # Per-process window cap, adapted to recent run lengths: the
        # eligibility scan costs O(window), so sizing the window to a
        # few times the typical miss-free run avoids scanning hundreds
        # of references to consume twenty.  Purely a performance knob --
        # consumption is always a prefix, so results are unchanged.
        caps = [192] * P
        barrier_arrivals: list[float] = []
        waiting: list[int] = []
        barrier_wait = 0.0
        finished = 0
        seq = 0

        heap: list[tuple[float, int, int]] = [(0.0, i, p) for i, p in enumerate(range(P))]
        heapq.heapify(heap)
        horizon = self.horizon

        while heap:
            now, _, p = heapq.heappop(heap)
            limit = (heap[0][0] + horizon) if heap else float("inf")
            addr = addresses[p]
            wr = writes[p]
            wk = works[p]
            sc = scheds[p] if use_batch else None
            bl = barrier_lists[p]
            i = index[p]
            n_i = lengths[p]
            t = clock[p]
            nb = next_barrier[p]
            retry = retry_at[p]
            speed = speeds[p] if speeds is not None else 1.0
            qs = scaled_steps[p] if scaled_steps is not None else None
            if ftrigs is not None:
                ftl = ftrigs[p]
                fi = fidx[p]
                fnext = ftl[fi][0] if fi < len(ftl) else INF
                factor = fslow[p]
            else:
                ftl = None
                fi = 0
                fnext = INF
                factor = 1.0
            blocked = False
            done = False

            while True:
                # Drain every fault trigger the clock has reached.  Both
                # lanes pass through this point with identical clocks (a
                # batch is cut at the crossing reference, exactly where
                # the scalar loop would land), so trigger application is
                # lane-independent by construction.
                while fnext <= t:
                    _, code, val = ftl[fi]
                    if code == F_DELAY:
                        t += val
                        fault_cycles += val
                        fault_events += 1
                        if rec is not None:
                            rec.record_fault(t, val)
                    elif code == F_STALL:
                        if val > t:
                            add = val - t
                            t = val
                            fault_cycles += add
                            fault_events += 1
                            if rec is not None:
                                rec.record_fault(t, add)
                        else:
                            # Resume time already passed (e.g. absorbed
                            # by barrier waiting): the stall costs nothing.
                            fault_events += 1
                    elif code == F_SLOW:
                        factor = val
                    else:  # F_NORMAL: slowdown window ended
                        factor = 1.0
                    fi += 1
                    fnext = ftl[fi][0] if fi < len(ftl) else INF
                if nb < len(bl) and bl[nb] == i:
                    nb += 1
                    barrier_arrivals.append(t)
                    waiting.append(p)
                    blocked = True
                    break
                if i >= n_i:
                    tw = (
                        tail_works[p]
                        if speed == 1.0
                        else round(tail_works[p] / speed * 64.0) / 64.0
                    )
                    if factor != 1.0:
                        t += tw * factor
                        if profiling:
                            compute_cycles += tw
                            slow_extra += tw * factor - tw
                    else:
                        t += tw
                        if profiling:
                            compute_cycles += tw
                    finished += 1
                    done = True
                    break
                if use_batch and factor == 1.0 and i >= retry and limit - t >= min_window:
                    # Vectorized lane: cut the run at the next barrier
                    # and at the causality limit (the crossing reference
                    # is included, as in the scalar loop), then let the
                    # back-end consume the provably pure-local prefix in
                    # one shot -- bit-identical to scalar stepping.
                    stop = bl[nb] if nb < len(bl) else n_i
                    if stop - i >= min_batch:
                        base = sc[i - 1] if i else 0.0
                        hi = i + caps[p]
                        if hi > stop:
                            hi = stop
                        e = i + int(
                            np.searchsorted(sc[i:hi], limit - t + base, side="right")
                        ) + 1
                        if fnext != INF:
                            # Cut at the next fault trigger so the batch
                            # stops exactly where the scalar lane would:
                            # triggering is non-strict (t >= fnext), so
                            # side="left" finds the crossing reference,
                            # +1 includes it -- the scalar lane also
                            # completes it before the trigger fires.
                            e2 = i + int(
                                np.searchsorted(
                                    sc[i:hi], fnext - t + base, side="left"
                                )
                            ) + 1
                            if e2 < e:
                                e = e2
                        if e > hi:
                            e = hi
                        if e - i >= min_batch:
                            k, skip = backend.access_batch(p, addr[i:e], wr[i:e], t)
                            retry = i + skip
                            if k:
                                cap = 4 * k
                                caps[p] = (
                                    64 if cap < 64
                                    else BATCH_CHUNK if cap > BATCH_CHUNK
                                    else cap
                                )
                                if rec is not None:
                                    # The j-th consumed hit completes at
                                    # t + (sc[i+j] - base) -- the exact
                                    # times the scalar lane would realize.
                                    rec.record_batch(t + (sc[i:i + k] - base))
                                i += k
                                adv = float(sc[i - 1] - base)
                                t += adv
                                if profiling:
                                    # The run's compute share: the batch
                                    # advance minus k hit latencies (the
                                    # hits are folded once at the end).
                                    compute_cycles += adv - k * t_hit_f
                                if t > limit:
                                    break
                                continue
                    else:
                        retry = stop
                # one instruction-stream step: compute, then the reference
                if factor != 1.0:
                    full = wk[i] * factor + 1.0
                    if speed != 1.0:
                        full = round(full / speed * 64.0) / 64.0
                    t += full
                    if profiling:
                        base = wk[i] + 1.0 if qs is None else float(qs[i])
                        compute_cycles += base
                        slow_extra += full - base
                else:
                    step = wk[i] + 1.0 if qs is None else qs[i]
                    t += step
                    if profiling:
                        compute_cycles += step
                t = backend.access(p, int(addr[i]), bool(wr[i]), t)
                i += 1
                if rec is not None:
                    rec.record_access(t)
                if t > limit:
                    break

            index[p] = i
            next_barrier[p] = nb
            clock[p] = t
            retry_at[p] = retry
            if ftrigs is not None:
                fidx[p] = fi
                fslow[p] = factor
            if blocked:
                # Barrier counts are equal across processes, so nobody can
                # finish before the last barrier: all P must arrive.
                if len(waiting) == P:
                    release = max(barrier_arrivals) + backend.barrier_overhead()
                    wait = sum(release - a for a in barrier_arrivals)
                    barrier_wait += wait
                    if rec is not None:
                        rec.record_barrier(release, wait)
                    for q in waiting:
                        clock[q] = release
                        seq += 1
                        heapq.heappush(heap, (release, seq, q))
                    waiting.clear()
                    barrier_arrivals.clear()
            elif not done:
                seq += 1
                heapq.heappush(heap, (t, seq, p))

        total_cycles = max(clock) if clock else 0.0
        if total_cycles > 0:
            for name, busy in backend.resource_busy_cycles().items():
                backend.stats.extra[f"utilization:{name}"] = busy / total_cycles
        total_instr = run.total_instructions
        e_cycles = total_cycles / total_instr if total_instr else 0.0
        profile = None
        if profiling:
            # Engine-side folds.  Cache hits are attributed once from the
            # back-end's reference counter: every access -- hit or miss,
            # scalar or batched -- begins with exactly one t_hit that the
            # back-end never attributes itself.  references * t_hit is a
            # product of an integer and a grid value, hence exact.
            _acc(sink, "cpu", "compute", compute_cycles)
            _acc(
                sink,
                "cache",
                "cache_hit",
                float(backend.stats.references - refs_before) * t_hit_f,
            )
            _acc(sink, "engine", "barrier_wait", barrier_wait)
            _acc(sink, "engine", "fault_stall", fault_cycles + slow_extra)
            _acc(
                sink,
                "engine",
                "finish_wait",
                sum(total_cycles - c for c in clock),
            )
            backend.install_profiler(None)  # detach: later runs attribute nothing
            profile = CycleProfile.from_sink(sink, float(P) * total_cycles)
        return SimulationResult(
            platform_name=self.spec.name,
            application=run.name,
            total_cycles=total_cycles,
            total_instructions=total_instr,
            total_references=run.total_references,
            e_instr_seconds=e_cycles * self.spec.cycle_seconds,
            e_instr_cycles=e_cycles,
            barrier_wait_cycles=barrier_wait,
            stats=backend.stats,
            per_process_cycles=tuple(clock),
            fault_cycles=fault_cycles,
            fault_events=fault_events,
            timeline=rec.finish(total_cycles) if rec is not None else None,
            profile=profile,
        )
