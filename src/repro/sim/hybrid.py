"""Hybrid coherence for clusters of SMPs (paper Section 5.1).

"To maintain the cache coherence in such a system, we applied a hybrid
protocol.  A directory-based protocol is used to maintain coherence
among SMPs, and a snooping protocol is employed to keep the caches in
an SMP coherent.  We extend the directory in each node (SMP) to include
the processor id.  The directory entries are shared by the two
protocols."

:class:`HybridProtocol` composes one :class:`~repro.sim.snoop.SnoopingBus`
per SMP node with one inter-node :class:`~repro.sim.directory.Directory`.
It resolves each access to a latency class and performs all state
updates (local snoop bookkeeping, directory transitions, cross-node
invalidations at directory-block granularity); the CLUMP back-end only
adds cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.sim.directory import Directory, LINES_PER_BLOCK, block_of
from repro.sim.snoop import SnoopSource, SnoopingBus

__all__ = ["HybridServe", "HybridOutcome", "HybridProtocol"]


class HybridServe(str, Enum):
    """Latency class of a CLUMP access."""

    OWN_CACHE = "own cache"
    PEER_CACHE = "peer cache (intra-SMP)"
    LOCAL_MEMORY = "SMP memory"
    REMOTE_NODE = "remote node memory"
    REMOTE_DIRTY = "remotely cached data"


@dataclass(frozen=True)
class HybridOutcome:
    serve: HybridServe
    home: int  #: home machine of the block
    data_source: int | None  #: machine that supplied dirty data, if any
    invalidated_machines: tuple[int, ...]
    local_invalidations: int  #: intra-SMP copies killed by a write upgrade
    writeback: bool  #: dirty line evicted while filling
    #: ``(line, was_dirty)`` evicted from the issuing cache by the fill,
    #: or None.  Uniprocessor-node back-ends use the identity to retire
    #: directory ownership and route the write-back over the network.
    evicted: tuple[int, bool] | None = None


class HybridProtocol:
    """Directory across SMPs + snooping inside each SMP."""

    def __init__(self, snoops: Sequence[SnoopingBus], home_of_block, machines: int) -> None:
        if len(snoops) != machines:
            raise ValueError("one snooping bus per machine required")
        self.snoops = list(snoops)
        self.directory = Directory(home_of_block, machines)

    # ------------------------------------------------------------------
    def _invalidate_block_at(self, machine: int, block: int) -> None:
        base = block * LINES_PER_BLOCK
        snoop = self.snoops[machine]
        for l in range(base, base + LINES_PER_BLOCK):
            snoop.invalidate_line(l)

    def access(self, machine: int, local_proc: int, line: int, is_write: bool) -> HybridOutcome:
        """Resolve one access by processor ``local_proc`` of ``machine``."""
        snoop = self.snoops[machine]
        block = block_of(line)
        local = snoop.access(local_proc, line, is_write)

        if local.source in (SnoopSource.OWN_CACHE, SnoopSource.PEER_CACHE):
            serve = (
                HybridServe.OWN_CACHE
                if local.source is SnoopSource.OWN_CACHE
                else HybridServe.PEER_CACHE
            )
            invalidated: tuple[int, ...] = ()
            data_source = None
            if is_write:
                # The write still needs inter-node exclusivity.
                out = self.directory.write(machine, line, hit_own_cache=True)
                invalidated = out.invalidated
                data_source = out.dirty_owner
                for m in invalidated:
                    self._invalidate_block_at(m, block)
                if data_source is not None:
                    self._invalidate_block_at(data_source, block)
            return HybridOutcome(
                serve=serve,
                home=self.directory.home_of_block(block),
                data_source=data_source,
                invalidated_machines=invalidated,
                local_invalidations=len(local.invalidated),
                writeback=local.writeback,
            )

        # Missed the whole SMP: consult the directory.
        out = (
            self.directory.write(machine, line, hit_own_cache=False)
            if is_write
            else self.directory.read(machine, line)
        )
        for m in out.invalidated:
            self._invalidate_block_at(m, block)
        if is_write and out.dirty_owner is not None:
            self._invalidate_block_at(out.dirty_owner, block)
        if out.dirty_owner is not None:
            serve = HybridServe.REMOTE_DIRTY
        elif out.home == machine:
            serve = HybridServe.LOCAL_MEMORY
        else:
            serve = HybridServe.REMOTE_NODE
        return HybridOutcome(
            serve=serve,
            home=out.home,
            data_source=out.dirty_owner,
            invalidated_machines=out.invalidated,
            local_invalidations=len(local.invalidated),
            writeback=local.writeback,
            evicted=local.evicted,
        )
