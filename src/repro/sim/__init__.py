"""Program-driven memory-hierarchy simulators (the paper's MINT back-ends).

The paper validates its analytical model against five hand-built memory
system simulators driven by the MINT MIPS interpreter.  This package is
our substitute substrate: an SPMD execution engine interleaves
per-process memory-reference event streams (produced by the real
application kernels in :mod:`repro.apps`) and drives cycle-accounting
back-ends for the five platforms -- SMP, cluster of workstations
(bus / switch), and cluster of SMPs (bus / switch).
"""

from repro.sim.latencies import (
    CACHE_LINE_BYTES,
    CPU_HZ,
    DIRECTORY_BLOCK_BYTES,
    ITEM_BYTES,
    LatencyTable,
    NETWORK_LATENCIES,
    NetworkKind,
    PAPER_LATENCIES,
)
from repro.sim.cache import SetAssociativeCache


def __getattr__(name):
    """Lazily expose the heavier simulator pieces.

    ``repro.sim.latencies`` is imported by the core model for its
    constants; deferring the engine/backend imports keeps that path free
    of the apps <-> sim cycle.
    """
    if name in ("SimulationEngine", "SimulationResult"):
        from repro.sim import engine

        return getattr(engine, name)
    if name in (
        "StackedCell",
        "StackedGroup",
        "derive_cell_seed",
        "group_cells",
        "simulate_grid",
        "stacked_schedules",
    ):
        from repro.sim import stacked

        return getattr(stacked, name)
    if name in ("BackendStats", "MemoryBackend", "make_backend", "SmpBackend", "CowBackend", "ClumpBackend", "ComposedBackend", "Fabric"):
        from repro.sim import backends

        return getattr(backends, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")


__all__ = [
    "BackendStats",
    "CACHE_LINE_BYTES",
    "CPU_HZ",
    "ClumpBackend",
    "ComposedBackend",
    "CowBackend",
    "DIRECTORY_BLOCK_BYTES",
    "Fabric",
    "ITEM_BYTES",
    "LatencyTable",
    "MemoryBackend",
    "NETWORK_LATENCIES",
    "NetworkKind",
    "PAPER_LATENCIES",
    "SetAssociativeCache",
    "SimulationEngine",
    "SimulationResult",
    "StackedCell",
    "StackedGroup",
    "derive_cell_seed",
    "group_cells",
    "make_backend",
    "simulate_grid",
    "stacked_schedules",
]
