"""Serialized resources: FCFS servers, paged memory, disks.

Every shared resource the paper models as an M/D/1 queue (memory bus,
I/O bus, cluster network segment) is simulated as a :class:`Server`:
a single FCFS channel whose next free time advances by the service time
of each request.  A request arriving while the server is busy waits --
exactly the queueing the analytical model approximates in closed form.

:class:`PagedMemory` is the capacity model behind the paper's
"memory miss to local disk" edge: an LRU store of 4 KiB pages; a miss
means the page must be staged from the machine's disk.
"""

from __future__ import annotations

from repro.sim.latencies import ITEM_BYTES

__all__ = ["Server", "PagedMemory", "PAGE_ITEMS"]

#: 4 KiB pages, in 64-byte items.
PAGE_ITEMS = 4096 // ITEM_BYTES


class Server:
    """A single FCFS resource with deterministic per-request service."""

    __slots__ = ("free_at", "busy_cycles", "requests")

    def __init__(self) -> None:
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.requests = 0

    def request(self, now: float, service: float) -> float:
        """Issue a request at ``now``; return its completion time."""
        start = self.free_at if self.free_at > now else now
        finish = start + service
        self.free_at = finish
        self.busy_cycles += service
        self.requests += 1
        return finish

    def waiting_time(self, now: float) -> float:
        """Queueing delay a request issued at ``now`` would see."""
        return max(0.0, self.free_at - now)


class PagedMemory:
    """LRU-managed page store of one machine's main memory.

    ``access(page)`` returns True when the page is resident; a False
    return means the caller must charge a disk transfer.  Pages are
    item-granular line numbers shifted by the page size.
    """

    __slots__ = ("capacity_pages", "_pages", "_tick", "hits", "misses")

    def __init__(self, capacity_items: int) -> None:
        if capacity_items < PAGE_ITEMS:
            raise ValueError("memory must hold at least one page")
        self.capacity_pages = capacity_items // PAGE_ITEMS
        self._pages: dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        self._tick += 1
        if page in self._pages:
            self._pages[page] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.capacity_pages:
            victim = min(self._pages, key=self._pages.__getitem__)
            del self._pages[victim]
        self._pages[page] = self._tick
        return False

    @property
    def resident_pages(self) -> int:
        return len(self._pages)


def page_of(line: int) -> int:
    """Page number of an item-granular line address."""
    return line // PAGE_ITEMS
