"""Set-associative LRU cache simulator (paper Section 5.1 parameters).

The paper's simulated caches are two-way set-associative with 64-byte
lines and LRU replacement.  Addresses arriving here are already
line-granular (items), so the set index is simply ``line % num_sets``.

State lives in three ``(num_sets, ways)`` arrays -- ``tags`` (the line
held by each slot, -1 when empty), ``stamps`` (per-slot LRU ticks from
one global counter) and ``dirty`` flags.  The scalar operations walk one
set's ``ways`` slots directly (a set never holds more than ``ways``
entries, so eviction is a min over ``ways`` stamps); the ``*_batch``
methods evaluate whole address vectors in single array operations, which
is what the execution engine's vectorized fast path is built on.  Both
paths produce bit-identical cache state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SetAssociativeCache"]

#: Shared 1..N ramp for batch LRU stamping; sliced, never mutated.
_STAMP_RAMP = np.arange(1, 4097, dtype=np.int64)


class SetAssociativeCache:
    """One processor's cache: LRU, ``ways``-way set-associative."""

    __slots__ = (
        "ways",
        "num_sets",
        "capacity_items",
        "_tags",
        "_stamps",
        "_dirty",
        "_flat_tags",
        "_flat_stamps",
        "_flat_dirty",
        "_tick",
    )

    def __init__(self, capacity_items: int, ways: int = 2) -> None:
        if capacity_items < 1:
            raise ValueError("capacity must be at least one line")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.ways = min(ways, capacity_items)
        self.num_sets = max(1, capacity_items // self.ways)
        self.capacity_items = self.num_sets * self.ways
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._stamps = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._dirty = np.zeros((self.num_sets, self.ways), dtype=bool)
        # Flat views over the same buffers: scalar ops index these
        # directly, avoiding a row-view allocation per access.
        self._flat_tags = self._tags.ravel()
        self._flat_stamps = self._stamps.ravel()
        self._flat_dirty = self._dirty.ravel()
        self._tick = 0

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def _slot(self, line: int) -> int:
        """Flat slot index holding ``line``, or -1 when absent."""
        base = (line % self.num_sets) * self.ways
        tags = self._flat_tags
        for pos in range(base, base + self.ways):
            if tags[pos] == line:
                return pos
        return -1

    def lookup(self, line: int, touch: bool = True) -> bool:
        """True if ``line`` is resident; refresh its LRU stamp if asked."""
        pos = self._slot(line)
        if pos < 0:
            return False
        if touch:
            self._tick += 1
            self._flat_stamps[pos] = self._tick
        return True

    def contains(self, line: int) -> bool:
        """Presence check without disturbing LRU order."""
        return self._slot(line) >= 0

    def fill(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Insert ``line``; return ``(evicted_line, was_dirty)`` if any.

        Filling a line that is already resident just refreshes its LRU
        stamp (and may add the dirty mark); nothing is evicted.
        """
        self._tick += 1
        base = (line % self.num_sets) * self.ways
        tags = self._flat_tags
        stamps = self._flat_stamps
        empty = -1
        victim = -1
        for pos in range(base, base + self.ways):
            tag = tags[pos]
            if tag == line:
                stamps[pos] = self._tick
                if dirty:
                    self._flat_dirty[pos] = True
                return None
            if tag < 0:
                if empty < 0:
                    empty = pos
            elif victim < 0 or stamps[pos] < stamps[victim]:
                victim = pos
        evicted = None
        if empty >= 0:
            pos = empty
        else:
            pos = victim
            evicted = (int(tags[pos]), bool(self._flat_dirty[pos]))
        tags[pos] = line
        stamps[pos] = self._tick
        self._flat_dirty[pos] = dirty
        return evicted

    def mark_dirty(self, line: int) -> None:
        """Flag a resident line as modified (no-op if absent)."""
        pos = self._slot(line)
        if pos >= 0:
            self._flat_dirty[pos] = True

    def is_dirty(self, line: int) -> bool:
        pos = self._slot(line)
        return pos >= 0 and bool(self._flat_dirty[pos])

    def clean(self, line: int) -> bool:
        """Clear a resident line's dirty mark (coherence downgrade M->S).

        Returns whether the line was dirty (a write-back happened).
        """
        pos = self._slot(line)
        if pos >= 0 and self._flat_dirty[pos]:
            self._flat_dirty[pos] = False
            return True
        return False

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; return whether it was dirty."""
        pos = self._slot(line)
        if pos < 0:
            return False
        was_dirty = bool(self._flat_dirty[pos])
        self._flat_tags[pos] = -1
        self._flat_dirty[pos] = False
        return was_dirty

    # ------------------------------------------------------------------
    # batch path (the engine's vectorized fast lane)
    # ------------------------------------------------------------------
    def contains_batch(self, lines: np.ndarray) -> np.ndarray:
        """Residency of each line, vectorized; LRU order undisturbed."""
        rows = self._tags[lines % self.num_sets]
        return (rows == lines[:, None]).any(axis=1)

    def residency(self, lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(resident, slots)``: per-line residency plus the flat slot
        index of each line (meaningful only where ``resident``)."""
        sets = lines % self.num_sets
        eq = self._tags[sets] == lines[:, None]
        resident = eq.any(axis=1)
        slots = sets * self.ways + eq.argmax(axis=1)
        return resident, slots

    def dirty_at(self, slots: np.ndarray) -> np.ndarray:
        """Dirty flags at flat slot indices (as returned by
        :meth:`residency`; only meaningful where the line was resident)."""
        return self._flat_dirty[slots]

    def touch_positions(self, slots: np.ndarray, dirty: np.ndarray | None = None) -> None:
        """Apply one in-order LRU touch per slot (duplicates allowed:
        later touches win, exactly as sequential ``lookup`` calls would)
        and optionally set dirty marks where ``dirty`` is True."""
        k = slots.size
        if not k:
            return
        base = self._tick
        self._tick = base + k
        ramp = _STAMP_RAMP[:k] if k <= _STAMP_RAMP.size else np.arange(1, k + 1, dtype=np.int64)
        self._flat_stamps[slots] = base + ramp
        if dirty is not None:
            self._flat_dirty[slots[dirty]] = True

    # ------------------------------------------------------------------
    @property
    def resident_lines(self) -> int:
        return int((self._tags >= 0).sum())

    def clear(self) -> None:
        self._tags.fill(-1)
        self._dirty.fill(False)
