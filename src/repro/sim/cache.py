"""Set-associative LRU cache simulator (paper Section 5.1 parameters).

The paper's simulated caches are two-way set-associative with 64-byte
lines and LRU replacement.  Addresses arriving here are already
line-granular (items), so the set index is simply ``line % num_sets``.

The per-set store is a tiny dict ``line -> last-use stamp``; with two
ways a set never holds more than two entries, so eviction is a min over
two stamps.  This is deliberately plain-Python: cache state transitions
are inherently sequential per processor, and at the library's default
trace sizes the dict implementation sustains roughly a million accesses
per second per processor, which the DESIGN.md performance budget allows.
"""

from __future__ import annotations

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """One processor's cache: LRU, ``ways``-way set-associative."""

    def __init__(self, capacity_items: int, ways: int = 2) -> None:
        if capacity_items < 1:
            raise ValueError("capacity must be at least one line")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.ways = min(ways, capacity_items)
        self.num_sets = max(1, capacity_items // self.ways)
        self.capacity_items = self.num_sets * self.ways
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._dirty: set[int] = set()
        self._tick = 0

    # ------------------------------------------------------------------
    def lookup(self, line: int, touch: bool = True) -> bool:
        """True if ``line`` is resident; refresh its LRU stamp if asked."""
        s = self._sets[line % self.num_sets]
        if line in s:
            if touch:
                self._tick += 1
                s[line] = self._tick
            return True
        return False

    def contains(self, line: int) -> bool:
        """Presence check without disturbing LRU order."""
        return line in self._sets[line % self.num_sets]

    def fill(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Insert ``line``; return ``(evicted_line, was_dirty)`` if any.

        Filling a line that is already resident just refreshes its LRU
        stamp (and may add the dirty mark); nothing is evicted.
        """
        s = self._sets[line % self.num_sets]
        self._tick += 1
        if line in s:
            s[line] = self._tick
            if dirty:
                self._dirty.add(line)
            return None
        evicted = None
        if len(s) >= self.ways:
            victim = min(s, key=s.__getitem__)
            del s[victim]
            was_dirty = victim in self._dirty
            self._dirty.discard(victim)
            evicted = (victim, was_dirty)
        s[line] = self._tick
        if dirty:
            self._dirty.add(line)
        return evicted

    def mark_dirty(self, line: int) -> None:
        """Flag a resident line as modified (no-op if absent)."""
        if self.contains(line):
            self._dirty.add(line)

    def is_dirty(self, line: int) -> bool:
        return line in self._dirty

    def clean(self, line: int) -> bool:
        """Clear a resident line's dirty mark (coherence downgrade M->S).

        Returns whether the line was dirty (a write-back happened).
        """
        if line in self._dirty:
            self._dirty.discard(line)
            return True
        return False

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; return whether it was dirty."""
        s = self._sets[line % self.num_sets]
        if line in s:
            del s[line]
            was_dirty = line in self._dirty
            self._dirty.discard(line)
            return was_dirty
        return False

    # ------------------------------------------------------------------
    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def clear(self) -> None:
        for s in self._sets:
            s.clear()
        self._dirty.clear()
