"""Directory-based coherence protocol (the paper's cluster DSM).

Per the paper's Section 5.1: clusters maintain a home-based directory
over 256-byte blocks.  Each block is in one of three states -- uncached,
shared, or exclusive -- with explicit invalidate and write-back requests
replacing the bus broadcasts of the snooping protocol.  The directory
entry of a block lives at its *home* machine (the machine whose memory
holds the block, assigned by the shared-address-space layout).

This module tracks directory state and classifies every access; the
platform back-ends translate the classification into cycles using the
paper's latency table (remote node vs remotely-cached data vs local
memory) and the network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.sim.latencies import DIRECTORY_BLOCK_BYTES, ITEM_BYTES

__all__ = [
    "BlockState",
    "DirectoryOutcome",
    "Directory",
    "LINES_PER_BLOCK",
    "block_of",
    "first_unowned_write",
]

#: 256-byte directory blocks hold 4 cache lines.
LINES_PER_BLOCK = DIRECTORY_BLOCK_BYTES // ITEM_BYTES


def block_of(line: int) -> int:
    """Directory block containing an item-granular line address."""
    return line // LINES_PER_BLOCK


def first_unowned_write(
    owner_of, machine: int, lines: np.ndarray, writes: np.ndarray, k: int
) -> int:
    """Index of the first write in ``writes[:k]`` to a block ``machine``
    does not own exclusively, or ``k`` when every write is owned.

    Used by the back-ends' batch eligibility check.  Consecutive writes
    overwhelmingly land in the same directory block (spatial locality),
    so the ownership lookup is memoized per block run instead of paying
    a vectorized unique/sort per call.
    """
    prev = -1
    owned = False
    for j in np.flatnonzero(writes[:k]).tolist():
        b = int(lines[j]) // LINES_PER_BLOCK
        if b != prev:
            prev = b
            owned = owner_of(b) == machine
        if not owned:
            return j
    return k


class BlockState(str, Enum):
    """The paper's three directory states."""

    UNCACHED = "uncached"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class DirServe(str, Enum):
    """Where a cluster access is served from (latency class)."""

    HOME_MEMORY = "home memory"  #: local or remote node's memory, clean
    REMOTE_DIRTY = "remotely cached data"  #: fetched from the dirty owner


@dataclass(frozen=True)
class DirectoryOutcome:
    """Classification of one miss-level cluster access."""

    serve: DirServe
    home: int  #: machine whose memory homes the block
    dirty_owner: int | None  #: machine the data came from, if dirty remote
    invalidated: tuple[int, ...]  #: machines whose copies were invalidated
    state: BlockState  #: resulting directory state


class Directory:
    """Directory state for all blocks, homed by a machine-granular map."""

    def __init__(self, home_of_block, machines: int) -> None:
        """``home_of_block``: callable block -> home machine id."""
        if machines < 1:
            raise ValueError("machines must be >= 1")
        self.home_of_block = home_of_block
        self.machines = machines
        self._holders: dict[int, set[int]] = {}
        self._owner: dict[int, int] = {}  # block -> dirty owner machine
        self.invalidations = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def state(self, block: int) -> BlockState:
        if block in self._owner:
            return BlockState.EXCLUSIVE
        if self._holders.get(block):
            return BlockState.SHARED
        return BlockState.UNCACHED

    def holders(self, block: int) -> frozenset[int]:
        return frozenset(self._holders.get(block, ()))

    def exclusive_owner(self, block: int) -> int | None:
        """Machine holding the block exclusively (dirty), if any.

        While a machine owns a block it is also its only holder (a read
        by anyone else clears ownership), so a write hit by the owner is
        a silent upgrade: no invalidations, no data movement.
        """
        return self._owner.get(block)

    # ------------------------------------------------------------------
    def read(self, machine: int, line: int) -> DirectoryOutcome:
        """A read that missed every cache of ``machine``.

        A dirty remote owner is forced to write back (block becomes
        shared); otherwise the home memory serves the block.
        """
        block = block_of(line)
        home = self.home_of_block(block)
        owner = self._owner.get(block)
        holders = self._holders.setdefault(block, set())
        if owner is not None and owner != machine:
            # Fetch from the dirty owner's cache; owner writes back.
            del self._owner[block]
            self.writebacks += 1
            holders.add(machine)
            holders.add(owner)
            return DirectoryOutcome(
                serve=DirServe.REMOTE_DIRTY,
                home=home,
                dirty_owner=owner,
                invalidated=(),
                state=BlockState.SHARED,
            )
        holders.add(machine)
        state = BlockState.EXCLUSIVE if owner == machine else BlockState.SHARED
        return DirectoryOutcome(
            serve=DirServe.HOME_MEMORY,
            home=home,
            dirty_owner=None,
            invalidated=(),
            state=state,
        )

    def write(self, machine: int, line: int, hit_own_cache: bool) -> DirectoryOutcome:
        """A write by ``machine`` (possibly hitting its own cache).

        Gains exclusive ownership: every other holder is invalidated; a
        dirty remote owner additionally supplies the current data.
        """
        block = block_of(line)
        home = self.home_of_block(block)
        owner = self._owner.get(block)
        holders = self._holders.setdefault(block, set())

        dirty_source: int | None = None
        if owner is not None and owner != machine:
            dirty_source = owner
            self.writebacks += 1
        invalidated = tuple(sorted(h for h in holders if h != machine))
        self.invalidations += len(invalidated)
        holders.clear()
        holders.add(machine)
        self._owner[block] = machine

        if hit_own_cache and dirty_source is None and not invalidated:
            serve = DirServe.HOME_MEMORY  # silent upgrade; no data moved
        elif dirty_source is not None:
            serve = DirServe.REMOTE_DIRTY
        else:
            serve = DirServe.HOME_MEMORY
        return DirectoryOutcome(
            serve=serve,
            home=home,
            dirty_owner=dirty_source,
            invalidated=invalidated,
            state=BlockState.EXCLUSIVE,
        )

    def drop_owner(self, block: int, machine: int) -> None:
        """Dirty data left the owner's caches (eviction write-back)."""
        if self._owner.get(block) == machine:
            del self._owner[block]
            self.writebacks += 1
