"""Cluster-network timing models: shared bus versus switched fabric.

The paper evaluates two representative cluster networks: bus-based
(10/100 Mb Ethernet -- one shared medium carrying every message) and
switch-based (155 Mb ATM -- contention-free pairwise paths with
queueing only at the endpoints).  Both expose the same interface: a
``transfer`` charging full-block messages (remote memory fetches) and a
``control`` charging short address-only messages (invalidations,
ownership transfers), which cost :data:`CONTROL_FRACTION` of a block
transfer.
"""

from __future__ import annotations

from repro.sim.latencies import NetworkKind
from repro.sim.memory import Server

__all__ = ["ClusterNetwork", "BusNetwork", "SwitchNetwork", "make_network", "CONTROL_FRACTION"]

#: An address-only protocol message (invalidate, ack) relative to a full
#: 256-byte block transfer: roughly one quarter (64-byte minimum frame).
CONTROL_FRACTION = 0.25


class ClusterNetwork:
    """Common bookkeeping; subclasses pick the contention structure."""

    def __init__(self, kind: NetworkKind, machines: int) -> None:
        if machines < 2:
            raise ValueError("a cluster network connects at least two machines")
        self.kind = kind
        self.machines = machines
        self.messages = 0
        self.control_messages = 0
        #: Optional fault-injection hook: extra service cycles charged to
        #: every message as a function of its *issue* time (transient
        #: latency spikes from a :class:`~repro.faults.plan.FaultPlan`).
        #: ``None`` -- the default -- costs nothing on the hot path.
        self.latency_extra = None

    def _service(self, now: float, cycles: float) -> float:
        """Per-message service time, with any injected spike applied."""
        if self.latency_extra is not None:
            return cycles + self.latency_extra(now)
        return cycles

    def service_of(self, now: float, cycles: float) -> float:
        """The service time a ``transfer`` issued at ``now`` would get.

        A pure function of the issue time (spikes are deterministic in
        ``now``), exposed so the cycle-attribution profiler can split a
        message's finish time into service vs. queueing wait without
        touching any server state.  For ``control`` messages pass
        ``cycles * CONTROL_FRACTION``.
        """
        return self._service(now, cycles)

    # -- interface ------------------------------------------------------
    def transfer(self, now: float, src: int, dst: int, cycles: float) -> float:
        """Move one block from src to dst starting at ``now``; return finish."""
        raise NotImplementedError

    def control(self, now: float, src: int, dst: int, cycles: float) -> float:
        """Send a short control message; ``cycles`` is the block cost it
        is derived from."""
        raise NotImplementedError

    @property
    def busy_cycles(self) -> float:
        raise NotImplementedError


class BusNetwork(ClusterNetwork):
    """Shared-medium Ethernet: every message serializes on one channel."""

    def __init__(self, kind: NetworkKind, machines: int) -> None:
        super().__init__(kind, machines)
        self._bus = Server()

    def transfer(self, now: float, src: int, dst: int, cycles: float) -> float:
        self.messages += 1
        return self._bus.request(now, self._service(now, cycles))

    def control(self, now: float, src: int, dst: int, cycles: float) -> float:
        self.control_messages += 1
        return self._bus.request(now, self._service(now, cycles * CONTROL_FRACTION))

    @property
    def busy_cycles(self) -> float:
        return self._bus.busy_cycles


class SwitchNetwork(ClusterNetwork):
    """Switched ATM fabric: contention only at the destination port."""

    def __init__(self, kind: NetworkKind, machines: int) -> None:
        super().__init__(kind, machines)
        self._ports = [Server() for _ in range(machines)]

    def transfer(self, now: float, src: int, dst: int, cycles: float) -> float:
        self.messages += 1
        return self._ports[dst].request(now, self._service(now, cycles))

    def control(self, now: float, src: int, dst: int, cycles: float) -> float:
        self.control_messages += 1
        return self._ports[dst].request(now, self._service(now, cycles * CONTROL_FRACTION))

    @property
    def busy_cycles(self) -> float:
        return sum(p.busy_cycles for p in self._ports)


def make_network(kind: NetworkKind, machines: int) -> ClusterNetwork:
    """Instantiate the right topology for a network kind."""
    return BusNetwork(kind, machines) if kind.is_bus else SwitchNetwork(kind, machines)
