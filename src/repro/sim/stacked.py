"""The stacked tensor lane: one batched NumPy pass over a grid of cells.

The paper's results are all *grids* -- every table and figure sweeps
(platform, workload, node-count) cells -- and until now the execution
story was "vectorize inside one cell, process-pool across cells".  A
process pool is the wrong tool for this container class of grids: each
worker pays fork/IPC, re-generates the application run from scratch
(trace generation is a deterministic function of (name, procs, seed,
kwargs), so every worker repeats it), and re-derives the engine's
clock-schedule prefix sums per cell.

This module is the third execution lane.  :func:`simulate_grid` takes a
sequence of :class:`StackedCell` descriptions, groups compatible cells
by *shape signature* (processor count, topology kind, fault-plan
presence), stacks each group's per-process issue costs into one padded
``(rows, procs, max_len)`` float64 tensor, and computes every cell's
clock-schedule prefix sums -- the arrays the vectorized fast path cuts
with ``searchsorted`` -- in a single batched ``cumsum`` over the
trailing axis (:func:`stacked_schedules`).  Application runs are
generated once per unique (name, procs, seed, kwargs) and shared by
every cell that replays them.  Each cell's dynamic event loop then runs
over *views* into the stacked tensors, so results, stats, timelines and
fault accounting are bit-identical to the scalar and vectorized lanes
by construction:

* ``np.cumsum`` accumulates strictly sequentially along the last axis,
  so row ``[r, p, :L]`` of the stacked pass equals the per-trace 1-D
  ``(work + step).cumsum()`` bit for bit; and
* padding only ever *trails* a cell's live prefix -- no padded element
  participates in any consumed slice -- so group composition cannot
  perturb a cell.

RNG discipline: anything a cell derives randomness from (generated
fault plans, workload seeds) must key off the *cell identity*, never
the batch position, so regrouping or padding a grid can never change a
cell's stream.  :meth:`StackedCell.cell_key` is that identity and
:func:`derive_cell_seed` is the only sanctioned seed derivation.

Incompatible cells degrade gracefully: a cell whose backend cannot
batch (or a group of one) still executes through the ordinary engine
inside the same in-process loop -- the lane never produces different
results, only different sharing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.apps.base import ApplicationRun
from repro.apps.registry import make_application
from repro.core.platform import PlatformSpec
from repro.faults.plan import FaultPlan
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.spans import get_tracer
from repro.sim.engine import SimulationEngine, SimulationResult

__all__ = [
    "StackedCell",
    "StackedGroup",
    "derive_cell_seed",
    "group_cells",
    "simulate_grid",
    "stacked_schedules",
]

_log = get_logger("repro.sim.stacked")

#: Cells-per-batch histogram buckets: 1 .. 4096, three per decade.
_BATCH_BUCKETS = obs_metrics.log_buckets(1.0, 4096.0)


# ----------------------------------------------------------------------
# Cell identity and RNG discipline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StackedCell:
    """One (workload, seed, platform, fault plan) grid cell.

    ``app_kwargs`` is a tuple of sorted ``(key, value)`` pairs (use
    :meth:`make` to build one from a dict) so cells hash and compare;
    it feeds :func:`repro.apps.registry.make_application` verbatim.
    """

    name: str  #: application name (registry key)
    seed: int  #: application trace seed
    spec: PlatformSpec
    app_kwargs: tuple = ()
    fault_plan: FaultPlan | None = None

    @classmethod
    def make(
        cls,
        name: str,
        spec: PlatformSpec,
        *,
        seed: int = 0,
        app_kwargs: dict | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> "StackedCell":
        return cls(
            name=name,
            seed=seed,
            spec=spec,
            app_kwargs=tuple(sorted((app_kwargs or {}).items())),
            fault_plan=fault_plan,
        )

    @property
    def procs(self) -> int:
        return self.spec.total_processors

    def run_key(self) -> tuple:
        """What determines the application run (shared across platforms)."""
        return (self.name, self.procs, self.seed, self.app_kwargs)

    def cell_key(self) -> str:
        """Stable content hash of everything that makes this cell *this*
        cell -- independent of grid composition, ordering, or padding."""
        payload = repr((
            self.name,
            self.seed,
            self.app_kwargs,
            json.dumps(self.spec.to_dict(), sort_keys=True),
            self.fault_plan.cache_key() if self.fault_plan else None,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()


def derive_cell_seed(cell: "StackedCell | str", purpose: str = "") -> int:
    """A deterministic 63-bit seed derived from a cell's identity.

    The only sanctioned way for the stacked lane to seed randomness
    (fault-plan generation, workload perturbations): the stream depends
    on the *cell key* and the stated ``purpose``, never on where the
    cell landed in a batch, so regrouping a grid -- adding cells,
    removing cells, reordering, padding -- can never change what any
    individual cell experiences.
    """
    key = cell if isinstance(cell, str) else cell.cell_key()
    digest = hashlib.sha256(f"{key}:{purpose}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ----------------------------------------------------------------------
# The batched prefix-sum kernel
# ----------------------------------------------------------------------
def stacked_schedules(
    works: np.ndarray,
    steps: np.ndarray,
    scales: np.ndarray | None = None,
    hits: np.ndarray | None = None,
) -> np.ndarray:
    """All-hit clock schedules for a stack of traces, in one pass.

    ``works`` is a ``(rows, procs, max_len)`` float64 tensor of
    per-reference issue costs (padded with anything beyond each trace's
    live length); ``steps`` gives each row's fixed per-reference step
    (compute padding + 1-cycle issue + the backend's ``t_hit``).
    Returns ``cumsum(works + steps, axis=-1)``: row ``[r, p, :L]`` is
    bit-identical to the engine's per-trace ``(work + step).cumsum()``
    because NumPy's ``cumsum`` accumulates strictly sequentially along
    the axis and padding only trails the live prefix.

    ``scales`` -- a ``(rows, procs)`` array of per-process relative CPU
    speeds (the scheduling layer's heterogeneous extension) -- switches
    to the engine's scaled arithmetic: each step becomes the 2^-6-grid
    quantization of ``(work + 1.0) / scale`` plus the row's ``hits``
    (the bare ``t_hit``), matching ``SimulationEngine(...,
    compute_scales=...)`` bit for bit.  ``steps`` is ignored for scaled
    rows; ``hits`` is required alongside ``scales``.
    """
    if works.ndim != 3:
        raise ValueError(f"works must be (rows, procs, max_len), got {works.shape}")
    if scales is not None:
        scales = np.asarray(scales, dtype=np.float64)
        if scales.shape != works.shape[:2]:
            raise ValueError(
                f"scales must be (rows, procs): {scales.shape} vs {works.shape}"
            )
        if hits is None:
            raise ValueError("hits (per-row t_hit) is required with scales")
        hits = np.asarray(hits, dtype=np.float64)
        if hits.shape != (works.shape[0],):
            raise ValueError(
                f"hits must have one entry per row: {hits.shape} vs {works.shape}"
            )
        quantized = np.round(((works + 1.0) / scales[:, :, None]) * 64.0) / 64.0
        return np.cumsum(quantized + hits[:, None, None], axis=-1)
    steps = np.asarray(steps, dtype=np.float64)
    if steps.shape != (works.shape[0],):
        raise ValueError(
            f"steps must have one entry per row: {steps.shape} vs {works.shape}"
        )
    return np.cumsum(works + steps[:, None, None], axis=-1)


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------
def _topology_kind(spec: PlatformSpec) -> str:
    if spec.N == 1:
        return "smp"
    return "cow" if spec.n == 1 else "clump"


def shape_signature(cell: StackedCell) -> tuple:
    """What must match for two cells to stack into one tensor group:
    the processor count (the tensor's middle axis), the topology kind
    (rows of like platforms pad against comparable lengths) and whether
    the cell is fault-injected (so clean grids never pay trigger-cut
    bookkeeping introduced by a faulted neighbor's group)."""
    return (cell.procs, _topology_kind(cell.spec), cell.fault_plan is not None)


@dataclass
class StackedGroup:
    """One shape-compatible batch: its cells and their shared tensors."""

    signature: tuple
    cells: list[StackedCell] = field(default_factory=list)
    #: positions of ``cells`` in the original grid (results re-slot here)
    positions: list[int] = field(default_factory=list)


def group_cells(cells: Sequence[StackedCell]) -> list[StackedGroup]:
    """Partition a grid into shape-compatible groups, stable order."""
    groups: dict[tuple, StackedGroup] = {}
    for i, cell in enumerate(cells):
        sig = shape_signature(cell)
        group = groups.get(sig)
        if group is None:
            group = groups[sig] = StackedGroup(signature=sig)
        group.cells.append(cell)
        group.positions.append(i)
    return list(groups.values())


# ----------------------------------------------------------------------
# The lane
# ----------------------------------------------------------------------
def _default_run_provider() -> Callable[[str, int, int, tuple], ApplicationRun]:
    memo: dict[tuple, ApplicationRun] = {}

    def provide(name: str, procs: int, seed: int, app_kwargs: tuple) -> ApplicationRun:
        key = (name, procs, seed, app_kwargs)
        if key not in memo:
            app = make_application(
                name, num_procs=procs, seed=seed, **dict(app_kwargs)
            )
            run = app.run()
            if not run.verified:
                raise RuntimeError(
                    f"{name} at {procs} processes failed its numeric oracle"
                )
            memo[key] = run
        return memo[key]

    return provide


def _step_prober() -> Callable[[StackedCell], float | None]:
    """Per-call memo of each platform's fixed all-hit step cost
    (compute padding + 1-cycle issue + ``t_hit``), read off the
    topology IR -- the same source the default back-end's ``t_hit``
    comes from -- without constructing a back-end.  ``None`` marks a
    platform whose step cannot be derived; its cells fall back to an
    ordinary per-cell engine inside the same loop."""
    from repro.topology.canned import topology_for_spec

    memo: dict[PlatformSpec, float | None] = {}

    def step_of(cell: StackedCell) -> float | None:
        spec = cell.spec
        if spec not in memo:
            try:
                memo[spec] = 1.0 + float(
                    topology_for_spec(spec).machine.cache.tau_cycles
                )
            except Exception:
                memo[spec] = None
        return memo[spec]

    return step_of


def _group_schedules(
    group: StackedGroup,
    runs: dict[tuple, ApplicationRun],
    step_of: Callable[[StackedCell], float | None],
) -> dict[tuple, list[np.ndarray]]:
    """Build every distinct (run, step) schedule of a group in one
    stacked prefix-sum pass; return per-(run_key, step) row views."""
    # Distinct rows: cells sharing an application run *and* a hit
    # latency share schedule arrays outright.
    row_keys: list[tuple] = []
    steps: list[float] = []
    for cell in group.cells:
        step = step_of(cell)
        if step is None:
            continue
        key = (cell.run_key(), step)
        if key not in row_keys:
            row_keys.append(key)
            steps.append(step)
    if not row_keys:
        return {}
    procs = group.signature[0]
    lengths = {
        key: [t.memory_instructions for t in runs[key[0]].traces]
        for key in row_keys
    }
    max_len = max(max(ls) for ls in lengths.values())
    works = np.zeros((len(row_keys), procs, max_len), dtype=np.float64)
    for r, key in enumerate(row_keys):
        for p, trace in enumerate(runs[key[0]].traces):
            works[r, p, : trace.memory_instructions] = trace.work
    tensor = stacked_schedules(works, np.asarray(steps, dtype=np.float64))
    return {
        key: [tensor[r, p, : lengths[key][p]] for p in range(procs)]
        for r, key in enumerate(row_keys)
    }


def simulate_grid(
    cells: Sequence[StackedCell],
    *,
    horizon: float = 200.0,
    sample_every: float | None = None,
    run_provider: Callable[[str, int, int, tuple], ApplicationRun] | None = None,
    metrics: obs_metrics.MetricsRegistry | None = None,
    profile: bool = False,
) -> list[SimulationResult]:
    """Execute a whole grid through the stacked tensor lane.

    Returns one :class:`SimulationResult` per cell, aligned with
    ``cells`` -- bit-identical to simulating each cell alone in either
    of the engine's per-cell lanes.  ``run_provider(name, procs, seed,
    app_kwargs)`` lets a caller (the experiment runner) share its
    application-run memo; the default generates and memoizes runs
    internally for the duration of the call.
    """
    registry = metrics if metrics is not None else obs_metrics.REGISTRY
    cells_total = registry.counter(
        "repro_stacked_cells_total",
        "Simulation cells executed via the stacked tensor lane",
    )
    batch_sizes = registry.histogram(
        "repro_stacked_cells_per_batch",
        "Shape-compatible cells stacked into one tensor batch",
        buckets=_BATCH_BUCKETS,
    )
    provide = run_provider if run_provider is not None else _default_run_provider()
    step_of = _step_prober()
    tracer = get_tracer()

    results: list[SimulationResult | None] = [None] * len(cells)
    groups = group_cells(cells)
    for gi, group in enumerate(groups):
        runs = {
            cell.run_key(): provide(cell.name, cell.procs, cell.seed, cell.app_kwargs)
            for cell in group.cells
        }
        with tracer.span(
            f"stacked:{len(group.cells)}cells",
            group=gi,
            procs=group.signature[0],
            kind=group.signature[1],
            faulted=group.signature[2],
        ):
            schedules = _group_schedules(group, runs, step_of)
            batch_sizes.observe(len(group.cells))
            cells_total.inc(len(group.cells))
            for cell, position in zip(group.cells, group.positions):
                run = runs[cell.run_key()]
                step = step_of(cell)
                scheds = (
                    schedules.get((cell.run_key(), step))
                    if step is not None
                    else None
                )
                engine = SimulationEngine(
                    cell.spec,
                    run,
                    horizon=horizon,
                    sample_every=sample_every,
                    fault_plan=cell.fault_plan,
                    scheds=scheds,
                    profile=profile,
                )
                results[position] = engine.execute()
        _log.debug(
            "stacked batch complete",
            group=gi,
            cells=len(group.cells),
            signature=str(group.signature),
        )
    return results  # type: ignore[return-value]
