"""Stack-distance locality model (paper Eqs. 1-2 and the n-processor rescaling).

The paper characterizes a program's temporal locality by the distribution
of *LRU stack distances*: the stack distance of a reference is the number
of unique data items touched since the previous reference to the same
item.  The cumulative distribution is modeled as the power law

    P(x) = 1 - (x / beta + 1)^(1 - alpha),        alpha > 1, beta > 0,

so the density is  p(x) = ((alpha - 1) / beta) * (x / beta + 1)^(-alpha).

``P(s)`` is exactly the hit ratio of a fully-associative LRU cache of
capacity ``s`` items, which is how the model converts memory-level sizes
into per-level access probabilities.  Locality improves as ``alpha``
grows or ``beta`` shrinks.

When the same program runs SPMD on ``n`` processors, the paper observes
that each process touches roughly ``1/n`` of the data, so the maximum
stack distance contracts by ``n`` at unchanged cumulative probability:

    P_n(x) = 1 - (n * x / beta + 1)^(1 - alpha),

which is the same law with ``beta' = beta / n`` -- see
:meth:`StackDistanceModel.rescaled`.

Distances are dimensionless "unique items"; this library consistently
uses one 64-byte cache line per item (see :data:`repro.sim.latencies.ITEM_BYTES`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

__all__ = ["StackDistanceModel"]


@dataclass(frozen=True)
class StackDistanceModel:
    """Power-law LRU stack-distance distribution with parameters (alpha, beta).

    Parameters
    ----------
    alpha:
        Tail exponent, must exceed 1.  Larger ``alpha`` means lighter
        tails, i.e. better locality.
    beta:
        Scale parameter in items, must be positive.  Smaller ``beta``
        means better locality.  The paper requires ``beta > 1`` for
        fitted workloads; rescaled models (``beta / n``) may legally drop
        below 1, so only positivity is enforced here.
    max_distance:
        Optional truncation point: the largest stack distance the
        program actually exhibits (its per-process footprint).  A real
        trace has no reuse beyond its footprint, so ``tail(s)`` is
        clamped to zero for ``s >= max_distance`` -- without this, the
        fitted power law extrapolates phantom traffic to arbitrarily
        slow hierarchy levels (disks) that the program never touches.
        ``None`` (the paper's raw Eq. 1) disables truncation.
    """

    alpha: float
    beta: float
    max_distance: float | None = None

    def __post_init__(self) -> None:
        if not (self.alpha > 1.0):
            raise ValueError(f"alpha must be > 1, got {self.alpha!r}")
        if not (self.beta > 0.0):
            raise ValueError(f"beta must be > 0, got {self.beta!r}")
        if not (math.isfinite(self.alpha) and math.isfinite(self.beta)):
            raise ValueError("alpha and beta must be finite")
        if self.max_distance is not None and not (self.max_distance > 0.0):
            raise ValueError(f"max_distance must be positive, got {self.max_distance!r}")

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------
    def cdf(self, x):
        """P(x): probability that a reference has stack distance <= x.

        Equals the hit ratio of a fully-associative LRU cache holding
        ``x`` items.  Accepts scalars or numpy arrays; negative ``x``
        yields 0.  Beyond ``max_distance`` the CDF is 1.
        """
        x = np.asarray(x, dtype=np.float64)
        out = 1.0 - np.power(np.maximum(x, 0.0) / self.beta + 1.0, 1.0 - self.alpha)
        if self.max_distance is not None:
            out = np.where(x >= self.max_distance, 1.0, out)
        return out if out.ndim else float(out)

    def pdf(self, x):
        """p(x): density of references at stack distance x (0 for x < 0)."""
        x = np.asarray(x, dtype=np.float64)
        base = np.power(np.maximum(x, 0.0) / self.beta + 1.0, -self.alpha)
        out = np.where(x < 0.0, 0.0, (self.alpha - 1.0) / self.beta * base)
        return out if out.ndim else float(out)

    def tail(self, s):
        """Survival function: fraction of references with distance > s.

        This is the *miss ratio* of an ``s``-item LRU cache and the key
        quantity the execution model needs: the probability that a
        reference travels past a memory level of capacity ``s``.  Zero
        beyond ``max_distance`` (a level big enough for the whole
        footprint sees no capacity traffic).
        """
        s = np.asarray(s, dtype=np.float64)
        out = np.power(np.maximum(s, 0.0) / self.beta + 1.0, 1.0 - self.alpha)
        if self.max_distance is not None:
            out = np.where(s >= self.max_distance, 0.0, out)
        return out if out.ndim else float(out)

    def quantile(self, q):
        """Inverse CDF: the stack distance not exceeded with probability q."""
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0.0) | (q >= 1.0)):
            raise ValueError("quantile requires 0 <= q < 1")
        out = self.beta * (np.power(1.0 - q, 1.0 / (1.0 - self.alpha)) - 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Mean stack distance; finite only when alpha > 2.

        Integrating the tail: E[X] = beta / (alpha - 2) for alpha > 2,
        infinite otherwise (the paper's fitted workloads all have
        alpha < 2, i.e. infinite-mean heavy tails).
        """
        if self.alpha <= 2.0:
            return math.inf
        return self.beta / (self.alpha - 2.0)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def rescaled(self, n: int) -> "StackDistanceModel":
        """Return the distribution seen by each of ``n`` SPMD processes.

        Implements the paper's approximation P_n(x) = 1 - (n x / beta + 1)^(1-alpha):
        partitioning the data over ``n`` processes contracts stack
        distances by ``n``, leaving cumulative probabilities unchanged.
        """
        if n < 1 or n != int(n):
            raise ValueError(f"process count must be a positive integer, got {n!r}")
        if n == 1:
            return self
        max_d = self.max_distance / int(n) if self.max_distance is not None else None
        return replace(self, beta=self.beta / int(n), max_distance=max_d)

    # ------------------------------------------------------------------
    # Sampling (used by the synthetic workload generator)
    # ------------------------------------------------------------------
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` stack distances by inverse-transform sampling."""
        if size < 0:
            raise ValueError("size must be non-negative")
        u = rng.random(size)
        return self.beta * (np.power(1.0 - u, 1.0 / (1.0 - self.alpha)) - 1.0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"StackDistanceModel(alpha={self.alpha:.4g}, beta={self.beta:.4g})"
