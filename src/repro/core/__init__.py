"""Core analytical model from Du & Zhang (IPPS 1999).

This package implements the paper's primary contribution: a closed-form
model of the average execution time per instruction of an SPMD program on
a single SMP, a cluster of workstations (COW), or a cluster of SMPs
(CLUMP), derived from a stack-distance locality characterization of the
workload and an M/D/1 + order-statistics characterization of contention
on shared resources.
"""

from repro.core.locality import StackDistanceModel
from repro.core.contention import (
    QueueSaturationError,
    barrier_cycle_time,
    barrier_wait_time,
    harmonic_number,
    mg1_response_time,
    mg1_utilization,
    mg1_waiting_time,
    queued_contribution,
)
from repro.core.hierarchy import (
    LevelKind,
    MemoryHierarchy,
    MemoryLevel,
    PlatformKind,
    additional_levels,
    clump_hierarchy,
    cow_hierarchy,
    smp_hierarchy,
)
from repro.core.platform import NetworkSpec, NetworkTopology, PlatformSpec
from repro.core.amat import AmatBreakdown, LevelContribution, average_memory_access_time
from repro.core.execution import ExecutionEstimate, e_app_seconds, e_instr_cycles, e_instr_seconds, evaluate
from repro.core.adjustment import PAPER_REMOTE_RATE_ADJUSTMENT, adjust_remote_rate, calibrate_remote_adjustment
from repro.core.validation import ComparisonRow, compare, max_relative_error, mean_relative_error, relative_error
from repro.core.scalability import ScalabilityResult, ScalePoint, speedup_curve
from repro.core.mva import MvaCenter, MvaSolution, mva_smp_amat, solve_mva

__all__ = [
    "AmatBreakdown",
    "ComparisonRow",
    "ExecutionEstimate",
    "LevelContribution",
    "LevelKind",
    "MemoryHierarchy",
    "MemoryLevel",
    "MvaCenter",
    "MvaSolution",
    "NetworkSpec",
    "NetworkTopology",
    "PAPER_REMOTE_RATE_ADJUSTMENT",
    "PlatformKind",
    "PlatformSpec",
    "QueueSaturationError",
    "ScalabilityResult",
    "ScalePoint",
    "StackDistanceModel",
    "additional_levels",
    "adjust_remote_rate",
    "average_memory_access_time",
    "barrier_cycle_time",
    "barrier_wait_time",
    "calibrate_remote_adjustment",
    "clump_hierarchy",
    "compare",
    "cow_hierarchy",
    "e_app_seconds",
    "e_instr_cycles",
    "e_instr_seconds",
    "evaluate",
    "harmonic_number",
    "max_relative_error",
    "mean_relative_error",
    "mg1_response_time",
    "mg1_utilization",
    "mg1_waiting_time",
    "mva_smp_amat",
    "queued_contribution",
    "relative_error",
    "smp_hierarchy",
    "solve_mva",
    "speedup_curve",
]
