"""Exact Mean Value Analysis for the SMP's closed queueing network.

The paper models contention with *open* M/G/1 queues, which is why its
formulas can saturate: the open model lets processors offer traffic they
could never sustain while stalled.  The textbook-correct treatment of
``n`` processors sharing a memory bus and an I/O bus is a *closed*
queueing network -- exactly ``n`` customers circulating between a think
stage (executing instructions) and the shared service centers -- solved
exactly by the Mean Value Analysis recursion (Reiser & Lavenberg 1980;
the queueing texts the paper cites, Ross and Trivedi, both derive it):

    R_i(k) = s_i * (1 + Q_i(k-1))            (FCFS queueing center)
    X(k)   = k / (Z + sum_i v_i * R_i(k))
    Q_i(k) = X(k) * v_i * R_i(k)

for population k = 1..n, think time Z, per-visit service s_i and visit
ratio v_i.  This module builds the network from the same hierarchy/
locality inputs as :func:`repro.core.amat.average_memory_access_time`
and returns the same ``T`` (cycles per memory reference), making the
three contention treatments -- open (the paper), throttled (our fixed
point), and MVA (exact) -- directly comparable; the ablation benchmark
prints all three.

Scope: platforms whose shared resources are all machine-local (single
SMPs).  Cluster networks couple customers across machines into a
multi-class network, which is beyond the exact single-class recursion;
``mva_smp_amat`` refuses them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.contention import barrier_term
from repro.core.hierarchy import MemoryHierarchy, PlatformKind
from repro.core.locality import StackDistanceModel

__all__ = ["MvaCenter", "MvaSolution", "solve_mva", "mva_smp_amat"]


@dataclass(frozen=True)
class MvaCenter:
    """One FCFS service center of the closed network."""

    name: str
    service: float  #: per-visit service time (cycles)
    visit_ratio: float  #: visits per think-cycle interaction

    def __post_init__(self) -> None:
        if self.service < 0 or self.visit_ratio < 0:
            raise ValueError("service and visit ratio must be non-negative")


@dataclass(frozen=True)
class MvaSolution:
    """Exact MVA outputs at the requested population."""

    population: int
    think_time: float
    throughput: float  #: interactions per cycle (X)
    response_times: tuple[float, ...]  #: per-center R_i
    queue_lengths: tuple[float, ...]  #: per-center Q_i
    centers: tuple[MvaCenter, ...]

    @property
    def cycle_time(self) -> float:
        """Z + sum v_i R_i: one customer's full interaction time."""
        return self.population / self.throughput

    def utilization(self, i: int) -> float:
        """rho_i = X * v_i * s_i (Little's law at the server)."""
        c = self.centers[i]
        return self.throughput * c.visit_ratio * c.service


def solve_mva(
    centers: list[MvaCenter] | tuple[MvaCenter, ...],
    population: int,
    think_time: float,
) -> MvaSolution:
    """Exact single-class MVA recursion over population 1..n."""
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0:
        raise ValueError("think time must be non-negative")
    centers = tuple(centers)
    q = [0.0] * len(centers)
    x = 0.0
    r = [0.0] * len(centers)
    for k in range(1, population + 1):
        r = [c.service * (1.0 + q[i]) for i, c in enumerate(centers)]
        denom = think_time + sum(c.visit_ratio * r[i] for i, c in enumerate(centers))
        x = k / denom if denom > 0 else float("inf")
        q = [x * c.visit_ratio * r[i] for i, c in enumerate(centers)]
    return MvaSolution(
        population=population,
        think_time=think_time,
        throughput=x,
        response_times=tuple(r),
        queue_lengths=tuple(q),
        centers=centers,
    )


def mva_smp_amat(
    hierarchy: MemoryHierarchy,
    locality: StackDistanceModel,
    gamma: float,
    barrier_scale: float = 1.0,
) -> float:
    """T (cycles per memory reference) from the exact closed network.

    The interaction unit is one memory reference: a customer thinks for
    ``1/gamma`` instruction cycles plus the ``tau_1`` cache access, then
    visits each level ``i`` with probability ``tail(s_i)``.  The network
    response converts back to the model's per-reference ``T`` via

        T = tau_1 + sum_i v_i * R_i + barriers,

    so the number is directly comparable to
    :func:`repro.core.amat.average_memory_access_time`'s total.
    """
    if hierarchy.platform is not PlatformKind.SMP:
        raise ValueError(
            "exact single-class MVA covers machine-local resources only; "
            f"got {hierarchy.platform.value} (use mode='throttled' instead)"
        )
    if not (0.0 < gamma <= 1.0):
        raise ValueError(f"gamma must be in (0, 1], got {gamma!r}")

    dist = locality.rescaled(hierarchy.total_processes)
    centers = [
        MvaCenter(
            name=level.name,
            service=level.tau_cycles,
            visit_ratio=float(dist.tail(level.boundary_items)) * level.rate_fraction,
        )
        for level in hierarchy.levels
    ]
    think = 1.0 / gamma + hierarchy.base_cycles
    sol = solve_mva(centers, hierarchy.total_processes, think)
    per_ref = sum(
        c.visit_ratio * r for c, r in zip(sol.centers, sol.response_times)
    )
    barrier = barrier_scale * barrier_term(hierarchy.barrier_population) / gamma
    return hierarchy.base_cycles + per_ref + barrier
