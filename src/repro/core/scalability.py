"""Scalability analysis: speedup curves over a platform family.

The paper opens with the cluster promise of scaling "from desktop to
teraflop"; its model makes the scaling *curve* computable in closed
form.  This module sweeps a platform family over processor counts,
computes speedup and parallel efficiency against the one-processor...
strictly, against the smallest member (the paper's platforms are
parallel by definition), and locates the knee -- the point past which
adding processors stops paying -- which is where the memory hierarchy
and the network stop the scaling, the paper's whole subject.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal, Sequence

from repro.core.execution import evaluate
from repro.core.platform import PlatformSpec
from repro.workloads.params import WorkloadParams

__all__ = ["ScalePoint", "ScalabilityResult", "speedup_curve"]


@dataclass(frozen=True)
class ScalePoint:
    """One processor count of the sweep."""

    processors: int
    spec: PlatformSpec
    e_instr_seconds: float
    speedup: float  #: relative to the smallest member's per-instruction time
    efficiency: float  #: speedup / (processors / base processors)


@dataclass(frozen=True)
class ScalabilityResult:
    workload: WorkloadParams
    points: tuple[ScalePoint, ...]

    @property
    def knee(self) -> ScalePoint:
        """The largest point whose marginal efficiency is still >= 50%:
        past it, doubling the machine buys less than half its cost."""
        best = self.points[0]
        for prev, cur in zip(self.points, self.points[1:]):
            marginal = (cur.speedup / prev.speedup) / (cur.processors / prev.processors)
            if marginal >= 0.5:
                best = cur
            else:
                break
        return best

    @property
    def peak(self) -> ScalePoint:
        """The fastest point (speedup can regress past saturation)."""
        return max(self.points, key=lambda p: p.speedup)

    def describe(self) -> str:
        lines = [
            f"scalability of {self.workload.name} "
            f"({self.points[0].spec.kind.value} family):",
            f"{'P':>4s} {'E(Instr)':>12s} {'speedup':>8s} {'efficiency':>11s}",
        ]
        for p in self.points:
            marker = ""
            if p is self.knee:
                marker += "  <== knee"
            if p is self.peak and p is not self.knee:
                marker += "  <== peak"
            lines.append(
                f"{p.processors:>4d} {p.e_instr_seconds:>12.3e} "
                f"{p.speedup:>8.2f} {100 * p.efficiency:>10.1f}%{marker}"
            )
        return "\n".join(lines)


def speedup_curve(
    workload: WorkloadParams,
    base: PlatformSpec,
    processor_counts: Sequence[int],
    scale_axis: Literal["machines", "processors"] = "machines",
    remote_rate_adjustment: float = 0.124,
) -> ScalabilityResult:
    """Sweep a platform family over processor counts with the model.

    ``scale_axis="machines"`` grows ``N`` (cluster scaling, network
    population grows); ``"processors"`` grows ``n`` (SMP scaling, bus
    population grows).  The base spec supplies every other parameter.
    """
    counts = sorted(set(int(c) for c in processor_counts))
    if not counts:
        raise ValueError("need at least one processor count")
    if any(c < 1 for c in counts):
        raise ValueError("processor counts must be positive")

    points: list[ScalePoint] = []
    base_time: float | None = None
    base_procs: int | None = None
    for c in counts:
        if scale_axis == "machines":
            spec = replace(base, name=f"{base.name} N={c}", N=c,
                           network=base.network if c > 1 else None)
        elif scale_axis == "processors":
            spec = replace(base, name=f"{base.name} n={c}", n=c)
        else:
            raise ValueError(f"unknown scale_axis {scale_axis!r}")
        est = evaluate(
            spec,
            workload.locality,
            workload.gamma,
            remote_rate_adjustment=remote_rate_adjustment if spec.N > 1 else 0.0,
            mode="throttled",
            on_saturation="inf",
            sharing_fraction=workload.sharing_at(spec.N),
            sharing_fresh_fraction=workload.sharing_fresh_fraction,
        )
        t = est.e_instr_seconds
        if base_time is None:
            base_time, base_procs = t, spec.total_processors
        assert base_time is not None and base_procs is not None
        speedup = base_time / t
        efficiency = speedup / (spec.total_processors / base_procs)
        points.append(
            ScalePoint(
                processors=spec.total_processors,
                spec=spec,
                e_instr_seconds=t,
                speedup=speedup,
                efficiency=efficiency,
            )
        )
    return ScalabilityResult(workload=workload, points=tuple(points))
