"""Platform specification: the architecture-parameter bundle of the model.

A :class:`PlatformSpec` captures everything the paper calls "architecture
parameters": machine count ``N``, processors per machine ``n``, CPU
speed, per-level capacities, and the cluster network.  It knows how to
build its :class:`~repro.core.hierarchy.MemoryHierarchy` and its own
classification (Table 1), and is the unit the cost optimizer enumerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from enum import Enum

from repro.core.hierarchy import (
    MemoryHierarchy,
    PlatformKind,
    clump_hierarchy,
    cow_hierarchy,
    smp_hierarchy,
)
from repro.sim.latencies import CPU_HZ, ITEM_BYTES, LatencyTable, NetworkKind, PAPER_LATENCIES
from repro.topology.build import build_hierarchy, classify
from repro.topology.ir import ClusterNode, MachineNode, Topology, topology_from_dict

__all__ = ["NetworkTopology", "NetworkSpec", "PlatformSpec"]


class NetworkTopology(str, Enum):
    """Shared-medium bus versus switched point-to-point fabric."""

    BUS = "bus"
    SWITCH = "switch"


@dataclass(frozen=True)
class NetworkSpec:
    """A cluster network choice with its derived properties."""

    kind: NetworkKind

    @property
    def topology(self) -> NetworkTopology:
        return NetworkTopology.BUS if self.kind.is_bus else NetworkTopology.SWITCH

    @property
    def bandwidth_mbps(self) -> int:
        return self.kind.bandwidth_mbps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.kind.value


@dataclass(frozen=True)
class PlatformSpec:
    """A concrete parallel platform (one row of the paper's Tables 3-5).

    Parameters
    ----------
    name:
        Label, e.g. ``"C7"``.
    n:
        Processors per machine (1 for a workstation).
    N:
        Machines in the cluster (1 for a single SMP).
    cache_bytes:
        Per-processor cache capacity.
    memory_bytes:
        Per-machine main-memory capacity.
    network:
        Cluster interconnect; required when ``N > 1``, must be ``None``
        for a single machine.
    cpu_hz:
        Clock rate; instructions execute at one per cycle (paper 5.1).
    latencies:
        Uncontended per-edge costs; defaults to the paper's Section 5.1
        table.
    """

    name: str
    n: int
    N: int
    cache_bytes: int
    memory_bytes: int
    network: NetworkKind | None = None
    cpu_hz: float = CPU_HZ
    latencies: LatencyTable = field(default=PAPER_LATENCIES)
    #: Cache associativity used by the simulator (the paper's caches are
    #: two-way); the analytical model is associativity-blind and exposes
    #: ``cache_capacity_factor`` instead.
    cache_ways: int = 2
    #: Optional per-machine shared L2 capacity (extension: lengthens the
    #: hierarchy by one level; the paper's 1999 platforms have none).
    l2_bytes: int | None = None
    #: Optional declarative topology tree (:mod:`repro.topology`).  When
    #: set, the interconnects live in the tree (``network`` must stay
    #: ``None``) and the scalar shape fields (n, N, capacities) must
    #: agree with it -- build via :meth:`from_topology` so they cannot
    #: drift.  Enables shapes the flat fields cannot express, e.g. a
    #: two-level intra-rack-switch / inter-rack-bus cluster.
    topology: Topology | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.N < 1:
            raise ValueError(f"N must be >= 1, got {self.N}")
        if self.n == 1 and self.N == 1:
            raise ValueError("a 1x1 platform is a plain uniprocessor; the paper's platforms are parallel (use n>1 or N>1)")
        if self.cache_bytes < ITEM_BYTES:
            raise ValueError(f"cache must hold at least one {ITEM_BYTES}-byte line")
        if self.memory_bytes <= self.cache_bytes:
            raise ValueError("memory must be larger than the cache")
        if self.topology is None and self.N > 1 and self.network is None:
            raise ValueError("a multi-machine cluster needs a network")
        if self.N == 1 and self.network is not None:
            raise ValueError("a single SMP has no cluster network")
        if self.cpu_hz <= 0:
            raise ValueError("cpu_hz must be positive")
        if self.cache_ways < 1:
            raise ValueError("cache_ways must be >= 1")
        if self.l2_bytes is not None and not (
            self.cache_bytes < self.l2_bytes < self.memory_bytes
        ):
            raise ValueError("l2_bytes must sit strictly between cache and memory")
        if self.topology is not None:
            self._check_topology_consistency()

    def _check_topology_consistency(self) -> None:
        t = self.topology
        if not isinstance(t, (MachineNode, ClusterNode)):
            raise ValueError(
                f"topology must be a MachineNode or ClusterNode, got {type(t).__name__}"
            )
        if self.network is not None:
            raise ValueError(
                "a topology-defined platform carries its interconnects in the "
                "tree; leave network=None"
            )
        if not t.is_homogeneous:
            raise ValueError(
                "PlatformSpec is homogeneous by construction (one n, one "
                "cache/memory shape, one speed); this topology holds unlike "
                "machines -- wrap it in repro.scheduling.HeteroPlatform and "
                "evaluate it through the scheduling layer instead"
            )
        m = t.machine
        if m.speed != 1.0:
            raise ValueError(
                "per-machine speed is a scheduling-layer concept; "
                f"machine speed {m.speed!r} != 1.0 -- wrap the tree in "
                "repro.scheduling.HeteroPlatform instead of a PlatformSpec"
            )
        if self.n != m.processors or self.N != t.total_machines:
            raise ValueError(
                f"spec shape (n={self.n}, N={self.N}) disagrees with its topology "
                f"(n={m.processors}, N={t.total_machines}); build via from_topology()"
            )
        pairs = (
            ("cache_bytes", self.cache_bytes, m.cache.capacity_items),
            ("memory_bytes", self.memory_bytes, m.memory.capacity_items),
        )
        for field_name, byte_value, items in pairs:
            if byte_value != int(items * ITEM_BYTES):
                raise ValueError(f"spec {field_name} disagrees with its topology tree")
        l2b = int(m.l2.capacity_items * ITEM_BYTES) if m.l2 is not None else None
        if self.l2_bytes != l2b:
            raise ValueError("spec l2_bytes disagrees with its topology tree")
        if self.cache_ways != m.cache.ways:
            raise ValueError("spec cache_ways disagrees with its topology tree")

    # ------------------------------------------------------------------
    @classmethod
    def from_topology(
        cls,
        name: str,
        topology: Topology,
        cpu_hz: float = CPU_HZ,
        latencies: LatencyTable = PAPER_LATENCIES,
    ) -> "PlatformSpec":
        """Build a spec from a topology tree, deriving the flat shape
        fields (n, N, capacities, associativity) from the tree so the
        two representations can never disagree."""
        if not isinstance(topology, (MachineNode, ClusterNode)):
            raise ValueError(
                f"topology must be a MachineNode or ClusterNode, got {type(topology).__name__}"
            )
        m = topology.machine
        return cls(
            name=name,
            n=m.processors,
            N=topology.total_machines,
            cache_bytes=int(m.cache.capacity_items * ITEM_BYTES),
            memory_bytes=int(m.memory.capacity_items * ITEM_BYTES),
            network=None,
            cpu_hz=cpu_hz,
            latencies=latencies,
            cache_ways=m.cache.ways,
            l2_bytes=int(m.l2.capacity_items * ITEM_BYTES) if m.l2 is not None else None,
            topology=topology,
        )

    @property
    def kind(self) -> PlatformKind:
        """Table 1 classification from the (n, N) shape (or the tree)."""
        if self.topology is not None:
            return classify(self.topology)
        if self.N == 1:
            return PlatformKind.SMP
        return PlatformKind.COW if self.n == 1 else PlatformKind.CLUMP

    @property
    def total_processors(self) -> int:
        return self.n * self.N

    @property
    def cache_items(self) -> int:
        """Cache capacity in 64-byte stack-distance items."""
        return self.cache_bytes // ITEM_BYTES

    @property
    def memory_items(self) -> int:
        """Per-machine memory capacity in items."""
        return self.memory_bytes // ITEM_BYTES

    @property
    def l2_items(self) -> int | None:
        """Shared-L2 capacity in items, if the platform has one."""
        return self.l2_bytes // ITEM_BYTES if self.l2_bytes is not None else None

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.cpu_hz

    # ------------------------------------------------------------------
    def hierarchy(
        self,
        include_peer_cache: bool = False,
        remote_cached_fraction: float = 0.0,
        cache_capacity_factor: float = 1.0,
    ) -> MemoryHierarchy:
        """Build the modeled memory hierarchy for this platform."""
        if self.topology is not None:
            return build_hierarchy(
                self.topology,
                include_peer_cache=include_peer_cache,
                remote_cached_fraction=remote_cached_fraction,
                cache_capacity_factor=cache_capacity_factor,
            )
        kind = self.kind
        if kind is PlatformKind.SMP:
            return smp_hierarchy(
                n=self.n,
                cache_items=self.cache_items,
                memory_items=self.memory_items,
                latencies=self.latencies,
                include_peer_cache=include_peer_cache,
                cache_capacity_factor=cache_capacity_factor,
                l2_items=self.l2_items,
            )
        assert self.network is not None
        if kind is PlatformKind.COW:
            return cow_hierarchy(
                N=self.N,
                cache_items=self.cache_items,
                memory_items=self.memory_items,
                network=self.network,
                latencies=self.latencies,
                remote_cached_fraction=remote_cached_fraction,
                cache_capacity_factor=cache_capacity_factor,
                l2_items=self.l2_items,
            )
        return clump_hierarchy(
            n=self.n,
            N=self.N,
            cache_items=self.cache_items,
            memory_items=self.memory_items,
            network=self.network,
            latencies=self.latencies,
            include_peer_cache=include_peer_cache,
            remote_cached_fraction=remote_cached_fraction,
            cache_capacity_factor=cache_capacity_factor,
            l2_items=self.l2_items,
        )

    def scaled(self, size_divisor: int) -> "PlatformSpec":
        """Return a copy with cache and memory shrunk by ``size_divisor``.

        Used to run the paper's configurations against laptop-scale
        application problem sizes while preserving all capacity ratios
        (DESIGN.md substitution 2).
        """
        if size_divisor < 1:
            raise ValueError("size_divisor must be >= 1")
        scaled_name = f"{self.name}/{size_divisor}" if size_divisor > 1 else self.name
        if self.topology is not None:
            from repro.topology.canned import scaled_topology

            topo = scaled_topology(self.topology, size_divisor)
            m = topo.machine
            return replace(
                self,
                name=scaled_name,
                cache_bytes=int(m.cache.capacity_items) * ITEM_BYTES,
                memory_bytes=int(m.memory.capacity_items) * ITEM_BYTES,
                l2_bytes=(
                    int(m.l2.capacity_items) * ITEM_BYTES if m.l2 is not None else None
                ),
                topology=topo,
            )
        return replace(
            self,
            name=scaled_name,
            cache_bytes=max(ITEM_BYTES, self.cache_bytes // size_divisor),
            memory_bytes=max(2 * ITEM_BYTES, self.memory_bytes // size_divisor),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-safe form; the canonical sim/design cache-key
        material (see ``SIM_CACHE_VERSION``/``DESIGN_CACHE_VERSION``)."""
        return {
            "name": self.name,
            "n": self.n,
            "N": self.N,
            "cache_bytes": self.cache_bytes,
            "memory_bytes": self.memory_bytes,
            "network": self.network.value if self.network is not None else None,
            "cpu_hz": self.cpu_hz,
            "latencies": {
                f.name: getattr(self.latencies, f.name)
                for f in fields(self.latencies)
            },
            "cache_ways": self.cache_ways,
            "l2_bytes": self.l2_bytes,
            "topology": self.topology.to_dict() if self.topology is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlatformSpec":
        """Inverse of :meth:`to_dict`; raises ValueError on bad payloads."""
        if not isinstance(payload, dict):
            raise ValueError(f"platform spec must be a mapping, got {type(payload).__name__}")
        known = {
            "name", "n", "N", "cache_bytes", "memory_bytes", "network",
            "cpu_hz", "latencies", "cache_ways", "l2_bytes", "topology",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown platform spec keys: {', '.join(sorted(unknown))}")
        try:
            name = payload["name"]
            n = payload["n"]
            N = payload["N"]
            cache_bytes = payload["cache_bytes"]
            memory_bytes = payload["memory_bytes"]
        except KeyError as exc:
            raise ValueError(f"platform spec is missing required key {exc.args[0]!r}") from None
        network = payload.get("network")
        if network is not None:
            try:
                network = NetworkKind(network)
            except ValueError:
                known_nets = ", ".join(repr(k.value) for k in NetworkKind)
                raise ValueError(f"unknown network {network!r}; known: {known_nets}") from None
        latencies = payload.get("latencies")
        if latencies is None:
            latencies = PAPER_LATENCIES
        elif isinstance(latencies, dict):
            try:
                latencies = LatencyTable(**latencies)
            except TypeError as exc:
                raise ValueError(f"bad latencies table: {exc}") from None
        else:
            raise ValueError("latencies must be a mapping of cost names to cycles")
        topology = payload.get("topology")
        if topology is not None:
            topology = topology_from_dict(topology)
        try:
            return cls(
                name=name,
                n=n,
                N=N,
                cache_bytes=cache_bytes,
                memory_bytes=memory_bytes,
                network=network,
                cpu_hz=payload.get("cpu_hz", CPU_HZ),
                latencies=latencies,
                cache_ways=payload.get("cache_ways", 2),
                l2_bytes=payload.get("l2_bytes"),
                topology=topology,
            )
        except TypeError as exc:
            raise ValueError(f"bad platform spec: {exc}") from None

    def describe(self) -> str:
        """One-line summary in the style of the paper's config tables."""
        if self.topology is not None and self.topology.depth > 0:
            nets = " + ".join(ic.label for ic, _ in self.topology.interconnects)
            net = f", {nets}"
        else:
            net = f", {self.network.value}" if self.network else ""
        return (
            f"{self.name}: {self.kind.value}, n={self.n}, N={self.N}, "
            f"cache {self.cache_bytes // 1024}KB, memory {self.memory_bytes // 1024}KB"
            f"{net}, {self.cpu_hz / 1e6:.0f} MHz"
        )
