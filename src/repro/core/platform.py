"""Platform specification: the architecture-parameter bundle of the model.

A :class:`PlatformSpec` captures everything the paper calls "architecture
parameters": machine count ``N``, processors per machine ``n``, CPU
speed, per-level capacities, and the cluster network.  It knows how to
build its :class:`~repro.core.hierarchy.MemoryHierarchy` and its own
classification (Table 1), and is the unit the cost optimizer enumerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.core.hierarchy import (
    MemoryHierarchy,
    PlatformKind,
    clump_hierarchy,
    cow_hierarchy,
    smp_hierarchy,
)
from repro.sim.latencies import CPU_HZ, ITEM_BYTES, LatencyTable, NetworkKind, PAPER_LATENCIES

__all__ = ["NetworkTopology", "NetworkSpec", "PlatformSpec"]


class NetworkTopology(str, Enum):
    """Shared-medium bus versus switched point-to-point fabric."""

    BUS = "bus"
    SWITCH = "switch"


@dataclass(frozen=True)
class NetworkSpec:
    """A cluster network choice with its derived properties."""

    kind: NetworkKind

    @property
    def topology(self) -> NetworkTopology:
        return NetworkTopology.BUS if self.kind.is_bus else NetworkTopology.SWITCH

    @property
    def bandwidth_mbps(self) -> int:
        return self.kind.bandwidth_mbps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.kind.value


@dataclass(frozen=True)
class PlatformSpec:
    """A concrete parallel platform (one row of the paper's Tables 3-5).

    Parameters
    ----------
    name:
        Label, e.g. ``"C7"``.
    n:
        Processors per machine (1 for a workstation).
    N:
        Machines in the cluster (1 for a single SMP).
    cache_bytes:
        Per-processor cache capacity.
    memory_bytes:
        Per-machine main-memory capacity.
    network:
        Cluster interconnect; required when ``N > 1``, must be ``None``
        for a single machine.
    cpu_hz:
        Clock rate; instructions execute at one per cycle (paper 5.1).
    latencies:
        Uncontended per-edge costs; defaults to the paper's Section 5.1
        table.
    """

    name: str
    n: int
    N: int
    cache_bytes: int
    memory_bytes: int
    network: NetworkKind | None = None
    cpu_hz: float = CPU_HZ
    latencies: LatencyTable = field(default=PAPER_LATENCIES)
    #: Cache associativity used by the simulator (the paper's caches are
    #: two-way); the analytical model is associativity-blind and exposes
    #: ``cache_capacity_factor`` instead.
    cache_ways: int = 2
    #: Optional per-machine shared L2 capacity (extension: lengthens the
    #: hierarchy by one level; the paper's 1999 platforms have none).
    l2_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.N < 1:
            raise ValueError(f"N must be >= 1, got {self.N}")
        if self.n == 1 and self.N == 1:
            raise ValueError("a 1x1 platform is a plain uniprocessor; the paper's platforms are parallel (use n>1 or N>1)")
        if self.cache_bytes < ITEM_BYTES:
            raise ValueError(f"cache must hold at least one {ITEM_BYTES}-byte line")
        if self.memory_bytes <= self.cache_bytes:
            raise ValueError("memory must be larger than the cache")
        if self.N > 1 and self.network is None:
            raise ValueError("a multi-machine cluster needs a network")
        if self.N == 1 and self.network is not None:
            raise ValueError("a single SMP has no cluster network")
        if self.cpu_hz <= 0:
            raise ValueError("cpu_hz must be positive")
        if self.cache_ways < 1:
            raise ValueError("cache_ways must be >= 1")
        if self.l2_bytes is not None and not (
            self.cache_bytes < self.l2_bytes < self.memory_bytes
        ):
            raise ValueError("l2_bytes must sit strictly between cache and memory")

    # ------------------------------------------------------------------
    @property
    def kind(self) -> PlatformKind:
        """Table 1 classification from the (n, N) shape."""
        if self.N == 1:
            return PlatformKind.SMP
        return PlatformKind.COW if self.n == 1 else PlatformKind.CLUMP

    @property
    def total_processors(self) -> int:
        return self.n * self.N

    @property
    def cache_items(self) -> int:
        """Cache capacity in 64-byte stack-distance items."""
        return self.cache_bytes // ITEM_BYTES

    @property
    def memory_items(self) -> int:
        """Per-machine memory capacity in items."""
        return self.memory_bytes // ITEM_BYTES

    @property
    def l2_items(self) -> int | None:
        """Shared-L2 capacity in items, if the platform has one."""
        return self.l2_bytes // ITEM_BYTES if self.l2_bytes is not None else None

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.cpu_hz

    # ------------------------------------------------------------------
    def hierarchy(
        self,
        include_peer_cache: bool = False,
        remote_cached_fraction: float = 0.0,
        cache_capacity_factor: float = 1.0,
    ) -> MemoryHierarchy:
        """Build the modeled memory hierarchy for this platform."""
        kind = self.kind
        if kind is PlatformKind.SMP:
            return smp_hierarchy(
                n=self.n,
                cache_items=self.cache_items,
                memory_items=self.memory_items,
                latencies=self.latencies,
                include_peer_cache=include_peer_cache,
                cache_capacity_factor=cache_capacity_factor,
                l2_items=self.l2_items,
            )
        assert self.network is not None
        if kind is PlatformKind.COW:
            return cow_hierarchy(
                N=self.N,
                cache_items=self.cache_items,
                memory_items=self.memory_items,
                network=self.network,
                latencies=self.latencies,
                remote_cached_fraction=remote_cached_fraction,
                cache_capacity_factor=cache_capacity_factor,
                l2_items=self.l2_items,
            )
        return clump_hierarchy(
            n=self.n,
            N=self.N,
            cache_items=self.cache_items,
            memory_items=self.memory_items,
            network=self.network,
            latencies=self.latencies,
            include_peer_cache=include_peer_cache,
            remote_cached_fraction=remote_cached_fraction,
            cache_capacity_factor=cache_capacity_factor,
            l2_items=self.l2_items,
        )

    def scaled(self, size_divisor: int) -> "PlatformSpec":
        """Return a copy with cache and memory shrunk by ``size_divisor``.

        Used to run the paper's configurations against laptop-scale
        application problem sizes while preserving all capacity ratios
        (DESIGN.md substitution 2).
        """
        if size_divisor < 1:
            raise ValueError("size_divisor must be >= 1")
        return replace(
            self,
            name=f"{self.name}/{size_divisor}" if size_divisor > 1 else self.name,
            cache_bytes=max(ITEM_BYTES, self.cache_bytes // size_divisor),
            memory_bytes=max(2 * ITEM_BYTES, self.memory_bytes // size_divisor),
        )

    def describe(self) -> str:
        """One-line summary in the style of the paper's config tables."""
        net = f", {self.network.value}" if self.network else ""
        return (
            f"{self.name}: {self.kind.value}, n={self.n}, N={self.N}, "
            f"cache {self.cache_bytes // 1024}KB, memory {self.memory_bytes // 1024}KB"
            f"{net}, {self.cpu_hz / 1e6:.0f} MHz"
        )
