"""Execution-time model: the paper's Eqs. 3-4 on top of the AMAT model.

With ``gamma = M / (m + M)`` the memory-referencing instruction fraction
and ``T`` the average memory access time, the paper models

    E(App)   = ((m + M) / (n N)) * (1 / S + gamma * T)      (Eq. 3)
    E(Instr) = (1 / (n N)) * (1 / S + gamma * T)            (Eq. 4)

i.e. perfectly load-balanced SPMD work divided over all ``n * N``
processors, each instruction paying its expected memory time.  This
module evaluates those forms in cycles (S = 1 instruction/cycle) and in
seconds (via the platform clock), and offers :func:`evaluate` as the
single-call entry point combining a :class:`~repro.core.platform.PlatformSpec`
with workload parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.amat import AmatBreakdown, average_memory_access_time
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec

__all__ = [
    "ExecutionEstimate",
    "e_instr_cycles",
    "e_instr_seconds",
    "e_app_seconds",
    "evaluate",
    "evaluate_batch",
]


def e_instr_cycles(total_processors: int, gamma: float, amat_cycles: float) -> float:
    """E(Instr) in cycles per instruction: (1 + gamma*T) / (n*N).

    ``1`` is the single-cycle instruction execution (1/S with S = 1
    instruction per cycle).
    """
    if total_processors < 1:
        raise ValueError("total_processors must be >= 1")
    if not (0.0 < gamma <= 1.0):
        raise ValueError(f"gamma must be in (0, 1], got {gamma!r}")
    if amat_cycles < 0:
        raise ValueError("AMAT must be non-negative")
    return (1.0 + gamma * amat_cycles) / total_processors


def e_instr_seconds(total_processors: int, gamma: float, amat_cycles: float, cpu_hz: float) -> float:
    """E(Instr) in seconds per instruction."""
    if cpu_hz <= 0:
        raise ValueError("cpu_hz must be positive")
    return e_instr_cycles(total_processors, gamma, amat_cycles) / cpu_hz


def e_app_seconds(
    total_instructions: int,
    total_processors: int,
    gamma: float,
    amat_cycles: float,
    cpu_hz: float,
) -> float:
    """E(App) in seconds: Eq. 3, i.e. E(Instr) times the instruction count."""
    if total_instructions < 0:
        raise ValueError("instruction count must be non-negative")
    return total_instructions * e_instr_seconds(total_processors, gamma, amat_cycles, cpu_hz)


@dataclass(frozen=True)
class ExecutionEstimate:
    """Full model output for one (platform, workload) pair."""

    platform_name: str
    amat: AmatBreakdown
    e_instr_cycles: float  #: cycles per instruction (per Eq. 4)
    e_instr_seconds: float
    total_processors: int
    cpu_hz: float

    @property
    def feasible(self) -> bool:
        """False when some modeled queue saturates (infinite time)."""
        return math.isfinite(self.e_instr_seconds)

    def e_app_seconds(self, total_instructions: int) -> float:
        """Predicted wall time of a run issuing ``total_instructions``."""
        return total_instructions * self.e_instr_seconds

    def speedup_over(self, other: "ExecutionEstimate") -> float:
        """How much faster this platform is than ``other`` (>1 = faster)."""
        return other.e_instr_seconds / self.e_instr_seconds


def evaluate(
    spec: PlatformSpec,
    locality: StackDistanceModel,
    gamma: float,
    remote_rate_adjustment: float = 0.0,
    barrier_scale: float = 1.0,
    include_peer_cache: bool = False,
    remote_cached_fraction: float = 0.0,
    on_saturation: Literal["raise", "inf"] = "raise",
    mode: Literal["open", "throttled", "mva"] = "open",
    sharing_fraction: float = 0.0,
    sharing_fresh_fraction: float = 1.0,
    cache_capacity_factor: float = 1.0,
    contention_boost: float = 1.0,
) -> ExecutionEstimate:
    """Predict E(Instr) for a workload on a platform (the model's API).

    This is the function the paper's whole methodology funnels into:
    everything else (trace analysis, cost optimization, case studies)
    either produces its inputs or consumes its output.  ``mode="open"``
    is the paper's formula; ``mode="throttled"`` is the self-limiting
    closed-system variant (see
    :func:`repro.core.amat.average_memory_access_time`); ``mode="mva"``
    uses the exact closed-network Mean Value Analysis for single SMPs
    (:func:`repro.core.mva.mva_smp_amat`) and falls back to
    ``"throttled"`` on clusters, whose cross-machine coupling is outside
    the exact single-class recursion.
    """
    hierarchy = spec.hierarchy(
        include_peer_cache=include_peer_cache,
        remote_cached_fraction=remote_cached_fraction,
        cache_capacity_factor=cache_capacity_factor,
    )
    if mode == "mva":
        from repro.core.hierarchy import PlatformKind
        from repro.core.mva import mva_smp_amat

        if spec.kind is PlatformKind.SMP:
            total = mva_smp_amat(hierarchy, locality, gamma, barrier_scale=barrier_scale)
            from repro.core.contention import barrier_term

            amat = AmatBreakdown(
                total_cycles=total,
                base_cycles=hierarchy.base_cycles,
                barrier_cycles=barrier_scale * barrier_term(hierarchy.barrier_population) / gamma,
                levels=(),  # MVA reports the aggregate, not per-level shares
                total_processes=hierarchy.total_processes,
                gamma=gamma,
            )
            cycles = e_instr_cycles(spec.total_processors, gamma, total)
            return ExecutionEstimate(
                platform_name=spec.name,
                amat=amat,
                e_instr_cycles=cycles,
                e_instr_seconds=cycles / spec.cpu_hz,
                total_processors=spec.total_processors,
                cpu_hz=spec.cpu_hz,
            )
        mode = "throttled"
    amat = average_memory_access_time(
        hierarchy,
        locality,
        gamma,
        remote_rate_adjustment=remote_rate_adjustment,
        barrier_scale=barrier_scale,
        on_saturation=on_saturation,
        mode=mode,
        sharing_fraction=sharing_fraction,
        sharing_fresh_fraction=sharing_fresh_fraction,
        contention_boost=contention_boost,
    )
    cycles = (
        e_instr_cycles(spec.total_processors, gamma, amat.total_cycles)
        if math.isfinite(amat.total_cycles)
        else math.inf
    )
    return ExecutionEstimate(
        platform_name=spec.name,
        amat=amat,
        e_instr_cycles=cycles,
        e_instr_seconds=cycles / spec.cpu_hz if math.isfinite(cycles) else math.inf,
        total_processors=spec.total_processors,
        cpu_hz=spec.cpu_hz,
    )


def evaluate_batch(
    specs: Sequence,
    locality: StackDistanceModel,
    gamma: float,
    *,
    mode: Literal["open", "throttled", "mva"] = "open",
    on_saturation: Literal["raise", "inf"] = "raise",
    remote_rate_adjustment: float = 0.0,
    barrier_scale: float = 1.0,
    include_peer_cache: bool = False,
    remote_cached_fraction: float = 0.0,
    sharing_fraction: float = 0.0,
    sharing_fresh_fraction: float = 1.0,
    cache_capacity_factor: float = 1.0,
    contention_boost: float = 1.0,
    force_scalar: bool = False,
):
    """Predict E(Instr) seconds for *many* platforms at once, vectorized.

    The batch analogue of :func:`evaluate` and the evaluation layer the
    design-space optimizer runs on: ``specs`` is a sequence of
    :class:`~repro.core.platform.PlatformSpec` (or
    :class:`~repro.core.batch.BatchCase` for per-candidate sharing and
    remote-rate knobs), the keyword arguments mirror :func:`evaluate`,
    and the result is a float64 array of ``e_instr_seconds``,
    **bit-identical** to calling :func:`evaluate` per spec (see
    :mod:`repro.core.batch` for how the scalar arithmetic is replicated).

    >>> from repro.core.locality import StackDistanceModel
    >>> from repro.core.platform import PlatformSpec
    >>> loc = StackDistanceModel(alpha=1.6, beta=1000.0)
    >>> smp = PlatformSpec("S4", n=4, N=1, cache_bytes=256 * 1024,
    ...                    memory_bytes=64 * 1024 * 1024)
    >>> batch = evaluate_batch([smp], loc, gamma=0.3, mode="throttled")
    >>> float(batch[0]) == evaluate(smp, loc, 0.3, mode="throttled").e_instr_seconds
    True
    """
    from repro.core.batch import e_instr_seconds_batch

    return e_instr_seconds_batch(
        specs,
        locality,
        gamma,
        mode=mode,
        on_saturation=on_saturation,
        remote_rate_adjustment=remote_rate_adjustment,
        barrier_scale=barrier_scale,
        include_peer_cache=include_peer_cache,
        remote_cached_fraction=remote_cached_fraction,
        sharing_fraction=sharing_fraction,
        sharing_fresh_fraction=sharing_fresh_fraction,
        cache_capacity_factor=cache_capacity_factor,
        contention_boost=contention_boost,
        force_scalar=force_scalar,
    )
