"""Coherence-overhead adjustment of the remote access rate (Section 5.3.2).

The analytical model deliberately omits shared-memory coherence traffic
(the paper: "modeling this process is very difficult and will make the
model too complicated to use").  On clusters, coherence overhead is
significant, so the paper compensates by scaling the modeled access rate
to remote memory up by a single empirical factor -- 12.4% in their
experiments -- chosen so model-vs-simulation differences drop below 10%.

This module provides that constant, the rate transformation, and a
calibration routine that recovers the factor the same way the authors
did: pick the single factor minimizing the worst-case relative error of
the model against simulation across a set of (workload, platform) pairs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "PAPER_REMOTE_RATE_ADJUSTMENT",
    "adjust_remote_rate",
    "calibrate_remote_adjustment",
]

#: The paper's empirical adjustment: remote access rate scaled by +12.4%.
PAPER_REMOTE_RATE_ADJUSTMENT = 0.124


def adjust_remote_rate(rate: float, adjustment: float = PAPER_REMOTE_RATE_ADJUSTMENT) -> float:
    """Scale a remote-memory access rate up by ``adjustment`` (e.g. 0.124)."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if adjustment < 0:
        raise ValueError("adjustment must be non-negative")
    return rate * (1.0 + adjustment)


def calibrate_remote_adjustment(
    model_fn: Callable[[float], Sequence[float]],
    simulated: Sequence[float],
    candidates: Sequence[float] | None = None,
) -> tuple[float, float]:
    """Find the adjustment factor minimizing worst-case model error.

    Parameters
    ----------
    model_fn:
        Maps an adjustment factor to the model's predictions for a fixed
        list of (workload, platform) cases.
    simulated:
        The simulator's measurements for the same cases, same order.
    candidates:
        Factors to scan; defaults to 0..50% in 0.2% steps (the paper's
        own 12.4% sits on this grid).

    Returns
    -------
    (best_factor, worst_case_relative_error) at the optimum.
    """
    sim = np.asarray(simulated, dtype=np.float64)
    if sim.size == 0:
        raise ValueError("need at least one simulated observation")
    if np.any(sim <= 0):
        raise ValueError("simulated times must be positive")
    if candidates is None:
        candidates = np.arange(0.0, 0.502, 0.002)
    best_factor, best_err = 0.0, np.inf
    for factor in candidates:
        pred = np.asarray(model_fn(float(factor)), dtype=np.float64)
        if pred.shape != sim.shape:
            raise ValueError("model_fn must return one prediction per simulated case")
        err = float(np.max(np.abs(pred - sim) / sim))
        if err < best_err:
            best_factor, best_err = float(factor), err
    return best_factor, best_err
