"""Model-versus-simulation comparison utilities (Figures 2-4 methodology).

The paper validates its model by running each application on each
platform configuration twice -- once through the analytical model, once
through the program-driven simulator -- and reporting the relative
difference (< 5% on SMPs, < 10% on COWs, < 8% on CLUMPs).  This module
provides the error metrics and a tabular comparison container used by
the experiment harness and the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "relative_error",
    "max_relative_error",
    "mean_relative_error",
    "ComparisonRow",
    "compare",
    "format_table",
]


def relative_error(modeled: float, simulated: float) -> float:
    """|modeled - simulated| / simulated (the paper's difference metric)."""
    if simulated <= 0:
        raise ValueError(f"simulated value must be positive, got {simulated!r}")
    return abs(modeled - simulated) / simulated


def max_relative_error(modeled: Sequence[float], simulated: Sequence[float]) -> float:
    """Worst-case relative error over paired observations."""
    m = np.asarray(modeled, dtype=np.float64)
    s = np.asarray(simulated, dtype=np.float64)
    if m.shape != s.shape or m.size == 0:
        raise ValueError("need equal-length, non-empty sequences")
    if np.any(s <= 0):
        raise ValueError("simulated values must be positive")
    return float(np.max(np.abs(m - s) / s))


def mean_relative_error(modeled: Sequence[float], simulated: Sequence[float]) -> float:
    """Average relative error over paired observations."""
    m = np.asarray(modeled, dtype=np.float64)
    s = np.asarray(simulated, dtype=np.float64)
    if m.shape != s.shape or m.size == 0:
        raise ValueError("need equal-length, non-empty sequences")
    if np.any(s <= 0):
        raise ValueError("simulated values must be positive")
    return float(np.mean(np.abs(m - s) / s))


@dataclass(frozen=True)
class ComparisonRow:
    """One (application, configuration) cell of a Figure 2/3/4 series."""

    application: str
    configuration: str
    modeled: float  #: E(Instr), seconds
    simulated: float  #: E(Instr), seconds

    @property
    def error(self) -> float:
        return relative_error(self.modeled, self.simulated)


def compare(
    applications: Iterable[str],
    configurations: Iterable[str],
    modeled: dict[tuple[str, str], float],
    simulated: dict[tuple[str, str], float],
) -> list[ComparisonRow]:
    """Zip model and simulator results into comparison rows.

    Missing (application, configuration) pairs raise ``KeyError`` --
    a validation figure with holes is a bug, not a result.
    """
    rows = []
    for app in applications:
        for cfg in configurations:
            key = (app, cfg)
            rows.append(
                ComparisonRow(
                    application=app,
                    configuration=cfg,
                    modeled=modeled[key],
                    simulated=simulated[key],
                )
            )
    return rows


def format_table(rows: Sequence[ComparisonRow], time_unit: float = 1e-9, unit_label: str = "ns") -> str:
    """Render comparison rows the way the paper's figures tabulate them."""
    if not rows:
        return "(no rows)"
    header = f"{'application':<12s} {'config':<10s} {'model':>12s} {'simulated':>12s} {'diff':>8s}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.application:<12s} {r.configuration:<10s} "
            f"{r.modeled / time_unit:>10.3f}{unit_label} {r.simulated / time_unit:>10.3f}{unit_label} "
            f"{100 * r.error:>7.2f}%"
        )
    worst = max(r.error for r in rows)
    lines.append(f"worst-case difference: {100 * worst:.2f}%")
    return "\n".join(lines)
