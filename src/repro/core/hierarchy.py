"""Memory-hierarchy abstraction (paper Figure 1 and Table 1).

The paper views every platform through a single five-level hierarchy seen
from one processor: own cache, own/SMP memory, remote memory, own disk,
remote disk.  Each platform *adds* levels to a uniprocessor baseline:

* a single SMP adds peer-memory access over the memory bus (gray block A);
* a cluster of workstations adds remote memory and remote disks over the
  cluster network (gray blocks B and C);
* a cluster of SMPs adds all three (A, B and C).

For the analytical model a hierarchy is a base access cost ``tau_1`` plus
an ordered list of levels, each carrying the *stack-distance boundary*
beyond which a reference reaches it, the additional uncontended cost of
doing so, and the number of agents contending for the resource that
serves it.  :func:`repro.core.amat.average_memory_access_time` folds this
structure with a workload's locality model into the paper's Eq. 7/11.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.sim.latencies import LatencyTable, NetworkKind

__all__ = [
    "LevelKind",
    "MemoryLevel",
    "MemoryHierarchy",
    "PlatformKind",
    "additional_levels",
    "smp_hierarchy",
    "cow_hierarchy",
    "clump_hierarchy",
]


class PlatformKind(str, Enum):
    """The three platform classes the paper models (Table 1), plus the
    heterogeneous extension (unlike machines in one tree, outside the
    paper's taxonomy -- see docs/SCHEDULING.md)."""

    SMP = "a single SMP"
    COW = "a cluster of workstations"
    CLUMP = "a cluster of SMPs"
    HETEROGENEOUS = "a heterogeneous cluster"


def additional_levels(kind: PlatformKind) -> tuple[str, ...]:
    """Paper Table 1: the gray blocks each platform adds to Figure 1.

    A heterogeneous cluster can add any of them depending on the leaf
    (an SMP leaf sees block A, any multi-machine tree sees B and C).
    """
    return {
        PlatformKind.SMP: ("A",),
        PlatformKind.COW: ("B", "C"),
        PlatformKind.CLUMP: ("A", "B", "C"),
        PlatformKind.HETEROGENEOUS: ("A", "B", "C"),
    }[kind]


class LevelKind(str, Enum):
    """Which of Figure 1's five access classes a level belongs to."""

    CACHE = "cache"
    L2_CACHE = "L2 cache"
    PEER_CACHE = "peer cache"
    LOCAL_MEMORY = "local memory"
    REMOTE_MEMORY = "remote memory"
    LOCAL_DISK = "local disk"
    REMOTE_DISK = "remote disk"


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the modeled hierarchy.

    Attributes
    ----------
    name:
        Human-readable label used in reports.
    kind:
        Structural classification (Figure 1 access class).
    boundary_items:
        Stack distance (in 64-byte items) beyond which a reference
        reaches this level.  The additive AMAT model charges this level's
        cost to every reference whose distance exceeds the boundary.
    tau_cycles:
        Additional uncontended access cost in cycles.
    population:
        Number of agents whose traffic contends for the resource serving
        this level (M/D/1 population; 1 means contention-free).
    rate_fraction:
        Fraction of the past-boundary traffic actually served here --
        used to split one boundary between local and remote disks.
    """

    name: str
    kind: LevelKind
    boundary_items: float
    tau_cycles: float
    population: int
    rate_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.boundary_items < 0:
            raise ValueError(f"boundary must be non-negative, got {self.boundary_items!r}")
        if self.tau_cycles < 0:
            raise ValueError(f"tau must be non-negative, got {self.tau_cycles!r}")
        if self.population < 1:
            raise ValueError(f"population must be >= 1, got {self.population!r}")
        if not (0.0 <= self.rate_fraction <= 1.0):
            raise ValueError(f"rate_fraction must be in [0, 1], got {self.rate_fraction!r}")


@dataclass(frozen=True)
class MemoryHierarchy:
    """A platform's memory hierarchy as seen by one processor."""

    platform: PlatformKind
    base_cycles: float
    levels: tuple[MemoryLevel, ...]
    barrier_population: int
    total_processes: int

    def __post_init__(self) -> None:
        if self.base_cycles < 0:
            raise ValueError("base access time must be non-negative")
        if self.barrier_population < 1:
            raise ValueError("barrier population must be >= 1")
        if self.total_processes < 1:
            raise ValueError("total process count must be >= 1")
        boundaries = [lv.boundary_items for lv in self.levels]
        if any(b2 < b1 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise ValueError("level boundaries must be non-decreasing")

    @property
    def length(self) -> int:
        """The paper's k: number of distinct access levels incl. the cache."""
        return 1 + len(self.levels)

    def describe(self) -> str:
        """Render the hierarchy as text (the reproducible content of Fig. 1)."""
        lines = [
            f"{self.platform.value} -- {self.total_processes} process(es), "
            f"hierarchy length k={self.length}",
            f"  level 1: cache hit                      tau={self.base_cycles:g} cycles",
        ]
        for i, lv in enumerate(self.levels, start=2):
            frac = "" if lv.rate_fraction == 1.0 else f" x{lv.rate_fraction:.3g} of traffic"
            lines.append(
                f"  level {i}: {lv.name:<28s} beyond {lv.boundary_items:,.0f} items, "
                f"+{lv.tau_cycles:g} cycles, {lv.population} sharer(s){frac}"
            )
        lines.append(f"  barriers: max over {self.barrier_population} process(es)")
        return "\n".join(lines)


def _effective_cache(cache_items: float, factor: float) -> float:
    """Associativity-derated cache capacity the stack model should use.

    The analytical model assumes fully-associative LRU; the simulated
    (and the paper's) caches are two-way set-associative and suffer
    conflict misses a stack model cannot see.  A factor below 1 shrinks
    the modeled cache to its conflict-equivalent capacity (a classic
    rule of thumb is ~0.5 for two-way); 1.0 is the paper's raw model.
    """
    if not (0.0 < factor <= 1.0):
        raise ValueError(f"cache_capacity_factor must be in (0, 1], got {factor!r}")
    return max(1.0, cache_items * factor)


def _switch_population(n_per_node: int) -> int:
    """Effective M/D/1 population at one node of a switched network.

    A switch provides contention-free pairwise paths, so queueing happens
    at the destination memory module.  With uniform remote traffic the
    aggregate rate arriving at one node equals the rate one node emits
    (n_per_node processor streams), i.e. the interference seen by a
    request equals ``n_per_node`` extra streams -> population n+1.
    """
    return n_per_node + 1


def smp_hierarchy(
    n: int,
    cache_items: float,
    memory_items: float,
    latencies: LatencyTable,
    include_peer_cache: bool = False,
    cache_capacity_factor: float = 1.0,
    l2_items: float | None = None,
) -> MemoryHierarchy:
    """Hierarchy of a single bus-based SMP (paper Eq. 11 structure).

    Levels: cache -> [optional peer caches] -> shared memory (bus, n
    sharers) -> disk (I/O bus, n sharers).  ``include_peer_cache`` adds
    the 15-cycle cache-to-cache level the simulator has but the paper's
    analytical formula omits; it is off by default for fidelity.

    Thin wrapper over the generic topology fold
    (:func:`repro.topology.build.build_hierarchy`); the canned tree
    reproduces the historical level structure exactly.
    """
    from repro.topology.build import build_hierarchy
    from repro.topology.canned import smp_topology

    if n < 1:
        raise ValueError(f"SMP needs n >= 1 processors, got {n}")
    if memory_items <= cache_items:
        raise ValueError("memory must be larger than the cache")
    topo = smp_topology(n, cache_items, memory_items, latencies, l2_items=l2_items)
    return build_hierarchy(
        topo,
        include_peer_cache=include_peer_cache,
        cache_capacity_factor=cache_capacity_factor,
    )


def cow_hierarchy(
    N: int,
    cache_items: float,
    memory_items: float,
    network: NetworkKind,
    latencies: LatencyTable,
    remote_cached_fraction: float = 0.0,
    cache_capacity_factor: float = 1.0,
    l2_items: float | None = None,
) -> MemoryHierarchy:
    """Hierarchy of a cluster of N uniprocessor workstations.

    Levels: cache -> local memory (contention-free) -> remote memory
    (cluster network) -> disks (local/remote split).  On a bus network
    every processor's remote traffic crosses one shared medium
    (population N); on a switch, contention is only at the destination
    module (population 2).  ``remote_cached_fraction`` routes that share
    of remote traffic to the dearer remotely-cached-data cost.

    Thin wrapper over the generic topology fold.
    """
    from repro.topology.build import build_hierarchy
    from repro.topology.canned import cow_topology

    if N < 2:
        raise ValueError(f"a cluster needs N >= 2 machines, got {N}")
    if memory_items <= cache_items:
        raise ValueError("memory must be larger than the cache")
    topo = cow_topology(N, cache_items, memory_items, network, latencies, l2_items=l2_items)
    return build_hierarchy(
        topo,
        remote_cached_fraction=remote_cached_fraction,
        cache_capacity_factor=cache_capacity_factor,
    )


def clump_hierarchy(
    n: int,
    N: int,
    cache_items: float,
    memory_items: float,
    network: NetworkKind,
    latencies: LatencyTable,
    include_peer_cache: bool = False,
    remote_cached_fraction: float = 0.0,
    cache_capacity_factor: float = 1.0,
    l2_items: float | None = None,
) -> MemoryHierarchy:
    """Hierarchy of a cluster of N SMPs with n processors each.

    Combines the SMP's intra-node levels (shared memory bus, optional
    peer caches) with the COW's inter-node levels (remote memory over the
    cluster network, disk split).  Bus networks are shared by all n*N
    processors; a switch queues only at the destination SMP (population
    n + 1).

    Thin wrapper over the generic topology fold.
    """
    from repro.topology.build import build_hierarchy
    from repro.topology.canned import clump_topology

    if n < 2:
        raise ValueError(f"a cluster of SMPs needs n >= 2 per node, got {n}")
    if N < 2:
        raise ValueError(f"a cluster needs N >= 2 machines, got {N}")
    if memory_items <= cache_items:
        raise ValueError("memory must be larger than the cache")
    topo = clump_topology(n, N, cache_items, memory_items, network, latencies, l2_items=l2_items)
    return build_hierarchy(
        topo,
        include_peer_cache=include_peer_cache,
        remote_cached_fraction=remote_cached_fraction,
        cache_capacity_factor=cache_capacity_factor,
    )
