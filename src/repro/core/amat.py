"""Average memory access time T (paper Eqs. 7-11 and their cluster forms).

``T`` is the per-memory-reference cost, in cycles, of traversing a
platform's memory hierarchy under a workload's locality distribution:

    T = tau_1 + (1/(gamma S)) * [ sum_i Q(lam_i, tau_i, c_i) + (H_P - 1) ]

where, per level ``i`` with stack-distance boundary ``s_i``:

* ``lam_i = gamma * S * tail(s_i) * fraction_i`` is the per-processor
  request rate reaching the level (``tail`` evaluated on the locality
  model rescaled to the platform's total process count),
* ``Q(lam, tau, c) = lam * t(o)`` is the M/D/1 rate-weighted response
  with contention population ``c`` (:func:`repro.core.contention.queued_contribution`),
* ``H_P - 1`` is the barrier order-statistics term over all P processes.

Working in cycles with one instruction per cycle makes ``S = 1``, so the
prefactor is simply ``1/gamma``.  The cluster variants differ from the
SMP formula only through the hierarchy structure (levels, boundaries,
populations) built by :mod:`repro.core.hierarchy`, which is how the
paper's unavailable technical-report formulas are reconstructed (see
DESIGN.md section 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.core.contention import (
    QueueSaturationError,
    barrier_term,
    mg1_response_time,
    mg1_utilization,
)
from repro.core.hierarchy import LevelKind, MemoryHierarchy
from repro.core.locality import StackDistanceModel

__all__ = [
    "LevelContribution",
    "AmatBreakdown",
    "average_memory_access_time",
    "zero_contention_amat",
]

#: Level kinds whose request rate receives the paper's coherence
#: adjustment (Section 5.3.2: remote-memory rate scaled up to absorb the
#: unmodeled shared-memory coherence overhead).
_REMOTE_KINDS = frozenset({LevelKind.REMOTE_MEMORY, LevelKind.REMOTE_DISK})


@dataclass(frozen=True)
class LevelContribution:
    """Per-level diagnostics of one AMAT evaluation."""

    name: str
    kind: LevelKind
    boundary_items: float
    tail_probability: float  #: fraction of references reaching the level
    request_rate: float  #: lam_i, per processor, per cycle (post-adjustment)
    tau_cycles: float
    population: int
    utilization: float  #: rho of the serving resource
    response_cycles: float  #: mean contended access time t_i (inf if saturated)
    contribution_cycles: float  #: added to T per memory reference

    @property
    def saturated(self) -> bool:
        return not math.isfinite(self.response_cycles)


@dataclass(frozen=True)
class AmatBreakdown:
    """The modeled average memory access time and its decomposition."""

    total_cycles: float  #: T, cycles per memory reference (inf if saturated)
    base_cycles: float  #: tau_1, paid by every reference
    barrier_cycles: float  #: order-statistics barrier share per reference
    levels: tuple[LevelContribution, ...]
    total_processes: int
    gamma: float

    @property
    def saturated(self) -> bool:
        return not math.isfinite(self.total_cycles)

    def level(self, kind: LevelKind) -> tuple[LevelContribution, ...]:
        """All contributions of a given structural kind."""
        return tuple(lv for lv in self.levels if lv.kind is kind)

    def describe(self) -> str:
        """Readable decomposition for reports and examples."""
        lines = [f"T = {self.total_cycles:,.3f} cycles/reference (P={self.total_processes}, gamma={self.gamma:g})"]
        lines.append(f"  base cache access: {self.base_cycles:g}")
        for lv in self.levels:
            lines.append(
                f"  {lv.name:<34s} tail={lv.tail_probability:.3e} rho={lv.utilization:.3f} "
                f"t={lv.response_cycles:,.1f} -> +{lv.contribution_cycles:,.3f}"
            )
        lines.append(f"  barrier synchronization: +{self.barrier_cycles:,.3f}")
        return "\n".join(lines)


def _evaluate_once(
    hierarchy: MemoryHierarchy,
    dist: StackDistanceModel,
    gamma: float,
    remote_rate_adjustment: float,
    barrier_scale: float,
    on_saturation: Literal["raise", "inf"],
    issue_scale: float,
    sharing_fraction: float,
    sharing_fresh_fraction: float,
    contention_boost: float,
) -> AmatBreakdown:
    """One pass of the additive AMAT sum at a given issue-rate scaling.

    ``issue_scale`` multiplies every request rate; the open (paper) model
    uses 1.0, the throttled closed-system mode uses 1/CPI.
    ``sharing_fraction`` blends the remote-memory tail: a reference to
    remotely-homed data goes remote whenever it misses the *cache* --
    with probability ``sharing_fresh_fraction`` unconditionally (a
    coherence miss: its previous use was a phase ago and the line has
    been invalidated since), otherwise via the ordinary capacity tail.
    """
    contributions: list[LevelContribution] = []
    total = hierarchy.base_cycles
    saturated = False
    cache_boundary = hierarchy.levels[0].boundary_items if hierarchy.levels else 0.0

    for level in hierarchy.levels:
        tail = float(dist.tail(level.boundary_items))
        if sharing_fraction > 0.0 and level.kind is LevelKind.REMOTE_MEMORY:
            cache_tail = float(dist.tail(cache_boundary))
            miss_share = sharing_fresh_fraction + (1.0 - sharing_fresh_fraction) * cache_tail
            tail = (1.0 - sharing_fraction) * tail + sharing_fraction * miss_share
        lam = gamma * tail * level.rate_fraction * issue_scale
        if level.kind in _REMOTE_KINDS:
            lam *= 1.0 + remote_rate_adjustment
        # Burstiness: bulk-synchronous phases offer their traffic in
        # bursts, so the *queueing* terms see an elevated rate; the
        # traffic share per reference (tail) is unchanged.
        lam_q = lam * contention_boost
        rho = mg1_utilization(lam_q, level.tau_cycles, level.population)
        try:
            response = mg1_response_time(lam_q, level.tau_cycles, level.population)
        except QueueSaturationError:
            if on_saturation == "raise":
                raise
            response = math.inf
            saturated = True
        # Q(lam, tau, c) / (gamma * issue_scale) == tail * fraction * t:
        # the per-reference share of this level, independent of throttling.
        adj = 1.0 + remote_rate_adjustment if level.kind in _REMOTE_KINDS else 1.0
        contribution = tail * level.rate_fraction * adj * response if lam > 0.0 else 0.0
        contributions.append(
            LevelContribution(
                name=level.name,
                kind=level.kind,
                boundary_items=level.boundary_items,
                tail_probability=tail,
                request_rate=lam,
                tau_cycles=level.tau_cycles,
                population=level.population,
                utilization=rho,
                response_cycles=response,
                contribution_cycles=contribution,
            )
        )
        total += contribution

    barrier = barrier_scale * barrier_term(hierarchy.barrier_population) / gamma
    total += barrier
    if saturated:
        total = math.inf
    return AmatBreakdown(
        total_cycles=total,
        base_cycles=hierarchy.base_cycles,
        barrier_cycles=barrier,
        levels=tuple(contributions),
        total_processes=hierarchy.total_processes,
        gamma=gamma,
    )


def average_memory_access_time(
    hierarchy: MemoryHierarchy,
    locality: StackDistanceModel,
    gamma: float,
    remote_rate_adjustment: float = 0.0,
    barrier_scale: float = 1.0,
    on_saturation: Literal["raise", "inf"] = "raise",
    mode: Literal["open", "throttled"] = "open",
    sharing_fraction: float = 0.0,
    sharing_fresh_fraction: float = 1.0,
    contention_boost: float = 1.0,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
) -> AmatBreakdown:
    """Evaluate the paper's AMAT model on a hierarchy and a workload.

    Parameters
    ----------
    hierarchy:
        Platform hierarchy from :mod:`repro.core.hierarchy` (carries the
        total process count used to rescale the locality model).
    locality:
        Single-process stack-distance fit of the workload.
    gamma:
        Fraction of instructions that reference memory (must be in
        ``(0, 1]``).
    remote_rate_adjustment:
        Fractional increase applied to remote-memory/disk request rates
        to absorb coherence overhead; the paper uses 0.124 for clusters
        and 0 for single SMPs.
    barrier_scale:
        Multiplier on the barrier order-statistics term (1.0 = paper's
        formula; 0.0 drops barriers, useful for ablation).
    on_saturation:
        ``"raise"`` propagates :class:`QueueSaturationError` when any
        M/D/1 term saturates; ``"inf"`` instead reports infinite response
        for the saturated level(s) and an infinite total, which the cost
        optimizer treats as infeasible.
    mode:
        ``"open"`` is the paper's formula: processors offer requests at
        the full issue rate ``gamma * S`` regardless of stalls, which can
        saturate slow resources.  ``"throttled"`` (our documented
        extension) solves the closed-system fixed point in which a
        processor stalled on a miss issues nothing: request rates are
        scaled by ``1 / CPI = 1 / (1 + gamma * T)``, so utilization
        self-limits below 1 and the model stays finite, matching the
        self-throttling the simulator exhibits on slow networks.
    sharing_fraction:
        Fraction of references touching remotely-homed data (our DSM
        extension, 0 recovers the paper's pure capacity model): those
        references reach the remote-memory level whenever they miss the
        cache, independent of local-memory capacity.
    """
    if not (0.0 < gamma <= 1.0):
        raise ValueError(f"gamma must be in (0, 1], got {gamma!r}")
    if remote_rate_adjustment < 0.0:
        raise ValueError("remote_rate_adjustment must be non-negative")
    if barrier_scale < 0.0:
        raise ValueError("barrier_scale must be non-negative")
    if mode not in ("open", "throttled"):
        raise ValueError(f"unknown mode {mode!r}")

    if not (0.0 <= sharing_fraction <= 1.0):
        raise ValueError("sharing_fraction must be in [0, 1]")
    if not (0.0 <= sharing_fresh_fraction <= 1.0):
        raise ValueError("sharing_fresh_fraction must be in [0, 1]")
    if contention_boost < 1.0:
        raise ValueError("contention_boost must be >= 1 (1 = Poisson-average arrivals)")

    dist = locality.rescaled(hierarchy.total_processes)
    if mode == "open":
        return _evaluate_once(
            hierarchy, dist, gamma, remote_rate_adjustment, barrier_scale, on_saturation, 1.0,
            sharing_fraction, sharing_fresh_fraction, contention_boost,
        )

    # Closed-system fixed point: the issue scale s must satisfy
    # s = 1 / (1 + gamma * T(s)).  Utilization is linear in s, so the
    # saturation boundary is closed-form; inside it T(s) is increasing,
    # making g(s) = 1/(1 + gamma*T(s)) - s strictly decreasing: bisect.
    cache_boundary = hierarchy.levels[0].boundary_items if hierarchy.levels else 0.0
    unit_load = 0.0  # max over levels of (c-1) * lam_i(s=1) * tau_i
    for level in hierarchy.levels:
        tail = float(dist.tail(level.boundary_items))
        if sharing_fraction > 0.0 and level.kind is LevelKind.REMOTE_MEMORY:
            cache_tail = float(dist.tail(cache_boundary))
            miss_share = sharing_fresh_fraction + (1.0 - sharing_fresh_fraction) * cache_tail
            tail = (1.0 - sharing_fraction) * tail + sharing_fraction * miss_share
        lam1 = gamma * tail * level.rate_fraction * contention_boost
        if level.kind in _REMOTE_KINDS:
            lam1 *= 1.0 + remote_rate_adjustment
        unit_load = max(unit_load, (level.population - 1) * lam1 * level.tau_cycles)

    def evaluate_at(scale: float) -> AmatBreakdown:
        return _evaluate_once(
            hierarchy, dist, gamma, remote_rate_adjustment, barrier_scale, "inf", scale,
            sharing_fraction, sharing_fresh_fraction, contention_boost,
        )

    hi = 1.0 if unit_load < 1.0 else 0.999999 / unit_load
    result = evaluate_at(hi)
    if math.isfinite(result.total_cycles):
        g_hi = 1.0 / (1.0 + gamma * result.total_cycles) - hi
        if g_hi >= 0.0:
            return result  # self-consistent at the cap already
    lo = 0.0
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        result = evaluate_at(mid)
        t = result.total_cycles
        if not math.isfinite(t) or 1.0 / (1.0 + gamma * t) < mid:
            hi = mid
        else:
            lo = mid
        if hi - lo <= tolerance:
            break
    result = evaluate_at(lo if lo > 0.0 else 0.5 * (lo + hi))
    if not math.isfinite(result.total_cycles) and on_saturation == "raise":
        raise QueueSaturationError(math.inf, "throttled fixed point failed to stabilize")
    return result


def zero_contention_amat(
    hierarchy: MemoryHierarchy,
    locality: StackDistanceModel,
    gamma: float,
    remote_rate_adjustment: float = 0.0,
    barrier_scale: float = 1.0,
    sharing_fraction: float = 0.0,
    sharing_fresh_fraction: float = 1.0,
) -> float:
    """AMAT with every queueing delay removed: an admissible lower bound.

    Replaces each level's M/D/1 response time ``tau + W`` by the bare
    service time ``tau`` (``W >= 0`` always) and keeps every other term
    of the model untouched.  Because the throttled fixed point only
    scales request *rates* (responses still satisfy ``t >= tau``) and the
    exact-MVA recursion yields ``R_i = s_i (1 + Q_i) >= s_i``, this value
    never exceeds the true AMAT under any evaluation mode — which is what
    makes it a sound branch-and-bound pruning bound for the design-space
    search (see ``docs/COST.md``).  The contention-free relaxation also
    subsumes the infinite-cache one (dropping a level's traffic entirely
    would only loosen the bound further).

    This is the scalar reference implementation; the optimizer uses the
    vectorized :func:`repro.core.batch.e_instr_lower_bounds`, which is
    tested against this function.
    """
    if not (0.0 < gamma <= 1.0):
        raise ValueError(f"gamma must be in (0, 1], got {gamma!r}")
    if remote_rate_adjustment < 0.0:
        raise ValueError("remote_rate_adjustment must be non-negative")
    if barrier_scale < 0.0:
        raise ValueError("barrier_scale must be non-negative")
    if not (0.0 <= sharing_fraction <= 1.0):
        raise ValueError("sharing_fraction must be in [0, 1]")
    if not (0.0 <= sharing_fresh_fraction <= 1.0):
        raise ValueError("sharing_fresh_fraction must be in [0, 1]")

    dist = locality.rescaled(hierarchy.total_processes)
    cache_boundary = hierarchy.levels[0].boundary_items if hierarchy.levels else 0.0
    total = hierarchy.base_cycles
    for level in hierarchy.levels:
        tail = float(dist.tail(level.boundary_items))
        if sharing_fraction > 0.0 and level.kind is LevelKind.REMOTE_MEMORY:
            cache_tail = float(dist.tail(cache_boundary))
            miss_share = sharing_fresh_fraction + (1.0 - sharing_fresh_fraction) * cache_tail
            tail = (1.0 - sharing_fraction) * tail + sharing_fraction * miss_share
        adj = 1.0 + remote_rate_adjustment if level.kind in _REMOTE_KINDS else 1.0
        total += tail * level.rate_fraction * adj * level.tau_cycles
    total += barrier_scale * barrier_term(hierarchy.barrier_population) / gamma
    return total
