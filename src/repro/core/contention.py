"""Contention models: M/D/1 queueing and barrier order statistics.

The paper models simultaneous accesses to a shared resource (SMP memory
bus, cluster network, shared disk) as a memoryless-arrival, general-
service, one-server (M/G/1) queue with *deterministic* service time
``tau`` -- i.e. M/D/1.  A request issued by one processor competes with
the traffic of the other ``c - 1`` agents sharing the resource, each
contributing Poisson traffic at rate ``lam``, so the interfering arrival
rate is ``(c - 1) * lam`` and the mean response time is

    t = tau + W = (2 tau - (c-1) lam tau^2) / (2 (1 - (c-1) lam tau)).

At ``c = 1`` this reduces to ``tau`` (no contention), recovering the
uniprocessor model of Jacob et al. that the paper cites as its base.

Barrier synchronization is modeled with order statistics: with ``c``
processes each reaching the barrier after an Exp(lam_b) interval, the
barrier cycle is the maximum of ``c`` exponentials, whose expectation is
``H_c / lam_b`` with ``H_c`` the c-th harmonic number; the mean *waiting*
time of a process is therefore ``(H_c - 1) / lam_b``.

All rates are per cycle and all times in cycles throughout this library
(one instruction per cycle at the paper's 200 MHz clock), which makes
``lam * tau`` the dimensionless utilization directly.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "QueueSaturationError",
    "harmonic_number",
    "mg1_utilization",
    "mg1_waiting_time",
    "mg1_response_time",
    "queued_contribution",
    "barrier_cycle_time",
    "barrier_wait_time",
    "barrier_term",
    "expected_max_exponential",
    "generalized_barrier_terms",
]


class QueueSaturationError(ValueError):
    """Raised when offered load meets or exceeds service capacity (rho >= 1).

    The open-queue approximation is meaningless at or beyond saturation;
    the optimizer treats configurations that saturate as infeasible.
    """

    def __init__(self, rho: float, message: str | None = None) -> None:
        self.rho = rho
        super().__init__(message or f"M/D/1 queue saturated: utilization rho={rho:.4g} >= 1")


def harmonic_number(c: int | np.ndarray):
    """H_c = sum_{i=1..c} 1/i, exactly for integer c >= 0 (H_0 = 0).

    Vectorized over numpy integer arrays; exact summation is used rather
    than the digamma approximation because the paper's ``c`` values are
    tiny (2-32 processors).
    """
    arr = np.asarray(c)
    if arr.ndim == 0:
        cv = int(arr)
        if cv < 0:
            raise ValueError(f"harmonic_number requires c >= 0, got {cv}")
        return float(np.sum(1.0 / np.arange(1, cv + 1))) if cv else 0.0
    if np.any(arr < 0):
        raise ValueError("harmonic_number requires c >= 0")
    top = int(arr.max()) if arr.size else 0
    cum = np.concatenate([[0.0], np.cumsum(1.0 / np.arange(1, top + 1))])
    return cum[arr]


def mg1_utilization(lam: float, tau: float, population: int) -> float:
    """Utilization rho = (population - 1) * lam * tau of the shared server.

    ``lam`` is the per-agent request rate, ``tau`` the deterministic
    service time, and ``population`` the number of agents sharing the
    resource.  Following the paper, an agent's own other requests are not
    counted as interference (hence ``population - 1``).
    """
    if lam < 0 or tau < 0:
        raise ValueError("rate and service time must be non-negative")
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    return (population - 1) * lam * tau


def mg1_waiting_time(lam: float, tau: float, population: int) -> float:
    """Mean queueing delay W = rho * tau / (2 (1 - rho)) for M/D/1.

    Raises :class:`QueueSaturationError` when rho >= 1.
    """
    rho = mg1_utilization(lam, tau, population)
    if rho >= 1.0:
        raise QueueSaturationError(rho)
    return rho * tau / (2.0 * (1.0 - rho))


def mg1_response_time(lam: float, tau: float, population: int) -> float:
    """Mean response time t = tau + W; the paper's t_i(o) closed form.

    Equals ``(2 tau - (c-1) lam tau^2) / (2 (1 - (c-1) lam tau))`` and
    reduces to ``tau`` when ``population == 1``.
    """
    return tau + mg1_waiting_time(lam, tau, population)


def queued_contribution(lam: float, tau: float, population: int) -> float:
    """Q(lam, tau, c) = lam * t(o): rate-weighted response-time contribution.

    This is the term the paper's Eq. 11 sums per memory level:

        Q = (lam tau - 1/2 (c-1) lam^2 tau^2) / (1 - (c-1) lam tau).

    Dividing the sum of Q terms by the reference rate ``gamma * S``
    converts them back into per-reference time.
    """
    return lam * mg1_response_time(lam, tau, population)


def barrier_cycle_time(lam_b: float, population: int) -> float:
    """E[X] = H_c / lam_b: expected barrier cycle (max of c exponentials)."""
    if lam_b <= 0:
        raise ValueError(f"barrier access rate must be positive, got {lam_b!r}")
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    return harmonic_number(population) / lam_b


def barrier_wait_time(lam_b: float, population: int) -> float:
    """Mean barrier waiting time t(b) = (H_c - 1) / lam_b; zero for c = 1.

    The average process arrives 1/lam_b before the cycle completes, so
    its wait is the cycle minus its own inter-arrival time.
    """
    if population == 1:
        return 0.0
    return barrier_cycle_time(lam_b, population) - 1.0 / lam_b


def barrier_term(population: int) -> float:
    """The rate-independent barrier summand of Eq. 11: H_c - 1.

    The barrier-variable access rate cancels when the barrier wait is
    folded into the average memory access time (the paper's Eq. 9 -> 11
    step), leaving the pure harmonic term 1/2 + 1/3 + ... + 1/c.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    return harmonic_number(population) - 1.0 if population > 1 else 0.0


def _validated_groups(rates, counts) -> tuple[list[float], list[int], int]:
    """Shared validation for the grouped-exponential helpers below."""
    rs = [float(r) for r in rates]
    if not rs:
        raise ValueError("at least one rate group is required")
    cs = [1] * len(rs) if counts is None else [int(c) for c in counts]
    if len(cs) != len(rs):
        raise ValueError(
            f"rates and counts must align: {len(rs)} rates vs {len(cs)} counts"
        )
    for r in rs:
        if not (r > 0.0 and math.isfinite(r)):
            raise ValueError(f"rates must be positive and finite, got {r!r}")
    for c in cs:
        if c < 1:
            raise ValueError(f"group counts must be >= 1, got {c}")
    return rs, cs, sum(cs)


#: Inclusion-exclusion term budget for the exact rational path below.
#: prod(m_g + 1) terms; 4096 covers e.g. 5 unlike groups of 7 machines
#: each in well under a millisecond, far beyond any canned tree.
_EXACT_MAX_TERMS = 4096


def expected_max_exponential(rates, counts=None) -> float:
    """E[max] of independent exponentials, grouped by rate.

    ``rates[g]`` is the rate of ``counts[g]`` i.i.d. Exp variables
    (``counts`` defaults to one each).  This generalizes the paper's
    barrier order statistic from ``H_c / lam`` (equal rates) to unequal
    per-process rates -- the quantity a heterogeneous barrier needs.

    Three evaluation paths, chosen for exactness first:

    * all rates equal -- dispatch to :func:`barrier_cycle_time`, so the
      homogeneous answer is *bit-identical* to the paper's ``H_c/lam``;
    * few enough inclusion-exclusion terms -- the exact alternating sum
      ``sum_{j != 0} (-1)^(|j|+1) prod C(m_g, j_g) / sum j_g lam_g``
      evaluated in :class:`~fractions.Fraction` arithmetic (the float
      sum cancels catastrophically; rationals do not);
    * otherwise -- composite Simpson on the substituted survival
      integral ``E = (1/lam_0) \\int_0^1 (1 - prod (1 - x^{a_g})^{m_g})
      / x dx`` with ``x = u^2`` (bounded smooth integrand).
    """
    rs, cs, total = _validated_groups(rates, counts)
    first = rs[0]
    if all(r == first for r in rs[1:]):
        return barrier_cycle_time(first, total)
    # Merge equal-rate groups so the exact path's term count is minimal.
    merged: dict[float, int] = {}
    for r, c in zip(rs, cs):
        merged[r] = merged.get(r, 0) + c
    grs = list(merged)
    gms = [merged[r] for r in grs]
    terms = 1
    for m in gms:
        terms *= m + 1
    if terms <= _EXACT_MAX_TERMS:
        from fractions import Fraction
        from itertools import product

        frs = [Fraction(r) for r in grs]  # Fraction(float) is exact
        acc = Fraction(0)
        for combo in product(*(range(m + 1) for m in gms)):
            j = sum(combo)
            if j == 0:
                continue
            coeff = 1
            for m, k in zip(gms, combo):
                coeff *= math.comb(m, k)
            term = Fraction(coeff) / sum(f * k for f, k in zip(frs, combo))
            acc += term if j % 2 else -term
        return float(acc)
    lam0 = min(grs)
    a = [r / lam0 for r in grs]

    def integrand(u: float) -> float:
        if u <= 0.0:
            return 0.0  # the substituted integrand vanishes at u = 0
        x = u * u
        prod = 1.0
        for ag, m in zip(a, gms):
            prod *= (1.0 - x ** ag) ** m
        return 2.0 * (1.0 - prod) / u

    n = 16384  # composite Simpson intervals (even)
    h = 1.0 / n
    s = integrand(0.0) + integrand(1.0)
    s += 4.0 * math.fsum(integrand((2 * i - 1) * h) for i in range(1, n // 2 + 1))
    s += 2.0 * math.fsum(integrand(2 * i * h) for i in range(1, n // 2))
    return (s * h / 3.0) / lam0


def generalized_barrier_terms(rates, counts=None) -> tuple[float, ...]:
    """Per-group dimensionless barrier waits, generalizing ``H_c - 1``.

    A process reaching barriers at rate ``lam_g`` waits ``E[max] -
    1/lam_g`` per barrier; multiplying by ``lam_g`` gives the
    dimensionless per-barrier-interval term ``b_g = lam_g E[max] - 1``
    that drops into Eq. 11 exactly where ``H_c - 1`` sits today.  With
    all rates equal every ``b_g`` *is* :func:`barrier_term` (returned
    directly, bit-identically); otherwise ``b_g >= 0`` always, larger
    for faster groups (they wait on the stragglers).
    """
    rs, cs, total = _validated_groups(rates, counts)
    first = rs[0]
    if all(r == first for r in rs[1:]):
        return (barrier_term(total),) * len(rs)
    expected = expected_max_exponential(rs, cs)
    return tuple(max(0.0, r * expected - 1.0) for r in rs)


def is_math_stable(lam: float, tau: float, population: int) -> bool:
    """True when the M/D/1 term is below saturation (rho < 1)."""
    return mg1_utilization(lam, tau, population) < 1.0


def saturating_population(lam: float, tau: float) -> float:
    """Largest population c with rho < 1, i.e. floor(1/(lam tau)) + 1.

    Returns ``math.inf`` when a single agent generates no load
    (``lam * tau == 0``).  Useful for the optimizer's pruning.
    """
    if lam < 0 or tau < 0:
        raise ValueError("rate and service time must be non-negative")
    per_agent = lam * tau
    if per_agent == 0.0:
        return math.inf
    # rho = (c - 1) lam tau < 1  <=>  c < 1 + 1/(lam tau)
    limit = 1.0 + 1.0 / per_agent
    ceil = math.ceil(limit) - 1  # strictly below the bound
    return float(ceil if ceil < limit else ceil)
