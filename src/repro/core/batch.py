"""Vectorized batch evaluation of the analytical model (the model's fast lane).

The design-space optimizer (:mod:`repro.cost.search`) evaluates the
same workload against hundreds-to-thousands of candidate platforms.
Calling :func:`repro.core.execution.evaluate` per candidate pays Python
interpreter overhead per hierarchy level per bisection step; this module
evaluates a whole *batch* of candidates with NumPy, grouping candidates
by hierarchy level structure and replicating the scalar arithmetic
elementwise.

Like the simulator's array fast path (``tests/sim/test_fastpath_equivalence``),
the contract is **bit identity**: for every candidate,
:func:`e_instr_seconds_batch` returns *exactly* the float64 that
``evaluate(...).e_instr_seconds`` returns — same operations, same
association order, same branch decisions, including the throttled-mode
fixed-point bisection (run with per-lane masks so every lane takes the
same lo/hi trajectory as the scalar solver).  Property-tested in
``tests/cost/test_batch_eval.py``.

Two details make bit identity non-trivial and are handled explicitly:

* barrier terms use :func:`repro.core.contention.barrier_term` per
  candidate (scalar summation) rather than a vectorized cumsum, because
  NumPy's pairwise ``sum`` and ``cumsum`` may disagree in the last ulp;
* the sharing blend ``(1-sigma)*tail + sigma*miss_share`` is applied
  unconditionally in the vector lane — with ``sigma == 0`` the float64
  result is exactly ``tail`` (``1.0*t + 0.0*m == t`` for finite
  ``m >= 0``, ``t >= 0``), matching the scalar lane's skipped branch.

``mode="mva"``, ``on_saturation="raise"`` (which must raise from the
exact offending candidate) and duck-typed locality models that are not
the power-law :class:`~repro.core.locality.StackDistanceModel` (e.g.
:class:`repro.workloads.mix.MixedLocality`, which only promises
``tail``/``cdf``/``rescaled``) fall back to the scalar lane; results
remain identical by construction.

The module also exposes :func:`e_instr_lower_bounds`: a closed-form
**admissible lower bound** on E(Instr) per candidate (zero-contention
relaxation — every M/D/1 response is at least its service time, and the
exact-MVA response ``R_i = s_i (1 + Q_i)`` is at least ``s_i``), the
quantity branch-and-bound pruning needs.  See ``docs/COST.md`` for the
admissibility argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.amat import _REMOTE_KINDS, zero_contention_amat
from repro.core.contention import barrier_term
from repro.core.hierarchy import LevelKind, MemoryHierarchy
from repro.core.locality import StackDistanceModel
from repro.core.platform import PlatformSpec

__all__ = ["BatchCase", "e_instr_seconds_batch", "e_instr_lower_bounds"]

#: Mirrors the scalar solver's defaults in
#: :func:`repro.core.amat.average_memory_access_time`.
_MAX_ITERATIONS = 200
_TOLERANCE = 1e-9


@dataclass(frozen=True)
class BatchCase:
    """One candidate of a batch: a platform plus its per-candidate knobs.

    The optimizer's per-candidate inputs (measured sharing depends on the
    machine count, the paper's remote-rate adjustment applies to clusters
    only) ride here; batch-constant knobs (mode, barrier scale, ...) are
    arguments of :func:`e_instr_seconds_batch`.
    """

    spec: PlatformSpec
    sharing_fraction: float = 0.0
    sharing_fresh_fraction: float = 1.0
    remote_rate_adjustment: float = 0.0


def _as_cases(
    specs: Sequence[PlatformSpec | BatchCase],
    sharing_fraction: float,
    sharing_fresh_fraction: float,
    remote_rate_adjustment: float,
) -> list[BatchCase]:
    return [
        s
        if isinstance(s, BatchCase)
        else BatchCase(s, sharing_fraction, sharing_fresh_fraction, remote_rate_adjustment)
        for s in specs
    ]


def _validate(gamma: float, barrier_scale: float, contention_boost: float, cases) -> None:
    """The scalar solver's input checks, once per batch + once per case."""
    if not (0.0 < gamma <= 1.0):
        raise ValueError(f"gamma must be in (0, 1], got {gamma!r}")
    if barrier_scale < 0.0:
        raise ValueError("barrier_scale must be non-negative")
    if contention_boost < 1.0:
        raise ValueError("contention_boost must be >= 1 (1 = Poisson-average arrivals)")
    for case in cases:
        if case.remote_rate_adjustment < 0.0:
            raise ValueError("remote_rate_adjustment must be non-negative")
        if not (0.0 <= case.sharing_fraction <= 1.0):
            raise ValueError("sharing_fraction must be in [0, 1]")
        if not (0.0 <= case.sharing_fresh_fraction <= 1.0):
            raise ValueError("sharing_fresh_fraction must be in [0, 1]")


class _LevelGroup:
    """Candidates sharing one hierarchy level-kind signature, as arrays.

    All per-level and per-candidate scalars are gathered into float64
    arrays; every kernel expression below copies the scalar lane's
    association order (comments cite the scalar source).
    """

    def __init__(
        self,
        signature: tuple[LevelKind, ...],
        members: list[int],
        hierarchies: list[MemoryHierarchy],
        cases: list[BatchCase],
        locality: StackDistanceModel,
        gamma: float,
        barrier_scale: float,
        contention_boost: float,
    ) -> None:
        self.signature = signature
        self.members = np.asarray(members, dtype=np.intp)
        self.gamma = gamma
        self.boost = contention_boost
        m = len(members)
        L = len(signature)
        self.remote = [kind in _REMOTE_KINDS for kind in signature]

        base = np.empty(m)
        barrier = np.empty(m)
        procs = np.empty(m)
        hz = np.empty(m)
        beta = np.empty(m)
        expo = np.empty(m)
        maxd = np.full(m, np.inf)
        one_rra = np.empty(m)
        sf = np.empty(m)
        fresh = np.empty(m)
        cache_boundary = np.empty(m)
        boundary = np.empty((L, m))
        tau = np.empty((L, m))
        pop_minus_1 = np.empty((L, m))
        rate_fraction = np.empty((L, m))
        for k, i in enumerate(members):
            h = hierarchies[i]
            case = cases[i]
            dist = locality.rescaled(h.total_processes)
            base[k] = h.base_cycles
            # Scalar: barrier_scale * barrier_term(pop) / gamma, with the
            # harmonic number summed by the scalar code path.
            barrier[k] = barrier_scale * barrier_term(h.barrier_population) / gamma
            procs[k] = case.spec.total_processors
            hz[k] = case.spec.cpu_hz
            beta[k] = dist.beta
            expo[k] = 1.0 - dist.alpha
            if dist.max_distance is not None:
                maxd[k] = dist.max_distance
            one_rra[k] = 1.0 + case.remote_rate_adjustment
            sf[k] = case.sharing_fraction
            fresh[k] = case.sharing_fresh_fraction
            cache_boundary[k] = h.levels[0].boundary_items if h.levels else 0.0
            for j, level in enumerate(h.levels):
                boundary[j, k] = level.boundary_items
                tau[j, k] = level.tau_cycles
                pop_minus_1[j, k] = level.population - 1
                rate_fraction[j, k] = level.rate_fraction

        def tails_at(s: np.ndarray) -> np.ndarray:
            # Scalar StackDistanceModel.tail: power term, then the
            # max_distance clamp (inf sentinel == no clamp).
            out = np.power(np.maximum(s, 0.0) / beta + 1.0, expo)
            return np.where(s >= maxd, 0.0, out)

        cache_tail = tails_at(cache_boundary)
        # Scalar: fresh + (1 - fresh) * cache_tail
        miss_share = fresh + (1.0 - fresh) * cache_tail

        self.tau = tau
        self.pop_minus_1 = pop_minus_1
        self.base = base
        self.barrier = barrier
        self.procs = procs
        self.hz = hz
        self.one_rra = one_rra
        # lam pre-factor a_j = (gamma * tail) * rf  (scalar: gamma * tail * rf * scale)
        self.a = np.empty((L, m))
        # contribution pre-factor ((tail * rf) * adj)
        self.badj = np.empty((L, m))
        for j, kind in enumerate(signature):
            t = tails_at(boundary[j])
            if kind is LevelKind.REMOTE_MEMORY:
                # Scalar blend (skipped when sigma == 0; identical then).
                t = (1.0 - sf) * t + sf * miss_share
            b = t * rate_fraction[j]
            self.a[j] = gamma * t * rate_fraction[j]
            self.badj[j] = b * one_rra if self.remote[j] else b

    # ------------------------------------------------------------------
    def _amat_at(self, scale: np.ndarray, sel: np.ndarray) -> np.ndarray:
        """One `_evaluate_once` pass over the selected lanes: T(scale)."""
        total = self.base[sel].copy()
        saturated = np.zeros(sel.size, dtype=bool)
        for j in range(len(self.signature)):
            tau = self.tau[j][sel]
            lam = self.a[j][sel] * scale
            if self.remote[j]:
                lam = lam * self.one_rra[sel]  # scalar: lam *= 1.0 + rra
            lam_q = lam * self.boost
            rho = (self.pop_minus_1[j][sel] * lam_q) * tau
            waiting = (rho * tau) / (2.0 * (1.0 - rho))
            response = tau + waiting
            level_saturated = rho >= 1.0
            response = np.where(level_saturated, np.inf, response)
            saturated |= level_saturated
            contribution = np.where(lam > 0.0, self.badj[j][sel] * response, 0.0)
            total = total + contribution
        total = total + self.barrier[sel]
        return np.where(saturated, np.inf, total)

    def amat_open(self) -> np.ndarray:
        sel = np.arange(self.members.size)
        return self._amat_at(np.ones(sel.size), sel)

    def amat_throttled(self) -> np.ndarray:
        """The scalar fixed-point bisection, lane-masked.

        Every lane reproduces the scalar lo/hi trajectory: the at-cap
        early return, the bisection branch decisions, the post-update
        convergence test, and the final evaluation point.
        """
        m = self.members.size
        gamma = self.gamma
        unit_load = np.zeros(m)
        for j in range(len(self.signature)):
            lam1 = self.a[j] * self.boost
            if self.remote[j]:
                lam1 = lam1 * self.one_rra
            unit_load = np.maximum(unit_load, (self.pop_minus_1[j] * lam1) * self.tau[j])

        with np.errstate(divide="ignore"):
            hi = np.where(unit_load < 1.0, 1.0, 0.999999 / unit_load)
        everyone = np.arange(m)
        t_hi = self._amat_at(hi, everyone)
        g_hi = 1.0 / (1.0 + gamma * t_hi) - hi
        done_at_cap = np.isfinite(t_hi) & (g_hi >= 0.0)
        result = np.where(done_at_cap, t_hi, np.nan)

        active = ~done_at_cap
        lo = np.zeros(m)
        for _ in range(_MAX_ITERATIONS):
            sel = np.flatnonzero(active)
            if sel.size == 0:
                break
            mid = 0.5 * (lo[sel] + hi[sel])
            t_mid = self._amat_at(mid, sel)
            go_hi = ~np.isfinite(t_mid) | (1.0 / (1.0 + gamma * t_mid) < mid)
            hi[sel] = np.where(go_hi, mid, hi[sel])
            lo[sel] = np.where(go_hi, lo[sel], mid)
            converged = (hi[sel] - lo[sel]) <= _TOLERANCE
            active[sel[converged]] = False

        rest = np.flatnonzero(~done_at_cap)
        if rest.size:
            final_scale = np.where(
                lo[rest] > 0.0, lo[rest], 0.5 * (lo[rest] + hi[rest])
            )
            result[rest] = self._amat_at(final_scale, rest)
        return result

    def e_instr_seconds(self, mode: str) -> np.ndarray:
        amat = self.amat_open() if mode == "open" else self.amat_throttled()
        # Scalar: ((1.0 + gamma * T) / total_processors) / cpu_hz, with
        # inf propagating through both divisions unchanged.
        return ((1.0 + self.gamma * amat) / self.procs) / self.hz

    def lower_bound_seconds(self) -> np.ndarray:
        """Admissible E(Instr) bound: every response replaced by tau.

        ``contribution >= ((tail*rf)*adj) * tau`` whenever the level sees
        traffic, and is zero exactly when the bound term is zero, so the
        sum lower-bounds T in open, throttled and MVA modes alike.
        """
        total = self.base.copy()
        for j in range(len(self.signature)):
            total = total + self.badj[j] * self.tau[j]
        total = total + self.barrier
        return ((1.0 + self.gamma * total) / self.procs) / self.hz


def _build_groups(
    cases: list[BatchCase],
    locality: StackDistanceModel,
    gamma: float,
    barrier_scale: float,
    contention_boost: float,
    include_peer_cache: bool,
    remote_cached_fraction: float,
    cache_capacity_factor: float,
) -> list[_LevelGroup]:
    hierarchies = []
    members: dict[tuple[LevelKind, ...], list[int]] = {}
    for i, case in enumerate(cases):
        h = case.spec.hierarchy(
            include_peer_cache=include_peer_cache,
            remote_cached_fraction=remote_cached_fraction,
            cache_capacity_factor=cache_capacity_factor,
        )
        hierarchies.append(h)
        members.setdefault(tuple(level.kind for level in h.levels), []).append(i)
    return [
        _LevelGroup(
            sig, idx, hierarchies, cases, locality, gamma, barrier_scale, contention_boost
        )
        for sig, idx in members.items()
    ]


def _scalar_lane(
    cases: list[BatchCase],
    locality: StackDistanceModel,
    gamma: float,
    mode: str,
    on_saturation: str,
    barrier_scale: float,
    include_peer_cache: bool,
    remote_cached_fraction: float,
    cache_capacity_factor: float,
    contention_boost: float,
) -> np.ndarray:
    from repro.core.execution import evaluate  # deferred: execution imports us

    return np.array(
        [
            evaluate(
                case.spec,
                locality,
                gamma,
                remote_rate_adjustment=case.remote_rate_adjustment,
                barrier_scale=barrier_scale,
                include_peer_cache=include_peer_cache,
                remote_cached_fraction=remote_cached_fraction,
                on_saturation=on_saturation,  # type: ignore[arg-type]
                mode=mode,  # type: ignore[arg-type]
                sharing_fraction=case.sharing_fraction,
                sharing_fresh_fraction=case.sharing_fresh_fraction,
                cache_capacity_factor=cache_capacity_factor,
                contention_boost=contention_boost,
            ).e_instr_seconds
            for case in cases
        ],
        dtype=np.float64,
    )


def e_instr_seconds_batch(
    specs: Sequence[PlatformSpec | BatchCase],
    locality: StackDistanceModel,
    gamma: float,
    *,
    mode: Literal["open", "throttled", "mva"] = "open",
    on_saturation: Literal["raise", "inf"] = "raise",
    remote_rate_adjustment: float = 0.0,
    barrier_scale: float = 1.0,
    include_peer_cache: bool = False,
    remote_cached_fraction: float = 0.0,
    sharing_fraction: float = 0.0,
    sharing_fresh_fraction: float = 1.0,
    cache_capacity_factor: float = 1.0,
    contention_boost: float = 1.0,
    force_scalar: bool = False,
) -> np.ndarray:
    """E(Instr) in seconds for every candidate, bit-identical to ``evaluate``.

    ``specs`` mixes :class:`~repro.core.platform.PlatformSpec` (taking the
    batch-wide ``sharing_fraction``/``remote_rate_adjustment``) and
    :class:`BatchCase` (overriding them per candidate).  Saturated
    candidates come back ``inf`` under ``on_saturation="inf"``;
    ``"raise"`` replays the batch scalar so the exception carries the
    exact offending candidate.  ``force_scalar=True`` pins the scalar
    lane (the property tests' reference).
    """
    cases = _as_cases(
        specs, sharing_fraction, sharing_fresh_fraction, remote_rate_adjustment
    )
    if not cases:
        return np.empty(0, dtype=np.float64)
    if mode not in ("open", "throttled", "mva"):
        raise ValueError(f"unknown mode {mode!r}")
    _validate(gamma, barrier_scale, contention_boost, cases)
    # The vector kernel reads the power law's (alpha, beta, max_distance)
    # directly; duck-typed distributions (e.g. MixedLocality) only promise
    # tail/cdf/rescaled, so they take the scalar lane.
    if force_scalar or mode == "mva" or not isinstance(locality, StackDistanceModel):
        return _scalar_lane(
            cases, locality, gamma, mode, on_saturation, barrier_scale,
            include_peer_cache, remote_cached_fraction, cache_capacity_factor,
            contention_boost,
        )
    out = np.empty(len(cases), dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        for group in _build_groups(
            cases, locality, gamma, barrier_scale, contention_boost,
            include_peer_cache, remote_cached_fraction, cache_capacity_factor,
        ):
            out[group.members] = group.e_instr_seconds(mode)
    if on_saturation == "raise" and not np.isfinite(out).all():
        # Reproduce the scalar lane's QueueSaturationError exactly.
        return _scalar_lane(
            cases, locality, gamma, mode, on_saturation, barrier_scale,
            include_peer_cache, remote_cached_fraction, cache_capacity_factor,
            contention_boost,
        )
    return out


def e_instr_lower_bounds(
    specs: Sequence[PlatformSpec | BatchCase],
    locality: StackDistanceModel,
    gamma: float,
    *,
    remote_rate_adjustment: float = 0.0,
    barrier_scale: float = 1.0,
    include_peer_cache: bool = False,
    remote_cached_fraction: float = 0.0,
    sharing_fraction: float = 0.0,
    sharing_fresh_fraction: float = 1.0,
    cache_capacity_factor: float = 1.0,
) -> np.ndarray:
    """Admissible lower bound on E(Instr) seconds per candidate.

    Zero-contention relaxation of the model: every M/D/1 response time is
    at least its uncontended service time (``t = tau + W``, ``W >= 0``),
    the throttled fixed point only scales *rates* (responses still
    ``>= tau``), and the exact-MVA response ``R_i = s_i (1 + Q_i)`` is at
    least ``s_i`` — so for every evaluation mode the true E(Instr) is
    ``>=`` this closed form.  No queueing, no bisection: O(levels) per
    candidate, which is what makes branch-and-bound pruning profitable.
    """
    cases = _as_cases(
        specs, sharing_fraction, sharing_fresh_fraction, remote_rate_adjustment
    )
    if not cases:
        return np.empty(0, dtype=np.float64)
    _validate(gamma, barrier_scale, 1.0, cases)
    out = np.empty(len(cases), dtype=np.float64)
    if not isinstance(locality, StackDistanceModel):
        # Duck-typed distributions take the scalar reference bound, which
        # only consumes the tail/rescaled protocol.
        for k, case in enumerate(cases):
            hierarchy = case.spec.hierarchy(
                include_peer_cache=include_peer_cache,
                remote_cached_fraction=remote_cached_fraction,
                cache_capacity_factor=cache_capacity_factor,
            )
            lb_t = zero_contention_amat(
                hierarchy, locality, gamma,
                remote_rate_adjustment=case.remote_rate_adjustment,
                barrier_scale=barrier_scale,
                sharing_fraction=case.sharing_fraction,
                sharing_fresh_fraction=case.sharing_fresh_fraction,
            )
            out[k] = ((1.0 + gamma * lb_t) / case.spec.total_processors) / case.spec.cpu_hz
        return out
    for group in _build_groups(
        cases, locality, gamma, barrier_scale, 1.0,
        include_peer_cache, remote_cached_fraction, cache_capacity_factor,
    ):
        out[group.members] = group.lower_bound_seconds()
    return out
