"""Deterministic fault plans for the simulated cluster.

A :class:`FaultPlan` is an immutable, picklable bundle of injected
misbehaviors -- the perturbations Afzal, Hager and Wellein study when
they trace how one-off delays propagate and decay through barrier and
network terms on real clusters.  Four event kinds cover the failure
modes the paper's model silently assumes away:

* :class:`OneOffDelay` -- a process loses ``cycles`` of progress the
  first time its clock reaches ``at`` (an OS jitter blob, a page-fault
  storm, a GC pause).  Additive: the lost work is never recovered.
* :class:`NodeStall` -- a process is unresponsive from ``at`` until the
  absolute time ``at + cycles`` (a hung daemon, a rebooting NIC).
  Absorptive: time already spent past the resume point -- e.g. blocked
  in a barrier -- counts against the stall, so a stall that ends while
  the process would have been waiting anyway costs nothing.
* :class:`NodeSlowdown` -- a degraded node: every reference's compute
  padding is multiplied by ``factor`` while the clock is inside
  ``[start, end)`` (thermal throttling, a co-scheduled noisy neighbor).
* :class:`NetworkSpike` -- every inter-node message *issued* inside
  ``[start, end)`` costs ``extra_cycles`` more (a congested uplink, a
  flapping switch).  Applies to the cluster network of COW and CLUMP
  back-ends; an SMP has no cluster network, so there it is inert.

Determinism is the design constraint throughout: events trigger on the
*simulated* clock at reference boundaries, never on wall time, so a
plan replayed on the same trace yields bit-identical results -- across
runs, across process-pool workers, and across the engine's scalar and
vectorized lanes (see ``docs/RESILIENCE.md`` for the proof obligations
and ``tests/faults/`` for the property suite).  :meth:`FaultPlan.generate`
derives a randomized plan from a seed through ``numpy``'s PRNG with all
magnitudes quantized to quarter-cycle multiples, keeping every clock
arithmetic exact in float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "FaultPlan",
    "NetworkSpike",
    "NodeSlowdown",
    "NodeStall",
    "OneOffDelay",
    "parse_inject_spec",
    "plan_from_specs",
]


def _quantize(x: float) -> float:
    """Round to the engine's quarter-cycle quantum (exact in float64)."""
    return round(4.0 * float(x)) / 4.0


@dataclass(frozen=True)
class OneOffDelay:
    """Additive one-off delay: ``cycles`` joins the clock at ``at``."""

    proc: int
    at: float
    cycles: float

    kind = "delay"

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ValueError("delay proc must be >= 0")
        if self.at < 0:
            raise ValueError("delay trigger time must be >= 0")
        if self.cycles <= 0:
            raise ValueError("delay cycles must be positive")


@dataclass(frozen=True)
class NodeStall:
    """Unresponsive node: the clock jumps to ``max(clock, at + cycles)``."""

    proc: int
    at: float
    cycles: float

    kind = "stall"

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ValueError("stall proc must be >= 0")
        if self.at < 0:
            raise ValueError("stall trigger time must be >= 0")
        if self.cycles <= 0:
            raise ValueError("stall cycles must be positive")

    @property
    def resume_at(self) -> float:
        return self.at + self.cycles


@dataclass(frozen=True)
class NodeSlowdown:
    """Degraded node: compute work x ``factor`` while in ``[start, end)``."""

    proc: int
    start: float
    end: float
    factor: float

    kind = "slow"

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ValueError("slowdown proc must be >= 0")
        if self.start < 0 or self.end <= self.start:
            raise ValueError("slowdown window needs 0 <= start < end")
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")


@dataclass(frozen=True)
class NetworkSpike:
    """Transient latency spike on every inter-node message in a window."""

    start: float
    end: float
    extra_cycles: float

    kind = "netspike"

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("network spike window needs 0 <= start < end")
        if self.extra_cycles <= 0:
            raise ValueError("network spike extra_cycles must be positive")


FaultEvent = OneOffDelay | NodeStall | NodeSlowdown | NetworkSpike


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault events for one simulation."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, (OneOffDelay, NodeStall, NodeSlowdown, NetworkSpike)):
                raise TypeError(f"not a fault event: {ev!r}")
        # Overlapping slowdowns on one process would make the effective
        # factor order-dependent; reject them outright.
        by_proc: dict[int, list[NodeSlowdown]] = {}
        for ev in self.events:
            if isinstance(ev, NodeSlowdown):
                by_proc.setdefault(ev.proc, []).append(ev)
        for proc, slows in by_proc.items():
            slows.sort(key=lambda s: s.start)
            for a, b in zip(slows, slows[1:]):
                if b.start < a.end:
                    raise ValueError(
                        f"overlapping slowdown windows on proc {proc}: "
                        f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                    )

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.events)

    def validate_for(self, num_procs: int) -> None:
        """Reject events that target processes the run does not have."""
        for ev in self.events:
            proc = getattr(ev, "proc", None)
            if proc is not None and proc >= num_procs:
                raise ValueError(
                    f"{ev.kind} event targets proc {proc} but the run has "
                    f"{num_procs} processes"
                )

    def cache_key(self) -> str:
        """Deterministic string identity for disk-cache hashing."""
        return repr(tuple(sorted(self.events, key=repr)))

    def counts(self) -> dict[str, int]:
        """Event count per kind (``delay``/``stall``/``slow``/``netspike``)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    @property
    def network_extra(self) -> Callable[[float], float] | None:
        """Per-message extra cycles as a function of issue time.

        ``None`` when the plan holds no :class:`NetworkSpike`, so
        back-ends pay nothing on the common path.  Overlapping spike
        windows add up.
        """
        spikes = tuple(
            (ev.start, ev.end, ev.extra_cycles)
            for ev in self.events
            if isinstance(ev, NetworkSpike)
        )
        if not spikes:
            return None

        def extra(now: float, _spikes=spikes) -> float:
            x = 0.0
            for start, end, cycles in _spikes:
                if start <= now < end:
                    x += cycles
            return x

        return extra

    def describe(self) -> str:
        if not self.events:
            return "fault plan: empty"
        lines = [f"fault plan: {len(self.events)} event(s)"]
        for ev in sorted(self.events, key=repr):
            if isinstance(ev, OneOffDelay):
                lines.append(f"  delay    proc {ev.proc} at {ev.at:,.0f}: +{ev.cycles:,.0f} cycles")
            elif isinstance(ev, NodeStall):
                lines.append(
                    f"  stall    proc {ev.proc} at {ev.at:,.0f}: unresponsive "
                    f"until {ev.resume_at:,.0f}"
                )
            elif isinstance(ev, NodeSlowdown):
                lines.append(
                    f"  slow     proc {ev.proc} in [{ev.start:,.0f}, {ev.end:,.0f}): "
                    f"work x{ev.factor:g}"
                )
            else:
                lines.append(
                    f"  netspike in [{ev.start:,.0f}, {ev.end:,.0f}): "
                    f"+{ev.extra_cycles:,.0f} cycles/message"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        num_procs: int,
        span: float,
        delays: int = 2,
        stalls: int = 1,
        slowdowns: int = 1,
        spikes: int = 1,
        magnitude: float = 0.05,
    ) -> "FaultPlan":
        """A seeded, deterministic random plan over ``span`` cycles.

        ``magnitude`` scales event sizes relative to ``span`` (delay and
        stall lengths draw from ``[0.5, 2] * magnitude * span``; windows
        are similarly sized).  All times and magnitudes are quantized to
        quarter cycles, so the same ``(seed, num_procs, span, ...)``
        always produces the identical plan with exact clock arithmetic.
        """
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if span <= 0:
            raise ValueError("span must be positive")
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        rng = np.random.default_rng(seed)
        scale = magnitude * span
        events: list[FaultEvent] = []
        for _ in range(delays):
            events.append(
                OneOffDelay(
                    proc=int(rng.integers(num_procs)),
                    at=_quantize(rng.uniform(0.0, span)),
                    cycles=max(0.25, _quantize(rng.uniform(0.5, 2.0) * scale)),
                )
            )
        for _ in range(stalls):
            events.append(
                NodeStall(
                    proc=int(rng.integers(num_procs)),
                    at=_quantize(rng.uniform(0.0, span)),
                    cycles=max(0.25, _quantize(rng.uniform(0.5, 2.0) * scale)),
                )
            )
        # Slowdown windows must not overlap per process: carve them out
        # of disjoint lanes of the span so any count stays valid.
        for j in range(slowdowns):
            lane = span / max(1, slowdowns)
            start = _quantize(j * lane + rng.uniform(0.0, 0.4) * lane)
            width = max(0.25, _quantize(rng.uniform(0.2, 0.5) * lane))
            events.append(
                NodeSlowdown(
                    proc=int(rng.integers(num_procs)),
                    start=start,
                    end=start + width,
                    factor=max(1.25, _quantize(rng.uniform(1.5, 4.0))),
                )
            )
        for _ in range(spikes):
            start = _quantize(rng.uniform(0.0, span))
            width = max(0.25, _quantize(rng.uniform(0.5, 2.0) * scale))
            events.append(
                NetworkSpike(
                    start=start,
                    end=start + width,
                    extra_cycles=max(0.25, _quantize(rng.uniform(0.5, 2.0) * scale / 10.0)),
                )
            )
        return cls(tuple(events))


# ----------------------------------------------------------------------
# ``--inject`` spec parsing (shared by the CLI and tests)
# ----------------------------------------------------------------------
_SPEC_FIELDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "delay": (OneOffDelay, ("proc", "at", "cycles")),
    "stall": (NodeStall, ("proc", "at", "cycles")),
    "slow": (NodeSlowdown, ("proc", "start", "end", "factor")),
    "netspike": (NetworkSpike, ("start", "end", "extra_cycles")),
}

#: Short aliases accepted in specs (``extra`` for ``extra_cycles``).
_FIELD_ALIASES = {"extra": "extra_cycles"}


def parse_inject_spec(text: str) -> FaultEvent:
    """Parse one ``--inject`` spec, e.g. ``delay:proc=0,at=1e5,cycles=5e4``.

    Format: ``kind:key=value,...`` with kinds ``delay``, ``stall``
    (fields ``proc, at, cycles``), ``slow`` (``proc, start, end,
    factor``) and ``netspike`` (``start, end, extra``).  Raises
    :class:`ValueError` with a usage hint on any malformed input.
    """
    kind, sep, body = text.partition(":")
    kind = kind.strip().lower()
    if kind not in _SPEC_FIELDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {', '.join(_SPEC_FIELDS)}"
        )
    cls, fields = _SPEC_FIELDS[kind]
    if not sep or not body.strip():
        raise ValueError(
            f"{kind} spec needs fields {', '.join(fields)}: "
            f"e.g. {kind}:{','.join(f'{f}=...' for f in fields)}"
        )
    kwargs: dict[str, float] = {}
    for pair in body.split(","):
        key, eq, raw = pair.partition("=")
        key = _FIELD_ALIASES.get(key.strip(), key.strip())
        if not eq or key not in fields:
            raise ValueError(
                f"bad field {pair.strip()!r} in {kind} spec; expected "
                f"{', '.join(fields)}"
            )
        try:
            kwargs[key] = int(raw) if key == "proc" else float(raw)
        except ValueError:
            raise ValueError(f"non-numeric value for {key!r}: {raw!r}") from None
    missing = [f for f in fields if f not in kwargs]
    if missing:
        raise ValueError(f"{kind} spec is missing {', '.join(missing)}")
    return cls(**kwargs)  # field validation happens in __post_init__


def plan_from_specs(specs: Iterable[str] | Sequence[str]) -> FaultPlan:
    """Build a :class:`FaultPlan` from ``--inject`` spec strings."""
    return FaultPlan(tuple(parse_inject_spec(s) for s in specs))
