"""Fault injection for the simulated cluster (and the tools around it).

Two halves, one theme -- what happens when nodes misbehave:

* :mod:`repro.faults.plan` -- deterministic, seeded
  :class:`~repro.faults.plan.FaultPlan` objects (one-off delays,
  stalls, degraded nodes, network-latency spikes) that
  :class:`~repro.sim.engine.SimulationEngine` and every back-end
  consume with bit-identical results across the scalar and vectorized
  lanes;
* :mod:`repro.faults.inject` -- the engine-facing compilation of a
  plan into per-process trigger schedules.

The harness-resilience half (cell retries, cache quarantine,
checkpoint/resume) lives with
:class:`~repro.experiments.runner.ExperimentRunner`; the fault model
and its guarantees are documented in ``docs/RESILIENCE.md``.
"""

from repro.faults.inject import compile_triggers
from repro.faults.plan import (
    FaultPlan,
    NetworkSpike,
    NodeSlowdown,
    NodeStall,
    OneOffDelay,
    parse_inject_spec,
    plan_from_specs,
)

__all__ = [
    "FaultPlan",
    "NetworkSpike",
    "NodeSlowdown",
    "NodeStall",
    "OneOffDelay",
    "compile_triggers",
    "parse_inject_spec",
    "plan_from_specs",
]
