"""Compilation of a :class:`~repro.faults.plan.FaultPlan` for the engine.

The engine wants one flat, time-sorted trigger list per process, with
integer opcodes it can dispatch on in its hot loop:

==========  =====================================================
``F_DELAY``  add ``value`` cycles to the clock (one-off delay)
``F_STALL``  raise the clock to ``value`` (absolute resume time)
``F_SLOW``   set the compute-work factor to ``value``
``F_NORMAL`` restore the factor to 1.0 (slowdown window closes)
==========  =====================================================

Triggers fire when the process clock first reaches the trigger time at
a reference boundary (the top of the engine's per-process loop).  A
:class:`NodeSlowdown` compiles to an ``F_SLOW`` at its start and an
``F_NORMAL`` at its end; :class:`NetworkSpike` events are not engine
triggers at all -- they live in the back-end's network hook (see
:meth:`~repro.sim.backends.base.MemoryBackend.install_network_spikes`).

Ties are broken by the event's position in the plan, so compilation is
a pure function of the plan: both engine lanes -- and every pool
worker -- see the identical schedule.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, NetworkSpike, NodeSlowdown, NodeStall, OneOffDelay

__all__ = ["F_DELAY", "F_STALL", "F_SLOW", "F_NORMAL", "compile_triggers"]

F_DELAY = 0
F_STALL = 1
F_SLOW = 2
F_NORMAL = 3


def compile_triggers(plan: FaultPlan, num_procs: int) -> list[list[tuple[float, int, float]]] | None:
    """Per-process ``(time, opcode, value)`` lists, sorted by time.

    Returns ``None`` when no event needs an engine trigger (an empty
    plan, or one holding only network spikes), so the engine can skip
    all fault bookkeeping on the common path.
    """
    plan.validate_for(num_procs)
    per_proc: list[list[tuple[float, int, int, float]]] = [[] for _ in range(num_procs)]
    any_trigger = False
    for seq, ev in enumerate(plan.events):
        if isinstance(ev, OneOffDelay):
            per_proc[ev.proc].append((ev.at, seq, F_DELAY, ev.cycles))
        elif isinstance(ev, NodeStall):
            per_proc[ev.proc].append((ev.at, seq, F_STALL, ev.resume_at))
        elif isinstance(ev, NodeSlowdown):
            per_proc[ev.proc].append((ev.start, seq, F_SLOW, ev.factor))
            per_proc[ev.proc].append((ev.end, seq, F_NORMAL, 1.0))
        elif not isinstance(ev, NetworkSpike):  # pragma: no cover - plan validates
            raise TypeError(f"not a fault event: {ev!r}")
        if not isinstance(ev, NetworkSpike):
            any_trigger = True
    if not any_trigger:
        return None
    return [
        [(t, code, value) for t, _, code, value in sorted(events)]
        for events in per_proc
    ]
