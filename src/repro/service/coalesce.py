"""Request coalescing with deadline propagation — the pure planning half.

Concurrent predict (or design) queries landing within a coalescing
window are funneled into **one** tensor evaluation wave through
:meth:`repro.service.api.QueryAPI.predict_batch` /
:meth:`~repro.service.api.QueryAPI.design_batch`; per-case independence
of the batched evaluators makes the funneling invisible in the answers
(bit-identical to one-at-a-time calls, property-tested in
``tests/service/test_coalesce.py``).

This module holds the *policy*, not the transport: given a queue of
pending requests and the current time, when does the next wave dispatch
and who rides it?  Both executors — the asyncio server on the wall
clock and the overload property test on a virtual clock — call the same
:func:`next_wave`, so the deterministic replay exercises the exact
batching decisions production takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["PendingRequest", "next_wave", "expired", "percentile"]


@dataclass
class PendingRequest:
    """One admitted request waiting for its wave.

    ``deadline`` is absolute (arrival + the request's relative deadline,
    defaulted per endpoint); it propagates through the wave — checked
    before dispatch (shed as ``deadline`` if already past), and bounds
    the executor's timeout while the wave runs.
    """

    index: int
    endpoint: str
    arrival: float
    deadline: float
    payload: object = None
    #: Filled by the executor:
    outcome: str | None = field(default=None)
    answer: object = field(default=None)
    finished: float | None = field(default=None)

    @property
    def latency(self) -> float | None:
        return None if self.finished is None else self.finished - self.arrival


def next_wave(
    queue: Sequence[PendingRequest],
    free_at: float,
    window: float,
    max_batch: int,
) -> tuple[float, list[PendingRequest]]:
    """When the next wave dispatches, and which requests ride it.

    The window opens at the head request's arrival; the wave dispatches
    at ``head.arrival + window`` or when the executor frees up,
    whichever is later, and takes every request that has arrived by
    then, oldest first, up to ``max_batch``.
    """
    if not queue:
        raise ValueError("next_wave on an empty queue")
    head = queue[0]
    dispatch = max(free_at, head.arrival + window)
    riders = [p for p in queue if p.arrival <= dispatch][:max_batch]
    return dispatch, riders


def expired(pending: PendingRequest, now: float) -> bool:
    """Deadline check used both at dispatch and at completion."""
    return now > pending.deadline


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        raise ValueError("percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]
