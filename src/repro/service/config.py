"""Service tuning knobs, one frozen dataclass per concern.

Every number the overload machinery consults lives here, validated at
construction, so a test (or ``repro serve`` flag) can pin the whole
regime in one place and the deterministic replay harness can run the
exact configuration the real server would.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EndpointPolicy", "ServiceConfig", "ENDPOINTS"]

#: The service's three POST endpoints, in route order.
ENDPOINTS = ("predict", "design", "simulate")


@dataclass(frozen=True)
class EndpointPolicy:
    """Admission and batching policy for one endpoint."""

    #: Token-bucket refill rate (requests/second) and burst capacity.
    rate: float = 200.0
    burst: float = 50.0
    #: Queue-depth watermark: requests beyond this many waiting are shed
    #: with a 429-style ``queue_full`` rejection.
    queue_depth: int = 64
    #: Coalescing window (seconds): requests arriving within it join one
    #: evaluation wave, up to ``max_batch`` per wave.
    coalesce_window: float = 0.01
    max_batch: int = 64
    #: Default per-request deadline (seconds) when the client sends none.
    deadline: float = 5.0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("rate and burst must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.coalesce_window < 0:
            raise ValueError("coalesce_window must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass(frozen=True)
class ServiceConfig:
    """The whole serving regime: admission, breaker, retries, workers."""

    predict: EndpointPolicy = field(default_factory=EndpointPolicy)
    design: EndpointPolicy = field(
        default_factory=lambda: EndpointPolicy(rate=50.0, burst=20.0, queue_depth=32)
    )
    simulate: EndpointPolicy = field(
        default_factory=lambda: EndpointPolicy(
            rate=10.0, burst=5.0, queue_depth=8, coalesce_window=0.0, max_batch=1,
            deadline=30.0,
        )
    )
    #: Breaker: consecutive simulate failures before opening; seconds the
    #: breaker stays open before a half-open probe is allowed.
    breaker_threshold: int = 3
    breaker_recovery: float = 5.0
    #: Retry budget: retries may cost at most ``retry_ratio`` of request
    #: volume (plus ``retry_floor``); base backoff and jitter seed feed
    #: :func:`repro.backoff.backoff_delay`.
    retry_ratio: float = 0.1
    retry_floor: int = 3
    retry_backoff: float = 0.05
    #: Simulation worker processes (1 = in-process, no pool to break).
    jobs: int = 2
    #: Seed for backoff jitter and chaos plans.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_recovery <= 0:
            raise ValueError("breaker_recovery must be positive")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    def policy(self, endpoint: str) -> EndpointPolicy:
        if endpoint not in ENDPOINTS:
            raise ValueError(f"unknown endpoint {endpoint!r}; known: {ENDPOINTS}")
        return getattr(self, endpoint)

    def with_policy(self, endpoint: str, **changes) -> "ServiceConfig":
        """A copy with one endpoint's policy fields replaced."""
        return replace(self, **{endpoint: replace(self.policy(endpoint), **changes)})
