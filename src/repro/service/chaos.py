"""Deterministic service-level fault injection (``repro serve --inject``).

The simulator got seeded fault plans in PR 3 (:mod:`repro.faults`); the
serving path gets the same treatment here, with three event kinds that
cover the overload scenarios the bench and CI smoke replay:

* :class:`WorkerKill` — SIGKILL one simulation pool worker after the
  ``after``-th simulate dispatch (a process OOM-killed mid-request);
  the next pool interaction surfaces ``BrokenProcessPool`` and trips
  the circuit breaker, exactly the PR-3 detection path.
* :class:`PoolStall` — the pool stops answering for ``duration``
  seconds starting at the ``after``-th dispatch (a wedged worker
  holding the queue); requests ride into their deadlines.
* :class:`SlowDependency` — every dispatch inside the wall-time window
  ``[at, at + duration)`` pays ``extra`` additional seconds (a
  saturated disk under the design cache, a noisy co-tenant).

Specs use the ``--inject`` grammar the simulator established —
``kind:key=value,...`` — and :meth:`ServiceFaultPlan.generate` derives
a randomized plan from a seed through ``numpy``'s PRNG, so every
overload scenario in the tests and the bench is a pure function of its
seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "WorkerKill",
    "PoolStall",
    "SlowDependency",
    "ServiceFaultPlan",
    "parse_service_inject",
    "service_plan_from_specs",
]


@dataclass(frozen=True)
class WorkerKill:
    """Kill one pool worker after the ``after``-th simulate dispatch."""

    after: int = 1

    kind = "workerkill"

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError("workerkill after must be >= 0")


@dataclass(frozen=True)
class PoolStall:
    """The pool hangs for ``duration`` s from the ``after``-th dispatch."""

    after: int = 1
    duration: float = 5.0

    kind = "poolstall"

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError("poolstall after must be >= 0")
        if self.duration <= 0:
            raise ValueError("poolstall duration must be positive")


@dataclass(frozen=True)
class SlowDependency:
    """Dispatches inside ``[at, at + duration)`` pay ``extra`` seconds."""

    at: float = 0.0
    duration: float = 1.0
    extra: float = 0.25

    kind = "slowdep"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("slowdep at must be >= 0")
        if self.duration <= 0:
            raise ValueError("slowdep duration must be positive")
        if self.extra <= 0:
            raise ValueError("slowdep extra must be positive")


ServiceFaultEvent = WorkerKill | PoolStall | SlowDependency


@dataclass(frozen=True)
class ServiceFaultPlan:
    """An immutable set of service fault events for one serving run."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, (WorkerKill, PoolStall, SlowDependency)):
                raise TypeError(f"not a service fault event: {ev!r}")

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- queries the serving loop asks ---------------------------------
    def kill_due(self, dispatches: int) -> bool:
        """Is a worker kill due at the ``dispatches``-th simulate dispatch?"""
        return any(
            isinstance(ev, WorkerKill) and dispatches == ev.after
            for ev in self.events
        )

    def stall_due(self, dispatches: int) -> float:
        """Stall seconds owed at this dispatch (0.0 when none)."""
        return sum(
            ev.duration
            for ev in self.events
            if isinstance(ev, PoolStall) and dispatches == ev.after
        )

    def extra_latency(self, elapsed: float) -> float:
        """Extra per-dispatch seconds at ``elapsed`` seconds since start
        (overlapping slow-dependency windows add up)."""
        return sum(
            ev.extra
            for ev in self.events
            if isinstance(ev, SlowDependency)
            and ev.at <= elapsed < ev.at + ev.duration
        )

    def describe(self) -> str:
        if not self.events:
            return "service fault plan: empty"
        lines = [f"service fault plan: {len(self.events)} event(s)"]
        for ev in sorted(self.events, key=repr):
            if isinstance(ev, WorkerKill):
                lines.append(f"  workerkill after dispatch {ev.after}")
            elif isinstance(ev, PoolStall):
                lines.append(
                    f"  poolstall  after dispatch {ev.after}: {ev.duration:g}s"
                )
            else:
                lines.append(
                    f"  slowdep    in [{ev.at:g}, {ev.at + ev.duration:g})s: "
                    f"+{ev.extra:g}s/dispatch"
                )
        return "\n".join(lines)

    @classmethod
    def generate(
        cls,
        seed: int,
        span: float,
        *,
        kills: int = 1,
        stalls: int = 0,
        slowdeps: int = 1,
    ) -> "ServiceFaultPlan":
        """A seeded random plan over a ``span``-second serving window."""
        if span <= 0:
            raise ValueError("span must be positive")
        rng = np.random.default_rng(seed)
        events: list[ServiceFaultEvent] = []
        for _ in range(kills):
            events.append(WorkerKill(after=int(rng.integers(1, 6))))
        for _ in range(stalls):
            events.append(
                PoolStall(
                    after=int(rng.integers(1, 6)),
                    duration=round(float(rng.uniform(0.1, 0.3) * span), 3),
                )
            )
        for _ in range(slowdeps):
            at = round(float(rng.uniform(0.0, 0.5) * span), 3)
            events.append(
                SlowDependency(
                    at=at,
                    duration=round(float(rng.uniform(0.2, 0.5) * span), 3),
                    extra=round(float(rng.uniform(0.05, 0.5)), 3),
                )
            )
        return cls(tuple(events))


# ----------------------------------------------------------------------
_SPEC_FIELDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "workerkill": (WorkerKill, ("after",)),
    "poolstall": (PoolStall, ("after", "duration")),
    "slowdep": (SlowDependency, ("at", "duration", "extra")),
}


def parse_service_inject(text: str) -> ServiceFaultEvent:
    """Parse one service ``--inject`` spec, e.g. ``workerkill:after=2``.

    Same grammar as the simulator's fault specs: ``kind:key=value,...``
    with kinds ``workerkill`` (``after``), ``poolstall`` (``after,
    duration``) and ``slowdep`` (``at, duration, extra``).  Every field
    has a default, so ``workerkill`` alone is a valid spec.
    """
    kind, _sep, body = text.partition(":")
    kind = kind.strip().lower()
    if kind not in _SPEC_FIELDS:
        raise ValueError(
            f"unknown service fault kind {kind!r}; expected one of "
            f"{', '.join(_SPEC_FIELDS)}"
        )
    cls, fields = _SPEC_FIELDS[kind]
    kwargs: dict[str, float | int] = {}
    for pair in filter(None, (p.strip() for p in body.split(","))):
        key, eq, raw = pair.partition("=")
        key = key.strip()
        if not eq or key not in fields:
            raise ValueError(
                f"bad field {pair!r} in {kind} spec; expected {', '.join(fields)}"
            )
        try:
            kwargs[key] = int(raw) if key == "after" else float(raw)
        except ValueError:
            raise ValueError(f"non-numeric value for {key!r}: {raw!r}") from None
    return cls(**kwargs)  # field validation happens in __post_init__


def service_plan_from_specs(specs: Iterable[str]) -> ServiceFaultPlan:
    """Build a :class:`ServiceFaultPlan` from ``--inject`` spec strings."""
    return ServiceFaultPlan(tuple(parse_service_inject(s) for s in specs))
