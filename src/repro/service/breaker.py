"""A circuit breaker around the simulation worker pool.

State machine (exported as the ``service_breaker_state`` gauge):

* **closed (0)** — requests flow; failures are counted, and either
  ``failure_threshold`` consecutive soft failures or a single *hard*
  failure (a :class:`BrokenProcessPool` — the pool is gone, more
  traffic cannot help) opens the breaker.
* **open (1)** — simulate work is shed with reason ``breaker_open``
  and predict queries fall back to degraded-mode answers; after
  ``recovery`` seconds the next :meth:`allow` call becomes a half-open
  probe.
* **half-open (2)** — exactly one in-flight probe is admitted; its
  success closes the breaker, its failure re-opens it (restarting the
  recovery clock).

Clock-explicit like the rest of the service core: every transition is
a pure function of (state, now), so the overload property tests replay
the exact open/half-open/closed trajectory on a virtual clock.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "STATE_NAMES"]

CLOSED, OPEN, HALF_OPEN = 0, 1, 2
STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half_open"}


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery: float = 5.0,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery <= 0:
            raise ValueError("recovery must be positive")
        self.failure_threshold = failure_threshold
        self.recovery = recovery
        self._on_transition = on_transition
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    # ------------------------------------------------------------------
    def state(self, now: float) -> int:
        """The externally visible state at time ``now``."""
        if self._state == OPEN and now - self._opened_at >= self.recovery:
            return HALF_OPEN
        return self._state

    def state_name(self, now: float) -> str:
        return STATE_NAMES[self.state(now)]

    def allow(self, now: float) -> bool:
        """May a (simulate) request proceed at ``now``?

        In half-open state only the first caller wins the probe slot;
        everyone else stays shed until the probe reports back.
        """
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._transition(HALF_OPEN)
            self._probing = True
            return True
        return False

    def record_success(self, now: float) -> None:
        self._failures = 0
        self._probing = False
        self._transition(CLOSED)

    def record_failure(self, now: float, *, hard: bool = False) -> None:
        """A soft failure counts toward the threshold; a hard one (dead
        pool) opens immediately.  Any failure during a half-open probe
        re-opens."""
        self._probing = False
        self._failures += 1
        if (
            hard
            or self._state != CLOSED
            or self._failures >= self.failure_threshold
        ):
            self._failures = 0
            self._opened_at = now
            self._transition(OPEN)

    # ------------------------------------------------------------------
    def _transition(self, state: int) -> None:
        if state != self._state:
            self._state = state
            if self._on_transition is not None:
                self._on_transition(state)
